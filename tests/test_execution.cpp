// QueryExecution internals: step reports, routing through the locality
// predicate, result/retrieval take-cursors, and seeding behaviours the
// distributed layers depend on.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;

TEST(Execution, StepReportsKinds) {
  SiteStore store(0);
  ObjectId a = store.put(Object(store.allocate(), {Tuple::keyword("k")}));
  ObjectId ghost(0, 777);
  Query q = parse_or_die(R"(S (keyword, "k", ?) -> T)");
  store.create_set("S", std::vector<ObjectId>{a, a, ghost});

  QueryExecution exec(q, store);
  ASSERT_TRUE(exec.seed_initial().ok());

  StepReport r1 = exec.step();
  EXPECT_EQ(r1.kind, StepKind::kProcessed);
  EXPECT_EQ(r1.results_added, 1u);

  StepReport r2 = exec.step();  // duplicate of a: suppressed at pop
  EXPECT_EQ(r2.kind, StepKind::kSuppressed);

  StepReport r3 = exec.step();  // ghost: missing from the store
  EXPECT_EQ(r3.kind, StepKind::kMissing);

  StepReport r4 = exec.step();
  EXPECT_EQ(r4.kind, StepKind::kIdle);
  EXPECT_TRUE(exec.idle());
}

TEST(Execution, RemoteSinkReceivesNonLocalItems) {
  SiteStore store(0);
  ObjectId local = store.allocate();
  ObjectId remote(1, 5, 1);  // lives elsewhere
  {
    Object obj(local);
    obj.add(Tuple::pointer("L", remote));
    obj.add(Tuple::pointer("L", local));  // self: local route
    obj.add(Tuple::keyword("k"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::vector<ObjectId>{local});

  std::vector<WorkItem> shipped;
  ExecutionOptions opts;
  opts.is_local = [&](const ObjectId& id) { return id.birth_site == 0; };
  opts.remote_sink = [&](WorkItem&& item) { shipped.push_back(std::move(item)); };

  Query q = parse_or_die(R"(S (pointer, "L", ?X) ^^X (keyword, "k", ?) -> T)");
  QueryExecution exec(q, store, std::move(opts));
  ASSERT_TRUE(exec.seed_initial().ok());
  exec.drain();

  ASSERT_EQ(shipped.size(), 1u);
  EXPECT_EQ(shipped[0].id, remote);
  EXPECT_EQ(shipped[0].start, 3u);  // enters after the dereference
  EXPECT_EQ(exec.stats().remote_handoffs, 1u);
}

TEST(Execution, MissingSinkInvoked) {
  SiteStore store(0);
  ObjectId ghost(0, 9);
  store.create_set("S", std::vector<ObjectId>{ghost});
  std::vector<ObjectId> missing;
  ExecutionOptions opts;
  opts.missing_sink = [&](const ObjectId& id) { missing.push_back(id); };
  Query q = parse_or_die(R"(S (?, ?, ?) -> T)");
  QueryExecution exec(q, store, std::move(opts));
  ASSERT_TRUE(exec.seed_initial().ok());
  exec.drain();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], ghost);
}

TEST(Execution, TakeCursorsReturnOnlyNewBatches) {
  SiteStore store(0);
  ObjectId a = store.put(Object(store.allocate(), {Tuple::keyword("k")}));
  ObjectId b = store.put(Object(store.allocate(), {Tuple::keyword("k")}));
  Query q = parse_or_die(R"(S (keyword, "k", ?) -> T)");
  store.create_set("S", std::vector<ObjectId>{a});

  QueryExecution exec(q, store);
  ASSERT_TRUE(exec.seed_initial().ok());
  exec.drain();
  EXPECT_EQ(exec.take_result_ids(), std::vector<ObjectId>{a});
  EXPECT_TRUE(exec.take_result_ids().empty());  // nothing new

  // A second wave of work (as a remote dereference arrival would inject).
  exec.add_item(WorkItem::initial(b));
  exec.drain();
  EXPECT_EQ(exec.take_result_ids(), std::vector<ObjectId>{b});
  // Cumulative view still has both.
  EXPECT_EQ(exec.result_ids().size(), 2u);
}

TEST(Execution, AddItemResetsTransientState) {
  // Arrivals carry only (id, start, iter#): next and bindings reset locally.
  SiteStore store(0);
  ObjectId a = store.put(Object(store.allocate(), {Tuple::keyword("k")}));
  Query q = parse_or_die(R"(S (keyword, "k", ?) -> T)");
  store.create_set("S", std::vector<ObjectId>{});

  QueryExecution exec(q, store);
  WorkItem item;
  item.id = a;
  item.start = 1;
  item.next = 42;                          // bogus transient state
  item.mvars.bind("X", Value::number(1));  // stale bindings
  exec.add_item(std::move(item));
  exec.drain();
  EXPECT_EQ(exec.result_ids(), std::vector<ObjectId>{a});
}

TEST(Execution, SeedsCombineExplicitIdsAndNamedSet) {
  SiteStore store(0);
  ObjectId a = store.put(Object(store.allocate(), {Tuple::keyword("k")}));
  ObjectId b = store.put(Object(store.allocate(), {Tuple::keyword("k")}));
  store.create_set("S", std::vector<ObjectId>{a});

  Query q;
  q.set_initial_set_name("S");
  q.set_initial_ids({b});
  q.add_filter(SelectFilter{Pattern::literal("keyword"), Pattern::literal("k"),
                            Pattern::any()});
  ASSERT_TRUE(q.validate().ok());

  QueryExecution exec(q, store);
  ASSERT_TRUE(exec.seed_initial().ok());
  exec.drain();
  EXPECT_EQ(exec.result_ids().size(), 2u);
}

TEST(Execution, SeedLocalSetUnknownNameIsNoop) {
  SiteStore store(0);
  Query q = parse_or_die(R"(S (?, ?, ?) -> T)");
  store.create_set("S", std::vector<ObjectId>{});
  QueryExecution exec(q, store);
  exec.seed_local_set("DoesNotExist");
  EXPECT_TRUE(exec.idle());
}

TEST(Execution, MaxWorkingSetTracksPeak) {
  SiteStore store(0);
  // A star: one root fanning out to 20 targets — peak |W| ~ 20.
  std::vector<ObjectId> leaves;
  for (int i = 0; i < 20; ++i) {
    leaves.push_back(store.put(Object(store.allocate(), {Tuple::keyword("k")})));
  }
  ObjectId root = store.allocate();
  Object obj(root);
  for (auto& l : leaves) obj.add(Tuple::pointer("L", l));
  store.put(std::move(obj));
  store.create_set("S", std::vector<ObjectId>{root});

  Query q = parse_or_die(R"(S (pointer, "L", ?X) ^X (keyword, "k", ?) -> T)");
  QueryExecution exec(q, store);
  ASSERT_TRUE(exec.seed_initial().ok());
  exec.drain();
  EXPECT_GE(exec.stats().max_working_set, 20u);
}

TEST(Execution, NaiveMarkingLosesLateEntrants) {
  // The ablation switch behind bench_marktable, as a unit test.
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId o = store.allocate();
  store.put(Object(a, {Tuple::keyword("good"), Tuple::pointer("L", o)}));
  store.put(Object(o, {Tuple::string("Name", "o")}));
  store.create_set("S", std::vector<ObjectId>{o, a});
  Query q = parse_or_die(R"(S (keyword, "good", ?) (pointer, "L", ?X) ^X -> T)");

  QueryExecution paper(q, store);
  ASSERT_TRUE(paper.seed_initial().ok());
  paper.drain();
  EXPECT_EQ(paper.result_ids(), std::vector<ObjectId>{o});

  ExecutionOptions naive_opts;
  naive_opts.naive_whole_object_marking = true;
  QueryExecution naive(q, store, std::move(naive_opts));
  ASSERT_TRUE(naive.seed_initial().ok());
  naive.drain();
  EXPECT_TRUE(naive.result_ids().empty());  // o was "seen" at F1 and lost
}

}  // namespace
}  // namespace hyperfile
