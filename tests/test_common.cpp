#include <gtest/gtest.h>

#include <set>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace hyperfile {
namespace {

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  Result<int> err = make_error(Errc::kNotFound, "nope");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Errc::kNotFound);
  EXPECT_EQ(err.value_or(7), 7);
  EXPECT_EQ(err.error().to_string(), "not_found: nope");
}

TEST(Result, VoidSpecialization) {
  Result<void> ok;
  EXPECT_TRUE(ok.ok());
  Result<void> err = make_error(Errc::kIo, "disk");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().code, Errc::kIo);
}

TEST(Result, ErrcNames) {
  EXPECT_STREQ(to_string(Errc::kInvalidArgument), "invalid_argument");
  EXPECT_STREQ(to_string(Errc::kDecode), "decode");
  EXPECT_STREQ(to_string(Errc::kTimeout), "timeout");
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit in 1000 draws
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // The child must not replay the parent's stream.
  Rng fresh(5);
  fresh.next_u64();  // consume what split() consumed
  EXPECT_NE(child.next_u64(), fresh.next_u64());
}

TEST(FormatDuration, Units) {
  EXPECT_EQ(format_duration(Duration(500)), "500us");
  EXPECT_EQ(format_duration(Duration(1'500)), "1.5ms");
  EXPECT_EQ(format_duration(Duration(2'700'000)), "2.70s");
}

}  // namespace
}  // namespace hyperfile
