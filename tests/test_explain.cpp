#include <gtest/gtest.h>

#include "index/explain.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using index::explain_query;
using testing::parse_or_die;

TEST(Explain, CountsStructure) {
  auto e = explain_query(parse_or_die(
      R"(S [ (pointer, "Ref", ?X) | ^^X ]* (keyword, "k", ?) -> T)"));
  EXPECT_EQ(e.filters, 4u);
  EXPECT_EQ(e.selections, 2u);
  EXPECT_EQ(e.dereferences, 1u);
  EXPECT_EQ(e.iterators, 1u);
  EXPECT_EQ(e.max_nesting, 1u);
  EXPECT_TRUE(e.transitive_closure);
  EXPECT_FALSE(e.count_only);
}

TEST(Explain, DetectsAcceleration) {
  auto e = explain_query(parse_or_die(
      R"(S [ (pointer, "Cites", ?X) | ^^X ]* (keyword, "db", ?) -> T)"));
  EXPECT_EQ(e.accelerable_via, "pointer/Cites");

  auto not_acc = explain_query(parse_or_die(
      R"(S [ (pointer, "Cites", ?X) | ^^X ]3 (keyword, "db", ?) -> T)"));
  EXPECT_TRUE(not_acc.accelerable_via.empty());
}

TEST(Explain, ReportsRewriterEffect) {
  auto e = explain_query(parse_or_die(
      R"(S (keyword, "k", ?) (keyword, "k", ?) (?, ?, ?) -> T)"));
  EXPECT_GT(e.rewrite.total(), 0u);
  EXPECT_NE(e.rewritten, e.original);
}

TEST(Explain, WarnsAboutDropSourceClosure) {
  auto e = explain_query(parse_or_die(
      R"(S [ (pointer, "Ref", ?X) | ^X ]* (keyword, "k", ?) -> T)"));
  bool warned = false;
  for (const auto& note : e.notes) {
    if (note.find("keeps nothing") != std::string::npos) warned = true;
  }
  EXPECT_TRUE(warned);
}

TEST(Explain, NotesCountOnly) {
  auto e = explain_query(parse_or_die(R"(S (keyword, "k", ?) count -> D)"));
  EXPECT_TRUE(e.count_only);
  bool noted = false;
  for (const auto& note : e.notes) {
    if (note.find("distributed set") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted);
}

TEST(Explain, ToStringReadable) {
  auto e = explain_query(parse_or_die(
      R"(S [ (pointer, "Ref", ?X) | ^^X ]* (string, "Title", ->t) -> T)"));
  const std::string s = e.to_string();
  EXPECT_NE(s.find("query:"), std::string::npos);
  EXPECT_NE(s.find("filters"), std::string::npos);
  EXPECT_NE(s.find("retrieval slot"), std::string::npos);
}

TEST(Explain, NestedDepth) {
  auto e = explain_query(parse_or_die(
      R"(S [ [ (pointer, "A", ?X) | ^^X ]2 (pointer, "B", ?Y) | ^^Y ]* (?, ?, ?) -> T)"));
  EXPECT_EQ(e.max_nesting, 2u);
  EXPECT_EQ(e.iterators, 2u);
}

}  // namespace
}  // namespace hyperfile
