// Seeded violation: the encoder writes two fields, the decoder reads one.
// HFVERIFY-RULE: codec
// HFVERIFY-EXPECT: encode_thing/decode_thing: encode/decode diverge at field 2

void encode_thing(const Thing& t, Encoder& e) {
  e.varint(t.x);
  e.string(t.y);
}

Thing decode_thing(Decoder& d) {
  Thing t;
  t.x = d.varint().value();
  return t;
}

void encode_message(const Message& m, Encoder& e) {
  if (std::get_if<Ping>(&m) != nullptr) {
    e.u8(static_cast<std::uint8_t>(Tag::kPing));
    e.varint(std::get<Ping>(m).seq);
  }
}

Message decode_message(Decoder& d) {
  const auto tag = static_cast<Tag>(d.u8().value());
  switch (tag) {
    case Tag::kPing: {
      Ping p;
      p.seq = d.varint().value();
      return p;
    }
  }
  return Message{};
}
