// Known-good: early-return dedup guard (accounting only inside) dominating
// every side effect.
// HFVERIFY-RULE: ordering

struct ResultMessage {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_result(int src, const ResultMessage& rm) {
    if (already_seen(src, rm.msg_seq)) {
      metrics().counter("dist.duplicates").inc();
      return;
    }
    repay_weight(rm.msg_seq);
  }

  void repay_weight(std::uint64_t w);
  bool already_seen(int src, std::uint64_t seq);
};
