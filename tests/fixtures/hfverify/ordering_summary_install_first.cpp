// Seeded violation: a gossiped summary record is installed before the
// duplicate check — a wire-duplicated advert re-runs the install scan (and
// a stale relayed record could be mistaken for fresh evidence about its
// origin, resurrecting a suspected peer's cached summary).
// HFVERIFY-RULE: ordering
// HFVERIFY-EXPECT: calls side effect install_summary() before the already_seen() dedup check

struct SummaryMessage {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_summary(int src, SummaryMessage sm) {
    install_summary(sm.msg_seq);
    if (already_seen(src, sm.msg_seq)) {
      inc();
      return;
    }
  }

  void install_summary(std::uint64_t rec);
  bool already_seen(int src, std::uint64_t seq);
  void inc();
};
