// Known-good: the blocking call carries a waiver, so the rule stays quiet.
// HFVERIFY-RULE: confinement

class Log {
 public:
  HF_BLOCKING void append(int rec);
};

class Server {
 public:
  HF_EVENT_LOOP_ONLY void handle_put(int rec) {
    // hfverify: allow-blocking(redo-before-ack): durability before ack.
    log_.append(rec);
  }

 private:
  Log log_;
};
