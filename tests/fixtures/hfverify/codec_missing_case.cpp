// Seeded violation: encode_message emits a tag decode_message never handles.
// HFVERIFY-RULE: codec
// HFVERIFY-EXPECT: encode_message emits kPong but decode_message has no case

void encode_message(const Message& m, Encoder& e) {
  if (std::get_if<Ping>(&m) != nullptr) {
    e.u8(static_cast<std::uint8_t>(Tag::kPing));
    e.varint(std::get<Ping>(m).seq);
  } else {
    e.u8(static_cast<std::uint8_t>(Tag::kPong));
    e.varint(std::get<Pong>(m).seq);
  }
}

Message decode_message(Decoder& d) {
  const auto tag = static_cast<Tag>(d.u8().value());
  switch (tag) {
    case Tag::kPing: {
      Ping p;
      p.seq = d.varint().value();
      return p;
    }
  }
  return Message{};
}
