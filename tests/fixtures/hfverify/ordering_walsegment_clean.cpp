// Clean: the WAL-segment handler consults the duplicate check before
// applying any shipped redo records, so a wire-duplicated segment cannot
// replay mutations into the shadow store (DESIGN.md §18).
// HFVERIFY-RULE: ordering

struct WalSegment {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_wal_segment(int src, WalSegment wg) {
    if (already_seen(src, wg.msg_seq)) {
      inc();
      return;
    }
    apply_segment(src, wg.msg_seq);
  }

  void apply_segment(int primary, std::uint64_t seq);
  bool already_seen(int src, std::uint64_t seq);
  void inc();
};
