// Seeded violation: weight is repaid before the duplicate check — a
// duplicated frame would repay twice and break conservation.
// HFVERIFY-RULE: ordering
// HFVERIFY-EXPECT: calls side effect repay_weight() before the already_seen() dedup check

struct TermAck {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_term_ack(int src, const TermAck& ta) {
    repay_weight(ta.msg_seq);
    if (already_seen(src, ta.msg_seq)) return;
    note(ta.msg_seq);
  }

  void repay_weight(std::uint64_t w);
  bool already_seen(int src, std::uint64_t seq);
  void note(std::uint64_t w);
};
