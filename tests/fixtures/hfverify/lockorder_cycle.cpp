// Seeded violation: both orders are individually sanctioned, but together
// they form a deadlock cycle.
// HFVERIFY-RULE: lockorder
// HFVERIFY-ALLOW-EDGE: Pool::mu_a_ -> Pool::mu_b_
// HFVERIFY-ALLOW-EDGE: Pool::mu_b_ -> Pool::mu_a_
// HFVERIFY-EXPECT: lock-order cycle

class Pool {
 public:
  void f() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);
  }

  void g() {
    MutexLock b(mu_b_);
    MutexLock a(mu_a_);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
};
