// Seeded violation: the dedup predicate is negated instead of the
// early-return shape, so fall-through duplicates still run side effects.
// HFVERIFY-RULE: ordering
// HFVERIFY-EXPECT: is negated

struct StartQuery {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_start(int src, const StartQuery& sq) {
    if (!already_seen(src, sq.msg_seq)) {
      repay_weight(sq.msg_seq);
    }
  }

  void repay_weight(std::uint64_t w);
  bool already_seen(int src, std::uint64_t seq);
};
