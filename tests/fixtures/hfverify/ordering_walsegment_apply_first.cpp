// Seeded violation: a shipped WAL segment is applied to the shadow store
// before the duplicate check — a wire-duplicated (retried) segment would
// replay its redo records, corrupting the replica a failover later serves
// answers from (DESIGN.md §18).
// HFVERIFY-RULE: ordering
// HFVERIFY-EXPECT: calls side effect apply_segment() before the already_seen() dedup check

struct WalSegment {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_wal_segment(int src, WalSegment wg) {
    apply_segment(src, wg.msg_seq);
    if (already_seen(src, wg.msg_seq)) {
      inc();
      return;
    }
  }

  void apply_segment(int primary, std::uint64_t seq);
  bool already_seen(int src, std::uint64_t seq);
  void inc();
};
