// Seeded violation: the same (non-recursive) mutex identity acquired while
// already held.
// HFVERIFY-RULE: lockorder
// HFVERIFY-EXPECT: same mutex identity Pool::mu_ acquired while held

class Pool {
 public:
  void f() {
    MutexLock a(mu_);
    MutexLock b(mu_);
  }

 private:
  Mutex mu_;
};
