// Known-good: the nesting carries an inline waiver (e.g. provably-distinct
// instances), so the rule stays quiet.
// HFVERIFY-RULE: lockorder

class Pool {
 public:
  void f() {
    MutexLock a(mu_a_);
    // hfverify: allow-lockorder(init): both locks guard freshly constructed
    // state no other thread can reach yet.
    MutexLock b(mu_b_);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
};
