// Seeded violation: a sequenced-message handler with no dedup check at all.
// HFVERIFY-RULE: ordering
// HFVERIFY-EXPECT: never calls already_seen

struct ResultMessage {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_result(int src, const ResultMessage& rm) {
    repay_weight(rm.msg_seq);
  }

  void repay_weight(std::uint64_t w);
};
