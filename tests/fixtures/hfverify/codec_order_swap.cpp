// Seeded violation: decoder reads the two fields in the opposite order —
// the classic silent-corruption bug the rule exists for.
// HFVERIFY-RULE: codec
// HFVERIFY-EXPECT: encode_pair/decode_pair: encode/decode diverge at field 1

void encode_pair(const Pair& p, Encoder& e) {
  e.varint(p.first);
  e.string(p.second);
}

Pair decode_pair(Decoder& d) {
  Pair p;
  p.second = d.string().value();
  p.first = d.varint().value();
  return p;
}

void encode_message(const Message& m, Encoder& e) {
  if (std::get_if<Ping>(&m) != nullptr) {
    e.u8(static_cast<std::uint8_t>(Tag::kPing));
    e.varint(std::get<Ping>(m).seq);
  }
}

Message decode_message(Decoder& d) {
  const auto tag = static_cast<Tag>(d.u8().value());
  switch (tag) {
    case Tag::kPing: {
      Ping p;
      p.seq = d.varint().value();
      return p;
    }
  }
  return Message{};
}
