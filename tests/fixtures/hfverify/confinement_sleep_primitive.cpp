// Seeded violation: a helper reached from the event loop sleeps inline.
// HFVERIFY-RULE: confinement
// HFVERIFY-EXPECT: reaches sleep primitive in Server::poll

class Server {
 public:
  HF_EVENT_LOOP_ONLY void handle_tick() { poll(); }

 private:
  void poll() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};
