// Known-good: the summary handler consults the dedup guard first (only
// pure accounting inside the guard block) and installs records afterwards.
// HFVERIFY-RULE: ordering

struct SummaryMessage {
  std::uint64_t msg_seq = 0;
};

class Server {
 public:
  void handle_summary(int src, SummaryMessage sm) {
    if (already_seen(src, sm.msg_seq)) {
      inc();
      return;
    }
    install_summary(sm.msg_seq);
  }

  void install_summary(std::uint64_t rec);
  bool already_seen(int src, std::uint64_t seq);
  void inc();
};
