// Seeded violation: the nesting happens through a call made while the
// first lock is held.
// HFVERIFY-RULE: lockorder
// HFVERIFY-EXPECT: unsanctioned lock nesting Pool::mu_a_ -> Pool::mu_b_

class Pool {
 public:
  void outer() {
    MutexLock a(mu_a_);
    inner();
  }

  void inner() { MutexLock b(mu_b_); }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
};
