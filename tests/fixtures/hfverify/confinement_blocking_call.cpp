// Seeded violation: an event-loop handler calls a blocking WAL append.
// HFVERIFY-RULE: confinement
// HFVERIFY-EXPECT: event-loop path calls HF_BLOCKING Log::append

class Log {
 public:
  HF_BLOCKING void append(int rec);
};

class Server {
 public:
  HF_EVENT_LOOP_ONLY void handle_put(int rec) { log_.append(rec); }

 private:
  Log log_;
};
