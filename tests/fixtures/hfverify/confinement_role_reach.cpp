// Seeded violation: the event-loop drain calls straight into a
// worker-confined routine instead of dispatching it to the pool.
// HFVERIFY-RULE: confinement
// HFVERIFY-EXPECT: event_loop-role root Engine::drain reaches worker-only Engine::steal

class Engine {
 public:
  HF_EVENT_LOOP_ONLY void drain() { steal(); }
  HF_WORKER_ONLY void steal();
};
