// Seeded violation: direct nesting outside the sanctioned table.
// HFVERIFY-RULE: lockorder
// HFVERIFY-EXPECT: unsanctioned lock nesting Pool::mu_a_ -> Pool::mu_b_

class Pool {
 public:
  void f() {
    MutexLock a(mu_a_);
    MutexLock b(mu_b_);
  }

 private:
  Mutex mu_a_;
  Mutex mu_b_;
};
