// Seeded violation: the encoder writes a repeated field but the decoder
// reads a single element (no loop).
// HFVERIFY-RULE: codec
// HFVERIFY-EXPECT: encode_list/decode_list: encode/decode diverge at field 2

void encode_list(const List& l, Encoder& e) {
  e.varint(l.items.size());
  for (const auto& it : l.items) {
    e.string(it);
  }
}

List decode_list(Decoder& d) {
  List l;
  const auto n = d.varint().value();
  l.items.push_back(d.string().value());
  return l;
}

void encode_message(const Message& m, Encoder& e) {
  if (std::get_if<Ping>(&m) != nullptr) {
    e.u8(static_cast<std::uint8_t>(Tag::kPing));
    e.varint(std::get<Ping>(m).seq);
  }
}

Message decode_message(Decoder& d) {
  const auto tag = static_cast<Tag>(d.u8().value());
  switch (tag) {
    case Tag::kPing: {
      Ping p;
      p.seq = d.varint().value();
      return p;
    }
  }
  return Message{};
}
