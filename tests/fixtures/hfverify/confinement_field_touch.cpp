// Seeded violation: a worker routine mutates event-loop-confined seeding
// state.
// HFVERIFY-RULE: confinement
// HFVERIFY-EXPECT: touches event_loop-confined field Engine::seed_cursor_

class Engine {
 public:
  HF_WORKER_ONLY void worker_pass() { seed_cursor_ += 1; }

 private:
  std::size_t seed_cursor_ HF_EVENT_LOOP_ONLY = 0;
};
