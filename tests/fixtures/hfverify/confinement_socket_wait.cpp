// Seeded violation: a helper reached from the event loop dials a peer with
// a blocking connect (the net/tcp.cpp lock-held-connect shape). The
// bounded, waived epoll_wait in the same loop is sanctioned.
// HFVERIFY-RULE: confinement
// HFVERIFY-EXPECT: reaches socket-wait primitive in Net::dial

class Net {
 public:
  HF_EVENT_LOOP_ONLY void tick() {
    // hfverify: allow-blocking(epoll_wait): bounded 200ms tick.
    ::epoll_wait(epfd_, nullptr, 0, 200);
    dial();
  }

 private:
  void dial() { ::connect(fd_, nullptr, 0); }

  int epfd_ = -1;
  int fd_ = -1;
};
