// Local query engine: the Figure 3 algorithm, E function semantics, and the
// paper's worked examples from Section 3.1.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::make_chain;
using testing::parse_or_die;
using testing::sorted;

TEST(LocalEngine, PaperSection3ChainExample) {
  // Paper: "assume that we have a set S containing an object A. A has a
  // reference pointer to B, B has a pointer to C, and C has a pointer to D."
  // Query: S [ (pointer, "Reference", ?X) | ^^X ]3 (keyword, "Distributed", ?) -> T
  // "the query terminates before examining D (which is 4 levels deep)".
  SiteStore store(0);
  auto ids = make_chain(store, 4, {0, 1, 2, 3});  // all carry the keyword
  LocalEngine engine(store);

  auto q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]3 (keyword, "Distributed", ?) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok()) << r.error().to_string();

  // A, B, C pass; D is never examined.
  EXPECT_EQ(sorted(r.value().ids), sorted({ids[0], ids[1], ids[2]}));
  // D was never processed at all.
  EXPECT_EQ(r.value().stats.processed, 3u);
}

TEST(LocalEngine, TransitiveClosureCoversWholeChain) {
  SiteStore store(0);
  auto ids = make_chain(store, 10, {0, 3, 7});
  LocalEngine engine(store);

  auto q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sorted(r.value().ids), sorted({ids[0], ids[3], ids[7]}));
  EXPECT_EQ(r.value().stats.processed, 10u);
}

TEST(LocalEngine, CycleTerminates) {
  // A -> B -> C -> A: the mark table must stop the closure.
  SiteStore store(0);
  std::vector<ObjectId> ids = {store.allocate(), store.allocate(), store.allocate()};
  for (int i = 0; i < 3; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Reference", ids[(i + 1) % 3]));
    obj.add(Tuple::keyword("Distributed"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));
  LocalEngine engine(store);

  auto q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sorted(r.value().ids), sorted(ids));
}

TEST(LocalEngine, MarkTableSubtletyReprocessAtLaterFilter) {
  // Paper Section 3.1: object O fails F1, but is later dereferenced into F3
  // — it must still be processed starting at F3.
  //
  // Query: S (keyword, "good", ?) (pointer, "Link", ?X) ^X  -> T
  // A (in S) has keyword "good" and a Link to O. O lacks "good".
  // O is also in the initial set S, so it is first processed (and fails) at
  // F1; the dereference via A must still deliver O into the result.
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId o = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::keyword("good"));
    obj.add(Tuple::pointer("Link", o));
    store.put(std::move(obj));
  }
  {
    Object obj(o);
    obj.add(Tuple::string("Name", "o"));  // no "good" keyword
    store.put(std::move(obj));
  }
  std::vector<ObjectId> initial = {o, a};  // O first: it fails F1 before A runs
  store.create_set("S", initial);
  LocalEngine engine(store);

  auto q = parse_or_die(R"(S (keyword, "good", ?) (pointer, "Link", ?X) ^X -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  // ^X drops A (keep only referenced); O enters past the last filter and
  // joins the result.
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{o});
}

TEST(LocalEngine, DerefKeepVsDrop) {
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId b = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::pointer("Link", b));
    obj.add(Tuple::keyword("k"));
    store.put(std::move(obj));
  }
  {
    Object obj(b);
    obj.add(Tuple::keyword("k"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  LocalEngine engine(store);

  // ^^X keeps the pointing object: both A and B must pass.
  auto keep = engine.run(parse_or_die(
      R"(S (pointer, "Link", ?X) ^^X (keyword, "k", ?) -> T)"));
  ASSERT_TRUE(keep.ok());
  EXPECT_EQ(sorted(keep.value().ids), sorted({a, b}));

  // ^X drops it: only B.
  auto drop = engine.run(parse_or_die(
      R"(S (pointer, "Link", ?X) ^X (keyword, "k", ?) -> T)"));
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop.value().ids, std::vector<ObjectId>{b});
}

TEST(LocalEngine, SelectionPatterns) {
  SiteStore store(0);
  ObjectId id = store.allocate();
  {
    Object obj(id);
    obj.add(Tuple::string("Author", "Joe Programmer"));
    obj.add(Tuple::number("Year", 1991));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&id, 1));
  LocalEngine engine(store);

  // Exact string match.
  EXPECT_EQ(engine.run(parse_or_die(
                           R"(S (string, "Author", "Joe Programmer") -> T)"))
                .value()
                .ids.size(),
            1u);
  // Mismatch.
  EXPECT_TRUE(engine.run(parse_or_die(R"(S (string, "Author", "Nobody") -> T)"))
                  .value()
                  .ids.empty());
  // Regex on the data field.
  EXPECT_EQ(engine.run(parse_or_die(R"(S (string, "Author", /Joe/) -> T)"))
                .value()
                .ids.size(),
            1u);
  // Numeric range ("published between ...", the paper's Section 1 example).
  EXPECT_EQ(engine.run(parse_or_die(R"(S (number, "Year", [1980..2000]) -> T)"))
                .value()
                .ids.size(),
            1u);
  EXPECT_TRUE(engine.run(parse_or_die(R"(S (number, "Year", [1992..2000]) -> T)"))
                  .value()
                  .ids.empty());
  // Wildcards everywhere.
  EXPECT_EQ(engine.run(parse_or_die(R"(S (?, ?, ?) -> T)")).value().ids.size(), 1u);
}

TEST(LocalEngine, MatchingVariableAcrossTuples) {
  // Footnote 2: find objects "Maintained by" one of the "Author"s.
  SiteStore store(0);
  ObjectId good = store.allocate();
  ObjectId bad = store.allocate();
  {
    Object obj(good);
    obj.add(Tuple::string("Author", "alice"));
    obj.add(Tuple::string("Author", "bob"));
    obj.add(Tuple::string("Maintained by", "bob"));
    store.put(std::move(obj));
  }
  {
    Object obj(bad);
    obj.add(Tuple::string("Author", "alice"));
    obj.add(Tuple::string("Maintained by", "carol"));
    store.put(std::move(obj));
  }
  std::vector<ObjectId> initial = {good, bad};
  store.create_set("S", initial);
  LocalEngine engine(store);

  auto q = parse_or_die(
      R"(S (string, "Author", ?A) (string, "Maintained by", $A) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{good});
}

TEST(LocalEngine, RetrievalOperator) {
  // Paper Section 2: retrieve all titles of documents by an author.
  SiteStore store(0);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 3; ++i) {
    ObjectId id = store.allocate();
    Object obj(id);
    obj.add(Tuple::string("Author", i < 2 ? "Chris Clifton" : "Other"));
    obj.add(Tuple::string("Title", "Paper " + std::to_string(i)));
    store.put(std::move(obj));
    ids.push_back(id);
  }
  store.create_set("S", ids);
  LocalEngine engine(store);

  auto q = parse_or_die(
      R"(S (string, "Author", "Chris Clifton") (string, "Title", ->title) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), 2u);
  auto titles = r.value().values_for("title");
  ASSERT_EQ(titles.size(), 2u);
  std::vector<std::string> strs = {titles[0].as_string(), titles[1].as_string()};
  std::sort(strs.begin(), strs.end());
  EXPECT_EQ(strs[0], "Paper 0");
  EXPECT_EQ(strs[1], "Paper 1");
}

TEST(LocalEngine, ResultSetUsableAsNextInitialSet) {
  SiteStore store(0);
  auto ids = make_chain(store, 5, {1, 2, 3});
  LocalEngine engine(store);

  auto q1 = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");
  ASSERT_TRUE(engine.run(q1).ok());

  // Chained query over T: objects whose Name is obj2.
  auto q2 = parse_or_die(R"(T (string, "Name", "obj2") -> U)");
  auto r2 = engine.run(q2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().ids, std::vector<ObjectId>{ids[2]});
}

TEST(LocalEngine, WildcardPointerKeyFollowsAllCategories) {
  // "we could use a wild card (?) in place of the key ... if we wished to
  // follow all pointers (such as the Library pointer)".
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId lib = store.allocate();
  ObjectId called = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::pointer("Called Routine", called));
    obj.add(Tuple::pointer("Library", lib));
    obj.add(Tuple::keyword("code"));
    store.put(std::move(obj));
  }
  for (ObjectId id : {lib, called}) {
    Object obj(id);
    obj.add(Tuple::keyword("code"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  LocalEngine engine(store);

  auto narrow = engine.run(parse_or_die(
      R"(S (pointer, "Called Routine", ?X) ^^X (keyword, "code", ?) -> T)"));
  EXPECT_EQ(sorted(narrow.value().ids), sorted({a, called}));

  auto wide = engine.run(parse_or_die(
      R"(S (pointer, ?, ?X) ^^X (keyword, "code", ?) -> T)"));
  EXPECT_EQ(sorted(wide.value().ids), sorted({a, lib, called}));
}

TEST(LocalEngine, DanglingPointerYieldsPartialResults) {
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId ghost(0, 424242);  // never stored
  {
    Object obj(a);
    obj.add(Tuple::pointer("Link", ghost));
    obj.add(Tuple::keyword("k"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  LocalEngine engine(store);

  auto r = engine.run(parse_or_die(
      R"(S (pointer, "Link", ?X) ^^X (keyword, "k", ?) -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{a});
  EXPECT_EQ(r.value().stats.missing, 1u);
}

TEST(LocalEngine, EmptyInitialSetIsError) {
  SiteStore store(0);
  LocalEngine engine(store);
  auto r = engine.run(parse_or_die(R"(Missing (?, ?, ?) -> T)"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(LocalEngine, DuplicateResultSuppressedWhenReachedTwice) {
  // Two objects point at the same target; it must appear once.
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId b = store.allocate();
  ObjectId t = store.allocate();
  for (ObjectId src : {a, b}) {
    Object obj(src);
    obj.add(Tuple::pointer("Link", t));
    store.put(std::move(obj));
  }
  {
    Object obj(t);
    obj.add(Tuple::keyword("k"));
    store.put(std::move(obj));
  }
  std::vector<ObjectId> initial = {a, b};
  store.create_set("S", initial);
  LocalEngine engine(store);

  auto r = engine.run(parse_or_die(
      R"(S (pointer, "Link", ?X) ^X (keyword, "k", ?) -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{t});
  // The second arrival of t was suppressed by the mark table.
  EXPECT_EQ(r.value().stats.suppressed, 1u);
}

TEST(LocalEngine, DisciplineDoesNotChangeResults) {
  SiteStore store(0);
  make_chain(store, 8, {0, 2, 4, 6});
  auto q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");

  LocalEngine bfs(store, WorkSetDiscipline::kFifo);
  LocalEngine dfs(store, WorkSetDiscipline::kLifo);
  auto r1 = bfs.run_readonly(q);
  auto r2 = dfs.run_readonly(q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(sorted(r1.value().ids), sorted(r2.value().ids));
}

}  // namespace
}  // namespace hyperfile
