// The umbrella header compiles standalone and exposes the whole public API.
#include "hyperfile.hpp"

#include <gtest/gtest.h>

namespace hyperfile {
namespace {

TEST(Umbrella, EndToEndThroughPublicApi) {
  SiteStore store(0);
  ObjectId doc = store.put(Object(store.allocate(), {
                                      Tuple::string("Title", "doc"),
                                      Tuple::keyword("hit"),
                                  }));
  store.create_set("S", std::vector<ObjectId>{doc});
  LocalEngine engine(store);
  auto q = parse_query(R"(S (keyword, "hit", ?) -> T)");
  ASSERT_TRUE(q.ok());
  auto r = engine.run(q.value());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{doc});
}

}  // namespace
}  // namespace hyperfile
