// Scale and robustness stress tests: the engine is iterative (no recursion
// in object chains), the mark table stays O(objects), and the distributed
// runtime survives sustained load. Each test is budgeted to stay fast.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/cluster.hpp"
#include "engine/parallel_engine.hpp"
#include "store/snapshot.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;

TEST(Stress, FiftyThousandObjectChainClosure) {
  // A 50k-deep pointer chain: recursion would overflow; the working-set
  // loop must handle it in one pass per object.
  SiteStore store(0);
  constexpr std::size_t kN = 50'000;
  std::vector<ObjectId> ids;
  ids.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Next", i + 1 < kN ? ids[i + 1] : ids[i]));
    if (i % 1000 == 0) obj.add(Tuple::keyword("milestone"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));

  LocalEngine engine(store);
  auto r = engine.run(parse_or_die(
      R"(S [ (pointer, "Next", ?X) | ^^X ]* (keyword, "milestone", ?) -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), 50u);
  EXPECT_EQ(r.value().stats.processed, kN);
}

TEST(Stress, WideFanoutSingleObject) {
  // One object pointing at 20k targets: the binding table and working set
  // must absorb the burst.
  SiteStore store(0);
  constexpr std::size_t kFan = 20'000;
  std::vector<ObjectId> leaves;
  leaves.reserve(kFan);
  for (std::size_t i = 0; i < kFan; ++i) {
    leaves.push_back(store.put(Object(store.allocate(), {Tuple::keyword("leaf")})));
  }
  ObjectId root = store.allocate();
  Object obj(root);
  for (const auto& leaf : leaves) obj.add(Tuple::pointer("Fan", leaf));
  store.put(std::move(obj));
  store.create_set("S", std::span<const ObjectId>(&root, 1));

  LocalEngine engine(store);
  auto r = engine.run(parse_or_die(
      R"(S (pointer, "Fan", ?X) ^X (keyword, "leaf", ?) -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), kFan);
  EXPECT_GE(r.value().stats.max_working_set, kFan);
}

TEST(Stress, DeeplyNestedIteratorsTerminate) {
  // Five nested unbounded loops over a dense little graph: termination via
  // the mark table, not luck.
  SiteStore store(0);
  constexpr std::size_t kN = 12;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("E", ids[(i + 1) % kN]));
    obj.add(Tuple::pointer("E", ids[(i + 5) % kN]));
    obj.add(Tuple::string("tag", "t"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));

  std::string text = "S ";
  for (int d = 0; d < 5; ++d) text += "[ ";
  text += R"((pointer, "E", ?X) | ^^X )";
  for (int d = 0; d < 5; ++d) text += "]* ";
  text += R"((string, "tag", ?) -> T)";

  LocalEngine engine(store);
  auto r = engine.run(parse_or_die(text));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), kN);
}

TEST(Stress, ParallelEngineLargeGraph) {
  SiteStore store(0);
  Rng rng(77);
  constexpr std::size_t kN = 20'000;
  std::vector<ObjectId> ids;
  ids.reserve(kN);
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("E", ids[rng.next_below(kN)]));
    obj.add(Tuple::pointer("E", ids[rng.next_below(kN)]));
    if (rng.next_bool(0.1)) obj.add(Tuple::keyword("hit"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));
  Query q = parse_or_die(
      R"(S [ (pointer, "E", ?X) | ^^X ]* (keyword, "hit", ?) -> T)");

  LocalEngine serial(store);
  auto rs = serial.run_readonly(q);
  ASSERT_TRUE(rs.ok());
  ParallelEngine par(store, 4);
  auto rp = par.run(q);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(testing::sorted(rp.value().ids), testing::sorted(rs.value().ids));
}

TEST(Stress, ClusterSustainedQueryLoad) {
  Cluster cluster(3);
  const std::size_t n = 60;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(cluster.store(i % 3).allocate());
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Next", ids[(i + 1) % n]));  // ring across sites
    if (i % 4 == 0) obj.add(Tuple::keyword("hit"));
    cluster.store(i % 3).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
  cluster.start();
  Query q = parse_or_die(
      R"(S [ (pointer, "Next", ?X) | ^^X ]* (keyword, "hit", ?) -> T)");
  for (int i = 0; i < 60; ++i) {
    auto r = cluster.client().run(q, Duration(20'000'000));
    ASSERT_TRUE(r.ok()) << "iteration " << i;
    ASSERT_EQ(r.value().ids.size(), 15u) << "iteration " << i;
  }
  cluster.stop();
  // Context table fully drained (all QueryDones processed or pending stop).
  auto stats = cluster.engine_stats();
  EXPECT_EQ(stats.processed, 60u * 60u);
}

TEST(Stress, HugeBlobsRoundTripEverywhere) {
  // 4 MiB blob: storage, snapshot, and wire must all cope.
  SiteStore store(0);
  Value::Blob big(4u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  ObjectId id = store.put(Object(store.allocate(), {Tuple::blob("Payload", big)}));

  auto bytes = snapshot_store(store);
  auto restored = restore_store(bytes);
  ASSERT_TRUE(restored.ok());
  const Object* obj = restored.value().get(id);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->find("blob", "Payload")->data.as_blob(), big);
}

}  // namespace
}  // namespace hyperfile
