// Query rewriter: each pass fires where intended, never fires where it
// would be unsound, and — the property that matters — rewritten queries
// produce identical results on randomized object graphs.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "query/rewrite.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

TEST(Rewrite, DuplicateSelectsCollapse) {
  Query q = parse_or_die(
      R"(S (keyword, "k", ?) (keyword, "k", ?) (keyword, "k", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(stats.duplicate_selects_removed, 2u);
}

TEST(Rewrite, DifferentSelectsKept) {
  Query q = parse_or_die(R"(S (keyword, "a", ?) (keyword, "b", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(stats.total(), 0u);
}

TEST(Rewrite, RedundantWildcardDropped) {
  Query q = parse_or_die(R"(S (keyword, "k", ?) (?, ?, ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(stats.wildcard_selects_removed, 1u);
}

TEST(Rewrite, LeadingWildcardKept) {
  // (?, ?, ?) as the first filter rejects empty objects; nothing implies it.
  Query q = parse_or_die(R"(S (?, ?, ?) (keyword, "k", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(r.size(), 2u);
}

TEST(Rewrite, WildcardAfterDerefKept) {
  // Objects dereferenced into the wildcard have passed no select in their
  // own pass; dropping it would leak empty objects.
  Query q = parse_or_die(R"(S (pointer, "L", ?X) ^^X (?, ?, ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(stats.wildcard_selects_removed, 0u);
}

TEST(Rewrite, SinglePassIteratorRemoved) {
  Query q = parse_or_die(R"(S [ (pointer, "L", ?X) | ^^X ]1 (keyword, "k", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(stats.iterators_removed, 1u);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(std::holds_alternative<SelectFilter>(r.filter(3)));
}

TEST(Rewrite, PointerlessIteratorRemoved) {
  Query q = parse_or_die(R"(S [ (keyword, "a", ?) ]* (keyword, "b", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(stats.iterators_removed, 1u);
  EXPECT_EQ(r.size(), 2u);
}

TEST(Rewrite, RealClosureLoopKept) {
  Query q = parse_or_die(
      R"(S [ (pointer, "L", ?X) | ^^X ]* (keyword, "k", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(r, q);
  EXPECT_EQ(stats.total(), 0u);
}

TEST(Rewrite, DeadBindingStripped) {
  Query q = parse_or_die(R"(S (string, "Author", ?A) (keyword, "k", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(stats.bindings_stripped, 1u);
  const auto& s = std::get<SelectFilter>(r.filter(1));
  EXPECT_EQ(s.data_pattern, Pattern::any());
}

TEST(Rewrite, LiveBindingKept) {
  Query q = parse_or_die(
      R"(S (string, "Author", ?A) (string, "Maint", $A) (pointer, "L", ?X) ^X -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  EXPECT_EQ(stats.bindings_stripped, 0u);
  EXPECT_EQ(r, q);
}

TEST(Rewrite, IteratorBodyStartRemappedAfterRemoval) {
  // A removable duplicate select *before* a loop must shift the loop's
  // body_start.
  Query q = parse_or_die(
      R"(S (keyword, "k", ?) (keyword, "k", ?) [ (pointer, "L", ?X) | ^^X ]* (keyword, "z", ?) -> T)");
  RewriteStats stats;
  Query r = rewrite_query(q, &stats);
  ASSERT_TRUE(r.validate().ok());
  EXPECT_EQ(stats.duplicate_selects_removed, 1u);
  const auto* it = std::get_if<IterateFilter>(&r.filter(4));
  ASSERT_NE(it, nullptr);
  EXPECT_EQ(it->body_start, 2u);
}

TEST(Rewrite, CountOnlyAndNamesPreserved) {
  Query q = parse_or_die(R"(S (keyword, "k", ?) (keyword, "k", ?) count -> T)");
  Query r = rewrite_query(q);
  EXPECT_TRUE(r.count_only());
  EXPECT_EQ(r.result_set_name(), "T");
  EXPECT_EQ(r.initial_set_name(), "S");
}

TEST(Rewrite, Idempotent) {
  const char* kQueries[] = {
      R"(S (keyword, "k", ?) (keyword, "k", ?) (?, ?, ?) -> T)",
      R"(S [ (pointer, "L", ?X) | ^^X ]1 (keyword, "k", ?) -> T)",
      R"(S [ (pointer, "L", ?X) | ^^X ]* (keyword, "k", ?) -> T)",
      R"(S (string, "Author", ?Dead) (keyword, "k", ?) -> T)",
  };
  for (const char* text : kQueries) {
    Query once = rewrite_query(parse_or_die(text));
    RewriteStats again_stats;
    Query twice = rewrite_query(once, &again_stats);
    EXPECT_EQ(twice, once) << text;
    EXPECT_EQ(again_stats.total(), 0u) << text;
  }
}

// ---- randomized equivalence ---------------------------------------------

class RewriteEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RewriteEquivalence, SameResultsAfterRewrite) {
  Rng rng(GetParam());
  SiteStore store(0);
  constexpr std::size_t kN = 40;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    if (rng.next_bool(0.9)) obj.add(Tuple::keyword("k"));  // some empty-ish
    if (rng.next_bool(0.5)) obj.add(Tuple::string("Author", "a"));
    const int deg = static_cast<int>(rng.next_below(3));
    for (int e = 0; e < deg; ++e) {
      obj.add(Tuple::pointer("L", ids[rng.next_below(kN)]));
    }
    store.put(std::move(obj));
  }
  std::vector<ObjectId> members = {ids[0], ids[1]};
  store.create_set("S", members);

  const char* kQueries[] = {
      R"(S (keyword, "k", ?) (keyword, "k", ?) (?, ?, ?) -> T)",
      R"(S [ (pointer, "L", ?X) | ^^X ]1 (keyword, "k", ?) -> T)",
      R"(S [ (keyword, "k", ?) ]* (string, "Author", ?A) -> T)",
      R"(S (pointer, "L", ?X) ^^X (?, ?, ?) -> T)",
      R"(S [ (pointer, "L", ?X) | ^^X ]* (keyword, "k", ?) (keyword, "k", ?) -> T)",
      R"(S (string, "Author", ?Dead) (keyword, "k", ?) -> T)",
      R"(S [ (pointer, "L", ?X) | ^^X ]2 (?, ?, ?) (keyword, "k", ?) -> T)",
  };

  LocalEngine engine(store);
  for (const char* text : kQueries) {
    Query q = parse_or_die(text);
    Query r = rewrite_query(q);
    SCOPED_TRACE(std::string(text) + "  =>  " + r.to_string());
    auto before = engine.run_readonly(q);
    auto after = engine.run_readonly(r);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(sorted(after.value().ids), sorted(before.value().ids));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalence,
                         ::testing::Values(3u, 7u, 13u, 17u, 23u, 29u, 31u,
                                           37u, 41u, 43u));

}  // namespace
}  // namespace hyperfile
