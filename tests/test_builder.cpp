#include <gtest/gtest.h>

#include "query/builder.hpp"
#include "query/parser.hpp"

namespace hyperfile {
namespace {

TEST(Builder, BuildsPaperQuery) {
  Query q = QueryBuilder::from_set("S")
                .begin_iterate(3)
                .select(Pattern::literal("pointer"), Pattern::literal("Reference"),
                        Pattern::bind("X"))
                .deref_keep("X")
                .end_iterate()
                .select_key("keyword", "Distributed")
                .into("T");
  auto parsed = parse_query(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]3 (keyword, "Distributed", ?) -> T)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(q, parsed.value());
}

TEST(Builder, FollowShorthandExpandsToSelectPlusDeref) {
  Query q = QueryBuilder::from_set("S").follow("Reference").build();
  ASSERT_EQ(q.size(), 2u);
  const auto& sel = std::get<SelectFilter>(q.filter(1));
  EXPECT_EQ(sel.type_pattern, Pattern::literal("pointer"));
  EXPECT_EQ(sel.key_pattern, Pattern::literal("Reference"));
  ASSERT_TRUE(sel.data_pattern.binds());
  const auto& d = std::get<DerefFilter>(q.filter(2));
  EXPECT_EQ(d.var, sel.data_pattern.var());
  EXPECT_TRUE(d.keep_source);
}

TEST(Builder, FollowTwiceUsesDistinctVariables) {
  Query q = QueryBuilder::from_set("S").follow("A").follow("B", false).build();
  const auto& d1 = std::get<DerefFilter>(q.filter(2));
  const auto& d2 = std::get<DerefFilter>(q.filter(4));
  EXPECT_NE(d1.var, d2.var);
  EXPECT_FALSE(d2.keep_source);
}

TEST(Builder, RetrieveRegistersSlots) {
  Query q = QueryBuilder::from_set("S")
                .retrieve("string", "Title", "title")
                .retrieve("string", "Author", "author")
                .build();
  ASSERT_EQ(q.retrieve_slots().size(), 2u);
  EXPECT_EQ(q.retrieve_slots()[0], "title");
  EXPECT_EQ(q.retrieve_slots()[1], "author");
  EXPECT_EQ(std::get<SelectFilter>(q.filter(1)).data_pattern.slot(), 0u);
  EXPECT_EQ(std::get<SelectFilter>(q.filter(2)).data_pattern.slot(), 1u);
}

TEST(Builder, SelectEqAndKey) {
  Query q = QueryBuilder::from_set("S")
                .select_eq("number", "Year", Value::number(1991))
                .select_key("keyword", "db")
                .build();
  EXPECT_EQ(std::get<SelectFilter>(q.filter(1)).data_pattern,
            Pattern::literal(std::int64_t{1991}));
  EXPECT_EQ(std::get<SelectFilter>(q.filter(2)).data_pattern, Pattern::any());
}

TEST(Builder, FromIds) {
  Query q = QueryBuilder::from_ids({ObjectId(1, 2)}).select_key("keyword", "k").build();
  ASSERT_EQ(q.initial_ids().size(), 1u);
  EXPECT_TRUE(q.initial_set_name().empty());
}

TEST(Builder, CountOnly) {
  Query q = QueryBuilder::from_set("S").select_key("keyword", "k").count_only().into("T");
  EXPECT_TRUE(q.count_only());
}

TEST(Builder, UnclosedIterateThrows) {
  QueryBuilder b = QueryBuilder::from_set("S");
  b.begin_iterate(2).select_key("keyword", "k");
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Builder, EndIterateWithoutBeginThrows) {
  QueryBuilder b = QueryBuilder::from_set("S");
  EXPECT_THROW(b.end_iterate(), std::logic_error);
}

TEST(Builder, InvalidQueryThrows) {
  QueryBuilder b = QueryBuilder::from_set("S");
  b.deref_keep("NeverBound");
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Builder, NestedIterateStructure) {
  Query q = QueryBuilder::from_set("S")
                .begin_iterate(5)
                .begin_iterate(2)
                .follow("A")
                .end_iterate()
                .follow("B")
                .end_iterate()
                .build();
  // 1 select(A), 2 deref, 3 inner iter, 4 select(B), 5 deref, 6 outer iter.
  const auto& inner = std::get<IterateFilter>(q.filter(3));
  const auto& outer = std::get<IterateFilter>(q.filter(6));
  EXPECT_EQ(inner.body_start, 1u);
  EXPECT_EQ(inner.count, 2u);
  EXPECT_EQ(outer.body_start, 1u);
  EXPECT_EQ(outer.count, 5u);
}

}  // namespace
}  // namespace hyperfile
