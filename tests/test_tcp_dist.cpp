// End-to-end distributed queries over real TCP sockets on localhost: the
// same SiteServer as the in-process cluster, different transport. Skipped
// gracefully where localhost sockets are unavailable.
#include <gtest/gtest.h>

#include <memory>

#include "dist/client.hpp"
#include "dist/site_server.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

struct TcpDeployment {
  std::vector<std::unique_ptr<SiteServer>> servers;
  std::unique_ptr<Client> client;
  bool ok = false;

  explicit TcpDeployment(SiteId sites) {
    std::vector<TcpPeer> zeros(sites + 1, TcpPeer{"127.0.0.1", 0});
    std::vector<std::unique_ptr<TcpNetwork>> nets;
    for (SiteId s = 0; s <= sites; ++s) {
      auto net = TcpNetwork::create(s, zeros);
      if (!net.ok()) return;  // no sockets in this environment
      nets.push_back(std::move(net).value());
    }
    for (auto& net : nets) {
      for (SiteId peer = 0; peer <= sites; ++peer) {
        net->update_peer(peer, {"127.0.0.1", nets[peer]->bound_port()});
      }
    }

    std::vector<SiteStore> stores;
    for (SiteId s = 0; s < sites; ++s) stores.emplace_back(s);
    // Cross-site chain with keywords at every third object.
    std::vector<ObjectId> ids;
    for (std::size_t i = 0; i < 12; ++i) {
      ids.push_back(stores[i % sites].allocate());
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Object obj(ids[i]);
      obj.add(Tuple::pointer("Next", i + 1 < ids.size() ? ids[i + 1] : ids[i]));
      if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
      stores[i % sites].put(std::move(obj));
    }
    stores[0].create_set("S", std::span<const ObjectId>(ids.data(), 1));
    expected = {ids[0], ids[3], ids[6], ids[9]};

    for (SiteId s = 0; s < sites; ++s) {
      servers.push_back(std::make_unique<SiteServer>(std::move(nets[s]),
                                                     std::move(stores[s])));
      servers.back()->start();
    }
    client = std::make_unique<Client>(std::move(nets[sites]), 0);
    ok = true;
  }

  ~TcpDeployment() {
    for (auto& s : servers) s->stop();
  }

  std::vector<ObjectId> expected;
};

TEST(TcpDist, ClosureOverSockets) {
  TcpDeployment d(3);
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  auto r = d.client->run(
      parse_or_die(
          R"(S [ (pointer, "Next", ?X) | ^^X ]* (keyword, "hit", ?) -> T)"),
      Duration(15'000'000));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(sorted(r.value().ids), sorted(d.expected));
}

TEST(TcpDist, SequentialQueriesReuseConnections) {
  TcpDeployment d(3);
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  Query q = parse_or_die(
      R"(S [ (pointer, "Next", ?X) | ^^X ]* (keyword, "hit", ?) -> T)");
  for (int i = 0; i < 5; ++i) {
    auto r = d.client->run(q, Duration(15'000'000));
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": " << r.error().to_string();
    EXPECT_EQ(r.value().ids.size(), 4u);
  }
}

TEST(TcpDist, RetrievalAndCountOnlyOverSockets) {
  TcpDeployment d(3);
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  auto r = d.client->run(
      parse_or_die(
          R"(S [ (pointer, "Next", ?X) | ^^X ]* (keyword, "hit", ?) count -> D)"),
      Duration(15'000'000));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(r.value().count_only);
  EXPECT_EQ(r.value().total_count, 4u);

  auto r2 = d.client->run(parse_or_die(R"(D (keyword, "hit", ?) -> U)"),
                          Duration(15'000'000));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), sorted(d.expected));
}

}  // namespace
}  // namespace hyperfile
