// Shared-memory parallel engine (paper Section 6): result equivalence with
// the serial engine across worker counts, graph shapes, and seeds.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "engine/parallel_engine.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::make_chain;
using testing::parse_or_die;
using testing::sorted;

TEST(ParallelEngine, MatchesSerialOnChain) {
  SiteStore store(0);
  make_chain(store, 50, {0, 5, 10, 15, 20, 49});
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");

  LocalEngine serial(store);
  auto rs = serial.run_readonly(q);
  ASSERT_TRUE(rs.ok());

  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    ParallelEngine par(store, workers);
    auto rp = par.run(q);
    ASSERT_TRUE(rp.ok()) << "workers=" << workers;
    EXPECT_EQ(sorted(rp.value().ids), sorted(rs.value().ids))
        << "workers=" << workers;
  }
}

TEST(ParallelEngine, EmptyInitialSet) {
  SiteStore store(0);
  store.create_set("S", std::span<const ObjectId>{});
  ParallelEngine par(store, 4);
  auto r = par.run(parse_or_die(R"(S (?, ?, ?) -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().ids.empty());
}

TEST(ParallelEngine, RetrievalMatchesSerial) {
  SiteStore store(0);
  auto ids = make_chain(store, 20, {0, 4, 8, 12, 16});
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) (string, "Name", ->n) -> T)");
  LocalEngine serial(store);
  auto rs = serial.run_readonly(q);
  ParallelEngine par(store, 4);
  auto rp = par.run(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rp.ok());
  auto names_s = rs.value().values_for("n");
  auto names_p = rp.value().values_for("n");
  std::sort(names_s.begin(), names_s.end());
  std::sort(names_p.begin(), names_p.end());
  EXPECT_EQ(names_s, names_p);
}

class ParallelRandomGraph : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelRandomGraph, MatchesSerial) {
  // Random dense-ish graphs with cycles: the benign duplicate-processing
  // race must never change the result set.
  Rng rng(GetParam());
  SiteStore store(0);
  constexpr std::size_t kN = 60;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    const int out_degree = 1 + static_cast<int>(rng.next_below(3));
    for (int e = 0; e < out_degree; ++e) {
      obj.add(Tuple::pointer("Edge", ids[rng.next_below(kN)]));
    }
    if (rng.next_bool(0.3)) obj.add(Tuple::keyword("hit"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));

  Query q = parse_or_die(
      R"(S [ (pointer, "Edge", ?X) | ^^X ]* (keyword, "hit", ?) -> T)");
  LocalEngine serial(store);
  auto rs = serial.run_readonly(q);
  ASSERT_TRUE(rs.ok());
  ParallelEngine par(store, 6);
  auto rp = par.run(q);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(sorted(rp.value().ids), sorted(rs.value().ids));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRandomGraph,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(ParallelEngine, DuplicateSeedsPoppedOnce) {
  // Regression: duplicate ids in the initial set used to become duplicate
  // work items; the pop-time mark guard cannot suppress copies that two
  // workers claim concurrently. Seeds must be deduplicated before the pool
  // starts. workers=1 makes the pop count deterministic.
  SiteStore store(0);
  auto ids = make_chain(store, 1, {0});
  Query q = parse_or_die(R"(S (keyword, "Distributed", ?) -> T)");
  q.set_initial_ids({ids[0], ids[0], ids[0]});
  q.set_initial_set_name("");  // explicit ids only

  ParallelEngine par(store, 1);
  auto r = par.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{ids[0]});
  EXPECT_EQ(r.value().stats.pops, 1u);
  EXPECT_EQ(r.value().stats.processed, 1u);
}

TEST(ParallelEngine, SeedsDedupedAcrossExplicitIdsAndNamedSet) {
  // The same object arriving both as an explicit id and as a named-set
  // member is still one seed.
  SiteStore store(0);
  auto ids = make_chain(store, 2, {0, 1});  // creates set "S" = {ids[0]}
  Query q = parse_or_die(R"(S (keyword, "Distributed", ?) -> T)");
  q.set_initial_ids({ids[0]});  // duplicates the set member

  ParallelEngine par(store, 1);
  auto r = par.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{ids[0]});
  EXPECT_EQ(r.value().stats.pops, 1u);
}

TEST(ParallelEngine, InvalidQueryRejected) {
  SiteStore store(0);
  ParallelEngine par(store, 2);
  Query q;  // no initial set
  EXPECT_FALSE(par.run(q).ok());
}

TEST(ParallelEngine, DefaultWorkerCountPositive) {
  SiteStore store(0);
  ParallelEngine par(store);
  EXPECT_GE(par.workers(), 1u);
}

}  // namespace
}  // namespace hyperfile
