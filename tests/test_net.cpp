#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/channel.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"

namespace hyperfile {
namespace {

constexpr Duration kShort{50'000};    // 50ms
constexpr Duration kLong{2'000'000};  // 2s

TEST(Channel, PushPop) {
  Channel<int> ch;
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.try_pop().value(), 1);
  EXPECT_EQ(ch.pop_wait(kShort).value(), 2);
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(Channel, PopWaitTimesOut) {
  Channel<int> ch;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.pop_wait(kShort).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(Channel, CloseUnblocksAndRejectsPush) {
  Channel<int> ch;
  std::thread waiter([&] { EXPECT_FALSE(ch.pop_wait(kLong).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  waiter.join();
  EXPECT_FALSE(ch.push(1));
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, DrainAfterClose) {
  Channel<int> ch;
  ch.push(7);
  ch.close();
  // Items pushed before close remain poppable.
  EXPECT_EQ(ch.pop_wait(kShort).value(), 7);
  EXPECT_FALSE(ch.pop_wait(kShort).has_value());
}

TEST(Channel, ConcurrentProducersConsumers) {
  Channel<int> ch;
  constexpr int kPerProducer = 500;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto v = ch.pop_wait(kLong);
        if (v.has_value()) sum += *v;
      }
    });
  }
  for (auto& t : threads) t.join();
  const int n = 4 * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

wire::Message sample_message() {
  wire::QueryDone qd;
  qd.qid = {1, 42};
  return qd;
}

TEST(InProcNetwork, DeliversBetweenEndpoints) {
  InProcNetwork net(3);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  auto env = b->recv(kLong);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 0u);
  EXPECT_EQ(env->dst, 1u);
  EXPECT_EQ(std::get<wire::QueryDone>(env->message).qid, (wire::QueryId{1, 42}));
}

TEST(InProcNetwork, UnknownDestinationIsError) {
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto r = a->send(9, sample_message());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(InProcNetwork, ShutdownUnblocksReceivers) {
  InProcNetwork net(1);
  auto ep = net.endpoint(0);
  std::thread waiter([&] { EXPECT_FALSE(ep->recv(kLong).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net.shutdown();
  waiter.join();
  // Sends to a closed mailbox fail.
  auto other = net.endpoint(0);
  EXPECT_FALSE(other->send(0, sample_message()).ok());
}

TEST(InProcNetwork, CountsMessagesAndBytes) {
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  auto stats = net.stats();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.done_messages, 2u);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST(InProcNetwork, MessagesSurviveWireRoundTrip) {
  // A full DerefRequest with a real query must arrive intact.
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);
  wire::DerefRequest dr;
  dr.qid = {0, 7};
  dr.query = parse_query(R"(S [ (pointer, "R", ?X) | ^^X ]* (?, ?, ?) -> T)").value();
  dr.oid = ObjectId(1, 5, 1);
  dr.start = 3;
  dr.iter_stack = {1, 2};
  dr.weight = {1};
  ASSERT_TRUE(a->send(1, dr).ok());
  auto env = b->recv(kLong);
  ASSERT_TRUE(env.has_value());
  const auto& got = std::get<wire::DerefRequest>(env->message);
  EXPECT_EQ(got.query, dr.query);
  EXPECT_EQ(got.start, 3u);
  EXPECT_EQ(got.iter_stack, (std::vector<std::uint32_t>{1, 2}));
}

TEST(TcpNetwork, LoopbackDelivery) {
  // Two endpoints on ephemeral localhost ports; addresses exchanged after
  // binding via update_peer (the ephemeral-port bootstrap dance).
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets: " << a.error().to_string();
  auto b = TcpNetwork::create(1, peers);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  a.value()->update_peer(1, {"127.0.0.1", b.value()->bound_port()});
  b.value()->update_peer(0, {"127.0.0.1", a.value()->bound_port()});

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok());
  auto env = b.value()->recv(kLong);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 0u);
  EXPECT_EQ(std::get<wire::QueryDone>(env->message).qid, (wire::QueryId{1, 42}));

  // And the reverse direction.
  ASSERT_TRUE(b.value()->send(0, sample_message()).ok());
  auto env2 = a.value()->recv(kLong);
  ASSERT_TRUE(env2.has_value());
  EXPECT_EQ(env2->src, 1u);

  a.value()->shutdown();
  b.value()->shutdown();
}

TEST(TcpNetwork, SelfSendBypassesSocket) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  ASSERT_TRUE(a.value()->send(0, sample_message()).ok());
  auto env = a.value()->recv(kLong);
  ASSERT_TRUE(env.has_value());
  a.value()->shutdown();
}

TEST(TcpNetwork, SendToDownPeerFails) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", 1}};  // port 1: closed
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  auto r = a.value()->send(1, sample_message());
  EXPECT_FALSE(r.ok());
  a.value()->shutdown();
}

}  // namespace
}  // namespace hyperfile
