#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/channel.hpp"
#include "net/faulty.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"

namespace hyperfile {
namespace {

constexpr Duration kShort{50'000};    // 50ms
constexpr Duration kLong{2'000'000};  // 2s

TEST(Channel, PushPop) {
  Channel<int> ch;
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.try_pop().value(), 1);
  EXPECT_EQ(ch.pop_wait(kShort).value(), 2);
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(Channel, PopWaitTimesOut) {
  Channel<int> ch;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.pop_wait(kShort).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(Channel, CloseUnblocksAndRejectsPush) {
  Channel<int> ch;
  std::thread waiter([&] { EXPECT_FALSE(ch.pop_wait(kLong).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  waiter.join();
  EXPECT_FALSE(ch.push(1));
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, DrainAfterClose) {
  Channel<int> ch;
  ch.push(7);
  ch.close();
  // Items pushed before close remain poppable.
  EXPECT_EQ(ch.pop_wait(kShort).value(), 7);
  EXPECT_FALSE(ch.pop_wait(kShort).has_value());
}

TEST(Channel, ReopenAfterCloseDiscardsBacklog) {
  // Crash-stop semantics (Cluster::restart_site): a rebooted process has an
  // empty socket buffer, so reopen() must both accept new pushes and forget
  // anything queued before the crash.
  Channel<int> ch;
  ch.push(7);
  ch.close();
  EXPECT_FALSE(ch.push(8));
  ch.reopen();
  EXPECT_FALSE(ch.closed());
  EXPECT_FALSE(ch.try_pop().has_value()) << "pre-crash backlog survived";
  EXPECT_TRUE(ch.push(9));
  EXPECT_EQ(ch.pop_wait(kShort).value(), 9);
}

TEST(Channel, ConcurrentProducersConsumers) {
  Channel<int> ch;
  constexpr int kPerProducer = 500;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto v = ch.pop_wait(kLong);
        if (v.has_value()) sum += *v;
      }
    });
  }
  for (auto& t : threads) t.join();
  const int n = 4 * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

wire::Message sample_message() {
  wire::QueryDone qd;
  qd.qid = {1, 42};
  return qd;
}

TEST(InProcNetwork, DeliversBetweenEndpoints) {
  InProcNetwork net(3);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  auto env = b->recv(kLong);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 0u);
  EXPECT_EQ(env->dst, 1u);
  EXPECT_EQ(std::get<wire::QueryDone>(env->message).qid, (wire::QueryId{1, 42}));
}

TEST(InProcNetwork, UnknownDestinationIsError) {
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto r = a->send(9, sample_message());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(InProcNetwork, ShutdownUnblocksReceivers) {
  InProcNetwork net(1);
  auto ep = net.endpoint(0);
  std::thread waiter([&] { EXPECT_FALSE(ep->recv(kLong).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net.shutdown();
  waiter.join();
  // Sends to a closed mailbox fail.
  auto other = net.endpoint(0);
  EXPECT_FALSE(other->send(0, sample_message()).ok());
}

TEST(InProcNetwork, CountsMessagesAndBytes) {
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  auto stats = net.stats();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.done_messages, 2u);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST(InProcNetwork, MessagesSurviveWireRoundTrip) {
  // A full DerefRequest with a real query must arrive intact.
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);
  wire::DerefRequest dr;
  dr.qid = {0, 7};
  dr.query = parse_query(R"(S [ (pointer, "R", ?X) | ^^X ]* (?, ?, ?) -> T)").value();
  dr.oid = ObjectId(1, 5, 1);
  dr.start = 3;
  dr.iter_stack = {1, 2};
  dr.weight = {1};
  ASSERT_TRUE(a->send(1, dr).ok());
  auto env = b->recv(kLong);
  ASSERT_TRUE(env.has_value());
  const auto& got = std::get<wire::DerefRequest>(env->message);
  EXPECT_EQ(got.query, dr.query);
  EXPECT_EQ(got.start, 3u);
  EXPECT_EQ(got.iter_stack, (std::vector<std::uint32_t>{1, 2}));
}

TEST(TcpNetwork, LoopbackDelivery) {
  // Two endpoints on ephemeral localhost ports; addresses exchanged after
  // binding via update_peer (the ephemeral-port bootstrap dance).
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets: " << a.error().to_string();
  auto b = TcpNetwork::create(1, peers);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  a.value()->update_peer(1, {"127.0.0.1", b.value()->bound_port()});
  b.value()->update_peer(0, {"127.0.0.1", a.value()->bound_port()});

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok());
  auto env = b.value()->recv(kLong);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 0u);
  EXPECT_EQ(std::get<wire::QueryDone>(env->message).qid, (wire::QueryId{1, 42}));

  // And the reverse direction.
  ASSERT_TRUE(b.value()->send(0, sample_message()).ok());
  auto env2 = a.value()->recv(kLong);
  ASSERT_TRUE(env2.has_value());
  EXPECT_EQ(env2->src, 1u);

  a.value()->shutdown();
  b.value()->shutdown();
}

TEST(TcpNetwork, SelfSendBypassesSocket) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  ASSERT_TRUE(a.value()->send(0, sample_message()).ok());
  auto env = a.value()->recv(kLong);
  ASSERT_TRUE(env.has_value());
  a.value()->shutdown();
}

TEST(TcpNetwork, SendToDownPeerFails) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", 1}};  // port 1: closed
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  auto r = a.value()->send(1, sample_message());
  EXPECT_FALSE(r.ok());
  a.value()->shutdown();
}

TEST(TcpNetwork, SelfSendAfterShutdownFails) {
  // Regression: the self-delivery path ignored the inbox push result, so a
  // send after shutdown() claimed success for a silently-discarded message.
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  a.value()->shutdown();
  auto r = a.value()->send(0, sample_message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kClosed);
}

TEST(TcpNetwork, DeadPeerRoutePurgedAndFirstResendDelivered) {
  // Regression: when a peer dies, its cached connection must vanish from the
  // routing tables as soon as the reader thread sees EOF. A stale entry made
  // the FIRST send after the peer restarted fail (writing into a dead fd)
  // when reconnecting would have succeeded.
  std::vector<TcpPeer> boot = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  auto b1 = TcpNetwork::create(1, boot);
  if (!b1.ok()) GTEST_SKIP() << "no localhost sockets";
  const std::uint16_t port = b1.value()->bound_port();
  // `a` knows site 1 by a fixed address, so it can reconnect unaided.
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", port}};
  auto a = TcpNetwork::create(0, peers);
  ASSERT_TRUE(a.ok()) << a.error().to_string();

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok());
  ASSERT_TRUE(b1.value()->recv(kLong).has_value());
  EXPECT_TRUE(a.value()->has_route(1));

  b1.value()->shutdown();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.value()->has_route(1)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "dead route never purged";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The peer comes back on the same port; kernel TIME_WAIT can delay the
  // rebind briefly.
  Result<std::unique_ptr<TcpNetwork>> b2 = make_error(Errc::kIo, "unbound");
  for (int attempt = 0; attempt < 50; ++attempt) {
    b2 = TcpNetwork::create(1, peers);
    if (b2.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!b2.ok()) GTEST_SKIP() << "could not rebind port " << port;

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok())
      << "first send after peer restart must reconnect, not hit the dead fd";
  EXPECT_TRUE(b2.value()->recv(kLong).has_value());
  a.value()->shutdown();
  b2.value()->shutdown();
}

// --- FaultInjectingEndpoint -------------------------------------------

TEST(FaultInjection, DropSwallowsFramesSilently) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.drop_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ep.send(1, sample_message()).ok());  // loss is silent
  }
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_EQ(ep.fault_stats().dropped, 5u);
  EXPECT_EQ(ep.fault_stats().forwarded, 0u);
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(FaultInjection, DuplicateDeliversTwice) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.dup_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
  EXPECT_TRUE(b->recv(kLong).has_value());  // the extra copy
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_EQ(ep.fault_stats().duplicated, 1u);
}

TEST(FaultInjection, PartitionSwallowsUntilHealed) {
  InProcNetwork net(2);
  FaultInjectingEndpoint ep(net.endpoint(0), FaultOptions{});
  auto b = net.endpoint(1);
  ep.partition(1);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_EQ(ep.fault_stats().partitioned, 1u);
  ep.heal(1);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
}

TEST(FaultInjection, PartitionAllRespectsExemptLinks) {
  InProcNetwork net(3);
  FaultOptions opts;
  opts.exempt = {2};
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  auto c = net.endpoint(2);
  ep.partition_all();
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(ep.send(2, sample_message()).ok());
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_TRUE(c->recv(kLong).has_value());  // exempt link stays up
  ep.heal_all();
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
}

TEST(FaultInjection, ExemptAndSelfLinksUndisturbed) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.drop_p = 1.0;
  opts.exempt = {1};
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
  // Self-sends are always exempt: the fault model is links, not local
  // delivery.
  ASSERT_TRUE(ep.send(0, sample_message()).ok());
  EXPECT_TRUE(ep.recv(kLong).has_value());
  EXPECT_EQ(ep.fault_stats().dropped, 0u);
}

TEST(FaultInjection, HeldFramesReleasedByFlush) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.delay_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_EQ(ep.fault_stats().held, 1u);
  EXPECT_FALSE(b->recv(kShort).has_value());  // still held
  ep.flush_held();
  EXPECT_TRUE(b->recv(kLong).has_value());
}

TEST(FaultInjection, HeldFramesReleasedByRecvTicks) {
  // Delay/reorder never lose messages: endpoint activity (here recv calls,
  // as a polling event loop makes) ticks the clock and releases held frames.
  InProcNetwork net(2);
  FaultOptions opts;
  opts.delay_p = 1.0;
  opts.max_hold_ticks = 3;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  bool delivered = false;
  for (int tick = 0; tick < 10 && !delivered; ++tick) {
    (void)ep.recv(Duration(1'000));
    delivered = b->recv(kShort).has_value();
  }
  EXPECT_TRUE(delivered);
}

TEST(FaultInjection, CrashFailsLoudlyWherePartitionStaysSilent) {
  // The semantic gap the two primitives model (net/faulty.hpp): a partition
  // makes the wire lie — send() succeeds and the frame vanishes. A crash
  // makes the OS tell the truth — send() fails with kClosed immediately,
  // the way a dead TCP fd does. Protocol code reacts differently (retry vs
  // repay), so the injector must keep them distinct.
  InProcNetwork net(3);
  FaultInjectingEndpoint ep(net.endpoint(0), FaultOptions{});
  auto b = net.endpoint(1);
  auto c = net.endpoint(2);

  ep.partition(1);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());  // the lie
  EXPECT_EQ(ep.fault_stats().partitioned, 1u);

  ep.crash(2);
  auto r = ep.send(2, sample_message());
  ASSERT_FALSE(r.ok());  // the truth
  EXPECT_EQ(r.error().code, Errc::kClosed);
  EXPECT_EQ(ep.fault_stats().crashed, 1u);
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_FALSE(c->recv(kShort).has_value());

  ep.heal(1);
  ep.revive(2);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(ep.send(2, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
  EXPECT_TRUE(c->recv(kLong).has_value());
}

TEST(FaultInjection, CrashOutranksExemption) {
  // exempt links skip drops/partitions (they model a reliable channel), but
  // a dead process is dead on every link — crash wins.
  InProcNetwork net(2);
  FaultOptions opts;
  opts.drop_p = 1.0;
  opts.exempt = {1};
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  ep.crash(1);
  auto r = ep.send(1, sample_message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kClosed);
}

TEST(FaultInjection, CrashDropsHeldFramesExactly) {
  // Frames already held for delay/reorder when the peer crashes would have
  // arrived *after* the crash — they must be dropped (and counted, so the
  // conservation law `held == released + crash_dropped` stays exact).
  InProcNetwork net(3);
  FaultOptions opts;
  opts.delay_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  auto c = net.endpoint(2);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  ASSERT_TRUE(ep.send(2, sample_message()).ok());
  EXPECT_EQ(ep.fault_stats().held, 2u);

  ep.crash(1);
  ep.flush_held();
  const FaultStats s = ep.fault_stats();
  EXPECT_EQ(s.crash_dropped, 1u);  // the frame bound for the dead peer
  EXPECT_EQ(s.released, 1u);       // the other one still arrives
  EXPECT_EQ(s.held, s.released + s.crash_dropped);
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_TRUE(c->recv(kLong).has_value());

  // Revival does not resurrect them: a rebooted process has an empty
  // socket buffer.
  ep.revive(1);
  ep.flush_held();
  EXPECT_FALSE(b->recv(kShort).has_value());
}

TEST(FaultInjection, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    InProcNetwork net(2);
    FaultOptions opts;
    opts.drop_p = 0.5;
    opts.seed = seed;
    FaultInjectingEndpoint ep(net.endpoint(0), opts);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(ep.send(1, sample_message()).ok());
    }
    return ep.fault_stats();
  };
  const FaultStats x = run(42);
  const FaultStats y = run(42);
  EXPECT_EQ(x.dropped, y.dropped);
  EXPECT_EQ(x.forwarded, y.forwarded);
  EXPECT_GT(x.dropped, 0u);
  EXPECT_GT(x.forwarded, 0u);
}

}  // namespace
}  // namespace hyperfile
