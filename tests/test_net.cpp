#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/metrics.hpp"
#include "net/channel.hpp"
#include "net/epoll.hpp"
#include "net/faulty.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "query/parser.hpp"

namespace hyperfile {
namespace {

constexpr Duration kShort{50'000};    // 50ms
constexpr Duration kLong{2'000'000};  // 2s

TEST(Channel, PushPop) {
  Channel<int> ch;
  EXPECT_TRUE(ch.push(1));
  EXPECT_TRUE(ch.push(2));
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.try_pop().value(), 1);
  EXPECT_EQ(ch.pop_wait(kShort).value(), 2);
  EXPECT_FALSE(ch.try_pop().has_value());
}

TEST(Channel, PopWaitTimesOut) {
  Channel<int> ch;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.pop_wait(kShort).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
}

TEST(Channel, CloseUnblocksAndRejectsPush) {
  Channel<int> ch;
  std::thread waiter([&] { EXPECT_FALSE(ch.pop_wait(kLong).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ch.close();
  waiter.join();
  EXPECT_FALSE(ch.push(1));
  EXPECT_TRUE(ch.closed());
}

TEST(Channel, DrainAfterClose) {
  Channel<int> ch;
  ch.push(7);
  ch.close();
  // Items pushed before close remain poppable.
  EXPECT_EQ(ch.pop_wait(kShort).value(), 7);
  EXPECT_FALSE(ch.pop_wait(kShort).has_value());
}

TEST(Channel, ReopenAfterCloseDiscardsBacklog) {
  // Crash-stop semantics (Cluster::restart_site): a rebooted process has an
  // empty socket buffer, so reopen() must both accept new pushes and forget
  // anything queued before the crash.
  Channel<int> ch;
  ch.push(7);
  ch.close();
  EXPECT_FALSE(ch.push(8));
  ch.reopen();
  EXPECT_FALSE(ch.closed());
  EXPECT_FALSE(ch.try_pop().has_value()) << "pre-crash backlog survived";
  EXPECT_TRUE(ch.push(9));
  EXPECT_EQ(ch.pop_wait(kShort).value(), 9);
}

TEST(Channel, ConcurrentProducersConsumers) {
  Channel<int> ch;
  constexpr int kPerProducer = 500;
  std::atomic<int> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        auto v = ch.pop_wait(kLong);
        if (v.has_value()) sum += *v;
      }
    });
  }
  for (auto& t : threads) t.join();
  const int n = 4 * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

wire::Message sample_message() {
  wire::QueryDone qd;
  qd.qid = {1, 42};
  return qd;
}

TEST(InProcNetwork, DeliversBetweenEndpoints) {
  InProcNetwork net(3);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  auto env = b->recv(kLong);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 0u);
  EXPECT_EQ(env->dst, 1u);
  EXPECT_EQ(std::get<wire::QueryDone>(env->message).qid, (wire::QueryId{1, 42}));
}

TEST(InProcNetwork, UnknownDestinationIsError) {
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto r = a->send(9, sample_message());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(InProcNetwork, ShutdownUnblocksReceivers) {
  InProcNetwork net(1);
  auto ep = net.endpoint(0);
  std::thread waiter([&] { EXPECT_FALSE(ep->recv(kLong).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net.shutdown();
  waiter.join();
  // Sends to a closed mailbox fail.
  auto other = net.endpoint(0);
  EXPECT_FALSE(other->send(0, sample_message()).ok());
}

TEST(InProcNetwork, CountsMessagesAndBytes) {
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  ASSERT_TRUE(a->send(1, sample_message()).ok());
  auto stats = net.stats();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_EQ(stats.done_messages, 2u);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST(InProcNetwork, MessagesSurviveWireRoundTrip) {
  // A full DerefRequest with a real query must arrive intact.
  InProcNetwork net(2);
  auto a = net.endpoint(0);
  auto b = net.endpoint(1);
  wire::DerefRequest dr;
  dr.qid = {0, 7};
  dr.query = parse_query(R"(S [ (pointer, "R", ?X) | ^^X ]* (?, ?, ?) -> T)").value();
  dr.oid = ObjectId(1, 5, 1);
  dr.start = 3;
  dr.iter_stack = {1, 2};
  dr.weight = {1};
  ASSERT_TRUE(a->send(1, dr).ok());
  auto env = b->recv(kLong);
  ASSERT_TRUE(env.has_value());
  const auto& got = std::get<wire::DerefRequest>(env->message);
  EXPECT_EQ(got.query, dr.query);
  EXPECT_EQ(got.start, 3u);
  EXPECT_EQ(got.iter_stack, (std::vector<std::uint32_t>{1, 2}));
}

TEST(TcpNetwork, LoopbackDelivery) {
  // Two endpoints on ephemeral localhost ports; addresses exchanged after
  // binding via update_peer (the ephemeral-port bootstrap dance).
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets: " << a.error().to_string();
  auto b = TcpNetwork::create(1, peers);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  a.value()->update_peer(1, {"127.0.0.1", b.value()->bound_port()});
  b.value()->update_peer(0, {"127.0.0.1", a.value()->bound_port()});

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok());
  auto env = b.value()->recv(kLong);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 0u);
  EXPECT_EQ(std::get<wire::QueryDone>(env->message).qid, (wire::QueryId{1, 42}));

  // And the reverse direction.
  ASSERT_TRUE(b.value()->send(0, sample_message()).ok());
  auto env2 = a.value()->recv(kLong);
  ASSERT_TRUE(env2.has_value());
  EXPECT_EQ(env2->src, 1u);

  a.value()->shutdown();
  b.value()->shutdown();
}

TEST(TcpNetwork, SelfSendBypassesSocket) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  ASSERT_TRUE(a.value()->send(0, sample_message()).ok());
  auto env = a.value()->recv(kLong);
  ASSERT_TRUE(env.has_value());
  a.value()->shutdown();
}

TEST(TcpNetwork, SendToDownPeerFails) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", 1}};  // port 1: closed
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  auto r = a.value()->send(1, sample_message());
  EXPECT_FALSE(r.ok());
  a.value()->shutdown();
}

TEST(TcpNetwork, SelfSendAfterShutdownFails) {
  // Regression: the self-delivery path ignored the inbox push result, so a
  // send after shutdown() claimed success for a silently-discarded message.
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  a.value()->shutdown();
  auto r = a.value()->send(0, sample_message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kClosed);
}

TEST(TcpNetwork, DeadPeerRoutePurgedAndFirstResendDelivered) {
  // Regression: when a peer dies, its cached connection must vanish from the
  // routing tables as soon as the reader thread sees EOF. A stale entry made
  // the FIRST send after the peer restarted fail (writing into a dead fd)
  // when reconnecting would have succeeded.
  std::vector<TcpPeer> boot = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  auto b1 = TcpNetwork::create(1, boot);
  if (!b1.ok()) GTEST_SKIP() << "no localhost sockets";
  const std::uint16_t port = b1.value()->bound_port();
  // `a` knows site 1 by a fixed address, so it can reconnect unaided.
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", port}};
  auto a = TcpNetwork::create(0, peers);
  ASSERT_TRUE(a.ok()) << a.error().to_string();

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok());
  ASSERT_TRUE(b1.value()->recv(kLong).has_value());
  EXPECT_TRUE(a.value()->has_route(1));

  b1.value()->shutdown();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (a.value()->has_route(1)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "dead route never purged";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The peer comes back on the same port; kernel TIME_WAIT can delay the
  // rebind briefly.
  Result<std::unique_ptr<TcpNetwork>> b2 = make_error(Errc::kIo, "unbound");
  for (int attempt = 0; attempt < 50; ++attempt) {
    b2 = TcpNetwork::create(1, peers);
    if (b2.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!b2.ok()) GTEST_SKIP() << "could not rebind port " << port;

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok())
      << "first send after peer restart must reconnect, not hit the dead fd";
  EXPECT_TRUE(b2.value()->recv(kLong).has_value());
  a.value()->shutdown();
  b2.value()->shutdown();
}

// --- FaultInjectingEndpoint -------------------------------------------

TEST(FaultInjection, DropSwallowsFramesSilently) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.drop_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ep.send(1, sample_message()).ok());  // loss is silent
  }
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_EQ(ep.fault_stats().dropped, 5u);
  EXPECT_EQ(ep.fault_stats().forwarded, 0u);
  EXPECT_EQ(net.stats().messages_sent, 0u);
}

TEST(FaultInjection, DuplicateDeliversTwice) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.dup_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
  EXPECT_TRUE(b->recv(kLong).has_value());  // the extra copy
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_EQ(ep.fault_stats().duplicated, 1u);
}

TEST(FaultInjection, PartitionSwallowsUntilHealed) {
  InProcNetwork net(2);
  FaultInjectingEndpoint ep(net.endpoint(0), FaultOptions{});
  auto b = net.endpoint(1);
  ep.partition(1);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_EQ(ep.fault_stats().partitioned, 1u);
  ep.heal(1);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
}

TEST(FaultInjection, PartitionAllRespectsExemptLinks) {
  InProcNetwork net(3);
  FaultOptions opts;
  opts.exempt = {2};
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  auto c = net.endpoint(2);
  ep.partition_all();
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(ep.send(2, sample_message()).ok());
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_TRUE(c->recv(kLong).has_value());  // exempt link stays up
  ep.heal_all();
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
}

TEST(FaultInjection, ExemptAndSelfLinksUndisturbed) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.drop_p = 1.0;
  opts.exempt = {1};
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
  // Self-sends are always exempt: the fault model is links, not local
  // delivery.
  ASSERT_TRUE(ep.send(0, sample_message()).ok());
  EXPECT_TRUE(ep.recv(kLong).has_value());
  EXPECT_EQ(ep.fault_stats().dropped, 0u);
}

TEST(FaultInjection, HeldFramesReleasedByFlush) {
  InProcNetwork net(2);
  FaultOptions opts;
  opts.delay_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_EQ(ep.fault_stats().held, 1u);
  EXPECT_FALSE(b->recv(kShort).has_value());  // still held
  ep.flush_held();
  EXPECT_TRUE(b->recv(kLong).has_value());
}

TEST(FaultInjection, HeldFramesReleasedByRecvTicks) {
  // Delay/reorder never lose messages: endpoint activity (here recv calls,
  // as a polling event loop makes) ticks the clock and releases held frames.
  InProcNetwork net(2);
  FaultOptions opts;
  opts.delay_p = 1.0;
  opts.max_hold_ticks = 3;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  bool delivered = false;
  for (int tick = 0; tick < 10 && !delivered; ++tick) {
    (void)ep.recv(Duration(1'000));
    delivered = b->recv(kShort).has_value();
  }
  EXPECT_TRUE(delivered);
}

TEST(FaultInjection, CrashFailsLoudlyWherePartitionStaysSilent) {
  // The semantic gap the two primitives model (net/faulty.hpp): a partition
  // makes the wire lie — send() succeeds and the frame vanishes. A crash
  // makes the OS tell the truth — send() fails with kClosed immediately,
  // the way a dead TCP fd does. Protocol code reacts differently (retry vs
  // repay), so the injector must keep them distinct.
  InProcNetwork net(3);
  FaultInjectingEndpoint ep(net.endpoint(0), FaultOptions{});
  auto b = net.endpoint(1);
  auto c = net.endpoint(2);

  ep.partition(1);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());  // the lie
  EXPECT_EQ(ep.fault_stats().partitioned, 1u);

  ep.crash(2);
  auto r = ep.send(2, sample_message());
  ASSERT_FALSE(r.ok());  // the truth
  EXPECT_EQ(r.error().code, Errc::kClosed);
  EXPECT_EQ(ep.fault_stats().crashed, 1u);
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_FALSE(c->recv(kShort).has_value());

  ep.heal(1);
  ep.revive(2);
  EXPECT_TRUE(ep.send(1, sample_message()).ok());
  EXPECT_TRUE(ep.send(2, sample_message()).ok());
  EXPECT_TRUE(b->recv(kLong).has_value());
  EXPECT_TRUE(c->recv(kLong).has_value());
}

TEST(FaultInjection, CrashOutranksExemption) {
  // exempt links skip drops/partitions (they model a reliable channel), but
  // a dead process is dead on every link — crash wins.
  InProcNetwork net(2);
  FaultOptions opts;
  opts.drop_p = 1.0;
  opts.exempt = {1};
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  ep.crash(1);
  auto r = ep.send(1, sample_message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kClosed);
}

TEST(FaultInjection, CrashDropsHeldFramesExactly) {
  // Frames already held for delay/reorder when the peer crashes would have
  // arrived *after* the crash — they must be dropped (and counted, so the
  // conservation law `held == released + crash_dropped` stays exact).
  InProcNetwork net(3);
  FaultOptions opts;
  opts.delay_p = 1.0;
  FaultInjectingEndpoint ep(net.endpoint(0), opts);
  auto b = net.endpoint(1);
  auto c = net.endpoint(2);
  ASSERT_TRUE(ep.send(1, sample_message()).ok());
  ASSERT_TRUE(ep.send(2, sample_message()).ok());
  EXPECT_EQ(ep.fault_stats().held, 2u);

  ep.crash(1);
  ep.flush_held();
  const FaultStats s = ep.fault_stats();
  EXPECT_EQ(s.crash_dropped, 1u);  // the frame bound for the dead peer
  EXPECT_EQ(s.released, 1u);       // the other one still arrives
  EXPECT_EQ(s.held, s.released + s.crash_dropped);
  EXPECT_FALSE(b->recv(kShort).has_value());
  EXPECT_TRUE(c->recv(kLong).has_value());

  // Revival does not resurrect them: a rebooted process has an empty
  // socket buffer.
  ep.revive(1);
  ep.flush_held();
  EXPECT_FALSE(b->recv(kShort).has_value());
}

// --- SocketTransport: both TCP backends behind one interface -----------

/// A message big enough to stress socket buffers: ~3 bytes of varint per
/// iter_stack entry.
wire::Message big_message(std::size_t entries) {
  wire::DerefRequest dr;
  dr.qid = {0, 9};
  dr.oid = ObjectId(1, 1, 1);
  dr.iter_stack.assign(entries, 1'000'000);
  dr.weight = {1};
  return dr;
}

/// Raw localhost listener for driving a transport from outside: bind an
/// ephemeral port, optionally with a tiny receive buffer so the peer's
/// kernel window fills fast.
struct RawListener {
  int fd = -1;
  std::uint16_t port = 0;

  bool open(int rcvbuf = 0, int backlog = 16) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (rcvbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(fd, backlog) < 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    port = ntohs(bound.sin_port);
    return true;
  }

  int accept_one() const { return ::accept(fd, nullptr, nullptr); }

  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
};

/// Raw localhost client socket: speaks the wire framing by hand to poke at
/// a transport's inbound frame handling.
struct RawClient {
  int fd = -1;

  bool connect_to(std::uint16_t port) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd);
      fd = -1;
      return false;
    }
    return true;
  }

  bool write_frame(const wire::Bytes& body) const {
    std::uint8_t len[4] = {
        static_cast<std::uint8_t>(body.size() >> 24),
        static_cast<std::uint8_t>(body.size() >> 16),
        static_cast<std::uint8_t>(body.size() >> 8),
        static_cast<std::uint8_t>(body.size()),
    };
    return ::send(fd, len, 4, MSG_NOSIGNAL) == 4 &&
           (body.empty() ||
            ::send(fd, body.data(), body.size(), MSG_NOSIGNAL) ==
                static_cast<ssize_t>(body.size()));
  }

  ~RawClient() {
    if (fd >= 0) ::close(fd);
  }
};

class SocketTransportSuite : public ::testing::TestWithParam<TcpBackend> {};

TEST_P(SocketTransportSuite, LoopbackDeliveryBothDirections) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", 0}};
  auto a = make_socket_transport(GetParam(), 0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets: " << a.error().to_string();
  auto b = make_socket_transport(GetParam(), 1, peers);
  ASSERT_TRUE(b.ok()) << b.error().to_string();
  a.value()->update_peer(1, {"127.0.0.1", b.value()->bound_port()});
  b.value()->update_peer(0, {"127.0.0.1", a.value()->bound_port()});

  ASSERT_TRUE(a.value()->send(1, sample_message()).ok());
  auto env = b.value()->recv(kLong);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->src, 0u);
  EXPECT_EQ(std::get<wire::QueryDone>(env->message).qid,
            (wire::QueryId{1, 42}));

  ASSERT_TRUE(b.value()->send(0, sample_message()).ok());
  auto env2 = a.value()->recv(kLong);
  ASSERT_TRUE(env2.has_value());
  EXPECT_EQ(env2->src, 1u);

  a.value()->shutdown();
  b.value()->shutdown();
}

TEST_P(SocketTransportSuite, LearnedRouteRepliesToEphemeralClient) {
  // A client outside the server's static table (the hfq convention): the
  // server must answer over the connection the request arrived on.
  std::vector<TcpPeer> server_peers = {{"127.0.0.1", 0}};
  auto server = make_socket_transport(GetParam(), 0, server_peers);
  if (!server.ok()) GTEST_SKIP() << "no localhost sockets";
  std::vector<TcpPeer> client_peers = {
      {"127.0.0.1", server.value()->bound_port()}};
  auto client = make_socket_transport(GetParam(), 7, client_peers);
  ASSERT_TRUE(client.ok()) << client.error().to_string();

  ASSERT_TRUE(client.value()->send(0, sample_message()).ok());
  auto req = server.value()->recv(kLong);
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->src, 7u);
  EXPECT_TRUE(server.value()->has_route(7));

  ASSERT_TRUE(server.value()->send(7, sample_message()).ok());
  auto reply = client.value()->recv(kLong);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->src, 0u);

  client.value()->shutdown();
  server.value()->shutdown();
}

TEST_P(SocketTransportSuite, SelfSendAndShutdownSemantics) {
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = make_socket_transport(GetParam(), 0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  ASSERT_TRUE(a.value()->send(0, sample_message()).ok());
  EXPECT_TRUE(a.value()->recv(kLong).has_value());
  EXPECT_FALSE(a.value()->send(9, sample_message()).ok());  // unknown site
  a.value()->shutdown();
  auto r = a.value()->send(0, sample_message());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kClosed);
}

TEST_P(SocketTransportSuite, UndecodableFrameDroppedConnectionSurvives) {
  // A garbage body behind an honest length prefix must cost exactly that
  // frame — counted and logged, not the whole connection (frames behind it
  // still arrive).
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = make_socket_transport(GetParam(), 0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  const std::string metric = GetParam() == TcpBackend::kEpoll
                                 ? "net.epoll.frame_drops"
                                 : "net.tcp.frame_drops";
  const std::uint64_t drops_before = metrics().counter(metric).value();

  RawClient raw;
  ASSERT_TRUE(raw.connect_to(a.value()->bound_port()));
  ASSERT_TRUE(raw.write_frame(wire::Bytes{0xFF, 0xFF, 0xFF, 0xFF, 0xFF}));
  ASSERT_TRUE(raw.write_frame(wire::encode_envelope(
      wire::Envelope{7, 0, sample_message()})));

  auto env = a.value()->recv(kLong);
  ASSERT_TRUE(env.has_value()) << "valid frame behind the garbage was lost";
  EXPECT_EQ(env->src, 7u);
  EXPECT_EQ(metrics().counter(metric).value(), drops_before + 1);
  a.value()->shutdown();
}

TEST_P(SocketTransportSuite, OversizedFrameKillsConnectionLoudly) {
  // A length prefix past the 64 MiB cap has no resync point: the frame is
  // counted and the connection dies, before any giant allocation.
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}};
  auto a = make_socket_transport(GetParam(), 0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";
  const std::string metric = GetParam() == TcpBackend::kEpoll
                                 ? "net.epoll.frame_drops"
                                 : "net.tcp.frame_drops";
  const std::uint64_t drops_before = metrics().counter(metric).value();

  RawClient raw;
  ASSERT_TRUE(raw.connect_to(a.value()->bound_port()));
  const std::uint8_t huge[4] = {0x40, 0x00, 0x00, 0x01};  // 1 GiB and change
  ASSERT_EQ(::send(raw.fd, huge, 4, MSG_NOSIGNAL), 4);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (metrics().counter(metric).value() == drops_before) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "oversized frame never counted";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Frames sent after the poison prefix must NOT be delivered: the stream
  // is unrecoverable and the transport must have abandoned it.
  (void)raw.write_frame(
      wire::encode_envelope(wire::Envelope{7, 0, sample_message()}));
  EXPECT_FALSE(a.value()->recv(kShort).has_value());
  a.value()->shutdown();
}

INSTANTIATE_TEST_SUITE_P(Backends, SocketTransportSuite,
                         ::testing::Values(TcpBackend::kThreaded,
                                           TcpBackend::kEpoll),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// --- EpollNetwork: backpressure contract --------------------------------

TEST(EpollNetwork, FullQueueRejectsBusyAndDrainReopens) {
  // The bounded send queue is the backpressure contract: a peer that stops
  // reading makes send() fail fast with kBusy (counted), and draining the
  // peer reopens the lane — nothing blocks, nothing is silently dropped.
  RawListener sink;
  if (!sink.open(/*rcvbuf=*/4096)) GTEST_SKIP() << "no localhost sockets";
  EpollOptions opts;
  opts.max_queue_frames = 4;
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", sink.port}};
  auto a = EpollNetwork::create(0, peers, opts);
  ASSERT_TRUE(a.ok()) << a.error().to_string();
  const std::uint64_t busy_before =
      metrics().counter("net.epoll.busy_rejects").value();

  // ~900 KiB frames overwhelm the kernel buffers long before the attempt
  // cap; after that the 4-frame queue fills and kBusy surfaces.
  bool saw_busy = false;
  for (int i = 0; i < 200 && !saw_busy; ++i) {
    auto r = a.value()->send(1, big_message(300'000));
    if (!r.ok()) {
      ASSERT_EQ(r.error().code, Errc::kBusy) << r.error().to_string();
      saw_busy = true;
    }
  }
  ASSERT_TRUE(saw_busy) << "queue bound never enforced";
  EXPECT_GT(metrics().counter("net.epoll.busy_rejects").value(), busy_before);

  // Drain the peer; a retry loop (what send_with_retry does on kBusy) must
  // get through once the loop flushes the backlog.
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    const int conn = sink.accept_one();
    if (conn < 0) return;
    char buf[64 * 1024];
    while (!stop.load() && ::recv(conn, buf, sizeof buf, 0) > 0) {
    }
    ::close(conn);
  });
  bool delivered = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (!delivered && std::chrono::steady_clock::now() < deadline) {
    auto r = a.value()->send(1, sample_message());
    if (r.ok()) {
      delivered = true;
    } else {
      ASSERT_EQ(r.error().code, Errc::kBusy) << r.error().to_string();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(delivered) << "retry never drained through";
  a.value()->shutdown();
  stop.store(true);
  drainer.join();
}

TEST(EpollNetwork, DeadPeerTombstoneFailsNextSendLoudly) {
  // Asynchronous failure surfaces at the protocol's retry boundary: queued
  // frames on a refused connection are dropped (counted), the next send
  // fails kIo, and the one after reconnects (here: to a revived listener).
  RawListener closed_probe;
  ASSERT_TRUE(closed_probe.open());
  const std::uint16_t dead_port = closed_probe.port;
  ::close(closed_probe.fd);
  closed_probe.fd = -1;  // now nobody listens on dead_port

  std::vector<TcpPeer> peers = {{"127.0.0.1", 0}, {"127.0.0.1", dead_port}};
  auto a = EpollNetwork::create(0, peers);
  if (!a.ok()) GTEST_SKIP() << "no localhost sockets";

  // The first send usually enqueues against the in-flight connect and
  // "succeeds"; the refusal then lands on the loop asynchronously and the
  // tombstone makes a later send fail kIo. (A kernel that refuses the
  // connect synchronously surfaces kIo on the spot — equally loud.)
  bool saw_io = false;
  for (int i = 0; i < 500 && !saw_io; ++i) {
    auto r = a.value()->send(1, sample_message());
    if (!r.ok()) {
      EXPECT_EQ(r.error().code, Errc::kIo) << r.error().to_string();
      saw_io = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(saw_io) << "connection failure never surfaced to a sender";
  a.value()->shutdown();
}

// --- TcpNetwork regressions: the three bugs the epoll work surfaced ----

TEST(TcpNetwork, SlowPeerDoesNotBlockSendsToOtherPeers) {
  // Head-of-line blocking regression: a global send lock held across the
  // socket write serialized ALL peers behind the slowest one. With
  // per-connection locks, a send to a healthy peer completes while another
  // thread is wedged writing to a peer that never reads.
  RawListener slow;
  if (!slow.open(/*rcvbuf=*/4096)) GTEST_SKIP() << "no localhost sockets";
  std::vector<TcpPeer> boot = {{"127.0.0.1", 0}, {"127.0.0.1", slow.port},
                               {"127.0.0.1", 0}};
  auto fast = TcpNetwork::create(2, boot);
  ASSERT_TRUE(fast.ok()) << fast.error().to_string();
  std::vector<TcpPeer> peers = {{"127.0.0.1", 0},
                                {"127.0.0.1", slow.port},
                                {"127.0.0.1", fast.value()->bound_port()}};
  auto a = TcpNetwork::create(0, peers);
  ASSERT_TRUE(a.ok()) << a.error().to_string();

  // Accept the slow connection but never read from it.
  std::atomic<int> slow_conn{-1};
  std::atomic<bool> wedged{false};
  std::thread wedger([&] {
    // Big frames fill the tiny receive window plus the local send buffer,
    // then write_all() blocks — the "slow peer" in its steady state.
    for (int i = 0; i < 200; ++i) {
      wedged.store(true);
      if (!a.value()->send(1, big_message(300'000)).ok()) break;
    }
  });
  std::thread acceptor([&] { slow_conn.store(slow.accept_one()); });

  // Give the wedger time to actually jam against the full buffers.
  while (!wedged.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(a.value()->send(2, sample_message()).ok());
  auto env = fast.value()->recv(kLong);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(env.has_value())
      << "send to healthy peer starved behind the wedged one";
  EXPECT_LT(elapsed, std::chrono::seconds(2));

  // Unwedge: kill the slow socket so the blocked write errors out.
  a.value()->shutdown();
  acceptor.join();
  if (slow_conn.load() >= 0) ::close(slow_conn.load());
  wedger.join();
  fast.value()->shutdown();
}

TEST(TcpNetwork, BlockedConnectDoesNotFreezeRouting) {
  // Lock-held-connect regression: ::connect used to run inside conn_mu_, so
  // one unresponsive peer froze has_route() — the liveness probe — and route
  // learning for the whole connect timeout.
  //
  // Tarpit: a backlog-1 listener whose accept queue we fill and never drain.
  // The kernel then drops further SYNs, so connects to it sit in SYN_SENT
  // until SO_SNDTIMEO (3s) fires — a local, routable stand-in for a
  // blackholed peer.
  const int tarpit = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(tarpit, 0);
  sockaddr_in tp_addr{};
  tp_addr.sin_family = AF_INET;
  tp_addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &tp_addr.sin_addr);
  ASSERT_EQ(::bind(tarpit, reinterpret_cast<sockaddr*>(&tp_addr),
                   sizeof tp_addr),
            0);
  ASSERT_EQ(::listen(tarpit, 1), 0);
  socklen_t tp_len = sizeof tp_addr;
  ASSERT_EQ(::getsockname(tarpit, reinterpret_cast<sockaddr*>(&tp_addr),
                          &tp_len),
            0);
  const std::uint16_t tarpit_port = ntohs(tp_addr.sin_port);
  std::vector<int> fillers;
  for (int i = 0; i < 4; ++i) {
    const int f = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(f, 0);
    (void)::connect(f, reinterpret_cast<sockaddr*>(&tp_addr), sizeof tp_addr);
    fillers.push_back(f);
  }
  const auto close_tarpit = [&] {
    for (int f : fillers) ::close(f);
    ::close(tarpit);
  };
  {
    // Probe: a fresh connect must still be pending after a beat, or this
    // kernel config (e.g. tcp_abort_on_overflow) can't wedge a connect.
    const int probe = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    ASSERT_GE(probe, 0);
    const int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&tp_addr),
                             sizeof tp_addr);
    bool still_pending = rc < 0 && errno == EINPROGRESS;
    if (still_pending) {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      int err = 0;
      socklen_t len = sizeof err;
      ::getsockopt(probe, SOL_SOCKET, SO_ERROR, &err, &len);
      char c;
      still_pending = err == 0 && ::recv(probe, &c, 1, MSG_DONTWAIT) < 0 &&
                      (errno == EAGAIN || errno == EWOULDBLOCK ||
                       errno == ENOTCONN);
    }
    ::close(probe);
    if (!still_pending) {
      close_tarpit();
      GTEST_SKIP() << "full accept queue does not wedge connects here";
    }
  }

  std::vector<TcpPeer> peers = {{"127.0.0.1", 0},
                                {"127.0.0.1", tarpit_port},
                                {"127.0.0.1", 0}};
  auto a = TcpNetwork::create(0, peers);
  if (!a.ok()) {
    close_tarpit();
    GTEST_SKIP() << "no localhost sockets";
  }

  std::atomic<bool> started{false};
  std::thread dialer([&] {
    started.store(true);
    // Blocks in connect() for the SO_SNDTIMEO bound (3s), then fails.
    EXPECT_FALSE(a.value()->send(1, sample_message()).ok());
  });
  while (!started.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // While the dialer is wedged inside connect(), the routing surface must
  // answer immediately: pre-fix, these blocked on conn_mu_ for seconds.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(a.value()->has_route(1));
  ASSERT_TRUE(a.value()->send(0, sample_message()).ok());  // self route
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds(500))
      << "routing froze behind a blocked connect";

  dialer.join();
  a.value()->shutdown();
  close_tarpit();
}

TEST(TcpNetwork, ConnectionChurnDoesNotLeakReadersOrFds) {
  // Fd/thread-leak regression: readers_ and their fds only shrank at
  // shutdown, so a server outlived by N short-lived clients accumulated N
  // parked threads and N open fds. Reaping keeps both proportional to LIVE
  // connections.
  std::vector<TcpPeer> server_peers = {{"127.0.0.1", 0}};
  auto server = TcpNetwork::create(0, server_peers);
  if (!server.ok()) GTEST_SKIP() << "no localhost sockets";
  const std::uint16_t port = server.value()->bound_port();

  const auto count_fds = [] {
    int n = 0;
    // /proc/self/fd is Linux-standard; if unavailable the count stays 0 on
    // both samples and the delta assertion is vacuous (still valid).
    if (DIR* d = opendir("/proc/self/fd")) {
      while (readdir(d) != nullptr) ++n;
      closedir(d);
    }
    return n;
  };

  // Warm up one cycle so lazily-created fds (epoll instances, log files)
  // don't pollute the baseline.
  for (int i = 0; i < 2; ++i) {
    std::vector<TcpPeer> client_peers = {{"127.0.0.1", port}};
    auto client = TcpNetwork::create(100 + i, client_peers);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()->send(0, sample_message()).ok());
    ASSERT_TRUE(server.value()->recv(kLong).has_value());
    client.value()->shutdown();
  }
  const int fds_before = count_fds();

  constexpr int kCycles = 30;
  for (int i = 0; i < kCycles; ++i) {
    std::vector<TcpPeer> client_peers = {{"127.0.0.1", port}};
    auto client = TcpNetwork::create(200 + i, client_peers);
    ASSERT_TRUE(client.ok()) << client.error().to_string();
    ASSERT_TRUE(client.value()->send(0, sample_message()).ok());
    ASSERT_TRUE(server.value()->recv(kLong).has_value());
    client.value()->shutdown();
  }
  // Readers notice the EOFs on their own schedule; reap until quiesced.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.value()->live_readers() > 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "exited readers never reaped: " << server.value()->live_readers()
        << " still live after " << kCycles << " disconnects";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const int fds_after = count_fds();
  EXPECT_LE(fds_after, fds_before + 4)
      << "fd count grew with lifetime connections, not live ones";
  server.value()->shutdown();
}

TEST(TcpNetwork, FailedSendOnLearnedRouteFreesTheReader) {
  // The learned-route half of the leak: a failed send to a site known only
  // by a learned route used to erase the map entry but never shut the fd
  // down, leaving that reader parked on a dead socket forever.
  std::vector<TcpPeer> server_peers = {{"127.0.0.1", 0}};
  auto server = TcpNetwork::create(0, server_peers);
  if (!server.ok()) GTEST_SKIP() << "no localhost sockets";

  {
    std::vector<TcpPeer> client_peers = {{"127.0.0.1",
                                          server.value()->bound_port()}};
    auto client = TcpNetwork::create(7, client_peers);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()->send(0, sample_message()).ok());
    ASSERT_TRUE(server.value()->recv(kLong).has_value());
    EXPECT_TRUE(server.value()->has_route(7));
    client.value()->shutdown();
  }

  // The client is gone. Replies eventually fail (the first may land in the
  // kernel buffer before the RST comes back); the failure must tear the
  // learned route AND its reader down.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (server.value()->has_route(7)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "learned route to a dead client never died";
    (void)server.value()->send(7, sample_message());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  while (server.value()->live_readers() > 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "reader for the dead learned route never reaped";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.value()->shutdown();
}

TEST(FaultInjection, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    InProcNetwork net(2);
    FaultOptions opts;
    opts.drop_p = 0.5;
    opts.seed = seed;
    FaultInjectingEndpoint ep(net.endpoint(0), opts);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(ep.send(1, sample_message()).ok());
    }
    return ep.fault_stats();
  };
  const FaultStats x = run(42);
  const FaultStats y = run(42);
  EXPECT_EQ(x.dropped, y.dropped);
  EXPECT_EQ(x.forwarded, y.forwarded);
  EXPECT_GT(x.dropped, 0u);
  EXPECT_GT(x.forwarded, 0u);
}

}  // namespace
}  // namespace hyperfile
