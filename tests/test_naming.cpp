#include <gtest/gtest.h>

#include <cstdio>

#include "naming/name_registry.hpp"
#include "naming/persist.hpp"

namespace hyperfile {
namespace {

TEST(NameRegistry, BirthRegistrationAndAuthoritativeLookup) {
  NameRegistry reg(2);
  ObjectId id(2, 10);
  reg.register_birth(id);
  EXPECT_EQ(reg.authoritative_location(id), std::optional<SiteId>(2));
  // Foreign-born ids are not recorded.
  ObjectId foreign(3, 10);
  reg.register_birth(foreign);
  EXPECT_FALSE(reg.authoritative_location(foreign).has_value());
}

TEST(NameRegistry, RecordLocationUpdatesBirthRecord) {
  NameRegistry reg(0);
  ObjectId id(0, 1);
  reg.register_birth(id);
  reg.record_location(id, 5);
  EXPECT_EQ(reg.authoritative_location(id), std::optional<SiteId>(5));
}

TEST(NameRegistry, DepartureHint) {
  NameRegistry reg(1);
  ObjectId id(0, 7);
  EXPECT_FALSE(reg.hint(id).has_value());
  reg.record_departure(id, 4);
  EXPECT_EQ(reg.hint(id), std::optional<SiteId>(4));
  reg.forget_hint(id);
  EXPECT_FALSE(reg.hint(id).has_value());
}

TEST(NameRegistry, NextHopPrefersLocalHint) {
  NameRegistry reg(1);
  ObjectId id(0, 7);           // born at site 0
  reg.record_departure(id, 4);  // we saw it leave to 4
  EXPECT_EQ(reg.next_hop(id), std::optional<SiteId>(4));
}

TEST(NameRegistry, NextHopFallsBackToBirthSite) {
  NameRegistry reg(1);
  ObjectId id(0, 7);
  EXPECT_EQ(reg.next_hop(id), std::optional<SiteId>(0));
}

TEST(NameRegistry, BirthSiteIsFinalArbiter) {
  NameRegistry reg(0);  // we ARE the birth site
  ObjectId id(0, 7);
  // No record: the object does not exist anywhere — dangling pointer.
  EXPECT_FALSE(reg.next_hop(id).has_value());
  // With a record pointing elsewhere, forward there.
  reg.record_location(id, 3);
  EXPECT_EQ(reg.next_hop(id), std::optional<SiteId>(3));
  // Record pointing at ourselves but object absent: gone.
  reg.record_location(id, 0);
  EXPECT_FALSE(reg.next_hop(id).has_value());
}

TEST(NameRegistry, SelfHintIgnored) {
  NameRegistry reg(1);
  ObjectId id(0, 7);
  reg.record_departure(id, 1);  // stale hint pointing back at us
  // Must not forward to ourselves; fall through to the birth site.
  EXPECT_EQ(reg.next_hop(id), std::optional<SiteId>(0));
}

TEST(NameRegistry, MoveScenarioEndToEnd) {
  // Object born at 0, lives at 0; moves to 2. A site holding a stale
  // pointer (presumed site 0) chases: site 0 (birth) knows -> 2.
  NameRegistry birth(0);
  NameRegistry other(1);
  ObjectId id(0, 42);
  birth.register_birth(id);

  // Move 0 -> 2: birth site updates its authoritative record and keeps a
  // departure hint.
  birth.record_location(id, 2);
  birth.record_departure(id, 2);

  // Site 1 dereferences a pointer whose hint says site 0; site 0 no longer
  // holds the object, consults next_hop -> 2.
  EXPECT_EQ(other.next_hop(id), std::optional<SiteId>(0));  // ask the arbiter
  EXPECT_EQ(birth.next_hop(id), std::optional<SiteId>(2));  // arbiter forwards
}

TEST(NameRegistryPersist, RoundTrip) {
  NameRegistry reg(1);
  reg.register_birth(ObjectId(1, 5));
  reg.record_location(ObjectId(1, 5), 2);   // born here, moved to 2
  reg.record_location(ObjectId(1, 9), 0);   // born here, lives at 0
  reg.record_departure(ObjectId(0, 3), 2);  // passed through, hint

  const std::string path = ::testing::TempDir() + "/hf_names_test.bin";
  ASSERT_TRUE(save_registry(reg, path).ok());
  auto loaded = load_registry(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  const NameRegistry& back = loaded.value();
  EXPECT_EQ(back.self(), 1u);
  EXPECT_EQ(back.authoritative_location(ObjectId(1, 5)), std::optional<SiteId>(2));
  EXPECT_EQ(back.authoritative_location(ObjectId(1, 9)), std::optional<SiteId>(0));
  EXPECT_EQ(back.hint(ObjectId(0, 3)), std::optional<SiteId>(2));
  std::remove(path.c_str());
}

TEST(NameRegistryPersist, DetectsCorruption) {
  NameRegistry reg(0);
  reg.record_location(ObjectId(0, 1), 2);
  const std::string path = ::testing::TempDir() + "/hf_names_corrupt.bin";
  ASSERT_TRUE(save_registry(reg, path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 3, SEEK_SET);
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  EXPECT_FALSE(load_registry(path).ok());
  std::remove(path.c_str());
}

TEST(NameRegistryPersist, MissingFileIsIoError) {
  auto r = load_registry("/nonexistent/names.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kIo);
}

}  // namespace
}  // namespace hyperfile
