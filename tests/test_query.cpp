#include <gtest/gtest.h>

#include "query/builder.hpp"
#include "query/parser.hpp"

namespace hyperfile {
namespace {

Query sample_closure() {
  return QueryBuilder::from_set("S")
      .begin_iterate(3)
      .select(Pattern::literal("pointer"), Pattern::literal("Reference"),
              Pattern::bind("X"))
      .deref_keep("X")
      .end_iterate()
      .select(Pattern::literal("keyword"), Pattern::literal("Distributed"),
              Pattern::any())
      .into("T");
}

TEST(Query, SizeAndOneBasedAccess) {
  Query q = sample_closure();
  EXPECT_EQ(q.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<SelectFilter>(q.filter(1)));
  EXPECT_TRUE(std::holds_alternative<DerefFilter>(q.filter(2)));
  EXPECT_TRUE(std::holds_alternative<IterateFilter>(q.filter(3)));
  EXPECT_TRUE(std::holds_alternative<SelectFilter>(q.filter(4)));
}

TEST(Query, IteratorDepth) {
  Query q = sample_closure();
  EXPECT_EQ(q.iterator_depth(1), 1u);
  EXPECT_EQ(q.iterator_depth(2), 1u);
  EXPECT_EQ(q.iterator_depth(3), 1u);  // iterator counts as inside its loop
  EXPECT_EQ(q.iterator_depth(4), 0u);
  EXPECT_EQ(q.iterator_depth(5), 0u);  // "past the end" position
}

TEST(Query, NestedIteratorDepth) {
  Query q = QueryBuilder::from_set("S")
                .begin_iterate(2)
                .begin_iterate(2)
                .select(Pattern::literal("pointer"), Pattern::literal("A"),
                        Pattern::bind("X"))
                .deref_keep("X")
                .end_iterate()
                .select(Pattern::literal("pointer"), Pattern::literal("B"),
                        Pattern::bind("Y"))
                .deref_keep("Y")
                .end_iterate()
                .build();
  // Filters: 1 select(A), 2 deref, 3 inner-iter, 4 select(B), 5 deref, 6 outer-iter.
  EXPECT_EQ(q.iterator_depth(1), 2u);
  EXPECT_EQ(q.iterator_depth(3), 2u);
  EXPECT_EQ(q.iterator_depth(4), 1u);
  EXPECT_EQ(q.iterator_depth(6), 1u);
  EXPECT_EQ(q.iterator_depth(7), 0u);
}

TEST(Query, ValidateRejectsUnboundDeref) {
  Query q;
  q.set_initial_set_name("S");
  q.add_filter(DerefFilter{"X", true});
  auto v = q.validate();
  EXPECT_FALSE(v.ok());
  EXPECT_NE(v.error().message.find("X"), std::string::npos);
}

TEST(Query, ValidateRejectsUseBeforeBind) {
  Query q;
  q.set_initial_set_name("S");
  q.add_filter(SelectFilter{Pattern::any(), Pattern::any(), Pattern::use("Z")});
  EXPECT_FALSE(q.validate().ok());
}

TEST(Query, ValidateAcceptsBindAndUseInSameFilter) {
  Query q;
  q.set_initial_set_name("S");
  q.add_filter(SelectFilter{Pattern::any(), Pattern::bind("A"), Pattern::use("A")});
  EXPECT_TRUE(q.validate().ok());
}

TEST(Query, ValidateRejectsOutOfRangeRetrieveSlot) {
  Query q;
  q.set_initial_set_name("S");
  q.add_filter(SelectFilter{Pattern::any(), Pattern::any(), Pattern::retrieve(0)});
  EXPECT_FALSE(q.validate().ok());  // no slot registered
  q.add_retrieve_slot("title");
  EXPECT_TRUE(q.validate().ok());
}

TEST(Query, ValidateRequiresInitialSet) {
  Query q;
  q.add_filter(SelectFilter{});
  EXPECT_FALSE(q.validate().ok());
  q.set_initial_ids({ObjectId(0, 1)});
  EXPECT_TRUE(q.validate().ok());
}

TEST(Query, ToStringParsesBack) {
  Query q = sample_closure();
  auto round = parse_query(q.to_string());
  ASSERT_TRUE(round.ok()) << q.to_string();
  EXPECT_EQ(round.value(), q) << q.to_string();
}

TEST(Query, ToStringParsesBackWithRetrievalAndCount) {
  Query q = QueryBuilder::from_set("S")
                .select_eq("string", "Author", Value::string("Chris Clifton"))
                .retrieve("string", "Title", "title")
                .into("T");
  auto round = parse_query(q.to_string());
  ASSERT_TRUE(round.ok()) << q.to_string();
  EXPECT_EQ(round.value(), q);

  Query qc = QueryBuilder::from_set("S")
                 .select_key("keyword", "k")
                 .count_only()
                 .into("T");
  auto round2 = parse_query(qc.to_string());
  ASSERT_TRUE(round2.ok()) << qc.to_string();
  EXPECT_EQ(round2.value(), qc);
  EXPECT_TRUE(round2.value().count_only());
}

TEST(Query, ToStringParsesBackWithExplicitIds) {
  Query q = QueryBuilder::from_ids({ObjectId(0, 1), ObjectId(2, 7)})
                .select_key("keyword", "k")
                .build();
  auto round = parse_query(q.to_string());
  ASSERT_TRUE(round.ok()) << q.to_string();
  EXPECT_EQ(round.value().initial_ids(), q.initial_ids());
}

TEST(Query, EqualityCoversAllFields) {
  Query a = sample_closure();
  Query b = sample_closure();
  EXPECT_EQ(a, b);
  b.set_count_only(true);
  EXPECT_FALSE(a == b);
}

TEST(Filter, ToStringForms) {
  EXPECT_EQ(to_string(Filter(DerefFilter{"X", true})), "^^X");
  EXPECT_EQ(to_string(Filter(DerefFilter{"X", false})), "^X");
  EXPECT_EQ(to_string(Filter(IterateFilter{1, 3})), "]@13");
  EXPECT_EQ(to_string(Filter(IterateFilter{2, kUnboundedIterations})), "]@2*");
}

}  // namespace
}  // namespace hyperfile
