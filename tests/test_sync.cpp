// Behavioral coverage for the annotated sync layer (common/sync.hpp): the
// wrappers must forward faithfully to the standard primitives — lock
// exclusion, try_lock semantics, condition signalling, and timeout waits.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/sync.hpp"

using namespace hyperfile;

TEST(Sync, MutexLockExcludes) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10'000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, 8 * 10'000);
}

TEST(Sync, TryLockReflectsHeldState) {
  Mutex mu;
  ASSERT_TRUE(mu.try_lock());
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
  ASSERT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, CondVarSignalsWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(lock);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(Sync, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: the wait must come back with a timeout status.
  EXPECT_EQ(cv.wait_until(lock, deadline), std::cv_status::timeout);
}

TEST(Sync, CondVarWaitForWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    while (!ready) {
      cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  notifier.join();
}
