// Site summaries (index/site_summary.hpp, DESIGN.md §16): Bloom filter
// guarantees (never a false negative, measured false-positive rate within
// 2× of the analytic (m,k,n) bound), and the conservative-prune invariant —
// may_contribute() may return false only for work the summarized site
// provably cannot turn into results, fan-out, or retrievals.
#include <gtest/gtest.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "index/site_summary.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using index::BloomFilter;
using index::SiteSummary;
using testing::parse_or_die;
using testing::sorted;

std::string random_token(Rng& rng, std::size_t len) {
  std::string s;
  for (std::size_t i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng.next_below(26));
  }
  return s;
}

TEST(Bloom, NeverForgetsAnInsertedEntry) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    BloomFilter f = BloomFilter::with_capacity(2000);
    std::vector<std::string> inserted;
    for (int i = 0; i < 2000; ++i) {
      inserted.push_back(random_token(rng, 4 + rng.next_below(20)));
      f.insert(inserted.back());
    }
    for (const std::string& s : inserted) {
      EXPECT_TRUE(f.maybe_contains(s)) << s;
    }
  }
}

TEST(Bloom, MeasuredFpRateWithinTwiceAnalyticBound) {
  Rng rng(0xB10F);
  BloomFilter f = BloomFilter::with_capacity(2000);
  std::unordered_set<std::string> inserted;
  while (inserted.size() < 2000) {
    const std::string s = random_token(rng, 12);
    if (inserted.insert(s).second) f.insert(s);
  }
  std::uint64_t probes = 0;
  std::uint64_t hits = 0;
  while (probes < 50000) {
    const std::string s = random_token(rng, 13);  // disjoint length: absent
    ++probes;
    if (f.maybe_contains(s)) ++hits;
  }
  const double measured = static_cast<double>(hits) / probes;
  const double analytic = f.analytic_fp_rate();
  ASSERT_GT(analytic, 0.0);
  EXPECT_LE(measured, 2.0 * analytic)
      << "measured " << measured << " vs analytic " << analytic;
}

TEST(Bloom, EmptyFilterClaimsNothing) {
  BloomFilter f;
  EXPECT_FALSE(f.maybe_contains("anything"));
  BloomFilter sized = BloomFilter::with_capacity(10);
  EXPECT_FALSE(sized.maybe_contains("anything"));
}

TEST(Bloom, WirePartsReassembleIdentically) {
  BloomFilter f = BloomFilter::with_capacity(50);
  for (int i = 0; i < 50; ++i) f.insert("entry" + std::to_string(i));
  BloomFilter back =
      BloomFilter::from_parts(f.bytes(), f.hash_count(), f.entries());
  EXPECT_EQ(back, f);
  EXPECT_TRUE(back.maybe_contains("entry7"));
}

constexpr char kClosureHit[] =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)";
constexpr char kClosureMiss[] =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Absent", ?) -> T)";

TEST(SummaryPrune, RefutesQueryForAbsentKeyword) {
  SiteStore store(0);
  auto ids = testing::make_chain(store, 8, {0, 3});
  SiteSummary s = SiteSummary::build(store);
  const Query hit = parse_or_die(kClosureHit);
  const Query miss = parse_or_die(kClosureMiss);
  // The stored keyword can contribute; the absent one provably cannot (the
  // chain is self-contained, so the dead computation cannot leave the site).
  EXPECT_TRUE(s.may_contribute(hit, 1, ids[2]));
  EXPECT_FALSE(s.may_contribute(miss, 1, ids[2]));
}

TEST(SummaryPrune, AbsentTargetIdNeverPruned) {
  SiteStore store(0);
  testing::make_chain(store, 4);
  SiteSummary s = SiteSummary::build(store);
  // Even a hopeless query must be sent when the site never stored the
  // target: the peer owes the sender the miss-redirect chase (naming §4).
  const ObjectId foreign(9, 1234);
  EXPECT_TRUE(s.may_contribute(parse_or_die(kClosureMiss), 1, foreign));
}

TEST(SummaryPrune, RetrieveSlotsNeverPruned) {
  SiteStore store(0);
  auto ids = testing::make_chain(store, 4);
  SiteSummary s = SiteSummary::build(store);
  const Query q = parse_or_die(
      R"(S (string, "Name", ->v) (keyword, "Absent", ?) -> T)");
  ASSERT_FALSE(q.retrieve_slots().empty());
  EXPECT_TRUE(s.may_contribute(q, 1, ids[0]));
}

TEST(SummaryPrune, RemoteEdgePreventsPrune) {
  // Objects whose traversal pointers leave the site: a refuted tail
  // selection is NOT enough to prune, because the fan-out could reach a
  // third site where the selection succeeds.
  SiteStore store(0);
  ObjectId a = store.allocate();
  const ObjectId remote(7, 99);  // not stored here
  {
    Object obj(a);
    obj.add(Tuple::pointer("Reference", remote));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  SiteSummary s = SiteSummary::build(store);
  EXPECT_TRUE(s.may_contribute(parse_or_die(kClosureMiss), 1, a));
}

TEST(SummaryPrune, OpaquePatternsNeverRefute) {
  SiteStore store(0);
  auto ids = testing::make_chain(store, 4);
  SiteSummary s = SiteSummary::build(store);
  // contains-style regex: binding-independent refutation is impossible.
  const Query q = parse_or_die(
      R"(S (string, "Name", /.*zzz.*/) -> T)");
  EXPECT_TRUE(s.may_contribute(q, 1, ids[0]));
  // Absent exact string still refutes.
  const Query exact = parse_or_die(R"(S (string, "Name", "nope") -> T)");
  EXPECT_FALSE(s.may_contribute(exact, 1, ids[0]));
  // Present exact string does not.
  const Query present = parse_or_die(R"(S (string, "Name", "obj1") -> T)");
  EXPECT_TRUE(s.may_contribute(present, 1, ids[0]));
}

TEST(SummaryPrune, SmallRangeRefutedLargeRangePasses) {
  SiteStore store(0);
  ObjectId a = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::number("Year", 1985));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  SiteSummary s = SiteSummary::build(store);
  EXPECT_FALSE(s.may_contribute(
      parse_or_die(R"(S (number, "Year", [1990..1995]) -> T)"), 1, a));
  EXPECT_TRUE(s.may_contribute(
      parse_or_die(R"(S (number, "Year", [1980..1989]) -> T)"), 1, a));
  // Span past the probe cap: conservatively kept even though every probe
  // would miss.
  EXPECT_TRUE(s.may_contribute(
      parse_or_die(R"(S (number, "Year", [2000..2100]) -> T)"), 1, a));
}

// The invariant everything else rests on: a pruned item would have
// contributed nothing. For self-contained random stores, any object the
// engine turns into results must be may_contribute == true.
class SummaryNeverFalselyPrunes
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SummaryNeverFalselyPrunes, AgainstEngineOnRandomStores) {
  Rng rng(GetParam());
  SiteStore store(0);
  constexpr std::size_t kN = 40;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    // Self-contained graph: every pointer targets a stored object, so the
    // no-remote-fanout precondition of a tail-selection prune holds.
    obj.add(Tuple::pointer("Reference", ids[rng.next_below(kN)]));
    if (rng.next_bool(0.3)) obj.add(Tuple::keyword("Distributed"));
    obj.add(Tuple::number("Year", rng.next_range(1980, 1992)));
    obj.add(Tuple::string("Name", "obj" + std::to_string(rng.next_below(6))));
    store.put(std::move(obj));
  }
  SiteSummary summary = SiteSummary::build(store);

  const char* kQueries[] = {
      kClosureHit,
      kClosureMiss,
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (number, "Year", [1984..1986]) -> T)",
      R"(S (string, "Name", "obj3") (keyword, "Distributed", ?) -> T)",
      R"(S (?, ?, ?) -> T)",
  };
  LocalEngine engine(store);
  for (const char* text : kQueries) {
    const Query q = parse_or_die(text);
    for (const ObjectId& o : ids) {
      store.create_set("S", std::span<const ObjectId>(&o, 1));
      auto got = engine.run_readonly(q);
      ASSERT_TRUE(got.ok()) << text;
      if (!got.value().ids.empty()) {
        EXPECT_TRUE(summary.may_contribute(q, 1, o))
            << text << " seeded from " << o.to_string()
            << " produced results but was pruned";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryNeverFalselyPrunes,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

}  // namespace
}  // namespace hyperfile
