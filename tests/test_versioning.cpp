// Object versioning: the "previous version" pointer idiom from the paper's
// Section 1, implemented as checkpoint/history/prune helpers.
#include <gtest/gtest.h>

#include "engine/local_engine.hpp"
#include "store/versioning.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;

TEST(Versioning, CheckpointArchivesOldStateAndKeepsIdentity) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(),
                                 {Tuple::string("Title", "v1"),
                                  Tuple::string("Body", "first draft")}));

  auto archive = checkpoint_version(store, id, [](Object& obj) {
    obj.remove("string", "Title");
    obj.add(Tuple::string("Title", "v2"));
  });
  ASSERT_TRUE(archive.ok());

  // Live object: same id, new content, pointer to the archive.
  const Object* live = store.get(id);
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->find("string", "Title")->data.as_string(), "v2");
  ASSERT_EQ(live->pointers(kPreviousVersionKey).size(), 1u);
  EXPECT_EQ(live->pointers(kPreviousVersionKey)[0], archive.value());

  // Archive: old content, no version pointer of its own yet.
  const Object* old = store.get(archive.value());
  ASSERT_NE(old, nullptr);
  EXPECT_EQ(old->find("string", "Title")->data.as_string(), "v1");
  EXPECT_TRUE(old->pointers(kPreviousVersionKey).empty());
}

TEST(Versioning, ChainGrowsNewestFirst) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(), {Tuple::number("rev", 1)}));
  for (int rev = 2; rev <= 5; ++rev) {
    ASSERT_TRUE(checkpoint_version(store, id, [rev](Object& obj) {
                  obj.remove("number", "rev");
                  obj.add(Tuple::number("rev", rev));
                }).ok());
  }
  auto chain = version_history(store, id);
  ASSERT_EQ(chain.size(), 5u);
  // chain[0] is live (rev 5), then 4, 3, 2, 1.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(store.get(chain[i])->find("number", "rev")->data.as_number(),
              static_cast<std::int64_t>(5 - i));
  }
}

TEST(Versioning, HistoryIsAnOrdinaryClosureQuery) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(), {Tuple::number("rev", 1)}));
  for (int rev = 2; rev <= 4; ++rev) {
    ASSERT_TRUE(checkpoint_version(store, id, [rev](Object& obj) {
                  obj.remove("number", "rev");
                  obj.add(Tuple::number("rev", rev));
                }).ok());
  }
  store.create_set("Doc", std::vector<ObjectId>{id});
  LocalEngine engine(store);
  // All versions with rev >= 2: the live object plus two archives. (The
  // rev-1 archive has no Previous Version tuple — it is a chain sink and
  // dies in the loop body, per the language's semantics.)
  auto r = engine.run(parse_or_die(
      R"(Doc [ (pointer, "Previous Version", ?X) | ^^X ]* (number, "rev", [2..99]) -> V)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), 3u);
}

TEST(Versioning, PruneKeepsNewestArchives) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(), {Tuple::number("rev", 1)}));
  for (int rev = 2; rev <= 6; ++rev) {
    ASSERT_TRUE(checkpoint_version(store, id, [rev](Object& obj) {
                  obj.remove("number", "rev");
                  obj.add(Tuple::number("rev", rev));
                }).ok());
  }
  ASSERT_EQ(version_history(store, id).size(), 6u);
  EXPECT_EQ(prune_versions(store, id, /*keep=*/2), 3u);
  auto chain = version_history(store, id);
  ASSERT_EQ(chain.size(), 3u);  // live + 2 newest archives
  EXPECT_EQ(store.get(chain[2])->find("number", "rev")->data.as_number(), 4);
  // Pruning again is a no-op.
  EXPECT_EQ(prune_versions(store, id, 2), 0u);
}

TEST(Versioning, CheckpointMissingObjectFails) {
  SiteStore store(0);
  auto r = checkpoint_version(store, ObjectId(0, 99), [](Object&) {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(Versioning, HistoryOnCycleTerminates) {
  // Hand-built pathological cycle: history must not loop forever.
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId b = store.allocate();
  store.put(Object(a, {Tuple::pointer(kPreviousVersionKey, b)}));
  store.put(Object(b, {Tuple::pointer(kPreviousVersionKey, a)}));
  auto chain = version_history(store, a);
  EXPECT_EQ(chain.size(), 2u);
}

}  // namespace
}  // namespace hyperfile
