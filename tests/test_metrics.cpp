// MetricsRegistry semantics (common/metrics.hpp): instrument arithmetic,
// find-or-create stability, deterministic export, and concurrent increments
// (run under TSan in CI — the instruments are the one place the repo allows
// raw atomics, so this is where their race-freedom is proved).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace hyperfile {
namespace {

TEST(Counter, IncrementsMonotonically) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSubAndHighWaterMark) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
  g.max_of(7);  // below: no effect
  EXPECT_EQ(g.value(), 12);
  g.max_of(99);
  EXPECT_EQ(g.value(), 99);
  g.set(-4);  // gauges may go negative
  EXPECT_EQ(g.value(), -4);
}

TEST(Histogram, BucketOfIsFloorLog2) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(1023), 9u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  // Saturates at the last bucket instead of indexing out of range.
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), Histogram::kBuckets - 1);
}

TEST(Histogram, CountSumMeanAndQuantiles) {
  Histogram h;
  EXPECT_EQ(h.mean(), 0.0);  // no samples: mean is 0, not 0/0
  for (std::uint64_t v : {1u, 2u, 4u, 8u, 1000u}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1015u);
  EXPECT_DOUBLE_EQ(h.mean(), 203.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(9), 1u);  // 1000 in [512, 1024)
  // Median sample is 4 (bucket 2) -> exclusive upper bound 8; the p99
  // lands in 1000's bucket -> bound 1024.
  EXPECT_EQ(h.quantile_bound(0.5), 8u);
  EXPECT_EQ(h.quantile_bound(0.99), 1024u);
}

TEST(Registry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("dist.dedup_hits");
  Counter& b = reg.counter("dist.dedup_hits");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter_value("dist.dedup_hits"), 3u);
  // Absent instruments read as zero instead of springing into existence.
  EXPECT_EQ(reg.counter_value("no.such.counter"), 0u);
  EXPECT_EQ(reg.gauge_value("no.such.gauge"), 0);
}

TEST(Registry, LabelOverloadInternsTheBracedName) {
  MetricsRegistry reg;
  reg.counter("net.fault.dropped", "link=2->0").inc();
  EXPECT_EQ(reg.counter_value("net.fault.dropped{link=2->0}"), 1u);
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "net.fault.dropped{link=2->0}");
}

TEST(Registry, ExportIsSortedAndCompleteInBothFormats) {
  MetricsRegistry reg;
  reg.counter("b.counter").inc(2);
  reg.gauge("a.gauge").set(-7);
  reg.histogram("c.hist").observe(3);

  const std::string text = reg.to_text();
  EXPECT_EQ(text,
            "a.gauge -7\n"
            "b.counter 2\n"
            "c.hist.count 1\n"
            "c.hist.mean 3\n"
            "c.hist.p50 4\n"
            "c.hist.p99 4\n"
            "c.hist.sum 3\n");

  const std::string json = reg.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a.gauge\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"b.counter\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"c.hist.count\": 1"), std::string::npos);
  // to_json_fields is the same body without braces, for embedding.
  EXPECT_EQ("{" + reg.to_json_fields() + "}", json);
}

TEST(Registry, ConcurrentIncrementsLoseNothing) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve through the registry each batch: exercises the interning
      // lock concurrently with other threads' lock-free increments.
      Counter& c = reg.counter("contended.counter");
      Histogram& h = reg.histogram("contended.hist");
      Gauge& g = reg.gauge("contended.peak");
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(i % 7));
        g.max_of(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("contended.counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.histogram("contended.hist").count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.gauge_value("contended.peak"), kPerThread - 1);
}

TEST(Registry, GlobalIsProcessWideAndMonotonic) {
  const std::uint64_t before = metrics().counter_value("test.global.probe");
  metrics().counter("test.global.probe").inc();
  EXPECT_EQ(metrics().counter_value("test.global.probe"), before + 1);
  EXPECT_EQ(&metrics(), &MetricsRegistry::global());
}

}  // namespace
}  // namespace hyperfile
