// Index-accelerated closure evaluation: shape recognition, rejection of
// non-canonical queries, and randomized equivalence with the engine —
// including the sink-object subtlety (objects without a traversal tuple die
// inside the loop and must not appear in accelerated results either).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "index/accelerate.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using index::accelerate_closure;
using index::match_closure_shape;
using index::ReachabilityIndex;
using testing::parse_or_die;
using testing::sorted;

TEST(Accelerate, RecognizesCanonicalShape) {
  Query q = parse_or_die(
      R"(S [ (pointer, "Cites", ?X) | ^^X ]* (keyword, "db", ?) (number, "Year", [1980..1990]) -> T)");
  auto shape = match_closure_shape(q);
  ASSERT_TRUE(shape.has_value());
  EXPECT_EQ(shape->tuple_type, "pointer");
  EXPECT_EQ(shape->pointer_key, "Cites");
  EXPECT_EQ(shape->predicate_filters, (std::vector<std::uint32_t>{4, 5}));
}

TEST(Accelerate, RejectsNonCanonicalShapes) {
  // Bounded iterator.
  EXPECT_FALSE(match_closure_shape(parse_or_die(
                   R"(S [ (pointer, "C", ?X) | ^^X ]3 (?, ?, ?) -> T)"))
                   .has_value());
  // Drop-source dereference.
  EXPECT_FALSE(match_closure_shape(parse_or_die(
                   R"(S [ (pointer, "C", ?X) | ^X ]* (?, ?, ?) -> T)"))
                   .has_value());
  // Regex pointer key (not a literal).
  EXPECT_FALSE(match_closure_shape(parse_or_die(
                   R"(S [ (pointer, /C.*/, ?X) | ^^X ]* (?, ?, ?) -> T)"))
                   .has_value());
  // Retrieval in the predicates.
  EXPECT_FALSE(match_closure_shape(parse_or_die(
                   R"(S [ (pointer, "C", ?X) | ^^X ]* (string, "T", ->t) -> T)"))
                   .has_value());
  // Second dereference after the loop.
  EXPECT_FALSE(match_closure_shape(parse_or_die(
                   R"(S [ (pointer, "C", ?X) | ^^X ]* (pointer, "D", ?Y) ^^Y -> T)"))
                   .has_value());
  // No loop at all.
  EXPECT_FALSE(match_closure_shape(parse_or_die(R"(S (keyword, "k", ?) -> T)"))
                   .has_value());
}

TEST(Accelerate, RejectsMismatchedIndex) {
  SiteStore store(0);
  auto ids = testing::make_chain(store, 4);
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (?, ?, ?) -> T)");
  ReachabilityIndex wrong_key(store, "pointer", "Other");
  EXPECT_FALSE(accelerate_closure(store, wrong_key, q).has_value());
  ReachabilityIndex wrong_type(store, "blob", "Reference");
  EXPECT_FALSE(accelerate_closure(store, wrong_type, q).has_value());
}

TEST(Accelerate, MatchesEngineOnChain) {
  SiteStore store(0);
  auto ids = testing::make_chain(store, 12, {0, 4, 8});
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");
  LocalEngine engine(store);
  auto want = engine.run_readonly(q);
  ASSERT_TRUE(want.ok());

  ReachabilityIndex reach(store, "pointer", "Reference");
  auto got = accelerate_closure(store, reach, q);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(sorted(*got), sorted(want.value().ids));
}

TEST(Accelerate, SinkObjectsExcludedLikeEngine) {
  // B is reachable but has no Reference tuple: the engine kills it inside
  // the loop body; acceleration must do the same.
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId b = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::pointer("Reference", b));
    obj.add(Tuple::keyword("k"));
    store.put(std::move(obj));
  }
  {
    Object obj(b);
    obj.add(Tuple::keyword("k"));  // no Reference tuple: a sink
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));

  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "k", ?) -> T)");
  LocalEngine engine(store);
  auto want = engine.run_readonly(q);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(want.value().ids, std::vector<ObjectId>{a});

  ReachabilityIndex reach(store, "pointer", "Reference");
  auto got = accelerate_closure(store, reach, q);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(sorted(*got), sorted(want.value().ids));
}

class AccelerateEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccelerateEquivalence, RandomGraphsMatchEngine) {
  Rng rng(GetParam());
  SiteStore store(0);
  constexpr std::size_t kN = 50;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    // ~20% sinks (no Cites tuple at all); some have a non-pointer Cites
    // tuple (passes the body select but contributes no edge).
    const double roll = rng.next_double();
    if (roll < 0.6) {
      const int deg = 1 + static_cast<int>(rng.next_below(2));
      for (int e = 0; e < deg; ++e) {
        obj.add(Tuple::pointer("Cites", ids[rng.next_below(kN)]));
      }
    } else if (roll < 0.8) {
      obj.add(Tuple("pointer", "Cites", Value::string("unresolved ref")));
    }
    if (rng.next_bool(0.5)) obj.add(Tuple::keyword("db"));
    obj.add(Tuple::number("Year", rng.next_range(1970, 1995)));
    store.put(std::move(obj));
  }
  std::vector<ObjectId> members = {ids[0], ids[1], ids[2]};
  store.create_set("S", members);

  const char* kQueries[] = {
      R"(S [ (pointer, "Cites", ?X) | ^^X ]* (keyword, "db", ?) -> T)",
      R"(S [ (pointer, "Cites", ?X) | ^^X ]* (number, "Year", [1980..1989]) -> T)",
      R"(S [ (pointer, "Cites", ?X) | ^^X ]* (keyword, "db", ?) (number, "Year", [1975..1990]) -> T)",
      R"(S [ (pointer, "Cites", ?X) | ^^X ]* (?, ?, ?) -> T)",
  };

  LocalEngine engine(store);
  ReachabilityIndex reach(store, "pointer", "Cites");
  for (const char* text : kQueries) {
    Query q = parse_or_die(text);
    SCOPED_TRACE(text);
    auto want = engine.run_readonly(q);
    ASSERT_TRUE(want.ok());
    auto got = accelerate_closure(store, reach, q);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(sorted(*got), sorted(want.value().ids));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccelerateEquivalence,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u,
                                           707u, 808u));

// Regression: accelerated queries used to reconstruct the ReachabilityIndex
// from scratch on every call, silently costing O(edges) per query. The
// cache must build exactly once for repeated identical queries and
// invalidate on store mutation.
TEST(IndexCache, RepeatedIdenticalQueriesBuildExactlyOnce) {
  SiteStore store(0);
  testing::make_chain(store, 12, {0, 4, 8});
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");

  index::IndexCache cache;
  auto first = index::accelerate_closure(store, cache, q);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(cache.builds(), 1u);
  for (int i = 0; i < 5; ++i) {
    auto again = index::accelerate_closure(store, cache, q);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(sorted(*again), sorted(*first));
  }
  EXPECT_EQ(cache.builds(), 1u);
}

TEST(IndexCache, MutationInvalidatesAndResultsStayCurrent) {
  SiteStore store(0);
  auto ids = testing::make_chain(store, 6, {0});
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");

  index::IndexCache cache;
  auto before = index::accelerate_closure(store, cache, q);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(cache.builds(), 1u);

  // Extend the chain: new tail gets the keyword, old tail points at it.
  // Like every chain tail it must self-point to pass the iterate body.
  ObjectId extra = store.allocate();
  {
    Object obj(extra);
    obj.add(Tuple::pointer("Reference", extra));
    obj.add(Tuple::keyword("Distributed"));
    store.put(std::move(obj));
  }
  ASSERT_TRUE(store.add_tuple(ids.back(), Tuple::pointer("Reference", extra)).ok());

  LocalEngine engine(store);
  auto want = engine.run_readonly(q);
  ASSERT_TRUE(want.ok());
  auto after = index::accelerate_closure(store, cache, q);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(cache.builds(), 2u);  // the mutation forced exactly one rebuild
  EXPECT_EQ(sorted(*after), sorted(want.value().ids));
  EXPECT_NE(sorted(*after), sorted(*before));
}

TEST(IndexCache, DistinctTraversalsCacheIndependently) {
  SiteStore store(0);
  testing::make_chain(store, 5, {0});
  index::IndexCache cache;
  (void)cache.reachability(store, "pointer", "Reference");
  (void)cache.reachability(store, "pointer", "Reference");
  (void)cache.reachability(store, "pointer", "Other");
  (void)cache.attribute(store, "keyword", "Distributed");
  (void)cache.attribute(store, "keyword", "Distributed");
  EXPECT_EQ(cache.builds(), 3u);
  cache.clear();
  (void)cache.reachability(store, "pointer", "Reference");
  EXPECT_EQ(cache.builds(), 4u);
}

}  // namespace
}  // namespace hyperfile
