#include <gtest/gtest.h>
#include "common/rng.hpp"

#include "query/builder.hpp"
#include "query/parser.hpp"

namespace hyperfile {
namespace {

TEST(Parser, PaperSection3Example) {
  auto q = parse_query(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]3 (keyword, "Distributed", ?) -> T)");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  EXPECT_EQ(q.value().initial_set_name(), "S");
  EXPECT_EQ(q.value().result_set_name(), "T");
  ASSERT_EQ(q.value().size(), 4u);
  const auto& it = std::get<IterateFilter>(q.value().filter(3));
  EXPECT_EQ(it.body_start, 1u);
  EXPECT_EQ(it.count, 3u);
  const auto& sel = std::get<SelectFilter>(q.value().filter(1));
  EXPECT_EQ(sel.type_pattern, Pattern::literal("pointer"));
  EXPECT_EQ(sel.key_pattern, Pattern::literal("Reference"));
  EXPECT_EQ(sel.data_pattern, Pattern::bind("X"));
}

TEST(Parser, TransitiveClosureStar) {
  auto q = parse_query(
      R"(S [ (pointer, "Called Routine", ?X) | ^^X ]* (string, "Author", "Joe Programmer") -> T)");
  ASSERT_TRUE(q.ok());
  const auto& it = std::get<IterateFilter>(q.value().filter(3));
  EXPECT_TRUE(it.unbounded());
}

TEST(Parser, SingleDerefDropsSource) {
  auto q = parse_query(R"(S (pointer, "Link", ?X) ^X -> T)");
  ASSERT_TRUE(q.ok());
  const auto& d = std::get<DerefFilter>(q.value().filter(2));
  EXPECT_EQ(d.var, "X");
  EXPECT_FALSE(d.keep_source);
}

TEST(Parser, RetrievalSlot) {
  auto q = parse_query(
      R"(S (string, "Author", "Chris Clifton") (string, "Title", ->title) -> T)");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q.value().retrieve_slots().size(), 1u);
  EXPECT_EQ(q.value().retrieve_slots()[0], "title");
  const auto& sel = std::get<SelectFilter>(q.value().filter(2));
  EXPECT_TRUE(sel.data_pattern.retrieves());
  EXPECT_EQ(sel.data_pattern.slot(), 0u);
}

TEST(Parser, PatternForms) {
  auto q = parse_query(
      R"(S (number, "Year", [1901..1902]) (/ab.c/, ?, ?V) (string, "x", $V) (?, bare_word, 42) -> T)");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  const auto& f1 = std::get<SelectFilter>(q.value().filter(1));
  EXPECT_EQ(f1.data_pattern, Pattern::range(1901, 1902));
  const auto& f2 = std::get<SelectFilter>(q.value().filter(2));
  EXPECT_EQ(f2.type_pattern, Pattern::regex("ab.c").value());
  EXPECT_EQ(f2.key_pattern, Pattern::any());
  EXPECT_EQ(f2.data_pattern, Pattern::bind("V"));
  const auto& f3 = std::get<SelectFilter>(q.value().filter(3));
  EXPECT_EQ(f3.data_pattern, Pattern::use("V"));
  const auto& f4 = std::get<SelectFilter>(q.value().filter(4));
  EXPECT_EQ(f4.key_pattern, Pattern::literal("bare_word"));
  EXPECT_EQ(f4.data_pattern, Pattern::literal(std::int64_t{42}));
}

TEST(Parser, NegativeNumbersAndRanges) {
  auto q = parse_query(R"(S (number, "t", [-10..-5]) (number, "u", -3) -> T)");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  const auto& f1 = std::get<SelectFilter>(q.value().filter(1));
  EXPECT_EQ(f1.data_pattern, Pattern::range(-10, -5));
  const auto& f2 = std::get<SelectFilter>(q.value().filter(2));
  EXPECT_EQ(f2.data_pattern, Pattern::literal(std::int64_t{-3}));
}

TEST(Parser, ExplicitIdList) {
  auto q = parse_query(R"({0.1, 2.7} (?, ?, ?) -> T)");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  ASSERT_EQ(q.value().initial_ids().size(), 2u);
  EXPECT_EQ(q.value().initial_ids()[0], ObjectId(0, 1));
  EXPECT_EQ(q.value().initial_ids()[1], ObjectId(2, 7));
}

TEST(Parser, NestedIterators) {
  auto q = parse_query(
      R"(S [ [ (pointer, "A", ?X) | ^^X ]2 (pointer, "B", ?Y) | ^^Y ]* (?, ?, ?) -> T)");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  ASSERT_EQ(q.value().size(), 7u);
  const auto& inner = std::get<IterateFilter>(q.value().filter(3));
  EXPECT_EQ(inner.body_start, 1u);
  EXPECT_EQ(inner.count, 2u);
  const auto& outer = std::get<IterateFilter>(q.value().filter(6));
  EXPECT_EQ(outer.body_start, 1u);
  EXPECT_TRUE(outer.unbounded());
}

TEST(Parser, CountOnly) {
  auto q = parse_query(R"(S (keyword, "k", ?) count -> T)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().count_only());
}

TEST(Parser, NoResultName) {
  auto q = parse_query(R"(S (keyword, "k", ?) ->)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q.value().result_set_name().empty());
}

TEST(Parser, EscapedQuoteInString) {
  auto q = parse_query(R"(S (string, "said \"hi\"", ?) -> T)");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  const auto& f = std::get<SelectFilter>(q.value().filter(1));
  EXPECT_EQ(f.key_pattern, Pattern::literal("said \"hi\""));
}

TEST(Parser, Errors) {
  // Missing arrow.
  EXPECT_FALSE(parse_query(R"(S (keyword, "k", ?))").ok());
  // Unclosed iterator.
  EXPECT_FALSE(parse_query(R"(S [ (keyword, "k", ?) -> T)").ok());
  // Iterator without count.
  EXPECT_FALSE(parse_query(R"(S [ (keyword, "k", ?) ] -> T)").ok());
  // Zero iterations.
  EXPECT_FALSE(parse_query(R"(S [ (keyword, "k", ?) ]0 -> T)").ok());
  // Deref of never-bound variable (semantic validation).
  EXPECT_FALSE(parse_query(R"(S ^^X -> T)").ok());
  // Bad selection arity.
  EXPECT_FALSE(parse_query(R"(S (keyword, "k") -> T)").ok());
  // Unterminated string.
  EXPECT_FALSE(parse_query(R"(S (keyword, "k, ?) -> T)").ok());
  // Garbage after the query.
  EXPECT_FALSE(parse_query(R"(S (?, ?, ?) -> T extra)").ok());
  // No initial set.
  EXPECT_FALSE(parse_query(R"((?, ?, ?) -> T)").ok());
  // Empty input.
  EXPECT_FALSE(parse_query("").ok());
  // Bad regex.
  EXPECT_FALSE(parse_query(R"(S (/[/, ?, ?) -> T)").ok());
}

TEST(Parser, RandomQueriesRoundTripThroughToString) {
  // Generate random (valid) queries with the builder, print, re-parse, and
  // compare — the printer and parser must agree on the whole language.
  Rng rng(0xC0FFEE);
  const char* types[] = {"pointer", "keyword", "string", "number"};
  const char* keys[] = {"Ref", "Author", "Year", "k"};
  for (int trial = 0; trial < 200; ++trial) {
    QueryBuilder b = QueryBuilder::from_set("S");
    int bound_vars = 0;
    const int elements = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < elements; ++e) {
      const bool loop = rng.next_bool(0.3);
      if (loop) {
        b.begin_iterate(rng.next_bool(0.5)
                            ? kUnboundedIterations
                            : 1 + static_cast<std::uint32_t>(rng.next_below(5)));
      }
      // One select, with a random pattern shape.
      Pattern data;
      switch (rng.next_below(5)) {
        case 0:
          data = Pattern::any();
          break;
        case 1:
          data = Pattern::literal(rng.next_range(0, 100));
          break;
        case 2:
          data = Pattern::range(1, 10);
          break;
        case 3:
          data = Pattern::literal("lit");
          break;
        default:
          data = Pattern::bind("V" + std::to_string(bound_vars++));
          break;
      }
      const bool binds = data.binds();
      b.select(Pattern::literal(types[rng.next_below(4)]),
               Pattern::literal(keys[rng.next_below(4)]), data);
      if (binds && rng.next_bool(0.8)) {
        const std::string var = "V" + std::to_string(bound_vars - 1);
        if (rng.next_bool(0.5)) {
          b.deref_keep(var);
        } else {
          b.deref_only(var);
        }
      }
      if (loop) b.end_iterate();
    }
    if (rng.next_bool(0.3)) b.retrieve("string", "Title", "t");
    if (rng.next_bool(0.2)) b.count_only();
    Query q = b.into("T");

    auto round = parse_query(q.to_string());
    ASSERT_TRUE(round.ok()) << "trial " << trial << ": " << q.to_string()
                            << " -> " << round.error().to_string();
    EXPECT_EQ(round.value(), q) << q.to_string();
  }
}

TEST(Parser, SeparatorsAreInsignificant) {
  auto a = parse_query(R"(S [ (pointer,"R",?X) | ^^X ]2 (?,?,?) -> T)");
  auto b = parse_query(R"(S [(pointer , "R" , ?X) ^^X]2 (? , ? , ?) ->T)");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

}  // namespace
}  // namespace hyperfile
