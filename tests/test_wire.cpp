#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "query/builder.hpp"
#include "query/parser.hpp"
#include "wire/message.hpp"
#include "wire/serialize.hpp"

namespace hyperfile::wire {
namespace {

TEST(Codec, VarintRoundTrip) {
  Encoder e;
  const std::uint64_t values[] = {0,       1,        127,        128,
                                  16384,   1u << 20, 1ull << 40, UINT64_MAX};
  for (auto v : values) e.varint(v);
  Decoder d(e.bytes());
  for (auto v : values) {
    auto got = d.varint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), v);
  }
  EXPECT_TRUE(d.done());
}

TEST(Codec, SignedVarintRoundTrip) {
  Encoder e;
  const std::int64_t values[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  for (auto v : values) e.svarint(v);
  Decoder d(e.bytes());
  for (auto v : values) {
    auto got = d.svarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), v);
  }
}

TEST(Codec, StringAndBytes) {
  Encoder e;
  e.string("hello");
  e.string("");
  e.bytes(std::vector<std::uint8_t>{1, 2, 3});
  Decoder d(e.bytes());
  EXPECT_EQ(d.string().value(), "hello");
  EXPECT_EQ(d.string().value(), "");
  EXPECT_EQ(d.bytes().value().size(), 3u);
  EXPECT_TRUE(d.done());
}

TEST(Codec, TruncatedInputFailsCleanly) {
  Encoder e;
  e.string("hello world");
  auto bytes = e.take();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Decoder d(std::span(bytes.data(), cut));
    EXPECT_FALSE(d.string().ok()) << "cut=" << cut;
  }
}

TEST(Codec, OverlongVarintRejected) {
  // 11 continuation bytes exceed a 64-bit varint.
  Bytes bad(11, 0x80);
  Decoder d(bad);
  EXPECT_FALSE(d.varint().ok());
}

TEST(Serialize, ValueRoundTripAllKinds) {
  const Value values[] = {
      Value(),
      Value::string(std::string("embedded\0nul", 12)),
      Value::number(-1234567),
      Value::pointer(ObjectId(3, 99, 7)),
      Value::blob({0, 255, 1, 254}),
  };
  for (const Value& v : values) {
    Encoder e;
    encode(e, v);
    Decoder d(e.bytes());
    auto got = decode_value(d);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value(), v);
    if (v.is_pointer()) {
      EXPECT_TRUE(got.value().as_pointer().identical(v.as_pointer()));
    }
  }
}

TEST(Serialize, ObjectRoundTrip) {
  Object obj(ObjectId(2, 5));
  obj.add(Tuple::string("Title", "Main Program for Sort routine"));
  obj.add(Tuple::string("Author", "Joe Programmer"));
  obj.add(Tuple::text("Description", "<Arbitrary text description>"));
  obj.add(Tuple::pointer("Called Routine", ObjectId(1, 3)));
  obj.add(Tuple::pointer("Library", ObjectId(0, 8, 4)));

  Encoder e;
  encode(e, obj);
  Decoder d(e.bytes());
  auto got = decode_object(d);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), obj);
}

TEST(Serialize, QueryRoundTrip) {
  auto q = parse_query(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) (string, "Title", ->t) -> T)");
  ASSERT_TRUE(q.ok());
  auto bytes = encode_query(q.value());
  auto got = decode_query(bytes);
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  EXPECT_EQ(got.value(), q.value());
}

TEST(Serialize, QueryWithAllPatternKindsRoundTrips) {
  auto q = parse_query(
      R"({1.2} (number, "Y", [10..20]) (/re/, ?, ?B) (string, $B, -42) count -> R)");
  ASSERT_TRUE(q.ok()) << q.error().to_string();
  auto got = decode_query(encode_query(q.value()));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), q.value());
}

TEST(Serialize, PaperQueryIsSmall) {
  // "Our messages send only the query (about 40 bytes for the experiments
  // presented here)". Our encoding of the experiment query should be the
  // same order of magnitude — well under 200 bytes.
  auto q = parse_query(
      R"(Root [ (pointer, "Tree", ?X) | ^X ]* (skey, "Rand10p", 5) -> T)");
  ASSERT_TRUE(q.ok());
  const auto bytes = encode_query(q.value());
  EXPECT_LT(bytes.size(), 100u);
  EXPECT_GT(bytes.size(), 20u);
}

TEST(Messages, DerefRequestRoundTrip) {
  DerefRequest dr;
  dr.qid = {4, 77};
  dr.query = parse_query(R"(S (?, ?, ?) -> T)").value();
  dr.oid = ObjectId(1, 9, 2);
  dr.start = 3;
  dr.iter_stack = {1, 4, 2};
  dr.weight = {0, 5, 9};
  dr.msg_seq = 0xDEADBEEFull;
  dr.hop = 3;
  dr.path = {0, 4, 1};
  auto got = decode_message(encode_message(dr));
  ASSERT_TRUE(got.ok());
  const auto& back = std::get<DerefRequest>(got.value());
  EXPECT_EQ(back.qid, dr.qid);
  EXPECT_EQ(back.query, dr.query);
  EXPECT_TRUE(back.oid.identical(dr.oid));
  EXPECT_EQ(back.start, dr.start);
  EXPECT_EQ(back.iter_stack, dr.iter_stack);
  EXPECT_EQ(back.weight, dr.weight);
  EXPECT_EQ(back.msg_seq, dr.msg_seq);
  EXPECT_EQ(back.hop, 3u);
  EXPECT_EQ(back.path, dr.path);
}

TEST(Messages, StartQueryRoundTrip) {
  StartQuery sq;
  sq.qid = {0, 1};
  sq.query = parse_query(R"(S (?, ?, ?) count -> T)").value();
  sq.ids = {ObjectId(0, 1), ObjectId(2, 3)};
  sq.local_set_name = "T";
  sq.weight = {2};
  sq.msg_seq = 41;
  sq.hop = 1;
  sq.path = {6};
  auto got = decode_message(encode_message(sq));
  ASSERT_TRUE(got.ok());
  const auto& back = std::get<StartQuery>(got.value());
  EXPECT_EQ(back.ids, sq.ids);
  EXPECT_EQ(back.local_set_name, "T");
  EXPECT_EQ(back.msg_seq, 41u);
  EXPECT_EQ(back.hop, 1u);
  EXPECT_EQ(back.path, sq.path);
}

TraceSpan wire_test_span() {
  TraceSpan s;
  s.site = 1;
  s.first_hop = 2;
  s.path = {0, 2, 1};
  s.messages = 11;
  s.duplicates = 3;
  s.items = 40;
  s.forwarded = 9;
  s.results = 6;
  s.drains = 4;
  s.drain_us = 12345;
  s.retries = 2;
  s.suspicions = 1;
  s.pruned = 5;
  s.failovers = 2;
  s.replica_lag = 1;
  return s;
}

TEST(Messages, ResultMessageRoundTrip) {
  ResultMessage rm;
  rm.qid = {1, 2};
  rm.ids = {ObjectId(3, 4)};
  rm.values = {{0, ObjectId(3, 4), Value::string("A Title")},
               {1, ObjectId(3, 4), Value::number(7)}};
  rm.local_count = 12;
  rm.count_only = true;
  rm.weight = {1, 3};
  rm.msg_seq = 99;
  rm.dropped_items = 4;
  rm.spans = {wire_test_span()};
  auto got = decode_message(encode_message(rm));
  ASSERT_TRUE(got.ok());
  const auto& back = std::get<ResultMessage>(got.value());
  EXPECT_EQ(back.ids, rm.ids);
  EXPECT_EQ(back.values, rm.values);
  EXPECT_EQ(back.local_count, 12u);
  EXPECT_TRUE(back.count_only);
  EXPECT_EQ(back.weight, rm.weight);
  EXPECT_EQ(back.msg_seq, 99u);
  EXPECT_EQ(back.dropped_items, 4u);
  EXPECT_EQ(back.spans, rm.spans);
}

TEST(Messages, BatchDerefRoundTrip) {
  BatchDerefRequest bd;
  bd.qid = {2, 9};
  bd.query = parse_query(R"(S (?, ?, ?) -> T)").value();
  bd.items = {{ObjectId(0, 1), 3, {1, 2}}, {ObjectId(1, 7, 2), 1, {4}}};
  bd.weight = {3, 5};
  bd.msg_seq = 17;
  bd.hop = 2;
  bd.path = {0, 1};
  auto got = decode_message(encode_message(bd));
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  const auto& back = std::get<BatchDerefRequest>(got.value());
  EXPECT_EQ(back.qid, bd.qid);
  EXPECT_EQ(back.items, bd.items);
  EXPECT_EQ(back.hop, 2u);
  EXPECT_EQ(back.path, bd.path);
  EXPECT_EQ(back.weight, bd.weight);
  EXPECT_EQ(back.msg_seq, 17u);
  EXPECT_TRUE(back.items[1].oid.identical(bd.items[1].oid));
}

TEST(Messages, PingRoundTrip) {
  for (bool want_reply : {true, false}) {
    PingMessage ping{want_reply};
    auto got = decode_message(encode_message(ping));
    ASSERT_TRUE(got.ok()) << got.error().to_string();
    const auto& back = std::get<PingMessage>(got.value());
    EXPECT_EQ(back.want_reply, want_reply);
  }
}

TEST(Messages, TermAckRoundTrip) {
  TermAck ta{{3, 8}, 512};
  auto got = decode_message(encode_message(ta));
  ASSERT_TRUE(got.ok());
  const auto& back = std::get<TermAck>(got.value());
  EXPECT_EQ(back.qid, (QueryId{3, 8}));
  EXPECT_EQ(back.msg_seq, 512u);
}

TEST(Messages, ClientMessagesRoundTrip) {
  ClientRequest cr;
  cr.client_seq = 5;
  cr.query = parse_query(R"(S (?, ?, ?) -> T)").value();
  auto got = decode_message(encode_message(cr));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::get<ClientRequest>(got.value()).client_seq, 5u);

  ClientReply rp;
  rp.client_seq = 5;
  rp.ok = false;
  rp.error = "not_found: no set named 'S'";
  rp.total_count = 3;
  rp.partial = true;
  rp.dropped_items = 2;
  rp.qid = {5, 44};
  rp.elapsed_us = 987654;
  rp.spans = {wire_test_span(), wire_test_span()};
  rp.spans[1].site = 0;
  rp.spans[1].path.clear();  // empty paths must survive the wire too
  auto got2 = decode_message(encode_message(rp));
  ASSERT_TRUE(got2.ok());
  const auto& back = std::get<ClientReply>(got2.value());
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, rp.error);
  EXPECT_EQ(back.qid, rp.qid);
  EXPECT_EQ(back.elapsed_us, 987654u);
  EXPECT_EQ(back.spans, rp.spans);
  EXPECT_EQ(back.total_count, 3u);
  EXPECT_TRUE(back.partial);
  EXPECT_EQ(back.dropped_items, 2u);
}

TEST(Messages, SummaryMessageRoundTripFuzz) {
  // Summaries carry raw Bloom bitmaps; fuzz the shapes (empty record list,
  // empty bitmap, multi-record gossip) through the codec.
  Rng rng(0x5157);
  for (int trial = 0; trial < 200; ++trial) {
    SummaryMessage sm;
    const std::size_t nrecords = rng.next_below(4);
    for (std::size_t r = 0; r < nrecords; ++r) {
      SummaryRecord rec;
      rec.origin = static_cast<SiteId>(rng.next_below(8));
      rec.epoch = rng.next_u64() % 1000;
      rec.version = rng.next_u64() % 100000;
      rec.hash_count = static_cast<std::uint32_t>(rng.next_below(16));
      rec.entries = rng.next_u64() % 5000;
      rec.age_us = rng.next_u64();  // full range: ages are unvalidated here
      rec.bits.resize(rng.next_below(512));
      for (auto& b : rec.bits) b = static_cast<std::uint8_t>(rng.next_u64());
      sm.records.push_back(std::move(rec));
    }
    sm.msg_seq = rng.next_u64() % 100000;
    auto got = decode_message(encode_message(sm));
    ASSERT_TRUE(got.ok()) << got.error().to_string();
    const auto& back = std::get<SummaryMessage>(got.value());
    EXPECT_EQ(back.records, sm.records);
    EXPECT_EQ(back.msg_seq, sm.msg_seq);
  }
}

TEST(Messages, TruncatedSummaryRejected) {
  SummaryMessage sm;
  SummaryRecord rec;
  rec.origin = 3;
  rec.epoch = 2;
  rec.version = 41;
  rec.hash_count = 7;
  rec.entries = 12;
  rec.age_us = 123456;
  rec.bits = {0xde, 0xad, 0xbe, 0xef};
  sm.records = {rec, rec};
  sm.msg_seq = 9;
  auto bytes = encode_message(sm);
  for (std::size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_message(std::span(bytes.data(), cut)).ok());
  }
}

TEST(Messages, WalSubscribeRoundTrip) {
  WalSubscribe ws;
  ws.follower = 3;
  ws.ship_epoch = 17;
  ws.wal_offset = 123456789;
  ws.msg_seq = 0;  // subscribes ride unsequenced (idempotent, DESIGN.md §18)
  auto got = decode_message(encode_message(ws));
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  const auto& back = std::get<WalSubscribe>(got.value());
  EXPECT_EQ(back.follower, ws.follower);
  EXPECT_EQ(back.ship_epoch, ws.ship_epoch);
  EXPECT_EQ(back.wal_offset, ws.wal_offset);
  EXPECT_EQ(back.msg_seq, ws.msg_seq);
}

TEST(Messages, WalSegmentRoundTripFuzz) {
  // Segments carry raw redo-record payloads; fuzz the shapes (empty record
  // list, empty payloads, multi-record batches, offset extremes).
  Rng rng(0x9A17);
  for (int trial = 0; trial < 200; ++trial) {
    WalSegment wg;
    wg.primary = static_cast<SiteId>(rng.next_below(8));
    wg.ship_epoch = rng.next_u64() % 1000;
    wg.from_offset = rng.next_u64();
    wg.end_offset = wg.from_offset + rng.next_u64() % 100000;
    const std::size_t nrecords = rng.next_below(6);
    for (std::size_t r = 0; r < nrecords; ++r) {
      Bytes payload(rng.next_below(128));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
      wg.records.push_back(std::move(payload));
    }
    wg.msg_seq = rng.next_u64() % 100000;
    auto got = decode_message(encode_message(wg));
    ASSERT_TRUE(got.ok()) << got.error().to_string();
    const auto& back = std::get<WalSegment>(got.value());
    EXPECT_EQ(back.primary, wg.primary);
    EXPECT_EQ(back.ship_epoch, wg.ship_epoch);
    EXPECT_EQ(back.from_offset, wg.from_offset);
    EXPECT_EQ(back.end_offset, wg.end_offset);
    EXPECT_EQ(back.records, wg.records);
    EXPECT_EQ(back.msg_seq, wg.msg_seq);
  }
}

TEST(Messages, WalCatchupRoundTrip) {
  WalCatchup wc;
  wc.primary = 5;
  wc.ship_epoch = 3;
  wc.wal_offset = 0;
  wc.snapshot = {0x01, 0x00, 0xff, 0x7e, 0x00, 0x42};
  wc.msg_seq = 77;
  auto got = decode_message(encode_message(wc));
  ASSERT_TRUE(got.ok()) << got.error().to_string();
  const auto& back = std::get<WalCatchup>(got.value());
  EXPECT_EQ(back.primary, wc.primary);
  EXPECT_EQ(back.ship_epoch, wc.ship_epoch);
  EXPECT_EQ(back.wal_offset, wc.wal_offset);
  EXPECT_EQ(back.snapshot, wc.snapshot);
  EXPECT_EQ(back.msg_seq, wc.msg_seq);
}

TEST(Messages, TruncatedReplicationMessagesRejected) {
  // Every strict prefix of each replication message must fail cleanly:
  // a torn frame must never decode into a shorter-but-valid segment.
  WalSegment wg;
  wg.primary = 2;
  wg.ship_epoch = 4;
  wg.from_offset = 1000;
  wg.end_offset = 1064;
  wg.records = {{0xde, 0xad}, {}, {0xbe, 0xef, 0x00}};
  wg.msg_seq = 31;
  WalCatchup wc;
  wc.primary = 2;
  wc.ship_epoch = 5;
  wc.wal_offset = 64;
  wc.snapshot = {0x10, 0x20, 0x30};
  wc.msg_seq = 32;
  WalSubscribe ws;
  ws.follower = 1;
  ws.ship_epoch = 4;
  ws.wal_offset = 1000;
  for (const Message m : {Message(wg), Message(wc), Message(ws)}) {
    auto bytes = encode_message(m);
    for (std::size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
      EXPECT_FALSE(decode_message(std::span(bytes.data(), cut)).ok());
    }
  }
}

TEST(Messages, QueryDoneAndEnvelopeRoundTrip) {
  Envelope env{7, 2, QueryDone{{7, 123}}};
  auto got = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().src, 7u);
  EXPECT_EQ(got.value().dst, 2u);
  EXPECT_EQ(std::get<QueryDone>(got.value().message).qid, (QueryId{7, 123}));
}

TEST(Messages, FuzzDecodeNeverCrashes) {
  // Random bytes must be rejected gracefully, never crash or hang.
  Rng rng(0xFEED);
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)decode_message(junk);
    (void)decode_envelope(junk);
  }
  SUCCEED();
}

TEST(Messages, TruncatedRealMessageRejected) {
  DerefRequest dr;
  dr.qid = {4, 77};
  dr.query = parse_query(R"(S (?, ?, ?) -> T)").value();
  dr.oid = ObjectId(1, 9);
  auto bytes = encode_message(dr);
  for (std::size_t cut = 0; cut + 1 < bytes.size(); ++cut) {
    EXPECT_FALSE(decode_message(std::span(bytes.data(), cut)).ok());
  }
}

}  // namespace
}  // namespace hyperfile::wire
