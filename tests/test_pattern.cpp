#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "query/pattern.hpp"

namespace hyperfile {
namespace {

TEST(Pattern, AnyMatchesEverything) {
  Pattern p = Pattern::any();
  EXPECT_TRUE(p.matches_basic(Value::string("x")));
  EXPECT_TRUE(p.matches_basic(Value::number(1)));
  EXPECT_TRUE(p.matches_basic(Value()));
  EXPECT_TRUE(p.matches_basic(Value::pointer(ObjectId(0, 1))));
}

TEST(Pattern, LiteralStringEquality) {
  Pattern p = Pattern::literal("abc");
  EXPECT_TRUE(p.matches_basic(Value::string("abc")));
  EXPECT_FALSE(p.matches_basic(Value::string("abd")));
  EXPECT_FALSE(p.matches_basic(Value::number(1)));
}

TEST(Pattern, LiteralNumberEquality) {
  Pattern p = Pattern::literal(std::int64_t{42});
  EXPECT_TRUE(p.matches_basic(Value::number(42)));
  EXPECT_FALSE(p.matches_basic(Value::number(43)));
  EXPECT_FALSE(p.matches_basic(Value::string("42")));
}

TEST(Pattern, LiteralPointer) {
  Pattern p = Pattern::literal(Value::pointer(ObjectId(1, 2)));
  EXPECT_TRUE(p.matches_basic(Value::pointer(ObjectId(1, 2, 9))));  // hint ignored
  EXPECT_FALSE(p.matches_basic(Value::pointer(ObjectId(1, 3))));
}

TEST(Pattern, RegexSearchesSubstring) {
  auto p = Pattern::regex("Jo+e");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().matches_basic(Value::string("Joe Programmer")));
  EXPECT_TRUE(p.value().matches_basic(Value::string("xxJoooexx")));
  EXPECT_FALSE(p.value().matches_basic(Value::string("J0e")));
  EXPECT_FALSE(p.value().matches_basic(Value::number(1)));  // strings only
}

TEST(Pattern, RegexAnchors) {
  auto p = Pattern::regex("^abc$");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p.value().matches_basic(Value::string("abc")));
  EXPECT_FALSE(p.value().matches_basic(Value::string("xabc")));
}

TEST(Pattern, BadRegexIsError) {
  auto p = Pattern::regex("([");
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.error().code, Errc::kInvalidArgument);
}

TEST(Pattern, RangeInclusiveBounds) {
  Pattern p = Pattern::range(10, 20);
  EXPECT_TRUE(p.matches_basic(Value::number(10)));
  EXPECT_TRUE(p.matches_basic(Value::number(20)));
  EXPECT_FALSE(p.matches_basic(Value::number(9)));
  EXPECT_FALSE(p.matches_basic(Value::number(21)));
  EXPECT_FALSE(p.matches_basic(Value::string("15")));  // numbers only
}

TEST(Pattern, BindMatchesAnythingAndRecordsVar) {
  Pattern p = Pattern::bind("X");
  EXPECT_TRUE(p.binds());
  EXPECT_EQ(p.var(), "X");
  EXPECT_TRUE(p.matches_basic(Value::number(5)));
  EXPECT_TRUE(p.matches_basic(Value()));
}

TEST(Pattern, UseNeedsBindings) {
  Pattern p = Pattern::use("X");
  EXPECT_TRUE(p.uses());
  // Field-level match is false: the engine resolves $X against O.mvars.
  EXPECT_FALSE(p.matches_basic(Value::number(5)));
}

TEST(Pattern, RetrieveMatchesAnything) {
  Pattern p = Pattern::retrieve(3);
  EXPECT_TRUE(p.retrieves());
  EXPECT_EQ(p.slot(), 3u);
  EXPECT_TRUE(p.matches_basic(Value::string("payload")));
}

TEST(Pattern, EqualityByKindAndPayload) {
  EXPECT_EQ(Pattern::any(), Pattern::any());
  EXPECT_EQ(Pattern::literal("a"), Pattern::literal("a"));
  EXPECT_NE(Pattern::literal("a"), Pattern::literal("b"));
  EXPECT_NE(Pattern::literal("a"), Pattern::any());
  EXPECT_EQ(Pattern::bind("X"), Pattern::bind("X"));
  EXPECT_NE(Pattern::bind("X"), Pattern::use("X"));
  EXPECT_EQ(Pattern::range(1, 2), Pattern::range(1, 2));
  EXPECT_NE(Pattern::range(1, 2), Pattern::range(1, 3));
  EXPECT_EQ(Pattern::regex("a+").value(), Pattern::regex("a+").value());
  EXPECT_EQ(Pattern::retrieve(1), Pattern::retrieve(1));
  EXPECT_NE(Pattern::retrieve(1), Pattern::retrieve(2));
}

TEST(Pattern, ToStringRoundTripForms) {
  EXPECT_EQ(Pattern::any().to_string(), "?");
  EXPECT_EQ(Pattern::bind("X").to_string(), "?X");
  EXPECT_EQ(Pattern::use("Y").to_string(), "$Y");
  EXPECT_EQ(Pattern::range(1, 5).to_string(), "[1..5]");
  EXPECT_EQ(Pattern::regex("ab").value().to_string(), "/ab/");
  EXPECT_EQ(Pattern::literal("s").to_string(), "\"s\"");
}

TEST(Pattern, MatchesStringOverload) {
  EXPECT_TRUE(Pattern::literal("pointer").matches_basic(std::string("pointer")));
  EXPECT_FALSE(Pattern::literal("pointer").matches_basic(std::string("string")));
}


// ---------------------------------------------------------------------------
// Regex fast path (DESIGN.md §14): metacharacter-free regexes run as plain
// substring / prefix / suffix / equality scans; matches_reference keeps the
// generic std::regex engine as the oracle.

TEST(PatternFastPath, ClassificationAtCompileTime) {
  EXPECT_EQ(Pattern::regex("needle").value().fast_path(),
            RegexFastPath::kContains);
  EXPECT_EQ(Pattern::regex("^head").value().fast_path(),
            RegexFastPath::kPrefix);
  EXPECT_EQ(Pattern::regex("tail$").value().fast_path(),
            RegexFastPath::kSuffix);
  EXPECT_EQ(Pattern::regex("^whole$").value().fast_path(),
            RegexFastPath::kExact);
  // Any metacharacter falls back to the generic engine.
  for (const char* expr : {"a+", "a.b", "a|b", "[ab]", "a(b)", "a?", "a*",
                           "a{2}", "a\\d", "^a+$"}) {
    EXPECT_EQ(Pattern::regex(expr).value().fast_path(), RegexFastPath::kNone)
        << expr;
  }
}

TEST(PatternFastPath, AgreesWithReferenceOnEdgeCases) {
  const std::vector<std::string> exprs = {"needle", "^needle", "needle$",
                                          "^needle$", "", "^", "$", "^$"};
  const std::vector<std::string> inputs = {
      "",       "needle",       "xneedle",      "needlex", "xneedlex",
      "needl",  "eedle",        "needleneedle", "NEEDLE",  "x",
      "needle needle again"};
  for (const auto& expr : exprs) {
    auto p = Pattern::regex(expr);
    ASSERT_TRUE(p.ok()) << expr;
    for (const auto& in : inputs) {
      const Value v = Value::string(in);
      EXPECT_EQ(p.value().matches_basic(v), p.value().matches_reference(v))
          << "/" << expr << "/ on \"" << in << "\"";
      EXPECT_EQ(p.value().matches_basic(std::string_view(in)),
                p.value().matches_reference(v))
          << "/" << expr << "/ on \"" << in << "\" (string_view)";
    }
  }
}

TEST(PatternFastPath, AgreesWithReferenceOnRandomInputs) {
  // Property: for random anchor combinations over random ascii needles and
  // haystacks, the fast path and the generic engine never disagree.
  Rng rng(2026);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string needle;
    const std::size_t nlen = rng.next_below(6);
    for (std::size_t i = 0; i < nlen; ++i) {
      needle.push_back(static_cast<char>('a' + rng.next_below(3)));
    }
    std::string expr = needle;
    if (rng.next_bool(0.5)) expr = "^" + expr;
    if (rng.next_bool(0.5)) expr += "$";
    auto p = Pattern::regex(expr);
    ASSERT_TRUE(p.ok()) << expr;

    std::string hay;
    const std::size_t hlen = rng.next_below(12);
    for (std::size_t i = 0; i < hlen; ++i) {
      hay.push_back(static_cast<char>('a' + rng.next_below(3)));
    }
    const Value v = Value::string(hay);
    ASSERT_EQ(p.value().matches_basic(v), p.value().matches_reference(v))
        << "/" << expr << "/ on \"" << hay << "\"";
  }
}

TEST(PatternFastPath, NonStringValuesNeverMatch) {
  Pattern p = Pattern::regex("needle").value();
  EXPECT_FALSE(p.matches_basic(Value::number(42)));
  EXPECT_FALSE(p.matches_basic(Value()));
  EXPECT_EQ(p.matches_basic(Value::number(42)),
            p.matches_reference(Value::number(42)));
}

}  // namespace
}  // namespace hyperfile
