// Iterator semantics: bounded counts, transitive closure, nesting, and the
// iteration-number arithmetic from the paper's Section 3.1 trace (objects at
// chain depth d carry iter# = d, counting from 1 at the initial set; an
// object re-enters the loop body only while start > j and iter# < k).
#include <gtest/gtest.h>

#include "engine/parallel_engine.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::make_chain;
using testing::parse_or_die;
using testing::sorted;

class BoundedIteratorSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BoundedIteratorSweep, KeepSourceChainDepth) {
  // Chain of 10, every object tagged. With ^^X (keep source), the result is
  // exactly the objects whose chain depth (1-based) is <= k: the paper's
  // k=3 example processes A, B, C and never examines D.
  const std::uint32_t k = GetParam();
  SiteStore store(0);
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < 10; ++i) all.push_back(i);
  auto ids = make_chain(store, 10, all);
  LocalEngine engine(store);

  auto q = parse_or_die("S [ (pointer, \"Reference\", ?X) | ^^X ]" +
                        std::to_string(k) +
                        " (keyword, \"Distributed\", ?) -> T");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  // Objects at chain depth d (1-based) re-enter the body only while d < k,
  // so depths 1..k survive. Edge case k=1: the initial object still runs
  // the body once (the paper's unrolled reading of [body]^1), dereferencing
  // the depth-2 object, which exits the loop and passes the final filter.
  const std::size_t expect = std::min<std::size_t>(std::max(k, 2u), ids.size());
  std::vector<ObjectId> want(ids.begin(), ids.begin() + expect);
  EXPECT_EQ(sorted(r.value().ids), sorted(want)) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Depths, BoundedIteratorSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 9u, 10u, 11u,
                                           100u));

TEST(Iterators, DropSourceKeepsOnlyFrontier) {
  // With ^X the pointing object dies each round; the survivors are the
  // frontier objects that exit the loop via the depth bound.
  SiteStore store(0);
  std::vector<std::size_t> all = {0, 1, 2, 3, 4};
  auto ids = make_chain(store, 5, all);
  LocalEngine engine(store);

  auto q3 = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) ^X ]3 (keyword, "Distributed", ?) -> T)");
  auto r3 = engine.run(q3);
  ASSERT_TRUE(r3.ok());
  // Depth-3 object (iter# = 3 >= k) exits without re-entering: ids[2].
  EXPECT_EQ(r3.value().ids, std::vector<ObjectId>{ids[2]});
}

TEST(Iterators, UnboundedDropSourceReachesChainEnd) {
  SiteStore store(0);
  std::vector<std::size_t> all = {0, 1, 2, 3, 4, 5, 6};
  auto ids = make_chain(store, 7, all);
  LocalEngine engine(store);

  // Every object dies at ^X after dereferencing (drop-source), and the
  // re-derefed duplicates are mark-suppressed, so an unbounded ^X loop
  // keeps nothing: only bounded loops (exit by depth) or ^^X (keep source)
  // produce results. This documents the drop-source/closure interaction.
  auto q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) ^X ]* (keyword, "Distributed", ?) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().ids.empty());
}

TEST(Iterators, IteratorFirstEntryFromDerefRunsBody) {
  // An object dereferenced *into* the iterator position (start == the
  // iterator's index) must run back through the body (start > j case).
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId b = store.allocate();
  ObjectId c = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::pointer("Reference", b));
    obj.add(Tuple::keyword("Distributed"));
    store.put(std::move(obj));
  }
  {
    Object obj(b);
    obj.add(Tuple::pointer("Reference", c));
    obj.add(Tuple::keyword("Distributed"));
    store.put(std::move(obj));
  }
  {
    Object obj(c);
    obj.add(Tuple::pointer("Reference", c));  // sink self-points (see helpers)
    obj.add(Tuple::keyword("Distributed"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  LocalEngine engine(store);
  auto q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(sorted(r.value().ids), sorted({a, b, c}));
}

TEST(Iterators, SelfLoopTerminates) {
  SiteStore store(0);
  ObjectId a = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::pointer("Reference", a));  // self-cycle
    obj.add(Tuple::keyword("Distributed"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  LocalEngine engine(store);
  auto r = engine.run(parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "Distributed", ?) -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{a});
}

TEST(Iterators, DerefAtLastFilterDeliversTargets) {
  // A dereference as the very last filter: targets enter "past the end" and
  // join the result unfiltered (Figure 3: the while loop is skipped, the
  // object is non-null, it is added to S_o).
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId b = store.allocate();
  {
    Object obj(a);
    obj.add(Tuple::pointer("Link", b));
    store.put(std::move(obj));
  }
  store.put(Object(b, {Tuple::string("Name", "b")}));
  store.create_set("S", std::span<const ObjectId>(&a, 1));
  LocalEngine engine(store);
  auto r = engine.run(parse_or_die(R"(S (pointer, "Link", ?X) ^X -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{b});
}

TEST(Iterators, NestedIteratorsTerminateAndMatchParallelEngine) {
  // A two-level pointer grid: "A" pointers advance within a row, "B"
  // pointers jump to the next row. Every object carries both pointer kinds
  // (edges wrap) plus a tag, so no object dies for lack of a tuple.
  SiteStore store(0);
  constexpr int kRows = 4, kCols = 4;
  ObjectId grid[kRows][kCols];
  for (auto& row : grid) {
    for (auto& cell : row) cell = store.allocate();
  }
  for (int i = 0; i < kRows; ++i) {
    for (int j = 0; j < kCols; ++j) {
      Object obj(grid[i][j]);
      obj.add(Tuple::pointer("A", grid[i][(j + 1) % kCols]));
      obj.add(Tuple::pointer("B", grid[(i + 1) % kRows][j]));
      obj.add(Tuple::string("tag", "t"));
      store.put(std::move(obj));
    }
  }
  store.create_set("S", std::span<const ObjectId>(&grid[0][0], 1));

  auto q = parse_or_die(
      R"(S [ [ (pointer, "A", ?X) | ^^X ]2 (pointer, "B", ?Y) | ^^Y ]3 (string, "tag", ?) -> T)");

  LocalEngine serial(store);
  auto rs = serial.run_readonly(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_FALSE(rs.value().ids.empty());

  ParallelEngine parallel(store, 4);
  auto rp = parallel.run(q);
  ASSERT_TRUE(rp.ok());
  EXPECT_EQ(sorted(rs.value().ids), sorted(rp.value().ids));
}

TEST(Iterators, NestedInnerCounterResetsPerOuterVisit) {
  // root -B-> m; m -A-> a1 -A-> a2. Inner loop bounds A-chains at depth 2
  // (one A-hop per visit); the inner counter must reset when m is reached
  // through the *outer* loop, so a1 (one A-hop from m) is reachable, while
  // a2 (two A-hops) is not.
  SiteStore store(0);
  ObjectId root = store.allocate();
  ObjectId m = store.allocate();
  ObjectId a1 = store.allocate();
  ObjectId a2 = store.allocate();
  auto put = [&](ObjectId id, std::vector<Tuple> extra) {
    Object obj(id);
    obj.add(Tuple::string("tag", "t"));
    for (auto& t : extra) obj.add(std::move(t));
    store.put(std::move(obj));
  };
  put(root, {Tuple::pointer("B", m), Tuple::pointer("A", root)});
  put(m, {Tuple::pointer("A", a1), Tuple::pointer("B", m)});
  put(a1, {Tuple::pointer("A", a2), Tuple::pointer("B", a1)});
  put(a2, {Tuple::pointer("A", a2), Tuple::pointer("B", a2)});
  store.create_set("S", std::span<const ObjectId>(&root, 1));

  LocalEngine engine(store);
  auto q = parse_or_die(
      R"(S [ [ (pointer, "A", ?X) | ^^X ]2 (pointer, "B", ?Y) | ^^Y ]* (string, "tag", ?) -> T)");
  auto r = engine.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().contains(m)) << "B-child reachable";
  EXPECT_TRUE(r.value().contains(a1)) << "one A-hop from a fresh inner counter";
}

TEST(Iterators, ValidationRejectsMalformedIterators) {
  // Overlapping, non-nested iterator intervals must be rejected.
  Query q;
  q.set_initial_ids({ObjectId(0, 1)});
  q.add_filter(SelectFilter{});                 // 1
  q.add_filter(IterateFilter{1, 2});            // 2: [1,2]
  q.add_filter(IterateFilter{2, 2});            // 3: [2,3] overlaps [1,2]
  EXPECT_FALSE(q.validate().ok());

  Query q2;
  q2.set_initial_ids({ObjectId(0, 1)});
  q2.add_filter(IterateFilter{5, 2});  // body_start beyond own index
  EXPECT_FALSE(q2.validate().ok());

  Query q3;
  q3.set_initial_ids({ObjectId(0, 1)});
  q3.add_filter(SelectFilter{});
  q3.add_filter(IterateFilter{1, 0});  // k == 0
  EXPECT_FALSE(q3.validate().ok());
}

}  // namespace
}  // namespace hyperfile
