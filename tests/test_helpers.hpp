// Shared fixtures and builders for the HyperFile test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "engine/local_engine.hpp"
#include "query/builder.hpp"
#include "query/parser.hpp"
#include "store/site_store.hpp"

namespace hyperfile::testing {

/// Build a chain A -> B -> C -> ... of `n` objects linked by "Reference"
/// pointers, each tagged with keyword `kw` if its index is in `kw_at`.
/// The last object self-points: inside a closure loop a selection like
/// (pointer, "Reference", ?X) *filters*, so a sink without the tuple would
/// die in the body instead of reaching the filters after the loop.
/// Returns the ids in chain order; creates set "S" = {first}.
inline std::vector<ObjectId> make_chain(SiteStore& store, std::size_t n,
                                        const std::vector<std::size_t>& kw_at = {},
                                        const std::string& kw = "Distributed") {
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::string("Name", "obj" + std::to_string(i)));
    obj.add(Tuple::pointer("Reference", i + 1 < n ? ids[i + 1] : ids[i]));
    for (std::size_t at : kw_at) {
      if (at == i) obj.add(Tuple::keyword(kw));
    }
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

/// Sorted copy, for order-insensitive comparison.
inline std::vector<ObjectId> sorted(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Parse a query, aborting the test on failure.
inline Query parse_or_die(const std::string& text) {
  auto q = parse_query(text);
  if (!q.ok()) {
    ADD_FAILURE() << "parse failed: " << q.error().to_string() << " in: " << text;
    return Query();
  }
  return std::move(q).value();
}

}  // namespace hyperfile::testing
