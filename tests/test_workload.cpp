// Workload-generator invariants: the Section 5 spec, and the paper's
// partition-invariance requirement ("the graph formed by the pointers in
// these objects was identical regardless of the number of machines").
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "workload/paper_workload.hpp"

namespace hyperfile::workload {
namespace {

struct Deployment {
  std::vector<std::unique_ptr<SiteStore>> stores;
  PopulatedWorkload pop;

  explicit Deployment(std::size_t sites, const WorkloadConfig& cfg = {}) {
    std::vector<SiteStore*> ptrs;
    for (std::size_t i = 0; i < sites; ++i) {
      stores.push_back(std::make_unique<SiteStore>(static_cast<SiteId>(i)));
      ptrs.push_back(stores.back().get());
    }
    pop = populate_paper_workload(ptrs, cfg);
  }
};

TEST(Workload, ObjectCountsAndPlacement) {
  for (std::size_t sites : {1u, 3u, 9u}) {
    Deployment d(sites);
    std::size_t total = 0;
    for (auto& s : d.stores) total += s->size();
    // 270 objects + the Root set object at site 0.
    EXPECT_EQ(total, 271u) << sites << " sites";
    if (sites > 1) {
      // Even split: 270/sites objects per site (+1 set object at site 0).
      EXPECT_EQ(d.stores[0]->size(), 270 / sites + 1);
      for (std::size_t s = 1; s < sites; ++s) {
        EXPECT_EQ(d.stores[s]->size(), 270 / sites);
      }
    }
  }
}

TEST(Workload, EveryObjectHasTheFiveSearchKeysAndAllPointerClasses) {
  Deployment d(9);
  for (auto& store : d.stores) {
    store->for_each([&](const Object& obj) {
      if (obj.find("string", "set_name") != nullptr) return;  // the Root set
      EXPECT_NE(obj.find(kSearchType, kUniqueKey), nullptr);
      EXPECT_NE(obj.find(kSearchType, kCommonKey), nullptr);
      EXPECT_NE(obj.find(kSearchType, kRand10pKey), nullptr);
      EXPECT_NE(obj.find(kSearchType, kRand100pKey), nullptr);
      EXPECT_NE(obj.find(kSearchType, kRand1000pKey), nullptr);
      EXPECT_EQ(obj.pointers(kChainKey).size(), 1u);
      EXPECT_GE(obj.pointers(kTreeKey).size(), 1u);
      for (const char* key : kRandKeys) {
        EXPECT_EQ(obj.pointers(key).size(), 2u) << key;
      }
    });
  }
}

TEST(Workload, SearchKeyRanges) {
  Deployment d(1);
  std::map<std::int64_t, int> hist10;
  d.stores[0]->for_each([&](const Object& obj) {
    const Tuple* t = obj.find(kSearchType, kRand10pKey);
    if (t == nullptr) return;
    const auto v = t->data.as_number();
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
    ++hist10[v];
  });
  // All ten values occur among 270 draws (overwhelmingly likely).
  EXPECT_EQ(hist10.size(), 10u);
}

TEST(Workload, UniqueKeysAreUnique) {
  Deployment d(1);
  std::map<std::int64_t, int> seen;
  d.stores[0]->for_each([&](const Object& obj) {
    const Tuple* t = obj.find(kSearchType, kUniqueKey);
    if (t != nullptr) ++seen[t->data.as_number()];
  });
  EXPECT_EQ(seen.size(), 270u);
  for (const auto& [value, count] : seen) EXPECT_EQ(count, 1) << value;
}

TEST(Workload, ChainAlwaysCrossesSites) {
  for (std::size_t sites : {3u, 9u}) {
    Deployment d(sites);
    std::map<ObjectId, SiteId> site_of;
    for (std::size_t i = 0; i < d.pop.ids.size(); ++i) {
      site_of[d.pop.ids[i]] = d.pop.site_of[i];
    }
    std::size_t hops = 0;
    for (auto& store : d.stores) {
      store->for_each([&](const Object& obj) {
        auto it = site_of.find(obj.id());
        if (it == site_of.end()) return;  // the set object
        for (const ObjectId& next : obj.pointers(kChainKey)) {
          if (next == obj.id()) continue;  // tail self-pointer
          EXPECT_NE(site_of.at(next), it->second)
              << "chain hop stayed on site " << it->second;
          ++hops;
        }
      });
    }
    EXPECT_EQ(hops, 269u) << sites << " sites";
  }
}

TEST(Workload, RandomPointerLocalityMatchesClassProbability) {
  Deployment d(9);
  std::map<ObjectId, SiteId> site_of;
  for (std::size_t i = 0; i < d.pop.ids.size(); ++i) {
    site_of[d.pop.ids[i]] = d.pop.site_of[i];
  }
  for (std::size_t cls = 0; cls < 7; ++cls) {
    std::size_t local = 0, total = 0;
    for (auto& store : d.stores) {
      store->for_each([&](const Object& obj) {
        auto it = site_of.find(obj.id());
        if (it == site_of.end()) return;
        for (const ObjectId& tgt : obj.pointers(kRandKeys[cls])) {
          ++total;
          if (site_of.at(tgt) == it->second) ++local;
        }
      });
    }
    ASSERT_EQ(total, 540u);  // 2 per object
    const double p = static_cast<double>(local) / static_cast<double>(total);
    EXPECT_NEAR(p, kRandLocality[cls], 0.06)
        << kRandKeys[cls] << ": " << local << "/" << total;
  }
}

TEST(Workload, GraphIdenticalAcrossDeployments) {
  // The paper's key invariant: ids differ (they embed sites), but the
  // *abstract* pointer graph — expressed in object indices — must be
  // identical for 1, 3 and 9 sites.
  WorkloadConfig cfg;
  Deployment d1(1, cfg), d3(3, cfg), d9(9, cfg);

  auto index_of = [](const Deployment& d) {
    std::map<ObjectId, std::size_t> m;
    for (std::size_t i = 0; i < d.pop.ids.size(); ++i) m[d.pop.ids[i]] = i;
    return m;
  };
  auto edges = [&](const Deployment& d, const char* key) {
    auto idx = index_of(d);
    std::vector<std::pair<std::size_t, std::size_t>> out;
    for (auto& store : d.stores) {
      store->for_each([&](const Object& obj) {
        auto it = idx.find(obj.id());
        if (it == idx.end()) return;
        for (const ObjectId& tgt : obj.pointers(key)) {
          out.emplace_back(it->second, idx.at(tgt));
        }
      });
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  for (const char* key : {kChainKey, kTreeKey, kRandKeys[0], kRandKeys[3],
                          kRandKeys[6]}) {
    auto e1 = edges(d1, key);
    auto e3 = edges(d3, key);
    auto e9 = edges(d9, key);
    EXPECT_EQ(e1, e3) << key;
    EXPECT_EQ(e1, e9) << key;
  }
}

TEST(Workload, TreeSpansAllObjectsFromRoot) {
  Deployment d(9);
  std::map<ObjectId, std::vector<ObjectId>> children;
  for (auto& store : d.stores) {
    store->for_each([&](const Object& obj) {
      for (const ObjectId& c : obj.pointers(kTreeKey)) {
        if (c != obj.id()) children[obj.id()].push_back(c);
      }
    });
  }
  std::vector<ObjectId> stack = {d.pop.root};
  std::set<ObjectId> visited;
  while (!stack.empty()) {
    ObjectId cur = stack.back();
    stack.pop_back();
    if (!visited.insert(cur).second) continue;
    for (const ObjectId& c : children[cur]) stack.push_back(c);
  }
  EXPECT_EQ(visited.size(), 270u);
}

TEST(Workload, RootTreePointersReachEveryGroupRemotely) {
  Deployment d(9);
  std::map<ObjectId, SiteId> site_of;
  for (std::size_t i = 0; i < d.pop.ids.size(); ++i) {
    site_of[d.pop.ids[i]] = d.pop.site_of[i];
  }
  const SiteStore& s0 = *d.stores[0];
  const Object* root = s0.get(d.pop.root);
  ASSERT_NE(root, nullptr);
  std::set<SiteId> targets;
  for (const ObjectId& c : root->pointers(kTreeKey)) targets.insert(site_of.at(c));
  // Root points into every one of the 9 sites (its own via the local tree).
  EXPECT_EQ(targets.size(), 9u);
}

TEST(Workload, RootSetAtSiteZero) {
  Deployment d(3);
  auto members = d.stores[0]->set_members(kRootSet);
  ASSERT_TRUE(members.ok());
  ASSERT_EQ(members.value().size(), 1u);
  EXPECT_EQ(members.value()[0], d.pop.root);
  EXPECT_EQ(d.pop.site_of[0], 0u);
}

TEST(Workload, DeterministicForSeed) {
  WorkloadConfig cfg;
  Deployment a(3, cfg), b(3, cfg);
  EXPECT_EQ(a.pop.ids, b.pop.ids);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(a.stores[s]->size(), b.stores[s]->size());
    a.stores[s]->for_each([&](const Object& obj) {
      const Object* other = b.stores[s]->get(obj.id());
      ASSERT_NE(other, nullptr);
      EXPECT_EQ(*other, obj);
    });
  }
  WorkloadConfig cfg2;
  cfg2.seed = 7;
  Deployment c(3, cfg2);
  // Different seed: the random pointers differ somewhere.
  bool any_difference = false;
  for (std::size_t s = 0; s < 3 && !any_difference; ++s) {
    a.stores[s]->for_each([&](const Object& obj) {
      const Object* other = c.stores[s]->get(obj.id());
      if (other == nullptr || !(*other == obj)) any_difference = true;
    });
  }
  EXPECT_TRUE(any_difference);
}

TEST(Workload, HalfSizeVariant) {
  WorkloadConfig cfg;
  cfg.num_objects = 135;
  Deployment d(9, cfg);
  std::size_t total = 0;
  for (auto& s : d.stores) total += s->size();
  EXPECT_EQ(total, 136u);
}

TEST(Workload, BlobPayloadAttached) {
  WorkloadConfig cfg;
  cfg.blob_bytes = 4096;
  Deployment d(1, cfg);
  std::size_t with_body = 0;
  d.stores[0]->for_each([&](const Object& obj) {
    const Tuple* body = obj.find("text", "Body");
    if (body != nullptr) {
      EXPECT_EQ(body->data.as_blob().size(), 4096u);
      ++with_body;
    }
  });
  EXPECT_EQ(with_body, 270u);
}

TEST(Workload, ClosureQueryShape) {
  Query q = closure_query(kTreeKey, kRand10pKey, 5);
  EXPECT_EQ(q.initial_set_name(), kRootSet);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_TRUE(q.validate().ok());
  EXPECT_FALSE(q.count_only());
  Query qc = closure_query(kChainKey, kCommonKey, 1, "D", /*count_only=*/true);
  EXPECT_TRUE(qc.count_only());
}

TEST(Workload, RejectsUnsupportedSiteCounts) {
  std::vector<std::unique_ptr<SiteStore>> stores;
  std::vector<SiteStore*> ptrs;
  for (int i = 0; i < 4; ++i) {
    stores.push_back(std::make_unique<SiteStore>(i));
    ptrs.push_back(stores.back().get());
  }
  EXPECT_THROW(populate_paper_workload(ptrs, WorkloadConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace hyperfile::workload
