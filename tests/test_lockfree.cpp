// Lock-free parallel-drain primitives (DESIGN.md §14): AtomicMarkMap /
// AtomicMarkTable property tests — concurrent set/test never lose a mark,
// test_and_set admits exactly one winner per bit, growth preserves marks —
// and work-stealing drain tests: ParallelExecution agrees with the serial
// engine under both working-set disciplines with no lost or duplicated
// results. Runs in the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "common/sync.hpp"
#include "engine/mark_table.hpp"
#include "engine/parallel_execution.hpp"
#include "engine/worker_pool.hpp"
#include "store/site_store.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

// ---------------------------------------------------------------------------
// AtomicMarkMap
// ---------------------------------------------------------------------------

TEST(AtomicMarkMap, SetTestBasics) {
  AtomicMarkMap map(/*bits_per_key=*/10);
  EXPECT_FALSE(map.test(7, 3));
  EXPECT_FALSE(map.test_any(7));
  map.set(7, 3);
  EXPECT_TRUE(map.test(7, 3));
  EXPECT_FALSE(map.test(7, 4));
  EXPECT_FALSE(map.test(8, 3));
  EXPECT_TRUE(map.test_any(7));
  EXPECT_EQ(map.key_count(), 1u);
  map.set(7, 9);
  EXPECT_TRUE(map.test(7, 9));
  EXPECT_EQ(map.key_count(), 1u);
}

TEST(AtomicMarkMap, TestAndSetReportsPriorState) {
  AtomicMarkMap map(/*bits_per_key=*/4);
  EXPECT_FALSE(map.test_and_set(42, 1));
  EXPECT_TRUE(map.test_and_set(42, 1));
  EXPECT_FALSE(map.test_and_set(42, 2));
}

TEST(AtomicMarkMap, WideBitsetsSpanWords) {
  // bits_per_key > 64 exercises multi-word slots; bits on either side of a
  // word boundary must not alias.
  AtomicMarkMap map(/*bits_per_key=*/130);
  map.set(5, 0);
  map.set(5, 63);
  map.set(5, 64);
  map.set(5, 129);
  EXPECT_TRUE(map.test(5, 0));
  EXPECT_TRUE(map.test(5, 63));
  EXPECT_TRUE(map.test(5, 64));
  EXPECT_TRUE(map.test(5, 129));
  EXPECT_FALSE(map.test(5, 1));
  EXPECT_FALSE(map.test(5, 65));
  EXPECT_FALSE(map.test(5, 128));
}

TEST(AtomicMarkMap, GrowthPreservesEveryMark) {
  // Deliberately undersized: thousands of keys through a 64-slot first
  // segment force the chain to spill repeatedly. Marks must survive growth
  // (slots never move) and key 0 / dense keys must not collide.
  constexpr std::uint64_t kKeys = 5000;
  AtomicMarkMap map(/*bits_per_key=*/6, /*expected_keys=*/4);
  for (std::uint64_t k = 0; k < kKeys; ++k) map.set(k, k % 6);
  EXPECT_GT(map.segment_count(), 1u);
  EXPECT_EQ(map.key_count(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_TRUE(map.test(k, k % 6)) << "key " << k;
    EXPECT_FALSE(map.test(k, (k + 1) % 6)) << "key " << k;
  }
}

TEST(AtomicMarkMap, ConcurrentSetsAreNeverLost) {
  // Property: after all setters join, every (key, bit) any thread set tests
  // true — relaxed mark ordering licenses transient misses *during* the
  // race, never lost marks after it. Threads overlap on a shared key range
  // so the same slots are claimed and fetch_or'd concurrently.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 4000;
  constexpr std::uint64_t kSharedKeys = 512;  // all threads hit these
  AtomicMarkMap map(/*bits_per_key=*/8, /*expected_keys=*/64);  // forces growth

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&map, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const bool shared = rng.next_bool(0.5);
        const std::uint64_t key =
            shared ? rng.next_below(kSharedKeys)
                   : 1'000'000 + static_cast<std::uint64_t>(t) * kPerThread + i;
        map.set(key, static_cast<std::uint32_t>(key % 8));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Replay each thread's deterministic sequence and verify every mark.
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<std::uint64_t>(t));
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      const bool shared = rng.next_bool(0.5);
      const std::uint64_t key =
          shared ? rng.next_below(kSharedKeys)
                 : 1'000'000 + static_cast<std::uint64_t>(t) * kPerThread + i;
      ASSERT_TRUE(map.test(key, static_cast<std::uint32_t>(key % 8)))
          << "thread " << t << " op " << i << " key " << key;
    }
  }
}

TEST(AtomicMarkMap, ConcurrentTestAndSetHasExactlyOneWinner) {
  // The duplicate bound behind the drain's suppression accounting: for any
  // (key, bit), exactly one of N racing test_and_set calls observes "was
  // unset". fetch_or makes this exact, not merely bounded.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 256;
  AtomicMarkMap map(/*bits_per_key=*/2, /*expected_keys=*/32);
  std::vector<std::atomic<int>> winners(kKeys);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t k = 0; k < kKeys; ++k) {
        if (!map.test_and_set(k, 1)) winners[k].fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    EXPECT_EQ(winners[k].load(), 1) << "key " << k;
  }
}

TEST(AtomicMarkMap, ReadersRaceGrowthSafely) {
  // Readers walk the segment chain while writers extend it: a found key
  // stays found, and test() on absent keys stays false (no torn slots).
  AtomicMarkMap map(/*bits_per_key=*/4, /*expected_keys=*/16);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> inserted_up_to{0};

  std::thread writer([&] {
    for (std::uint64_t k = 0; k < 20000; ++k) {
      map.set(k * 2, static_cast<std::uint32_t>(k % 4));  // even keys only
      inserted_up_to.store(k, std::memory_order_release);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    Rng rng(77);
    while (!stop.load()) {
      const std::uint64_t hi = inserted_up_to.load(std::memory_order_acquire);
      const std::uint64_t k = rng.next_below(hi + 1);
      ASSERT_TRUE(map.test(k * 2, static_cast<std::uint32_t>(k % 4)));
      ASSERT_FALSE(map.test_any(k * 2 + 1));  // odd keys never inserted
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(map.key_count(), 20000u);
}

// ---------------------------------------------------------------------------
// AtomicMarkTable
// ---------------------------------------------------------------------------

TEST(AtomicMarkTable, IdentityIgnoresPresumedSite) {
  // presumed_site is a routing hint, not identity: marks set under one hint
  // must be visible under another, exactly as MarkTable's ObjectId equality.
  AtomicMarkTable table(/*filter_count=*/3);
  ObjectId a{/*birth_site=*/1, /*seq=*/42};
  ObjectId b = a;
  b.presumed_site = 2;
  table.set(a, 1);
  EXPECT_TRUE(table.test(b, 1));
  EXPECT_TRUE(table.test_and_set(b, 1));
  EXPECT_EQ(table.marked_objects(), 1u);
}

TEST(AtomicMarkTable, MatchesMarkTableOnRandomOps) {
  // Differential oracle: a deterministic single-threaded op sequence must
  // observe identical answers from the locked and lock-free tables.
  constexpr std::uint32_t kFilters = 5;  // valid indices 1..6
  MarkTable reference(kFilters);
  AtomicMarkTable atomic_table(kFilters);
  Rng rng(4242);
  for (int op = 0; op < 20000; ++op) {
    ObjectId id{static_cast<SiteId>(rng.next_below(3)),
                rng.next_below(500) + 1};
    const auto filter = static_cast<std::uint32_t>(rng.next_below(kFilters + 1) + 1);
    if (rng.next_bool(0.5)) {
      reference.set(id, filter);
      atomic_table.set(id, filter);
    } else {
      ASSERT_EQ(atomic_table.test(id, filter), reference.test(id, filter))
          << "op " << op;
      ASSERT_EQ(atomic_table.test_any(id), reference.test_any(id)) << "op " << op;
    }
  }
  EXPECT_EQ(atomic_table.marked_objects(), reference.marked_objects());
}

// ---------------------------------------------------------------------------
// Work-stealing drain: ParallelExecution vs the serial engine, single site.
// ---------------------------------------------------------------------------

const char* kGraphQuery =
    R"(S [ (pointer, "Edge", ?X) | ^^X ]* (keyword, "hit", ?) (string, "Name", ->n) -> T)";

/// Random local pointer graph: cycles, multi-edges, ~30% hits.
void populate_graph(SiteStore& store, std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::string("Name", "obj" + std::to_string(i)));
    const int out_degree = 1 + static_cast<int>(rng.next_below(3));
    for (int e = 0; e < out_degree; ++e) {
      obj.add(Tuple::pointer("Edge", ids[rng.next_below(n)]));
    }
    if (rng.next_bool(0.3)) obj.add(Tuple::keyword("hit"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));
}

struct DrainObservation {
  std::vector<ObjectId> ids;
  std::vector<Value> names;
};

DrainObservation observe(SiteExecution& exec) {
  EXPECT_TRUE(exec.seed_initial().ok());
  exec.drain();
  EXPECT_TRUE(exec.idle());
  DrainObservation out;
  out.ids = exec.take_result_ids();
  for (auto& r : exec.take_retrieved()) out.names.push_back(std::move(r.value));
  // A second take after the drain must hand over nothing new.
  EXPECT_TRUE(exec.take_result_ids().empty());
  EXPECT_TRUE(exec.take_retrieved().empty());
  return out;
}

class WorkStealingDrain
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, WorkSetDiscipline>> {};

TEST_P(WorkStealingDrain, AgreesWithSerialNoLossNoDuplication) {
  const auto [seed, discipline] = GetParam();
  SiteStore store(0);
  populate_graph(store, seed, 60);
  const Query q = parse_or_die(kGraphQuery);
  ExecutionOptions options;
  options.discipline = discipline;

  QueryExecution serial(q, store, options);
  DrainObservation expected = observe(serial);
  ASSERT_FALSE(expected.ids.empty());
  std::sort(expected.ids.begin(), expected.ids.end());
  std::sort(expected.names.begin(), expected.names.end());

  for (std::size_t workers : {1u, 2u, 4u}) {
    WorkerPool pool(workers);
    ParallelExecution parallel(q, store, pool, options);
    DrainObservation got = observe(parallel);

    // No duplicated results: the id list must already be duplicate-free.
    std::unordered_set<ObjectId> unique(got.ids.begin(), got.ids.end());
    EXPECT_EQ(unique.size(), got.ids.size()) << "workers=" << workers;

    // No lost results: exactly the serial answer.
    std::sort(got.ids.begin(), got.ids.end());
    std::sort(got.names.begin(), got.names.end());
    EXPECT_EQ(got.ids, expected.ids) << "workers=" << workers;
    EXPECT_EQ(got.names, expected.names) << "workers=" << workers;

    const EngineStats s = parallel.stats();
    EXPECT_GE(s.processed, expected.ids.size()) << "workers=" << workers;
    EXPECT_EQ(s.results, expected.ids.size()) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDisciplines, WorkStealingDrain,
    ::testing::Combine(::testing::Values(51u, 52u, 53u, 54u),
                       ::testing::Values(WorkSetDiscipline::kFifo,
                                         WorkSetDiscipline::kLifo)));

TEST(WorkStealingDrain, SingleWorkerIsSerialObservable) {
  // With one worker the engine must visit objects in exactly the serial
  // WorkSet order for both disciplines — result ids in identical sequence,
  // not merely as sets.
  for (auto discipline : {WorkSetDiscipline::kFifo, WorkSetDiscipline::kLifo}) {
    SiteStore store(0);
    populate_graph(store, 99, 40);
    const Query q = parse_or_die(kGraphQuery);
    ExecutionOptions options;
    options.discipline = discipline;

    QueryExecution serial(q, store, options);
    DrainObservation expected = observe(serial);

    WorkerPool pool(1);
    ParallelExecution parallel(q, store, pool, options);
    DrainObservation got = observe(parallel);
    EXPECT_EQ(got.ids, expected.ids)
        << "discipline=" << static_cast<int>(discipline);
  }
}

TEST(WorkStealingDrain, RemoteAndMissingSinksRunOnCallingThread) {
  // Workers buffer remote handoffs and missing ids during the pass; drain()
  // must flush both sinks on the calling (event-loop) thread after the pool
  // joins — the termination accounting upstream depends on it.
  SiteStore store(0);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(store.allocate());
  ObjectId remote_id{/*birth_site=*/7, /*seq=*/1};
  ObjectId dangling = store.allocate();  // allocated but never put()
  for (int i = 0; i < 8; ++i) {
    Object obj(ids[static_cast<std::size_t>(i)]);
    obj.add(Tuple::string("Name", "obj" + std::to_string(i)));
    obj.add(Tuple::pointer("Edge", i + 1 < 8 ? ids[static_cast<std::size_t>(i) + 1]
                                             : remote_id));
    if (i == 3) obj.add(Tuple::pointer("Edge", dangling));
    obj.add(Tuple::keyword("hit"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));

  const std::thread::id caller = std::this_thread::get_id();
  std::vector<WorkItem> remote_items;
  std::vector<ObjectId> missing_ids;
  ExecutionOptions options;
  options.is_local = [&](const ObjectId& id) { return id.birth_site == 0; };
  options.remote_sink = [&](WorkItem&& item) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    remote_items.push_back(std::move(item));
  };
  options.missing_sink = [&](const ObjectId& id) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    missing_ids.push_back(id);
  };

  WorkerPool pool(4);
  ParallelExecution exec(parse_or_die(kGraphQuery), store, pool, options);
  ASSERT_TRUE(exec.seed_initial().ok());
  exec.drain();

  ASSERT_EQ(remote_items.size(), 1u);
  EXPECT_EQ(remote_items[0].id, remote_id);
  ASSERT_EQ(missing_ids.size(), 1u);
  EXPECT_EQ(missing_ids[0], dangling);
  const EngineStats s = exec.stats();
  EXPECT_EQ(s.remote_handoffs, 1u);
  EXPECT_EQ(s.missing, 1u);
}

TEST(WorkStealingDrain, IncrementalDrainsAccumulate) {
  // The distributed runtime alternates add_item() and drain() as remote
  // dereferences arrive; dedup state must persist across passes and takes
  // must stay incremental.
  SiteStore store(0);
  populate_graph(store, 123, 30);
  const Query q = parse_or_die(kGraphQuery);

  QueryExecution serial(q, store);
  DrainObservation expected = observe(serial);
  std::sort(expected.ids.begin(), expected.ids.end());

  WorkerPool pool(2);
  ParallelExecution parallel(q, store, pool);
  ASSERT_TRUE(parallel.seed_initial().ok());
  parallel.drain();
  std::vector<ObjectId> got = parallel.take_result_ids();
  const std::size_t first_batch = got.size();

  // Re-inject every already-processed seed: marks must suppress them all.
  for (const ObjectId& id : got) {
    WorkItem item;
    item.id = id;
    parallel.add_item(std::move(item));
  }
  parallel.drain();
  std::vector<ObjectId> again = parallel.take_result_ids();
  EXPECT_TRUE(again.empty()) << again.size() << " duplicate results leaked";
  EXPECT_EQ(first_batch, expected.ids.size());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected.ids);
}

}  // namespace
}  // namespace hyperfile
