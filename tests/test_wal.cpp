// Write-ahead log (store/wal.hpp): record codec round-trips, torn-tail and
// bit-flip tolerance of replay, append/truncate bookkeeping, and the
// SiteStore integration that makes every acknowledged mutation recoverable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "dist/site_server.hpp"
#include "net/inproc.hpp"
#include "store/site_store.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace hyperfile {
namespace {

std::string temp_path(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/hf_wal_tests";
  std::filesystem::create_directories(dir);
  return dir + "/" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

Object sample_object(const ObjectId& id, int salt) {
  Object obj(id);
  obj.add(Tuple::keyword("hit"));
  obj.add(Tuple::pointer("Reference", ObjectId(2, 7 + salt)));
  return obj;
}

/// Structural equality via the codec: two records are the same iff they
/// encode identically (spares Object an operator==).
void expect_same_record(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(encode_wal_record(a), encode_wal_record(b));
}

std::vector<WalRecord> sample_records() {
  std::vector<WalRecord> recs;
  recs.push_back(WalRecord::put(sample_object(ObjectId(0, 1), 0), 2));
  recs.push_back(WalRecord::put(sample_object(ObjectId(0, 2), 1), 3));
  recs.push_back(WalRecord::erase(ObjectId(0, 1), 3));
  recs.push_back(WalRecord::bind_set("S", ObjectId(0, 2), 3));
  return recs;
}

std::string fresh_log(const std::string& name,
                      const std::vector<WalRecord>& recs) {
  const std::string path = temp_path(name);
  std::filesystem::remove(path);
  auto replay = replay_wal(path);
  EXPECT_TRUE(replay.ok());
  auto wal = WriteAheadLog::open(path, replay.value());
  EXPECT_TRUE(wal.ok());
  for (const auto& rec : recs) {
    EXPECT_TRUE(wal.value().append(rec).ok());
  }
  return path;
}

TEST(WalCodec, RecordsRoundTrip) {
  for (const WalRecord& rec : sample_records()) {
    wire::Bytes payload = encode_wal_record(rec);
    auto back = decode_wal_record(payload);
    ASSERT_TRUE(back.ok()) << back.error().to_string();
    EXPECT_EQ(back.value().op, rec.op);
    EXPECT_EQ(back.value().next_seq, rec.next_seq);
    expect_same_record(back.value(), rec);
  }
}

TEST(WalCodec, RejectsTruncatedAndCorruptPayloads) {
  wire::Bytes payload = encode_wal_record(sample_records()[0]);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    auto r = decode_wal_record(std::span(payload.data(), len));
    EXPECT_FALSE(r.ok()) << "truncated payload of " << len
                         << " bytes decoded anyway";
  }
  wire::Bytes bad = payload;
  bad[0] = 0x7f;  // no such opcode
  EXPECT_FALSE(decode_wal_record(bad).ok());
}

TEST(WalReplayTest, MissingFileIsEmptyLog) {
  const std::string path = temp_path("missing.wal");
  std::filesystem::remove(path);
  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(replay.value().records.empty());
  EXPECT_EQ(replay.value().valid_bytes, 0u);
  EXPECT_FALSE(replay.value().torn);
}

TEST(WalReplayTest, AppendedRecordsReplayInOrder) {
  const auto recs = sample_records();
  const std::string path = fresh_log("ordered.wal", recs);
  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay.value().records.size(), recs.size());
  EXPECT_FALSE(replay.value().torn);
  EXPECT_EQ(replay.value().valid_bytes, read_file(path).size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    expect_same_record(replay.value().records[i], recs[i]);
  }
}

TEST(WalReplayTest, ToleratesTornTailAtEveryTruncationPoint) {
  // A crash can cut the file anywhere. For every prefix: replay must
  // succeed, keep exactly the records that are fully on disk, and report
  // the tear unless the cut lands on a record boundary.
  const auto recs = sample_records();
  const std::string path = fresh_log("torn.wal", recs);
  const std::vector<std::uint8_t> bytes = read_file(path);

  // Record boundaries, recovered by replaying successively longer prefixes.
  std::vector<std::uint64_t> boundaries{0};
  {
    auto full = replay_wal(path);
    ASSERT_TRUE(full.ok());
    ASSERT_EQ(full.value().valid_bytes, bytes.size());
  }

  const std::string cut = temp_path("torn_cut.wal");
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    write_file(cut, std::span(bytes.data(), len));
    auto replay = replay_wal(cut);
    ASSERT_TRUE(replay.ok()) << "replay errored at prefix " << len;
    const auto& got = replay.value();
    ASSERT_LE(got.records.size(), recs.size());
    for (std::size_t i = 0; i < got.records.size(); ++i) {
      expect_same_record(got.records[i], recs[i]);
    }
    EXPECT_LE(got.valid_bytes, len);
    if (got.valid_bytes == len) {
      EXPECT_FALSE(got.torn) << "clean cut at " << len << " reported torn";
      if (boundaries.back() != len) boundaries.push_back(len);
    } else {
      EXPECT_TRUE(got.torn) << "mid-record cut at " << len << " not reported";
    }

    // open() must truncate the tear away so appends extend a clean log.
    auto wal = WriteAheadLog::open(cut, got);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value().byte_size(), got.valid_bytes);
    EXPECT_EQ(read_file(cut).size(), got.valid_bytes);
  }
  // One boundary per record plus the empty prefix.
  EXPECT_EQ(boundaries.size(), recs.size() + 1);
}

TEST(WalReplayTest, BitFlipsNeverCrashAndKeepAPrefix) {
  const auto recs = sample_records();
  const std::string path = fresh_log("flip.wal", recs);
  const std::vector<std::uint8_t> bytes = read_file(path);
  const std::string flipped = temp_path("flip_cut.wal");
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (std::uint8_t bit : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> corrupt = bytes;
      corrupt[pos] ^= bit;
      write_file(flipped, corrupt);
      auto replay = replay_wal(flipped);
      ASSERT_TRUE(replay.ok())
          << "bit flip at " << pos << " made replay error";
      const auto& got = replay.value();
      // Whatever survives must be an untouched prefix of the true history.
      ASSERT_LE(got.records.size(), recs.size());
      for (std::size_t i = 0; i < got.records.size(); ++i) {
        expect_same_record(got.records[i], recs[i]);
      }
    }
  }
}

TEST(WriteAheadLogTest, TruncateDropsEverything) {
  const auto recs = sample_records();
  const std::string path = temp_path("trunc.wal");
  std::filesystem::remove(path);
  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  auto wal = WriteAheadLog::open(path, replay.value());
  ASSERT_TRUE(wal.ok());
  for (const auto& rec : recs) ASSERT_TRUE(wal.value().append(rec).ok());
  EXPECT_EQ(wal.value().record_count(), recs.size());
  EXPECT_GT(wal.value().byte_size(), 0u);

  ASSERT_TRUE(wal.value().truncate().ok());
  EXPECT_EQ(wal.value().record_count(), 0u);
  EXPECT_EQ(wal.value().byte_size(), 0u);
  EXPECT_EQ(read_file(path).size(), 0u);

  // The log keeps working after a truncate.
  ASSERT_TRUE(wal.value().append(recs[0]).ok());
  auto again = replay_wal(path);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().records.size(), 1u);
  expect_same_record(again.value().records[0], recs[0]);
}

TEST(WriteAheadLogTest, ReopenAfterTornTailKeepsAppendsClean) {
  const auto recs = sample_records();
  const std::string path = fresh_log("reopen.wal", recs);
  // Tear mid-record.
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.resize(bytes.size() - 3);
  write_file(path, bytes);

  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(replay.value().torn);
  ASSERT_EQ(replay.value().records.size(), recs.size() - 1);
  {
    auto wal = WriteAheadLog::open(path, replay.value());
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value().append(recs.back()).ok());
  }
  auto healed = replay_wal(path);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.value().torn);
  ASSERT_EQ(healed.value().records.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    expect_same_record(healed.value().records[i], recs[i]);
  }
}

// --- SiteStore integration ---------------------------------------------

/// Recover a fresh store from the log, the way SiteServer does.
SiteStore recover(SiteId site, const std::string& path) {
  SiteStore store(site);
  auto replay = replay_wal(path);
  EXPECT_TRUE(replay.ok());
  for (const auto& rec : replay.value().records) {
    store.apply_wal_record(rec);
  }
  return store;
}

void expect_same_store(SiteStore& a, SiteStore& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const ObjectId& id : a.all_ids()) {
    const Object* oa = a.get(id);
    const Object* ob = b.get(id);
    ASSERT_NE(ob, nullptr) << id.to_string() << " lost";
    expect_same_record(WalRecord::put(*oa, 0), WalRecord::put(*ob, 0));
  }
  auto names_a = a.set_names();
  auto names_b = b.set_names();
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  ASSERT_EQ(names_a, names_b);
  for (const auto& name : names_a) {
    EXPECT_EQ(*a.find_set(name), *b.find_set(name));
  }
  EXPECT_EQ(a.next_seq(), b.next_seq());
}

TEST(WalStoreIntegration, EveryMutationPathIsRecoverable) {
  const std::string path = temp_path("store.wal");
  std::filesystem::remove(path);
  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  auto wal = WriteAheadLog::open(path, replay.value());
  ASSERT_TRUE(wal.ok());

  SiteStore store(0);
  store.attach_wal(&wal.value());
  std::vector<ObjectId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(store.allocate());
  for (int i = 0; i < 6; ++i) {
    store.put(sample_object(ids[i], i));
  }
  ASSERT_TRUE(store
                  .modify(ids[1],
                          [](Object& obj) { obj.add(Tuple::keyword("edited")); })
                  .ok());
  ASSERT_TRUE(store.add_tuple(ids[2], Tuple::keyword("extra")).ok());
  ASSERT_TRUE(store.erase(ids[3]));
  ASSERT_TRUE(store.take(ids[4]).has_value());
  store.create_set("S", std::span<const ObjectId>(ids.data(), 2));
  store.bind_set("Alias", ids[0]);

  SiteStore recovered = recover(0, path);
  expect_same_store(store, recovered);
  // The id allocator is part of the recovered state: a fresh id must not
  // collide with anything ever acknowledged.
  EXPECT_EQ(recovered.allocate(), store.allocate());
}

TEST(WalStoreIntegration, RecoverySurvivesATornLastAppend) {
  const std::string path = temp_path("store_torn.wal");
  std::filesystem::remove(path);
  auto replay = replay_wal(path);
  ASSERT_TRUE(replay.ok());
  auto wal = WriteAheadLog::open(path, replay.value());
  ASSERT_TRUE(wal.ok());

  SiteStore store(0);
  store.attach_wal(&wal.value());
  const ObjectId a = store.allocate();
  const ObjectId b = store.allocate();
  store.put(sample_object(a, 0));
  store.put(sample_object(b, 1));

  // Crash mid-append of a third mutation: chop bytes off the tail.
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.resize(bytes.size() - 2);
  write_file(path, bytes);

  SiteStore recovered = recover(0, path);
  EXPECT_EQ(recovered.size(), 1u);  // the torn record is lost...
  EXPECT_TRUE(recovered.contains(a));
  EXPECT_FALSE(recovered.contains(b));  // ...but nothing before it is
}

TEST(CheckpointCrashWindow, CrashBetweenRenameAndTruncateLosesNothing) {
  // do_checkpoint's publish order is: write tmp snapshot -> rename into
  // place -> fsync the parent directory -> only then truncate the WAL.
  // This test injects a crash inside that window: the new checkpoint is
  // durably installed but the WAL was never truncated, so recovery sees
  // the checkpoint AND every record it already subsumes. Replaying the
  // full log over the checkpoint must be a no-op-on-top, never a
  // corruption or a loss.
  const std::string dir = ::testing::TempDir() + "/hf_ckpt_crash";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  SiteServerOptions options;
  options.wal_dir = dir;
  const std::string base = dir + "/site_0";

  InProcNetwork net(2);
  SiteStore reference(0);
  {
    SiteServer server(net.endpoint(0), SiteStore(0), options);
    std::vector<ObjectId> ids;
    for (int i = 0; i < 5; ++i) ids.push_back(server.store().allocate());
    for (int i = 0; i < 5; ++i) {
      server.store().put(sample_object(ids[i], i));
    }
    ASSERT_TRUE(server.store().erase(ids[4]));
    server.store().create_set("S", std::span<const ObjectId>(ids.data(), 2));

    // The crash-window disk state, built by hand: install the checkpoint
    // exactly as do_checkpoint would (tmp + rename + parent fsync) and
    // then "crash" — the server dies with the WAL untruncated.
    ASSERT_TRUE(save_snapshot(server.store(), base + ".ckpt.tmp").ok());
    ASSERT_EQ(std::rename((base + ".ckpt.tmp").c_str(),
                          (base + ".ckpt").c_str()),
              0);
    ASSERT_TRUE(fsync_parent_dir(base + ".ckpt").ok());
    ASSERT_GT(server.store().wal()->record_count(), 0u)
        << "crash window requires an untruncated WAL";
    reference = server.store();
    reference.attach_wal(nullptr);
  }

  // Recovery from the crash window: checkpoint loads, then the full WAL
  // replays on top of content it already contains.
  SiteServer revived(net.endpoint(1), SiteStore(0), options);
  expect_same_store(reference, revived.store());
  EXPECT_GT(metrics().counter("dist.crash_recoveries").value(), 0u);
}

TEST(CheckpointCrashWindow, CompletedCheckpointRecoversWithoutWal) {
  // Control for the test above: the same sequence with the truncate step
  // completed (a full SiteServer::checkpoint()) recovers from the
  // checkpoint alone — the WAL is empty and stays empty.
  const std::string dir = ::testing::TempDir() + "/hf_ckpt_done";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  SiteServerOptions options;
  options.wal_dir = dir;

  InProcNetwork net(2);
  SiteStore reference(0);
  {
    SiteServer server(net.endpoint(0), SiteStore(0), options);
    std::vector<ObjectId> ids;
    for (int i = 0; i < 5; ++i) ids.push_back(server.store().allocate());
    for (int i = 0; i < 5; ++i) {
      server.store().put(sample_object(ids[i], i));
    }
    ASSERT_TRUE(server.checkpoint().ok());
    EXPECT_EQ(server.store().wal()->record_count(), 0u);
    reference = server.store();
    reference.attach_wal(nullptr);
  }

  SiteServer revived(net.endpoint(1), SiteStore(0), options);
  expect_same_store(reference, revived.store());
  EXPECT_EQ(revived.store().wal()->record_count(), 0u);
}

}  // namespace
}  // namespace hyperfile
