#include <gtest/gtest.h>

#include "engine/local_engine.hpp"
#include "store/gc.hpp"
#include "store/versioning.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

TEST(Gc, CollectsUnreachableKeepsReachable) {
  SiteStore store(0);
  ObjectId a = store.allocate();
  ObjectId b = store.allocate();
  ObjectId orphan = store.allocate();
  store.put(Object(a, {Tuple::pointer("L", b)}));
  store.put(Object(b, {Tuple::keyword("k")}));
  store.put(Object(orphan, {Tuple::keyword("junk")}));
  store.create_set("S", std::vector<ObjectId>{a});

  GcReport report = collect_garbage(store);
  EXPECT_EQ(report.collected, 1u);
  EXPECT_TRUE(store.contains(a));
  EXPECT_TRUE(store.contains(b));
  EXPECT_FALSE(store.contains(orphan));
  EXPECT_GT(report.bytes_reclaimed, 0u);
  // live counts the set object too.
  EXPECT_EQ(report.live, 3u);
}

TEST(Gc, ExtraRootsPinObjects) {
  SiteStore store(0);
  ObjectId pinned = store.put(Object(store.allocate(), {Tuple::keyword("x")}));
  collect_garbage(store, std::vector<ObjectId>{pinned});
  EXPECT_TRUE(store.contains(pinned));
  collect_garbage(store);
  EXPECT_FALSE(store.contains(pinned));
}

TEST(Gc, CyclesOffTheRootsAreCollected) {
  SiteStore store(0);
  ObjectId x = store.allocate();
  ObjectId y = store.allocate();
  store.put(Object(x, {Tuple::pointer("L", y)}));
  store.put(Object(y, {Tuple::pointer("L", x)}));  // unreachable 2-cycle
  ObjectId root = store.put(Object(store.allocate(), {Tuple::keyword("r")}));
  store.create_set("S", std::vector<ObjectId>{root});

  GcReport report = collect_garbage(store);
  EXPECT_EQ(report.collected, 2u);
  EXPECT_FALSE(store.contains(x));
  EXPECT_FALSE(store.contains(y));
  EXPECT_TRUE(store.contains(root));
}

TEST(Gc, SupersededResultSetObjectsAreReclaimed) {
  // Old result-set objects become garbage once their name is rebound —
  // unless still referenced. (create_set itself GCs the direct
  // predecessor; this covers chains created via bind_set shuffling.)
  SiteStore store(0);
  ObjectId doc = store.put(Object(store.allocate(), {Tuple::keyword("k")}));
  store.create_set("S", std::vector<ObjectId>{doc});
  ObjectId old_set = *store.find_set("S");
  // Simulate an application stashing the old set object then rebinding.
  store.bind_set("Old", old_set);
  store.create_set("S", std::vector<ObjectId>{doc});
  collect_garbage(store);
  EXPECT_TRUE(store.contains(old_set));  // still bound as "Old"
  store.bind_set("Old", *store.find_set("S"));
  GcReport report = collect_garbage(store);
  EXPECT_GE(report.collected, 1u);
  EXPECT_FALSE(store.contains(old_set));
}

TEST(Gc, PrunedVersionArchivesBecomeCollectable) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(), {Tuple::number("rev", 1)}));
  store.create_set("Docs", std::vector<ObjectId>{id});
  for (int rev = 2; rev <= 5; ++rev) {
    ASSERT_TRUE(checkpoint_version(store, id, [rev](Object& obj) {
                  obj.remove("number", "rev");
                  obj.add(Tuple::number("rev", rev));
                }).ok());
  }
  // All archives are reachable through the version chain: GC keeps them.
  EXPECT_EQ(collect_garbage(store).collected, 0u);
  // Cut the chain after one archive; the older archives are unreachable.
  ASSERT_EQ(prune_versions(store, id, 1), 3u);
  EXPECT_EQ(collect_garbage(store).collected, 0u);  // prune already erased
  EXPECT_EQ(version_history(store, id).size(), 2u);
}

TEST(Gc, EmptyStoreAndNoRoots) {
  SiteStore store(0);
  GcReport r1 = collect_garbage(store);
  EXPECT_EQ(r1.live, 0u);
  EXPECT_EQ(r1.collected, 0u);

  store.put(Object(store.allocate(), {Tuple::keyword("x")}));
  GcReport r2 = collect_garbage(store);  // no named sets: everything goes
  EXPECT_EQ(r2.collected, 1u);
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace hyperfile
