#include <gtest/gtest.h>

#include "engine/local_engine.hpp"
#include "store/set_algebra.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;

struct Fixture : ::testing::Test {
  void SetUp() override {
    for (int i = 0; i < 6; ++i) {
      ids.push_back(store.put(Object(store.allocate(), {Tuple::number("n", i)})));
    }
    store.create_set("A", std::vector<ObjectId>{ids[0], ids[1], ids[2], ids[3]});
    store.create_set("B", std::vector<ObjectId>{ids[2], ids[3], ids[4]});
  }

  SiteStore store{0};
  std::vector<ObjectId> ids;
};

TEST_F(Fixture, Union) {
  ASSERT_TRUE(set_union(store, "U", "A", "B").ok());
  EXPECT_EQ(store.set_members("U").value(),
            (std::vector<ObjectId>{ids[0], ids[1], ids[2], ids[3], ids[4]}));
}

TEST_F(Fixture, Intersect) {
  ASSERT_TRUE(set_intersect(store, "I", "A", "B").ok());
  EXPECT_EQ(store.set_members("I").value(),
            (std::vector<ObjectId>{ids[2], ids[3]}));
}

TEST_F(Fixture, Difference) {
  ASSERT_TRUE(set_difference(store, "D", "A", "B").ok());
  EXPECT_EQ(store.set_members("D").value(),
            (std::vector<ObjectId>{ids[0], ids[1]}));
  // Non-commutative.
  ASSERT_TRUE(set_difference(store, "D2", "B", "A").ok());
  EXPECT_EQ(store.set_members("D2").value(), (std::vector<ObjectId>{ids[4]}));
}

TEST_F(Fixture, MissingOperandIsError) {
  EXPECT_FALSE(set_union(store, "U", "A", "Nope").ok());
  EXPECT_FALSE(set_intersect(store, "I", "Nope", "B").ok());
}

TEST_F(Fixture, DuplicatesInOperandsCollapse) {
  store.create_set("Dup", std::vector<ObjectId>{ids[0], ids[0], ids[1]});
  ASSERT_TRUE(set_union(store, "U", "Dup", "Dup").ok());
  EXPECT_EQ(store.set_members("U").value(),
            (std::vector<ObjectId>{ids[0], ids[1]}));
}

TEST_F(Fixture, ResultsSeedFurtherQueries) {
  // The whole point: combine query results, query again.
  LocalEngine engine(store);
  ASSERT_TRUE(engine.run(parse_or_die(R"(A (number, "n", [0..1]) -> Small)")).ok());
  ASSERT_TRUE(engine.run(parse_or_die(R"(B (number, "n", [3..9]) -> Big)")).ok());
  ASSERT_TRUE(set_union(store, "Either", "Small", "Big").ok());
  auto r = engine.run(parse_or_die(R"(Either (number, "n", ?) -> T)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids.size(), 4u);  // n in {0,1,3,4}
}

TEST_F(Fixture, SelfOperations) {
  ASSERT_TRUE(set_intersect(store, "I", "A", "A").ok());
  EXPECT_EQ(store.set_members("I").value().size(), 4u);
  ASSERT_TRUE(set_difference(store, "Empty", "A", "A").ok());
  EXPECT_TRUE(store.set_members("Empty").value().empty());
}

}  // namespace
}  // namespace hyperfile
