#include <gtest/gtest.h>

#include "model/type_registry.hpp"
#include "store/site_store.hpp"

namespace hyperfile {
namespace {

TEST(TypeRegistry, BuiltinsValidateStandardTuples) {
  TypeRegistry reg = TypeRegistry::with_builtins();
  EXPECT_TRUE(reg.validate(Tuple::string("Author", "Joe")).ok());
  EXPECT_TRUE(reg.validate(Tuple::number("Year", 1991)).ok());
  EXPECT_TRUE(reg.validate(Tuple::keyword("db")).ok());
  EXPECT_TRUE(reg.validate(Tuple::pointer("Ref", ObjectId(0, 1))).ok());
  EXPECT_TRUE(reg.validate(Tuple::text("Body", "abc")).ok());
  EXPECT_TRUE(reg.validate(Tuple::blob("Bits", {1, 2})).ok());
}

TEST(TypeRegistry, BuiltinsRejectKindMismatches) {
  TypeRegistry reg = TypeRegistry::with_builtins();
  // A "number" tuple holding a string, a "pointer" tuple holding a number.
  EXPECT_FALSE(reg.validate(Tuple("number", "Year", Value::string("1991"))).ok());
  EXPECT_FALSE(reg.validate(Tuple("pointer", "Ref", Value::number(5))).ok());
  // A keyword smuggling data.
  EXPECT_FALSE(reg.validate(Tuple("keyword", "db", Value::string("x"))).ok());
}

TEST(TypeRegistry, ApplicationDefinedType) {
  // The paper's example: Object_Code — string key (structural in our
  // model), arbitrary bits as data.
  TypeRegistry reg = TypeRegistry::with_builtins();
  reg.register_type("Object_Code", DataConstraint::kBlob);
  EXPECT_TRUE(reg.validate(Tuple("Object_Code", "vax", Value::blob({0xDE, 0xAD}))).ok());
  EXPECT_FALSE(reg.validate(Tuple("Object_Code", "vax", Value::string("src"))).ok());
}

TEST(TypeRegistry, UnknownTypesAllowedByDefault) {
  TypeRegistry reg = TypeRegistry::with_builtins();
  EXPECT_TRUE(reg.validate(Tuple("Exotic", "k", Value::number(1))).ok());
  reg.set_reject_unknown(true);
  EXPECT_FALSE(reg.validate(Tuple("Exotic", "k", Value::number(1))).ok());
  reg.register_type("Exotic", DataConstraint::kAny);
  EXPECT_TRUE(reg.validate(Tuple("Exotic", "k", Value::number(1))).ok());
}

TEST(TypeRegistry, ObjectValidationFindsBadTuple) {
  TypeRegistry reg = TypeRegistry::with_builtins();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::string("Title", "ok"));
  obj.add(Tuple("number", "Year", Value::string("not a number")));
  auto r = reg.validate(obj);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("Year"), std::string::npos);
}

TEST(TypeRegistry, PutValidatedGatesTheStore) {
  SiteStore store(0);
  TypeRegistry reg = TypeRegistry::with_builtins();
  Object good(store.allocate(), {Tuple::string("Title", "t")});
  auto ok = store.put_validated(std::move(good), reg);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(store.contains(ok.value()));

  Object bad(store.allocate(), {Tuple("pointer", "Ref", Value::number(1))});
  const ObjectId bad_id = bad.id();
  auto rejected = store.put_validated(std::move(bad), reg);
  EXPECT_FALSE(rejected.ok());
  EXPECT_FALSE(store.contains(bad_id));  // nothing stored on failure
}

TEST(TypeRegistry, RedefinitionWins) {
  TypeRegistry reg;
  reg.register_type("X", DataConstraint::kString);
  EXPECT_FALSE(reg.validate(Tuple("X", "k", Value::number(1))).ok());
  reg.register_type("X", DataConstraint::kNumber);
  EXPECT_TRUE(reg.validate(Tuple("X", "k", Value::number(1))).ok());
  EXPECT_EQ(reg.size(), 1u);
}

}  // namespace
}  // namespace hyperfile
