#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "engine/local_engine.hpp"
#include "index/attribute_index.hpp"
#include "index/reachability_index.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using index::AttributeIndex;
using index::KeywordIndex;
using index::ReachabilityIndex;
using testing::sorted;

SiteStore make_docs() {
  SiteStore store(0);
  for (int i = 0; i < 20; ++i) {
    Object obj(store.allocate());
    obj.add(Tuple::string("Author", i % 2 == 0 ? "alice" : "bob"));
    obj.add(Tuple::number("Year", 1980 + i));
    obj.add(Tuple::keyword(i % 4 == 0 ? "database" : "systems"));
    store.put(std::move(obj));
  }
  return store;
}

TEST(AttributeIndex, ExactLookup) {
  SiteStore store = make_docs();
  AttributeIndex idx(store, "string", "Author");
  EXPECT_EQ(idx.lookup(Value::string("alice")).size(), 10u);
  EXPECT_EQ(idx.lookup(Value::string("bob")).size(), 10u);
  EXPECT_TRUE(idx.lookup(Value::string("carol")).empty());
  EXPECT_EQ(idx.entries(), 20u);
}

TEST(AttributeIndex, RangeLookup) {
  SiteStore store = make_docs();
  AttributeIndex idx(store, "number", "Year");
  EXPECT_EQ(idx.lookup_range(1985, 1989).size(), 5u);
  EXPECT_EQ(idx.lookup_range(0, 3000).size(), 20u);
  EXPECT_TRUE(idx.lookup_range(2100, 2200).empty());
}

TEST(AttributeIndex, MatchesEngineScan) {
  SiteStore store = make_docs();
  store.create_set("All", store.all_ids());
  AttributeIndex idx(store, "string", "Author");

  LocalEngine engine(store);
  auto q = QueryBuilder::from_set("All")
               .select_eq("string", "Author", Value::string("alice"))
               .build();
  auto scanned = engine.run_readonly(q);
  ASSERT_TRUE(scanned.ok());
  // Careful: "All" includes the set object itself? No: all_ids() was taken
  // before create_set, so only the 20 documents.
  EXPECT_EQ(sorted(idx.lookup(Value::string("alice"))),
            sorted(scanned.value().ids));
}

TEST(AttributeIndex, IncrementalMaintenance) {
  SiteStore store = make_docs();
  AttributeIndex idx(store, "string", "Author");
  Object extra(store.allocate());
  extra.add(Tuple::string("Author", "alice"));
  idx.add_object(extra);
  store.put(extra);
  EXPECT_EQ(idx.lookup(Value::string("alice")).size(), 11u);
  idx.remove_object(extra);
  EXPECT_EQ(idx.lookup(Value::string("alice")).size(), 10u);
}

TEST(KeywordIndex, LookupByWord) {
  SiteStore store = make_docs();
  KeywordIndex idx(store);
  EXPECT_EQ(idx.lookup("database").size(), 5u);
  EXPECT_EQ(idx.lookup("systems").size(), 15u);
  EXPECT_TRUE(idx.lookup("networking").empty());
  EXPECT_EQ(idx.words(), 2u);
}

TEST(ReachabilityIndex, ChainClosure) {
  SiteStore store(0);
  auto ids = hyperfile::testing::make_chain(store, 10);
  ReachabilityIndex idx(store, "Reference");
  // From the head, everything strictly downstream is reachable (the head
  // itself is not: no cycle back to it).
  EXPECT_EQ(idx.reachable(ids[0]).size(), 9u);
  EXPECT_TRUE(idx.reaches(ids[0], ids[9]));
  EXPECT_FALSE(idx.reaches(ids[9], ids[0]));
  EXPECT_TRUE(idx.reaches(ids[9], ids[9]));      // tail self-pointer
  EXPECT_EQ(idx.reachable(ids[7]).size(), 2u);   // 8 and 9
}

TEST(ReachabilityIndex, CyclesHandled) {
  SiteStore store(0);
  std::vector<ObjectId> ids = {store.allocate(), store.allocate(), store.allocate()};
  for (int i = 0; i < 3; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Ref", ids[(i + 1) % 3]));
    store.put(std::move(obj));
  }
  ReachabilityIndex idx(store, "Ref");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(idx.reachable(ids[i]).size(), 3u);  // cycle: all incl. self
    for (int j = 0; j < 3; ++j) EXPECT_TRUE(idx.reaches(ids[i], ids[j]));
  }
}

TEST(ReachabilityIndex, MatchesEngineClosure) {
  // Paper use case: "find all documents referenced directly or indirectly
  // by this document that in addition have a given keyword" — index result
  // must equal the engine's traversal.
  SiteStore store(0);
  Rng rng(99);
  constexpr std::size_t kN = 40;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kN; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    for (int e = 0; e < 2; ++e) {
      obj.add(Tuple::pointer("Ref", ids[rng.next_below(kN)]));
    }
    if (rng.next_bool(0.4)) obj.add(Tuple::keyword("hit"));
    store.put(std::move(obj));
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(), 1));

  // Engine: closure + keyword. With ^X (drop source) semantics the root
  // itself is only included if on a cycle; the index-side equivalent is
  // reachable(root) ∩ keyword(hit).
  LocalEngine engine(store);
  auto q = hyperfile::testing::parse_or_die(
      R"(S [ (pointer, "Ref", ?X) | ^^X ]* (keyword, "hit", ?) -> T)");
  auto traversed = engine.run_readonly(q);
  ASSERT_TRUE(traversed.ok());

  ReachabilityIndex reach(store, "Ref");
  KeywordIndex kw(store);
  std::set<ObjectId> reachable;
  reachable.insert(ids[0]);  // ^^ keeps the root in the traversal
  for (const ObjectId& id : reach.reachable(ids[0])) reachable.insert(id);
  std::vector<ObjectId> via_index;
  for (const ObjectId& id : kw.lookup("hit")) {
    if (reachable.count(id) != 0) via_index.push_back(id);
  }
  EXPECT_EQ(sorted(via_index), sorted(traversed.value().ids));
}

TEST(ReachabilityIndex, UnknownIdEmpty) {
  SiteStore store(0);
  ReachabilityIndex idx(store, "Ref");
  EXPECT_TRUE(idx.reachable(ObjectId(9, 9)).empty());
  EXPECT_FALSE(idx.reaches(ObjectId(9, 9), ObjectId(9, 9)));
}

TEST(ReachabilityIndex, WildcardKeyUsesAllPointers) {
  SiteStore store(0);
  ObjectId a = store.allocate(), b = store.allocate(), c = store.allocate();
  Object oa(a);
  oa.add(Tuple::pointer("X", b));
  oa.add(Tuple::pointer("Y", c));
  store.put(std::move(oa));
  store.put(Object(b, {}));
  store.put(Object(c, {}));
  ReachabilityIndex all(store, "");
  EXPECT_EQ(all.reachable(a).size(), 2u);
  ReachabilityIndex only_x(store, "X");
  EXPECT_EQ(only_x.reachable(a).size(), 1u);
}

}  // namespace
}  // namespace hyperfile
