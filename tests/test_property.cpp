// Property tests: on random object graphs, random partitions, and random
// filtering queries, every execution substrate must produce the same result
// set —
//   serial local engine == shared-memory parallel engine
//                       == discrete-event simulation (3 sites)
//                       == threaded distributed cluster (3 sites)
// This is the paper's central correctness claim: distribution (send the
// query along the pointers) changes cost, never answers.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/cluster.hpp"
#include "engine/local_engine.hpp"
#include "engine/parallel_engine.hpp"
#include "sim/simulation.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::sorted;

constexpr std::size_t kSites = 3;
constexpr std::size_t kObjects = 45;

const char* const kPointerKeys[] = {"Ref", "Cite", "Link"};
const char* const kKeywords[] = {"alpha", "beta", "gamma", "delta"};

/// Deterministic random database, generated against any store set.
void populate(Rng& rng, std::vector<SiteStore*> stores,
              std::vector<ObjectId>* out_ids) {
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kObjects; ++i) {
    ids.push_back(stores[i % stores.size()]->allocate());
  }
  for (std::size_t i = 0; i < kObjects; ++i) {
    Object obj(ids[i]);
    for (const char* key : kPointerKeys) {
      const int degree = static_cast<int>(rng.next_below(3));  // 0..2
      for (int e = 0; e < degree; ++e) {
        obj.add(Tuple::pointer(key, ids[rng.next_below(kObjects)]));
      }
    }
    for (const char* kw : kKeywords) {
      if (rng.next_bool(0.4)) obj.add(Tuple::keyword(kw));
    }
    obj.add(Tuple::number("Year", rng.next_range(1980, 1999)));
    obj.add(Tuple::string("Grade", rng.next_bool(0.5) ? "good" : "bad"));
    stores[i % stores.size()]->put(std::move(obj));
  }
  // Initial set: 3 random members, created at site 0.
  std::vector<ObjectId> members;
  for (int i = 0; i < 3; ++i) members.push_back(ids[rng.next_below(kObjects)]);
  stores[0]->create_set("S", members);
  *out_ids = std::move(ids);
}

/// Random but always-valid query over the schema above.
Query random_query(Rng& rng) {
  QueryBuilder b = QueryBuilder::from_set("S");
  const bool loop = rng.next_bool(0.7);
  if (loop) {
    const bool bounded = rng.next_bool(0.5);
    b.begin_iterate(bounded ? 1 + static_cast<std::uint32_t>(rng.next_below(4))
                            : kUnboundedIterations);
    b.select(Pattern::literal("pointer"),
             Pattern::literal(kPointerKeys[rng.next_below(3)]), Pattern::bind("X"));
    if (rng.next_bool(0.8)) {
      b.deref_keep("X");
    } else {
      b.deref_only("X");
    }
    b.end_iterate();
  } else if (rng.next_bool(0.5)) {
    // Straight-line dereference.
    b.select(Pattern::literal("pointer"),
             Pattern::literal(kPointerKeys[rng.next_below(3)]), Pattern::bind("X"));
    b.deref_keep("X");
  }
  switch (rng.next_below(3)) {
    case 0:
      b.select_key("keyword", kKeywords[rng.next_below(4)]);
      break;
    case 1: {
      const std::int64_t lo = rng.next_range(1980, 1995);
      b.select(Pattern::literal("number"), Pattern::literal("Year"),
               Pattern::range(lo, lo + static_cast<std::int64_t>(rng.next_below(10))));
      break;
    }
    case 2:
      b.select_eq("string", "Grade", Value::string("good"));
      break;
  }
  if (rng.next_bool(0.3)) b.retrieve("number", "Year", "year");
  return b.into("T");
}

class Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Equivalence, AllSubstratesAgree) {
  const std::uint64_t seed = GetParam();

  // --- reference: merged single store, serial engine ---
  Rng rng_ref(seed);
  SiteStore merged_a(0), merged_b(1), merged_c(2);
  std::vector<ObjectId> ids;
  populate(rng_ref, {&merged_a, &merged_b, &merged_c}, &ids);
  SiteStore merged(0);
  for (SiteStore* s : {&merged_a, &merged_b, &merged_c}) {
    s->for_each([&](const Object& obj) { merged.put(obj); });
  }
  merged.bind_set("S", *merged_a.find_set("S"));

  Rng rng_q(seed ^ 0xABCDEF);
  for (int qi = 0; qi < 5; ++qi) {
    Query q = random_query(rng_q);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query=" + q.to_string());

    LocalEngine serial(merged);
    auto expected = serial.run_readonly(q);
    ASSERT_TRUE(expected.ok()) << expected.error().to_string();
    auto want_ids = sorted(expected.value().ids);

    // --- shared-memory parallel ---
    ParallelEngine par(merged, 4);
    auto rp = par.run(q);
    ASSERT_TRUE(rp.ok());
    EXPECT_EQ(sorted(rp.value().ids), want_ids) << "parallel engine";

    // --- discrete-event simulation, 3 sites ---
    {
      sim::Simulation s(sim::CostModel::paper_1991(), kSites);
      Rng rng_same(seed);
      std::vector<ObjectId> ids2;
      std::vector<SiteStore*> stores;
      for (SiteId i = 0; i < kSites; ++i) stores.push_back(&s.store(i));
      populate(rng_same, stores, &ids2);
      ASSERT_EQ(ids, ids2);  // deterministic generation
      auto rs = s.run(q);
      ASSERT_TRUE(rs.ok()) << rs.error().to_string();
      EXPECT_EQ(sorted(rs.value().result.ids), want_ids) << "simulation";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u, 99u, 111u, 222u, 333u));

struct ClusterVariant {
  std::uint64_t seed;
  TerminationAlgorithm termination;
  bool batch;
};

class ClusterEquivalence : public ::testing::TestWithParam<ClusterVariant> {};

TEST_P(ClusterEquivalence, ThreadedRuntimeAgrees) {
  const std::uint64_t seed = GetParam().seed;

  Rng rng_ref(seed);
  SiteStore ref_a(0), ref_b(1), ref_c(2);
  std::vector<ObjectId> ids;
  populate(rng_ref, {&ref_a, &ref_b, &ref_c}, &ids);
  SiteStore merged(0);
  for (SiteStore* s : {&ref_a, &ref_b, &ref_c}) {
    s->for_each([&](const Object& obj) { merged.put(obj); });
  }
  merged.bind_set("S", *ref_a.find_set("S"));

  SiteServerOptions options;
  options.termination = GetParam().termination;
  options.batch_remote_derefs = GetParam().batch;
  Cluster cluster(kSites, options);
  {
    Rng rng_same(seed);
    std::vector<ObjectId> ids2;
    std::vector<SiteStore*> stores;
    for (SiteId i = 0; i < kSites; ++i) stores.push_back(&cluster.store(i));
    populate(rng_same, stores, &ids2);
    ASSERT_EQ(ids, ids2);
  }
  cluster.start();

  Rng rng_q(seed ^ 0xABCDEF);
  for (int qi = 0; qi < 3; ++qi) {
    Query q = random_query(rng_q);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query=" + q.to_string());

    LocalEngine serial(merged);
    auto expected = serial.run_readonly(q);
    ASSERT_TRUE(expected.ok());

    auto rc = cluster.client().run(q, Duration(20'000'000));
    ASSERT_TRUE(rc.ok()) << rc.error().to_string();
    EXPECT_EQ(sorted(rc.value().ids), sorted(expected.value().ids));

    // Retrieved values agree as multisets.
    auto vals_want = expected.value().values_for("year");
    auto vals_got = rc.value().values_for("year");
    std::sort(vals_want.begin(), vals_want.end());
    std::sort(vals_got.begin(), vals_got.end());
    EXPECT_EQ(vals_got, vals_want);
  }
  cluster.stop();
}

constexpr auto kWeighted = TerminationAlgorithm::kWeightedMessages;
constexpr auto kDS = TerminationAlgorithm::kDijkstraScholten;

INSTANTIATE_TEST_SUITE_P(
    Seeds, ClusterEquivalence,
    ::testing::Values(ClusterVariant{5u, kWeighted, false},
                      ClusterVariant{15u, kWeighted, false},
                      ClusterVariant{25u, kWeighted, true},
                      ClusterVariant{35u, kWeighted, true},
                      ClusterVariant{45u, kDS, false},
                      ClusterVariant{65u, kDS, false},
                      ClusterVariant{75u, kDS, true},
                      ClusterVariant{85u, kDS, true}));

}  // namespace
}  // namespace hyperfile
