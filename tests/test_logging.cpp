// Logger concurrency regression (ISSUE 2 satellite): the level flag is read
// on every HF_LOG call site from drain workers and network threads while
// set_level() may run concurrently. The flag is a relaxed std::atomic;
// writes are serialized by the logger's internal mutex. This test exists to
// run under TSan in CI — a reintroduced plain-int level or unlocked write
// path shows up as a reported race here.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/logging.hpp"

using namespace hyperfile;

namespace {

/// RAII: restore the global level so the noisy phases of this test don't
/// leak into other tests' output expectations.
struct LevelGuard {
  LogLevel saved = Logger::instance().level();
  ~LevelGuard() { Logger::instance().set_level(saved); }
};

}  // namespace

TEST(Logging, ConcurrentLoggingFromEightThreads) {
  LevelGuard guard;
  // kError keeps the HF_WARN/HF_DEBUG lines below suppressed (quiet test
  // output) while still exercising the enabled() fast path concurrently;
  // the HF_ERROR lines exercise the locked write path.
  Logger::instance().set_level(LogLevel::kError);

  constexpr int kThreads = 8;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        HF_DEBUG << "thread " << t << " iteration " << i;   // suppressed
        HF_WARN << "thread " << t << " iteration " << i;    // suppressed
        if (i == kIterations / 2) {
          HF_ERROR << "thread " << t << " midpoint";        // written
        }
      }
    });
  }
  for (auto& th : threads) th.join();
}

TEST(Logging, ConcurrentSetLevelAndRead) {
  LevelGuard guard;
  constexpr int kFlips = 2000;
  std::thread flipper([] {
    for (int i = 0; i < kFlips; ++i) {
      Logger::instance().set_level(i % 2 == 0 ? LogLevel::kOff
                                              : LogLevel::kError);
    }
    Logger::instance().set_level(LogLevel::kOff);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 7; ++t) {
    readers.emplace_back([] {
      for (int i = 0; i < kFlips; ++i) {
        // Each call races set_level(); the only acceptable outcomes are
        // "line printed" or "line suppressed", never a torn level.
        (void)Logger::instance().enabled(LogLevel::kError);
        HF_ERROR << "racing line " << i;
      }
    });
  }
  flipper.join();
  for (auto& th : readers) th.join();
}

TEST(Logging, LevelRoundTrips) {
  LevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    Logger::instance().set_level(level);
    EXPECT_EQ(Logger::instance().level(), level);
  }
}

TEST(Logging, EnabledHonorsThreshold) {
  LevelGuard guard;
  Logger::instance().set_level(LogLevel::kWarn);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}
