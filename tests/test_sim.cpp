// Discrete-event simulator: determinism, result equivalence with the real
// engines, and cost-model arithmetic against the paper's measured constants.
#include <gtest/gtest.h>

#include "engine/local_engine.hpp"
#include "sim/simulation.hpp"
#include "test_helpers.hpp"
#include "workload/paper_workload.hpp"

namespace hyperfile {
namespace {

using sim::CostModel;
using sim::Simulation;
using testing::parse_or_die;
using testing::sorted;

/// Paper workload loaded into a simulation of `sites` sites.
struct SimFixture {
  Simulation sim;
  workload::PopulatedWorkload pop;

  explicit SimFixture(std::size_t sites, workload::WorkloadConfig cfg = {},
                      CostModel costs = CostModel::paper_1991())
      : sim(costs, sites) {
    std::vector<SiteStore*> stores;
    for (SiteId s = 0; s < sites; ++s) stores.push_back(&sim.store(s));
    pop = workload::populate_paper_workload(stores, cfg);
  }
};

TEST(Simulation, DeterministicAcrossRuns) {
  SimFixture f(9);
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  auto a = f.sim.run(q);
  auto b = f.sim.run(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().response_time, b.value().response_time);
  EXPECT_EQ(sorted(a.value().result.ids), sorted(b.value().result.ids));
  EXPECT_EQ(a.value().stats.deref_messages, b.value().stats.deref_messages);
}

TEST(Simulation, ResultsMatchSingleSiteEngine) {
  // The same workload on 1 / 3 / 9 simulated sites yields identical result
  // sets *as index sets* (ids differ across deployments by construction).
  workload::WorkloadConfig cfg;
  SimFixture f1(1, cfg), f3(3, cfg), f9(9, cfg);

  for (const char* key :
       {workload::kChainKey, workload::kTreeKey, workload::kRandKeys[6]}) {
    Query q = workload::closure_query(key, workload::kRand10pKey, 5);
    auto r1 = f1.sim.run(q);
    auto r3 = f3.sim.run(q);
    auto r9 = f9.sim.run(q);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r3.ok());
    ASSERT_TRUE(r9.ok());

    auto to_indices = [](const SimFixture& f, const std::vector<ObjectId>& ids) {
      std::vector<std::size_t> idx;
      for (const ObjectId& id : ids) {
        auto it = std::find(f.pop.ids.begin(), f.pop.ids.end(), id);
        EXPECT_NE(it, f.pop.ids.end());
        idx.push_back(static_cast<std::size_t>(it - f.pop.ids.begin()));
      }
      std::sort(idx.begin(), idx.end());
      return idx;
    };
    EXPECT_EQ(to_indices(f1, r1.value().result.ids),
              to_indices(f3, r3.value().result.ids))
        << key;
    EXPECT_EQ(to_indices(f1, r1.value().result.ids),
              to_indices(f9, r9.value().result.ids))
        << key;
  }
}

TEST(Simulation, SingleSiteCostArithmetic) {
  // Paper: 270 objects x 8 ms + ~27 results x 20 ms + fixed overhead ≈ 2.7 s.
  SimFixture f(1);
  Query q = workload::closure_query(workload::kChainKey, workload::kRand10pKey, 5);
  auto r = f.sim.run(q);
  ASSERT_TRUE(r.ok());
  const auto& out = r.value();
  EXPECT_EQ(out.stats.objects_processed, 270u);
  EXPECT_EQ(out.stats.deref_messages, 0u);

  const CostModel costs;
  const auto expected =
      costs.query_setup + costs.query_reply +
      Duration(270 * costs.process_object.count()) +
      Duration(static_cast<std::int64_t>(out.result.ids.size()) *
               costs.result_insert.count()) +
      Duration(static_cast<std::int64_t>(out.stats.suppressed_pops) *
               costs.suppressed_pop.count());
  EXPECT_EQ(out.response_time, expected);
  // In the right ballpark of the paper's 2.7 s.
  EXPECT_GT(out.response_time, Duration(2'000'000));
  EXPECT_LT(out.response_time, Duration(3'500'000));
}

TEST(Simulation, ChainSerializesMessageCost) {
  // Paper: the all-remote chain takes ~15 s on 3 or 9 machines — every hop
  // pays the full message cost on the critical path.
  workload::WorkloadConfig cfg;
  SimFixture f3(3, cfg), f9(9, cfg);
  Query q = workload::closure_query(workload::kChainKey, workload::kRand10pKey, 5);
  auto r3 = f3.sim.run(q);
  auto r9 = f9.sim.run(q);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r9.ok());
  // 269 remote hops x (8 + 50) ms ≈ 15.6 s, plus result traffic.
  for (const auto* r : {&r3.value(), &r9.value()}) {
    EXPECT_GT(r->response_time, Duration(14'000'000));
    EXPECT_LT(r->response_time, Duration(19'000'000));
    EXPECT_GE(r->stats.deref_messages, 269u);
  }
}

TEST(Simulation, TreeParallelismBeatsSingleSite) {
  // Paper: 1.5 s on 3 machines, 1.0 s on 9, vs 2.7 s on one.
  workload::WorkloadConfig cfg;
  SimFixture f1(1, cfg), f3(3, cfg), f9(9, cfg);
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  auto r1 = f1.sim.run(q);
  auto r3 = f3.sim.run(q);
  auto r9 = f9.sim.run(q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r9.ok());
  EXPECT_LT(r3.value().response_time, r1.value().response_time);
  EXPECT_LT(r9.value().response_time, r3.value().response_time);
}

TEST(Simulation, FreeCostModelCountsOnly) {
  SimFixture f(3, {}, CostModel::free());
  Query q = workload::closure_query(workload::kTreeKey, workload::kCommonKey, 1);
  auto r = f.sim.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().response_time, Duration(0));
  EXPECT_EQ(r.value().result.ids.size(), 270u);  // Common key selects all
}

TEST(Simulation, CountOnlyAndContinuation) {
  SimFixture f(3);
  Query q1 = workload::closure_query(workload::kTreeKey, workload::kCommonKey, 1,
                                     "D", /*count_only=*/true);
  auto r1 = f.sim.run(q1);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1.value().result.count_only);
  EXPECT_EQ(r1.value().result.total_count, 270u);
  EXPECT_TRUE(r1.value().result.ids.empty());

  // Continuation over the distributed set.
  Query q2 = QueryBuilder::from_set("D")
                 .select(Pattern::literal(workload::kSearchType),
                         Pattern::literal(workload::kRand10pKey),
                         Pattern::literal(std::int64_t{5}))
                 .into("U");
  auto r2 = f.sim.run(q2);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r2.value().result.ids.size(), 10u);
  EXPECT_LT(r2.value().result.ids.size(), 50u);
  // Counts arrived by StartQuery fanout, not by re-traversing pointers.
  EXPECT_EQ(r2.value().stats.deref_messages, 0u);
  EXPECT_EQ(r2.value().stats.start_messages, 2u);
}

TEST(Simulation, CountOnlySkipsResultShipping) {
  // The Section 5 optimisation: for low-selectivity queries, count_only
  // must be significantly faster than shipping all ids.
  workload::WorkloadConfig cfg;
  SimFixture a(3, cfg), b(3, cfg);
  Query ship = workload::closure_query(workload::kTreeKey, workload::kCommonKey, 1);
  Query count = workload::closure_query(workload::kTreeKey, workload::kCommonKey, 1,
                                        "D", /*count_only=*/true);
  auto rs = a.sim.run(ship);
  auto rc = b.sim.run(count);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rc.ok());
  EXPECT_LT(rc.value().response_time, rs.value().response_time);
}

TEST(Simulation, BatchedDerefsSameResultsFewerMessages) {
  workload::WorkloadConfig cfg;
  sim::SimOptions batch_opts;
  batch_opts.batch_derefs = true;

  Simulation plain(CostModel::paper_1991(), 3);
  Simulation batched(CostModel::paper_1991(), 3, batch_opts);
  for (Simulation* s : {&plain, &batched}) {
    std::vector<SiteStore*> stores;
    for (SiteId i = 0; i < 3; ++i) stores.push_back(&s->store(i));
    workload::populate_paper_workload(stores, cfg);
  }

  // Low locality: many remote pointers per drain -> batching collapses them.
  Query q = workload::closure_query(workload::kRandKeys[0],
                                    workload::kRand10pKey, 5);
  auto rp = plain.run(q);
  auto rb = batched.run(q);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(sorted(rp.value().result.ids), sorted(rb.value().result.ids));
  EXPECT_EQ(rb.value().stats.deref_messages, 0u);
  EXPECT_GT(rb.value().stats.batch_messages, 0u);
  EXPECT_LT(rb.value().stats.batch_messages, rp.value().stats.deref_messages);
}

TEST(Simulation, InvalidQueryAndSiteErrors) {
  SimFixture f(3);
  Query bad;  // no initial set
  EXPECT_FALSE(f.sim.run(bad).ok());
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  EXPECT_FALSE(f.sim.run(q, /*origin=*/99).ok());
  // Unknown named set.
  auto missing = f.sim.run(parse_or_die(R"(Nope (?, ?, ?) -> T)"));
  EXPECT_FALSE(missing.ok());
}

TEST(Simulation, BusyTimesAndBytesTracked) {
  SimFixture f(9);
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  auto r = f.sim.run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().stats.busy.size(), 9u);
  EXPECT_GT(r.value().stats.max_busy(), Duration(0));
  EXPECT_GT(r.value().stats.bytes_on_wire, 0u);
  // Messages are small: average well under 200 bytes (paper: ~40 bytes).
  EXPECT_LT(r.value().stats.bytes_on_wire /
                (r.value().stats.deref_messages + r.value().stats.result_messages),
            200u);
}

}  // namespace
}  // namespace hyperfile
