// WorkerPool lifecycle edges (ISSUE 2 satellite): construction/destruction
// orderings, pass reuse, degenerate sizes, and exception propagation. Runs
// in the TSan CI job — several tests exist purely to give the sanitizer
// schedules to chew on.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "engine/worker_pool.hpp"

using namespace hyperfile;

TEST(WorkerPool, DestructionWithoutEverRunning) {
  // Workers park on the wake condition immediately; the destructor must
  // wake and join them without a pass ever existing.
  WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
}

TEST(WorkerPool, DestructionWithQueuedWork) {
  // A pass that fans out plenty of increments, destroyed immediately after
  // run() returns: the join inside run() is the quiescence point, so
  // destruction must find every worker idle and no count lost.
  std::atomic<int> done{0};
  {
    WorkerPool pool(4);
    pool.run([&](std::size_t) {
      for (int i = 0; i < 1000; ++i) done.fetch_add(1);
    });
  }
  EXPECT_EQ(done.load(), 4 * 1000);
}

TEST(WorkerPool, ZeroWorkerPoolClampsToOne) {
  // workers == 0 still yields a functioning single-worker pool: run() must
  // execute the task exactly once and return.
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> runs{0};
  pool.run([&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 1);
}

TEST(WorkerPool, ResubmitAfterJoin) {
  // Back-to-back passes on one pool: generation counting must isolate the
  // passes (a worker that saw pass N may not re-enter it as pass N+1).
  WorkerPool pool(3);
  for (int pass = 0; pass < 50; ++pass) {
    std::atomic<int> runs{0};
    pool.run([&](std::size_t) { runs.fetch_add(1); });
    ASSERT_EQ(runs.load(), 3) << "pass " << pass;
  }
}

TEST(WorkerPool, TaskThrowPropagatesToRun) {
  WorkerPool pool(4);
  std::atomic<int> attempts{0};
  EXPECT_THROW(
      pool.run([&](std::size_t) {
        attempts.fetch_add(1);
        throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // Every worker ran the task (the pass completes despite the throws).
  EXPECT_EQ(attempts.load(), 4);
}

TEST(WorkerPool, PoolSurvivesThrowingPass) {
  // The first_error_ slot must reset between passes: after a throwing pass
  // the pool keeps working and a clean pass does not rethrow stale errors.
  WorkerPool pool(2);
  EXPECT_THROW(pool.run([](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<int> runs{0};
  pool.run([&](std::size_t) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 2);
}

TEST(WorkerPool, FirstExceptionWins) {
  // Multiple workers throw; exactly one exception surfaces and the rest are
  // swallowed after the pass completes.
  WorkerPool pool(8);
  try {
    pool.run([](std::size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(WorkerPool, WorkersReceiveStableDistinctIndices) {
  // Per-worker state (work-stealing queues, scratch buffers) keys off the
  // index run() passes: every pass must hand out exactly 0..size-1, once
  // each.
  WorkerPool pool(4);
  for (int pass = 0; pass < 20; ++pass) {
    std::vector<std::atomic<int>> seen(4);
    pool.run([&](std::size_t w) {
      ASSERT_LT(w, 4u);
      seen[w].fetch_add(1);
    });
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "worker " << i;
    }
  }
}

TEST(WorkerPool, ManySmallPassesUnderContention) {
  // Stress the wake/done handshake: tiny tasks make generation bumps and
  // completion notifications race as hard as they can.
  WorkerPool pool(8);
  std::atomic<std::uint64_t> total{0};
  for (int pass = 0; pass < 200; ++pass) {
    pool.run([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 8u * 200u);
}
