// Live object migration (paper Section 4): objects move between running
// sites without stopping queries or rewriting pointers; stale hints chase
// through forwarding and the birth site stays the final arbiter.
#include <gtest/gtest.h>

#include <filesystem>

#include "dist/cluster.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

const char* kClosure =
    R"(S [ (pointer, "Ref", ?X) | ^^X ]* (keyword, "hit", ?) -> T)";

/// a(site0) -> b(site1) -> c(site2), all tagged; set S = {a} at site 0.
std::vector<ObjectId> populate(Cluster& cluster) {
  std::vector<ObjectId> ids;
  for (SiteId s = 0; s < 3; ++s) ids.push_back(cluster.store(s).allocate());
  for (std::size_t i = 0; i < 3; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Ref", ids[(i + 1) % 3]));
    obj.add(Tuple::keyword("hit"));
    cluster.store(i).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

TEST(Migration, LiveMoveKeepsQueriesWorking) {
  Cluster cluster(3);
  auto ids = populate(cluster);
  cluster.start();

  auto before = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value().ids.size(), 3u);

  // Move b from site 1 to site 2 while everything runs.
  auto moved = cluster.client().move(ids[1], 2);
  ASSERT_TRUE(moved.ok()) << moved.error().to_string();
  EXPECT_EQ(moved.value(), 2u);
  EXPECT_TRUE(cluster.server(1).running());  // nothing stopped

  // Same query: pointers still carry the stale hint (site 1), which
  // forwards to the new home.
  auto after = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(after.ok()) << after.error().to_string();
  EXPECT_EQ(sorted(after.value().ids), sorted(before.value().ids));
}

TEST(Migration, MoveToCurrentHomeIsNoop) {
  Cluster cluster(3);
  auto ids = populate(cluster);
  cluster.start();
  auto moved = cluster.client().move(ids[1], 1);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 1u);
}

TEST(Migration, MoveUnknownObjectFails) {
  Cluster cluster(3);
  populate(cluster);
  cluster.start();
  auto moved = cluster.client().move(ObjectId(0, 4242), 1);
  EXPECT_FALSE(moved.ok());
}

TEST(Migration, ChainedMovesResolveThroughBirthSite) {
  Cluster cluster(3);
  auto ids = populate(cluster);
  cluster.start();

  // b: 1 -> 2 -> 0. The original pointers still presume site 1.
  ASSERT_TRUE(cluster.client().move(ids[1], 2).ok());
  ASSERT_TRUE(cluster.client().move(ObjectId(ids[1].birth_site, ids[1].seq, 2), 0).ok());

  auto r = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().ids.size(), 3u);

  // A second client command with the ORIGINAL stale hint also chases fine.
  auto moved = cluster.client().move(ids[1], 1);
  ASSERT_TRUE(moved.ok()) << moved.error().to_string();
  EXPECT_EQ(moved.value(), 1u);
  auto r2 = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().ids.size(), 3u);
}

TEST(Migration, RepeatedQueriesUnderMoveChurn) {
  Cluster cluster(3);
  auto ids = populate(cluster);
  cluster.start();
  Query q = parse_or_die(kClosure);
  SiteId home = 1;
  for (int round = 0; round < 10; ++round) {
    const SiteId next = (home + 1) % 3;
    ASSERT_TRUE(cluster.client().move(
        ObjectId(ids[1].birth_site, ids[1].seq, home), next).ok())
        << "round " << round;
    home = next;
    auto r = cluster.client().run(q);
    ASSERT_TRUE(r.ok()) << "round " << round;
    EXPECT_EQ(r.value().ids.size(), 3u) << "round " << round;
  }
}

TEST(Migration, SurvivesSnapshotRestart) {
  // Move an object, persist the deployment, reload it fresh: the restored
  // birth site must still know where the object went (the persisted name
  // registry), so stale pointers keep resolving.
  const std::string dir = ::testing::TempDir() + "/hf_migration_snap";
  std::filesystem::create_directories(dir);
  std::vector<ObjectId> ids;
  {
    Cluster original(3);
    ids = populate(original);
    original.start();
    ASSERT_TRUE(original.client().move(ids[1], 2).ok());
    // Let the LocationUpdate reach the birth site before stopping.
    auto check = original.client().run(parse_or_die(kClosure));
    ASSERT_TRUE(check.ok());
    ASSERT_EQ(check.value().ids.size(), 3u);
    original.stop();
    ASSERT_TRUE(original.save_snapshots(dir).ok());
  }
  Cluster restored(3);
  ASSERT_TRUE(restored.load_snapshots(dir).ok());
  restored.start();
  // Pointers still presume site 1; only the persisted registry can route.
  auto r = restored.client().run(parse_or_die(kClosure), Duration(10'000'000));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().ids.size(), 3u);
  restored.stop();
}

}  // namespace
}  // namespace hyperfile
