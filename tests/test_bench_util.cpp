// bench_util regression coverage: the BENCH JSON writer must round-trip
// doubles exactly (it used to quantize to 6 significant digits, hiding
// small commit-to-commit perf shifts), degenerate series must not leak the
// 1e300 min-sentinel, and every BENCH artifact embeds the metrics registry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_util.hpp"

namespace hyperfile::bench {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The double rendered after `"<key>": ` in `json`, parsed back.
double field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing from " << json;
  if (pos == std::string::npos) return 0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

TEST(JsonSink, DoublesRoundTripAtFullPrecision) {
  const std::string path = ::testing::TempDir() + "BENCH_roundtrip.json";
  // Values that 6-significant-digit formatting visibly corrupts.
  const double mean = 0.1 + 0.2;        // 0.30000000000000004
  const double min = 1.0 / 3.0;
  const double max = 123456.789012345;
  const double counter = 1e-9 + 2e-18;

  std::vector<std::string> args = {"bench", "--json", path};
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  int argc = static_cast<int>(argv.size());
  JsonSink sink("roundtrip", &argc, argv.data());
  EXPECT_EQ(argc, 1);  // --json consumed
  EXPECT_EQ(sink.path(), path);

  BenchRecord rec;
  rec.config = "precision";
  rec.mean = mean;
  rec.min = min;
  rec.max = max;
  rec.counters = {{"tiny", counter}};
  sink.add(std::move(rec));
  ASSERT_TRUE(sink.write());

  const std::string json = slurp(path);
  // Bit-exact recovery, not approximate: the artifact is the measurement.
  EXPECT_EQ(field(json, "mean"), mean);
  EXPECT_EQ(field(json, "min"), min);
  EXPECT_EQ(field(json, "max"), max);
  EXPECT_EQ(field(json, "tiny"), counter);
}

TEST(JsonSink, EmbedsTheMetricsRegistry) {
  const std::string path = ::testing::TempDir() + "BENCH_metrics.json";
  metrics().counter("test.bench.probe").inc();
  std::vector<std::string> args = {"bench", "--json", path};
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  int argc = static_cast<int>(argv.size());
  JsonSink sink("metrics", &argc, argv.data());
  ASSERT_TRUE(sink.write());
  const std::string json = slurp(path);
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"test.bench.probe\""), std::string::npos);
}

TEST(RunSeries, ZeroRunsReportsZeroedStatsNotSentinels) {
  workload::WorkloadConfig cfg;
  cfg.num_objects = 30;  // keep the fixture cheap; never queried anyway
  PaperSim ps(1, cfg);
  const SeriesStats s = run_series(ps, "Tree", "Rand10p", 10, /*runs=*/0);
  EXPECT_EQ(s.mean_sec, 0.0);  // not 0/0
  EXPECT_EQ(s.min_sec, 0.0);   // not the 1e300 sentinel
  EXPECT_EQ(s.max_sec, 0.0);
  EXPECT_EQ(s.mean_derefs, 0.0);
}

TEST(TimeWall, ZeroRunsNeverInvokesOrDividesByZero) {
  int calls = 0;
  const WallStats w = time_wall([&] { ++calls; }, /*runs=*/0, /*warmup=*/0);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(w.runs, 0);
  EXPECT_EQ(w.mean_ms, 0.0);
  EXPECT_EQ(w.min_ms, 0.0);
  // Warmup still runs when requested, but the stats stay zeroed.
  const WallStats w2 = time_wall([&] { ++calls; }, /*runs=*/0, /*warmup=*/2);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(w2.min_ms, 0.0);
}

}  // namespace
}  // namespace hyperfile::bench
