#include <gtest/gtest.h>

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "store/site_store.hpp"
#include "store/snapshot.hpp"

namespace hyperfile {
namespace {

TEST(SiteStore, AllocatePutGet) {
  SiteStore store(3);
  ObjectId id = store.allocate();
  EXPECT_EQ(id.birth_site, 3u);
  EXPECT_EQ(id.presumed_site, 3u);

  Object obj(id);
  obj.add(Tuple::string("k", "v"));
  store.put(obj);
  ASSERT_TRUE(store.contains(id));
  EXPECT_EQ(*store.get(id), obj);
  EXPECT_EQ(store.size(), 1u);
}

TEST(SiteStore, PutAssignsIdWhenInvalid) {
  SiteStore store(0);
  Object obj;
  obj.add(Tuple::string("k", "v"));
  ObjectId id = store.put(std::move(obj));
  EXPECT_TRUE(id.valid());
  EXPECT_TRUE(store.contains(id));
}

TEST(SiteStore, PutOverwrites) {
  SiteStore store(0);
  ObjectId id = store.allocate();
  store.put(Object(id, {Tuple::string("v", "1")}));
  store.put(Object(id, {Tuple::string("v", "2")}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.get(id)->find("string", "v")->data.as_string(), "2");
}

TEST(SiteStore, EraseAndTake) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(), {Tuple::string("k", "v")}));
  auto taken = store.take(id);
  ASSERT_TRUE(taken.has_value());
  EXPECT_FALSE(store.contains(id));
  EXPECT_FALSE(store.take(id).has_value());
  EXPECT_FALSE(store.erase(id));
}

TEST(SiteStore, ForeignBornObjectsAccepted) {
  // After a move, a site stores an object born elsewhere.
  SiteStore store(1);
  Object obj(ObjectId(0, 99));
  obj.add(Tuple::string("k", "v"));
  store.put(obj);
  EXPECT_TRUE(store.contains(ObjectId(0, 99)));
}

TEST(SiteStore, NamedSetsAreObjects) {
  SiteStore store(0);
  std::vector<ObjectId> members = {store.allocate(), store.allocate()};
  for (auto id : members) store.put(Object(id, {Tuple::keyword("x")}));

  ObjectId set_id = store.create_set("S", members);
  ASSERT_TRUE(store.contains(set_id));  // the set is itself an object
  auto got = store.set_members("S");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), members);

  // The set object follows the paper's representation: pointer tuples.
  EXPECT_EQ(store.get(set_id)->pointers(kSetMemberKey).size(), 2u);
}

TEST(SiteStore, UnknownSetIsError) {
  SiteStore store(0);
  auto got = store.set_members("missing");
  EXPECT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, Errc::kNotFound);
}

TEST(SiteStore, RebindingSetReplaces) {
  SiteStore store(0);
  std::vector<ObjectId> a = {store.put(Object(store.allocate(), {}))};
  std::vector<ObjectId> b = {store.put(Object(store.allocate(), {}))};
  store.create_set("S", a);
  store.create_set("S", b);
  EXPECT_EQ(store.set_members("S").value(), b);
}

TEST(SiteStore, RebindingSetCollectsOldSetObject) {
  SiteStore store(0);
  std::vector<ObjectId> members = {store.put(Object(store.allocate(), {}))};
  ObjectId first = store.create_set("S", members);
  const std::size_t size_after_first = store.size();
  ObjectId second = store.create_set("S", members);
  EXPECT_NE(first, second);
  EXPECT_FALSE(store.contains(first));  // materialized set object collected
  EXPECT_EQ(store.size(), size_after_first);
}

TEST(SiteStore, RebindingDoesNotCollectApplicationObjects) {
  // An application object bound as a set via bind_set must survive rebinds.
  SiteStore store(0);
  ObjectId member = store.put(Object(store.allocate(), {}));
  ObjectId app_obj = store.put(Object(
      store.allocate(), {Tuple::pointer(kSetMemberKey, member),
                         Tuple::string("Title", "my reading list")}));
  store.bind_set("S", app_obj);
  std::vector<ObjectId> members = {member};
  store.create_set("S", members);
  EXPECT_TRUE(store.contains(app_obj));
}

TEST(SiteStore, StatsCountObjectsTuplesBytes) {
  SiteStore store(0);
  store.put(Object(store.allocate(),
                   {Tuple::string("a", "1"), Tuple::string("b", "2")}));
  store.put(Object(store.allocate(), {Tuple::text("Body", std::string(100, 'x'))}));
  auto stats = store.stats();
  EXPECT_EQ(stats.objects, 2u);
  EXPECT_EQ(stats.tuples, 3u);
  EXPECT_GT(stats.bytes, 100u);
}

TEST(SiteStore, ModifyEditsInPlace) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(), {Tuple::string("v", "1")}));
  ASSERT_TRUE(store.modify(id, [](Object& obj) {
    obj.add(Tuple::keyword("edited"));
  }).ok());
  EXPECT_EQ(store.get(id)->size(), 2u);
  // Identity is immutable even if the mutator tries to change it.
  ASSERT_TRUE(store.modify(id, [](Object& obj) {
    obj.set_id(ObjectId(9, 9));
  }).ok());
  EXPECT_TRUE(store.contains(id));
  EXPECT_EQ(store.get(id)->id(), id);
}

TEST(SiteStore, ModifyMissingIsNotFound) {
  SiteStore store(0);
  auto r = store.modify(ObjectId(0, 99), [](Object&) {});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(SiteStore, TupleLevelEdits) {
  SiteStore store(0);
  ObjectId id = store.put(Object(store.allocate(), {Tuple::string("Title", "v1")}));

  ASSERT_TRUE(store.add_tuple(id, Tuple::keyword("draft")).ok());
  EXPECT_EQ(store.get(id)->size(), 2u);

  // set_tuple replaces all (type, key) occurrences.
  ASSERT_TRUE(store.add_tuple(id, Tuple::string("Title", "v1-dup")).ok());
  ASSERT_TRUE(store.set_tuple(id, "string", "Title", Value::string("v2")).ok());
  auto titles = store.get(id)->find_all("string", "Title");
  ASSERT_EQ(titles.size(), 1u);
  EXPECT_EQ(titles[0]->data.as_string(), "v2");

  auto removed = store.remove_tuples(id, "keyword", "draft");
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1u);
  EXPECT_EQ(store.get(id)->find("keyword", "draft"), nullptr);

  // set_tuple on a fresh key appends.
  ASSERT_TRUE(store.set_tuple(id, "number", "Year", Value::number(1991)).ok());
  EXPECT_EQ(store.get(id)->find("number", "Year")->data.as_number(), 1991);
}

TEST(Snapshot, RoundTripsObjectsSetsAndAllocator) {
  SiteStore store(2);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(store.put(Object(
        store.allocate(),
        {Tuple::string("n", std::to_string(i)), Tuple::pointer("Link", ObjectId(1, 7))})));
  }
  store.create_set("S", ids);

  auto bytes = snapshot_store(store);
  auto restored = restore_store(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error().to_string();
  const SiteStore& r = restored.value();
  EXPECT_EQ(r.site(), store.site());
  EXPECT_EQ(r.size(), store.size());
  for (auto id : ids) {
    ASSERT_TRUE(r.contains(id));
    EXPECT_EQ(*r.get(id), *store.get(id));
  }
  EXPECT_EQ(r.set_members("S").value(), ids);
  // Allocator continues where it left off: new ids don't collide.
  SiteStore r2 = std::move(restored).value();
  ObjectId fresh = r2.allocate();
  EXPECT_FALSE(r2.contains(fresh));
}

TEST(Snapshot, RejectsGarbage) {
  std::vector<std::uint8_t> garbage = {1, 2, 3, 4};
  EXPECT_FALSE(restore_store(garbage).ok());
}

TEST(Snapshot, DetectsCorruption) {
  SiteStore store(0);
  store.put(Object(store.allocate(), {Tuple::string("k", "v")}));
  auto bytes = snapshot_store(store);
  ASSERT_TRUE(restore_store(bytes).ok());
  // Flip one bit anywhere: the checksum must catch it.
  for (std::size_t pos : {std::size_t{0}, bytes.size() / 2, bytes.size() - 1}) {
    auto corrupted = bytes;
    corrupted[pos] ^= 0x01;
    auto r = restore_store(corrupted);
    EXPECT_FALSE(r.ok()) << "flip at " << pos;
  }
  // Truncation is caught too.
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(restore_store(truncated).ok());
}

// --- Systematic corruption: restore_store must reject damage, never crash
// or partially populate (it is the recovery path a crashed site trusts). ---

std::vector<std::uint8_t> corruption_sample() {
  SiteStore store(1);
  std::vector<ObjectId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(store.put(Object(
        store.allocate(), {Tuple::string("n", std::to_string(i)),
                           Tuple::pointer("Link", ObjectId(0, 3))})));
  }
  store.create_set("S", ids);
  return snapshot_store(store);
}

TEST(Snapshot, EveryTruncationPointIsRejected) {
  const auto bytes = corruption_sample();
  ASSERT_TRUE(restore_store(bytes).ok());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    auto r = restore_store(std::span(bytes.data(), len));
    EXPECT_FALSE(r.ok()) << "truncation to " << len << " bytes restored";
  }
}

TEST(Snapshot, EveryBitFlipIsRejected) {
  const auto bytes = corruption_sample();
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    for (std::uint8_t bit : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      auto corrupted = bytes;
      corrupted[pos] ^= bit;
      EXPECT_FALSE(restore_store(corrupted).ok())
          << "flip of bit " << int(bit) << " at " << pos << " restored";
    }
  }
}

TEST(Snapshot, TrailingGarbageIsRejected) {
  auto bytes = corruption_sample();
  bytes.push_back(0x00);
  EXPECT_FALSE(restore_store(bytes).ok());
}

TEST(Snapshot, RestoredAllocatorNeverReusesALocalId) {
  // Objects stored under explicit local ids (never allocate()d) leave the
  // recorded next_seq behind the highest local sequence; a restored store
  // must still never hand such an id out again.
  SiteStore store(0);
  store.put(Object(ObjectId(0, 100), {Tuple::string("k", "v")}));
  ASSERT_EQ(store.next_seq(), 1u);
  auto restored = restore_store(snapshot_store(store));
  ASSERT_TRUE(restored.ok());
  SiteStore r = std::move(restored).value();
  const ObjectId fresh = r.allocate();
  EXPECT_FALSE(r.contains(fresh)) << "allocator reused a restored id";
  EXPECT_GT(fresh.seq, 100u);
}

TEST(Snapshot, FileRoundTrip) {
  SiteStore store(0);
  store.put(Object(store.allocate(), {Tuple::string("k", "v")}));
  const std::string path = ::testing::TempDir() + "/hf_snapshot_test.bin";
  ASSERT_TRUE(save_snapshot(store, path).ok());
  auto loaded = load_snapshot(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 1u);
  std::remove(path.c_str());
}

TEST(Snapshot, LoadMissingFileIsIoError) {
  auto r = load_snapshot("/nonexistent/path/snap.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kIo);
}

}  // namespace
}  // namespace hyperfile
