// Differential suite for WAL-shipped hot-standby replication (DESIGN.md
// §18): whatever the wire does to the shipped stream — duplicate frames,
// reordering, drops, a mid-stream checkpoint truncation, a follower
// restart — the follower's shadow store must converge to *exactly* the
// primary's content, never a divergent one. The positional watermark makes
// duplicates no-ops and turns every gap into a resubscribe, so the only
// acceptable end states are "identical" or "still catching up".
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "common/metrics.hpp"
#include "dist/cluster.hpp"
#include "dist/site_server.hpp"
#include "net/faulty.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

/// Content equality between a primary store and a shadow: same objects
/// (tuple-for-tuple) and same named-set bindings. next_seq is deliberately
/// excluded — it is allocator state, not replicated content.
bool stores_equal(const SiteStore& primary, const SiteStore& shadow,
                  std::string* why = nullptr) {
  if (primary.size() != shadow.size()) {
    if (why) {
      *why = "size " + std::to_string(primary.size()) + " vs " +
             std::to_string(shadow.size());
    }
    return false;
  }
  bool equal = true;
  primary.for_each([&](const Object& obj) {
    const Object* other = shadow.get(obj.id());
    if (other == nullptr || !(*other == obj)) {
      equal = false;
      if (why) *why = "object " + obj.id().to_string() + " differs";
    }
  });
  auto a_sets = primary.set_names();
  auto b_sets = shadow.set_names();
  std::sort(a_sets.begin(), a_sets.end());
  std::sort(b_sets.begin(), b_sets.end());
  if (a_sets != b_sets) {
    if (why) *why = "set names differ";
    return false;
  }
  for (const auto& name : a_sets) {
    if (primary.find_set(name) != shadow.find_set(name)) {
      equal = false;
      if (why) *why = "set binding " + name + " differs";
    }
  }
  return equal;
}

/// In-proc cluster with replication on (ring auto-assignment: site i ships
/// to site i+1) and every server endpoint optionally wrapped in a fault
/// injector. Client links stay reliable, like the chaos suite.
struct ReplCluster {
  std::string wal_dir;
  std::unique_ptr<Cluster> cluster;
  std::vector<FaultInjectingEndpoint*> injectors;

  explicit ReplCluster(const std::string& tag,
                       const FaultOptions* faults = nullptr,
                       std::size_t sites = 3) {
    wal_dir = ::testing::TempDir() + "/hf_repl_" + tag;
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    SiteServerOptions options;
    options.wal_dir = wal_dir;
    options.replication_interval = Duration(5'000);
    options.context_ttl = Duration(400'000);
    options.retry_backoff = Duration(100);
    injectors.resize(sites, nullptr);
    Cluster::EndpointDecorator decorate;
    if (faults != nullptr) {
      FaultOptions base = *faults;
      decorate = [this, base, sites](SiteId site,
                                     std::unique_ptr<MessageEndpoint> inner)
          -> std::unique_ptr<MessageEndpoint> {
        FaultOptions o = base;
        o.seed = base.seed * 1000 + site + 1;
        o.exempt.push_back(static_cast<SiteId>(sites));
        auto ep = std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
        injectors[site] = ep.get();
        return ep;
      };
    }
    cluster = std::make_unique<Cluster>(sites, options, /*clients=*/1,
                                        std::move(decorate));
  }

  ~ReplCluster() { std::filesystem::remove_all(wal_dir); }
};

/// One live-mutation round against `site`: puts (some overwriting), a
/// tuple edit, an erase, and a set rebind — every WAL record kind the
/// shadow must replay faithfully. Returns the ids it created.
std::vector<ObjectId> mutate_round(Cluster& cluster, SiteId site, int round) {
  std::vector<ObjectId> ids;
  EXPECT_TRUE(cluster.server(site)
                  .run_exclusive([&]() -> Result<void> {
                    SiteStore& store = cluster.store(site);
                    for (int i = 0; i < 4; ++i) {
                      Object obj(store.allocate());
                      obj.add(Tuple::string(
                          "Name", "r" + std::to_string(round) + "." +
                                      std::to_string(i)));
                      if (i % 2 == 0) obj.add(Tuple::keyword("hit"));
                      ids.push_back(store.put(std::move(obj)));
                    }
                    // Overwrite: same id, different tuples — an out-of-order
                    // replay of these two puts diverges the shadow.
                    Object again(ids[0]);
                    again.add(Tuple::string("Name", "rewritten"));
                    again.add(Tuple::number("Round", round));
                    store.put(std::move(again));
                    (void)store.set_tuple(ids[1], "string", "Name",
                                          Value::string("edited"));
                    store.erase(ids[3]);
                    ids.pop_back();
                    store.create_set(
                        "R" + std::to_string(round),
                        std::span<const ObjectId>(ids.data(), 2));
                    return {};
                  })
                  .ok());
  return ids;
}

/// Poll until `follower`'s shadow of `primary` matches the primary's live
/// store content and the watermark covers the primary's known WAL tail.
void wait_converged(Cluster& cluster, SiteId primary, SiteId follower,
                    std::vector<FaultInjectingEndpoint*>* injectors = nullptr) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::string why = "no probe yet";
  for (;;) {
    // Fault injectors release held (delayed/reordered) frames on recv
    // ticks; flushing makes the schedule lossless-eventually without
    // waiting on traffic.
    if (injectors != nullptr) {
      for (auto* inj : *injectors) {
        if (inj != nullptr) inj->flush_held();
      }
    }
    auto probe = cluster.server(follower).replica_probe(primary);
    if (probe.exists && probe.covers_tail) {
      SiteStore truth = cluster.server(primary).store_copy();
      if (stores_equal(truth, probe.shadow, &why)) return;
    } else if (probe.exists) {
      why = "watermark behind primary tail";
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "shadow of site " << primary << " at site " << follower
        << " never converged: " << why;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(Replication, FollowerConvergesToPrimaryContent) {
  ReplCluster repl("clean");
  Cluster& cluster = *repl.cluster;
  // Pre-start population lands in the WAL too (the store is WAL-attached
  // from construction), so the follower must recover it via catchup.
  for (int i = 0; i < 6; ++i) {
    Object obj(cluster.store(0).allocate());
    obj.add(Tuple::string("Name", "seed" + std::to_string(i)));
    cluster.store(0).put(std::move(obj));
  }
  cluster.start();
  for (int round = 0; round < 5; ++round) mutate_round(cluster, 0, round);
  wait_converged(cluster, /*primary=*/0, /*follower=*/1);
  EXPECT_GT(metrics().counter("dist.replica_applies").value() +
                metrics().counter("dist.replica_catchups").value(),
            0u);
  cluster.stop();
}

TEST(Replication, EverySiteShipsToItsRingFollower) {
  ReplCluster repl("ring");
  Cluster& cluster = *repl.cluster;
  cluster.start();
  for (SiteId s = 0; s < cluster.size(); ++s) {
    mutate_round(cluster, s, 100 + static_cast<int>(s));
  }
  for (SiteId s = 0; s < cluster.size(); ++s) {
    const SiteId follower = static_cast<SiteId>((s + 1) % cluster.size());
    wait_converged(cluster, s, follower);
  }
  cluster.stop();
}

TEST(Replication, DuplicatedSegmentsApplyExactlyOnce) {
  FaultOptions faults;
  faults.dup_p = 0.5;
  faults.seed = 21;
  ReplCluster repl("dup", &faults);
  Cluster& cluster = *repl.cluster;
  cluster.start();
  for (int round = 0; round < 8; ++round) mutate_round(cluster, 0, round);
  wait_converged(cluster, 0, 1, &repl.injectors);
  // The equality above is the real assertion: a double-applied overwrite
  // or erase would have left the shadow on a stale value. The counter is
  // corroboration that duplicates actually arrived and were suppressed.
  EXPECT_GT(metrics().counter("dist.dedup_hits").value() +
                metrics().counter("dist.replica_duplicate_segments").value(),
            0u);
  cluster.stop();
}

TEST(Replication, ReorderedAndDelayedSegmentsNeverDivergeTheShadow) {
  FaultOptions faults;
  faults.reorder_p = 0.4;
  faults.delay_p = 0.3;
  faults.seed = 22;
  ReplCluster repl("reorder", &faults);
  Cluster& cluster = *repl.cluster;
  cluster.start();
  for (int round = 0; round < 8; ++round) {
    mutate_round(cluster, 0, round);
    // Interleave so segments ship between rounds and can be reordered
    // against each other, not just within one burst.
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
  }
  wait_converged(cluster, 0, 1, &repl.injectors);
  cluster.stop();
}

TEST(Replication, DroppedSegmentsGapIsResubscribedAround) {
  FaultOptions faults;
  faults.drop_p = 0.25;
  faults.seed = 23;
  ReplCluster repl("drop", &faults);
  Cluster& cluster = *repl.cluster;
  cluster.start();
  for (int round = 0; round < 8; ++round) {
    mutate_round(cluster, 0, round);
    std::this_thread::sleep_for(std::chrono::milliseconds(8));
  }
  // A dropped segment leaves the follower behind; the next shipped range
  // no longer starts at its watermark, so it resubscribes from where it
  // stands and the primary re-ships the missing bytes.
  wait_converged(cluster, 0, 1, &repl.injectors);
  cluster.stop();
}

TEST(Replication, CheckpointTruncationForcesMidStreamCatchup) {
  ReplCluster repl("ckpt");
  Cluster& cluster = *repl.cluster;
  cluster.start();
  for (int round = 0; round < 3; ++round) mutate_round(cluster, 0, round);
  wait_converged(cluster, 0, 1);
  const auto probe_before = cluster.server(1).replica_probe(0);
  const std::uint64_t catchups_before =
      metrics().counter("dist.replica_catchups").value();

  // Checkpoint truncates the WAL and rolls the ship generation: every
  // offset the follower holds is now meaningless, and tail replay must
  // give way to a snapshot catchup.
  ASSERT_TRUE(cluster.server(0).checkpoint().ok());
  for (int round = 3; round < 6; ++round) mutate_round(cluster, 0, round);
  wait_converged(cluster, 0, 1);

  const auto probe_after = cluster.server(1).replica_probe(0);
  EXPECT_GT(probe_after.ship_epoch, probe_before.ship_epoch)
      << "follower still on the pre-truncation WAL generation";
  EXPECT_GT(metrics().counter("dist.replica_catchups").value(),
            catchups_before);
  cluster.stop();
}

TEST(Replication, RestartedFollowerRebuildsItsShadowFromScratch) {
  ReplCluster repl("follower_restart");
  Cluster& cluster = *repl.cluster;
  cluster.start();
  for (int round = 0; round < 3; ++round) mutate_round(cluster, 0, round);
  wait_converged(cluster, 0, 1);

  // The shadow is in-memory only: a follower crash loses it, and the
  // revived follower must resubscribe from nothing (epoch 0) — which the
  // primary answers with a full snapshot catchup, not a tail.
  cluster.kill_site(1);
  for (int round = 3; round < 6; ++round) mutate_round(cluster, 0, round);
  ASSERT_TRUE(cluster.restart_site(1).ok());
  wait_converged(cluster, 0, 1);
  cluster.stop();
}

TEST(Replication, VolatileClusterNeverShips) {
  // No wal_dir: replication is configured but there is nothing durable to
  // ship; the option is inert rather than half-working (DESIGN.md §18).
  SiteServerOptions options;
  options.replication_interval = Duration(5'000);
  Cluster cluster(2, options);
  cluster.start();
  const std::uint64_t shipped_before =
      metrics().counter("dist.wal_segments_shipped").value();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(metrics().counter("dist.wal_segments_shipped").value(),
            shipped_before);
  auto probe = cluster.server(1).replica_probe(0);
  EXPECT_FALSE(probe.covers_tail && probe.exists && probe.shadow.size() > 0);
  cluster.stop();
}

}  // namespace
}  // namespace hyperfile
