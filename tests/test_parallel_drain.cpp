// Multi-worker site drains (SiteServerOptions::drain_workers): the
// distributed runtime with each site draining its working set on a shared
// worker pool must be observationally identical to the serial event-loop
// drain — same result ids, same retrieved values, clean global termination
// under both detectors, on both transports.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "common/rng.hpp"
#include "dist/cluster.hpp"
#include "engine/local_engine.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

const char* kClosure =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)";

/// Round-robin chain over the cluster's sites (as in test_dist.cpp):
/// "Reference" pointers, keyword "hit" at every third object, set "S" at
/// site 0 holds the head.
std::vector<ObjectId> populate_chain(Cluster& cluster, std::size_t n) {
  const std::size_t sites = cluster.size();
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(cluster.store(i % sites).allocate());
  }
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::string("Name", "obj" + std::to_string(i)));
    obj.add(Tuple::pointer("Reference", i + 1 < n ? ids[i + 1] : ids[i]));
    if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
    cluster.store(i % sites).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

/// Expected result computed on a merged single-site replica.
QueryResult expected_on_merged(Cluster& cluster, const Query& q) {
  SiteStore merged(0);
  for (SiteId s = 0; s < cluster.size(); ++s) {
    cluster.store(s).for_each([&](const Object& obj) { merged.put(obj); });
    for (const auto& name : cluster.store(s).set_names()) {
      merged.bind_set(name, *cluster.store(s).find_set(name));
    }
  }
  LocalEngine engine(merged);
  auto r = engine.run_readonly(q);
  EXPECT_TRUE(r.ok());
  return r.value_or(QueryResult{});
}

/// Poll until every site has discarded its query context (QueryDone races
/// with the client reply).
void expect_contexts_drop_to_zero(Cluster& cluster) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::size_t live = 0;
    for (SiteId s = 0; s < cluster.size(); ++s) {
      live += cluster.server(s).context_count();
    }
    if (live == 0) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << live << " contexts still alive";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

TEST(ParallelDrain, ChainMatchesMergedExpected) {
  SiteServerOptions options;
  options.drain_workers = 4;
  Cluster cluster(3, options);
  populate_chain(cluster, 30);
  Query q = parse_or_die(kClosure);
  QueryResult expected = expected_on_merged(cluster, q);

  cluster.start();
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(sorted(r.value().ids), sorted(expected.ids));
  EXPECT_EQ(r.value().ids.size(), 10u);
  expect_contexts_drop_to_zero(cluster);
  cluster.stop();
}

TEST(ParallelDrain, RetrievalValuesFlowBack) {
  SiteServerOptions options;
  options.drain_workers = 4;
  Cluster cluster(3, options);
  populate_chain(cluster, 12);
  cluster.start();
  auto r = cluster.client().run(parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) (string, "Name", ->name) -> T)"));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  auto names = r.value().values_for("name");
  ASSERT_EQ(names.size(), 4u);
  std::vector<std::string> strs;
  for (const auto& v : names) strs.push_back(v.as_string());
  std::sort(strs.begin(), strs.end());
  EXPECT_EQ(strs, (std::vector<std::string>{"obj0", "obj3", "obj6", "obj9"}));
  cluster.stop();
}

TEST(ParallelDrain, CountOnlyDistributedSetAndContinuation) {
  SiteServerOptions options;
  options.drain_workers = 4;
  Cluster cluster(3, options);
  populate_chain(cluster, 30);
  cluster.start();

  auto r1 = cluster.client().run(parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) count -> D)"));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  EXPECT_TRUE(r1.value().count_only);
  EXPECT_EQ(r1.value().total_count, 10u);
  EXPECT_TRUE(r1.value().ids.empty());

  // Continuation over the distributed set: each site seeds its retained
  // portion into a fresh (parallel) execution.
  auto r2 = cluster.client().run(
      parse_or_die(R"(D (string, "Name", /obj[0-9]$/) -> U)"));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(r2.value().ids.size(), 4u);  // obj0, obj3, obj6, obj9
  cluster.stop();
}

TEST(ParallelDrain, ConcurrentClientsShareOnePoolPerSite) {
  SiteServerOptions options;
  options.drain_workers = 2;
  Cluster cluster(3, options, /*clients=*/2);
  populate_chain(cluster, 30);
  cluster.start();

  std::vector<std::size_t> counts(2, 0);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < 2; ++c) {
    threads.emplace_back([&, c] {
      auto r = cluster.client(c).run(parse_or_die(kClosure));
      if (r.ok()) counts[c] = r.value().ids.size();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counts[0], 10u);
  EXPECT_EQ(counts[1], 10u);
  expect_contexts_drop_to_zero(cluster);
  cluster.stop();
}

TEST(ParallelDrain, EngineStatsAggregatedAcrossWorkers) {
  SiteServerOptions options;
  options.drain_workers = 2;
  Cluster cluster(3, options);
  populate_chain(cluster, 30);
  cluster.start();
  auto r = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(r.ok());
  cluster.stop();

  EngineStats total = cluster.engine_stats();
  // Every chain object is processed at least once; benign duplicate
  // processing may push the count higher but never lower.
  EXPECT_GE(total.processed, 30u);
  EXPECT_EQ(total.results, 10u);
}

// ---------------------------------------------------------------------------
// Property: for random cross-site graphs, drain_workers ∈ {0, 4} produce the
// same result-id set and the same retrieved-value set, under both
// termination detectors, and every context is discarded after QueryDone.

struct GraphObservation {
  std::vector<ObjectId> ids;
  std::vector<Value> names;
};

const char* kGraphQuery =
    R"(S [ (pointer, "Edge", ?X) | ^^X ]* (keyword, "hit", ?) (string, "Name", ->n) -> T)";

/// Populate a random 3-site graph: 1-3 "Edge" pointers per object (cycles
/// and cross-site hops), ~30% tagged "hit", every object named. Object ids
/// are allocated deterministically, so the same seed builds the same graph
/// in any deployment.
template <typename StoreAt>
void populate_random_graph(std::uint64_t seed, std::size_t sites,
                           StoreAt&& store_at) {
  Rng rng(seed);
  constexpr std::size_t kN = 45;
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kN; ++i) {
    ids.push_back(store_at(i % sites).allocate());
  }
  for (std::size_t i = 0; i < kN; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::string("Name", "obj" + std::to_string(i)));
    const int out_degree = 1 + static_cast<int>(rng.next_below(3));
    for (int e = 0; e < out_degree; ++e) {
      obj.add(Tuple::pointer("Edge", ids[rng.next_below(kN)]));
    }
    if (rng.next_bool(0.3)) obj.add(Tuple::keyword("hit"));
    store_at(i % sites).put(std::move(obj));
  }
  store_at(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
}

GraphObservation run_inproc(std::uint64_t seed, std::size_t workers,
                            TerminationAlgorithm algo, bool legacy = false) {
  SiteServerOptions options;
  options.drain_workers = workers;
  options.termination = algo;
  options.legacy_drain = legacy;
  Cluster cluster(3, options);
  populate_random_graph(seed, 3,
                        [&](std::size_t s) -> SiteStore& { return cluster.store(s); });
  cluster.start();
  auto r = cluster.client().run(parse_or_die(kGraphQuery));
  EXPECT_TRUE(r.ok()) << r.error().to_string();
  GraphObservation out;
  if (r.ok()) {
    out.ids = sorted(r.value().ids);
    out.names = r.value().values_for("n");
    std::sort(out.names.begin(), out.names.end());
  }
  expect_contexts_drop_to_zero(cluster);
  cluster.stop();
  return out;
}

class ParallelDrainProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, TerminationAlgorithm>> {};

TEST_P(ParallelDrainProperty, SerialAndParallelAgreeInProc) {
  const auto [seed, algo] = GetParam();
  GraphObservation serial = run_inproc(seed, 0, algo);
  GraphObservation parallel = run_inproc(seed, 4, algo);
  ASSERT_FALSE(serial.ids.empty());  // seed object always reachable
  EXPECT_EQ(parallel.ids, serial.ids);
  EXPECT_EQ(parallel.names, serial.names);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlgos, ParallelDrainProperty,
    ::testing::Combine(
        ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u),
        ::testing::Values(TerminationAlgorithm::kWeightedMessages,
                          TerminationAlgorithm::kDijkstraScholten)));

// --- old engine vs new engine ----------------------------------------------

TEST(ParallelDrain, LegacyAndCurrentEnginesAgree) {
  // Differential check against the frozen pre-overhaul engine
  // (engine/legacy_drain.hpp, the bench baseline): same graphs, same
  // answers, serial and parallel — the perf work is behavior-preserving.
  for (std::uint64_t seed : {61u, 62u, 63u}) {
    for (std::size_t workers : {0u, 4u}) {
      GraphObservation legacy = run_inproc(
          seed, workers, TerminationAlgorithm::kWeightedMessages, true);
      GraphObservation current = run_inproc(
          seed, workers, TerminationAlgorithm::kWeightedMessages, false);
      ASSERT_FALSE(legacy.ids.empty());
      EXPECT_EQ(current.ids, legacy.ids)
          << "seed=" << seed << " workers=" << workers;
      EXPECT_EQ(current.names, legacy.names)
          << "seed=" << seed << " workers=" << workers;
    }
  }
}

// --- the same property over real TCP sockets -------------------------------

struct TcpGraphDeployment {
  std::vector<std::unique_ptr<SiteServer>> servers;
  std::unique_ptr<Client> client;
  bool ok = false;

  TcpGraphDeployment(std::uint64_t seed, SiteServerOptions options) {
    constexpr SiteId kSites = 3;
    std::vector<TcpPeer> zeros(kSites + 1, TcpPeer{"127.0.0.1", 0});
    std::vector<std::unique_ptr<TcpNetwork>> nets;
    for (SiteId s = 0; s <= kSites; ++s) {
      auto net = TcpNetwork::create(s, zeros);
      if (!net.ok()) return;  // no sockets in this environment
      nets.push_back(std::move(net).value());
    }
    for (auto& net : nets) {
      for (SiteId peer = 0; peer <= kSites; ++peer) {
        net->update_peer(peer, {"127.0.0.1", nets[peer]->bound_port()});
      }
    }

    std::vector<SiteStore> stores;
    for (SiteId s = 0; s < kSites; ++s) stores.emplace_back(s);
    populate_random_graph(seed, kSites,
                          [&](std::size_t s) -> SiteStore& { return stores[s]; });

    for (SiteId s = 0; s < kSites; ++s) {
      servers.push_back(std::make_unique<SiteServer>(
          std::move(nets[s]), std::move(stores[s]), options));
      servers.back()->start();
    }
    client = std::make_unique<Client>(std::move(nets[kSites]), 0);
    ok = true;
  }

  ~TcpGraphDeployment() {
    for (auto& s : servers) s->stop();
  }
};

class ParallelDrainTcpProperty
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, TerminationAlgorithm>> {};

TEST_P(ParallelDrainTcpProperty, SerialAndParallelAgreeOverSockets) {
  const auto [seed, algo] = GetParam();

  auto observe = [](TcpGraphDeployment& d) -> GraphObservation {
    GraphObservation out;
    auto r = d.client->run(parse_or_die(kGraphQuery), Duration(15'000'000));
    EXPECT_TRUE(r.ok()) << r.error().to_string();
    if (r.ok()) {
      out.ids = sorted(r.value().ids);
      out.names = r.value().values_for("n");
      std::sort(out.names.begin(), out.names.end());
    }
    // Contexts drop to zero here too (QueryDone races with the reply).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
      std::size_t live = 0;
      for (auto& server : d.servers) live += server->context_count();
      if (live == 0) break;
      EXPECT_LT(std::chrono::steady_clock::now(), deadline)
          << live << " contexts still alive";
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return out;
  };

  SiteServerOptions options;
  options.termination = algo;

  options.drain_workers = 0;
  TcpGraphDeployment serial_dep(seed, options);
  if (!serial_dep.ok) GTEST_SKIP() << "no localhost sockets";
  GraphObservation serial = observe(serial_dep);

  options.drain_workers = 4;
  TcpGraphDeployment parallel_dep(seed, options);
  if (!parallel_dep.ok) GTEST_SKIP() << "no localhost sockets";
  GraphObservation parallel = observe(parallel_dep);

  ASSERT_FALSE(serial.ids.empty());
  EXPECT_EQ(parallel.ids, serial.ids);
  EXPECT_EQ(parallel.names, serial.names);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlgos, ParallelDrainTcpProperty,
    ::testing::Combine(
        ::testing::Values(21u, 22u),
        ::testing::Values(TerminationAlgorithm::kWeightedMessages,
                          TerminationAlgorithm::kDijkstraScholten)));

}  // namespace
}  // namespace hyperfile
