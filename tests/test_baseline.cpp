#include <gtest/gtest.h>

#include "baseline/file_server.hpp"
#include "sim/simulation.hpp"
#include "test_helpers.hpp"
#include "workload/paper_workload.hpp"

namespace hyperfile {
namespace {

using baseline::BaselineConfig;
using baseline::run_file_server_baseline;
using baseline::TransferGranularity;
using testing::sorted;

struct Stores {
  std::vector<std::unique_ptr<SiteStore>> owned;
  std::vector<SiteStore*> ptrs;
  workload::PopulatedWorkload pop;

  explicit Stores(std::size_t sites, workload::WorkloadConfig cfg = {}) {
    for (std::size_t i = 0; i < sites; ++i) {
      owned.push_back(std::make_unique<SiteStore>(static_cast<SiteId>(i)));
      ptrs.push_back(owned.back().get());
    }
    pop = workload::populate_paper_workload(ptrs, cfg);
  }
};

TEST(Baseline, ResultsMatchHyperFile) {
  workload::WorkloadConfig cfg;
  Stores stores(3, cfg);
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  auto b = run_file_server_baseline(stores.ptrs, q);
  ASSERT_TRUE(b.ok()) << b.error().to_string();

  // Same result set as the simulated HyperFile run on identical stores.
  sim::Simulation s(sim::CostModel::paper_1991(), 3);
  std::vector<SiteStore*> sim_stores;
  for (SiteId i = 0; i < 3; ++i) sim_stores.push_back(&s.store(i));
  auto pop = workload::populate_paper_workload(sim_stores, cfg);
  auto h = s.run(q);
  ASSERT_TRUE(h.ok());
  // Ids are deployment-specific but generated identically for equal
  // configs, so direct comparison is valid here.
  EXPECT_EQ(sorted(b.value().result.ids), sorted(h.value().result.ids));
}

TEST(Baseline, ShipsEverythingRegardlessOfSelectivity) {
  workload::WorkloadConfig cfg;
  cfg.blob_bytes = 8192;  // realistic document bodies
  Stores stores(3, cfg);
  Query selective =
      workload::closure_query(workload::kTreeKey, workload::kUniqueKey, 7);
  auto b = run_file_server_baseline(stores.ptrs, selective);
  ASSERT_TRUE(b.ok());
  // 270 objects + the Root set object.
  EXPECT_EQ(b.value().objects_shipped, 271u);
  EXPECT_GT(b.value().bytes_shipped, 270u * 8192u);
  EXPECT_EQ(b.value().result.ids.size(), 1u);  // yet only one result
}

TEST(Baseline, GranularityControlsMessageCount) {
  Stores stores(3);
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  BaselineConfig per_site;
  per_site.granularity = TransferGranularity::kPerSite;
  BaselineConfig per_object;
  per_object.granularity = TransferGranularity::kPerObject;

  auto bs = run_file_server_baseline(stores.ptrs, q, per_site);
  auto bo = run_file_server_baseline(stores.ptrs, q, per_object);
  ASSERT_TRUE(bs.ok());
  ASSERT_TRUE(bo.ok());
  EXPECT_EQ(bs.value().messages, 3u);
  EXPECT_EQ(bo.value().messages, 271u);
  EXPECT_LT(bs.value().response_time, bo.value().response_time);
}

TEST(Baseline, HyperFileWinsOnBytes) {
  // The paper's core traffic claim: queries (~40 bytes) vs whole files.
  workload::WorkloadConfig cfg;
  cfg.blob_bytes = 8192;
  Stores stores(3, cfg);
  Query q = workload::closure_query(workload::kRandKeys[6], workload::kRand10pKey, 5);

  auto b = run_file_server_baseline(stores.ptrs, q);
  ASSERT_TRUE(b.ok());

  sim::Simulation s(sim::CostModel::paper_1991(), 3);
  std::vector<SiteStore*> sim_stores;
  for (SiteId i = 0; i < 3; ++i) sim_stores.push_back(&s.store(i));
  workload::populate_paper_workload(sim_stores, cfg);
  auto h = s.run(q);
  ASSERT_TRUE(h.ok());

  EXPECT_LT(h.value().stats.bytes_on_wire * 10, b.value().bytes_shipped)
      << "HyperFile should move >10x fewer bytes than file shipping";
}

TEST(Baseline, SlowNetworkPunishesBulkTransfer) {
  workload::WorkloadConfig cfg;
  cfg.blob_bytes = 16384;
  Stores stores(3, cfg);
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);

  BaselineConfig fast;
  fast.bandwidth_bytes_per_sec = 100e6;
  BaselineConfig slow;
  slow.bandwidth_bytes_per_sec = 1e6;
  auto rf = run_file_server_baseline(stores.ptrs, q, fast);
  auto rs = run_file_server_baseline(stores.ptrs, q, slow);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rf.value().response_time, rs.value().response_time);
}

TEST(Baseline, InvalidQueryRejected) {
  Stores stores(1);
  Query bad;
  EXPECT_FALSE(run_file_server_baseline(stores.ptrs, bad).ok());
}

}  // namespace
}  // namespace hyperfile
