// Integration tests for the threaded distributed runtime: the Section 3.2
// algorithm end-to-end over real (in-process, wire-serialized) messages,
// with weighted-message termination detection.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <chrono>
#include <thread>

#include "common/metrics.hpp"
#include "dist/cluster.hpp"
#include "dist/site_server.hpp"
#include "engine/local_engine.hpp"
#include "net/inproc.hpp"
#include "test_helpers.hpp"
#include "wire/message.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

/// Distribute a ring/chain of `n` objects round-robin over the cluster's
/// sites, linked by "Reference" pointers (always crossing sites when
/// sites > 1), each holding keyword "hit" if index % 3 == 0. Set "S" at
/// site 0 holds the head. Returns ids in chain order.
std::vector<ObjectId> populate_cross_site_chain(Cluster& cluster, std::size_t n) {
  const std::size_t sites = cluster.size();
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(cluster.store(i % sites).allocate());
  }
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::string("Name", "obj" + std::to_string(i)));
    obj.add(Tuple::pointer("Reference", i + 1 < n ? ids[i + 1] : ids[i]));
    if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
    cluster.store(i % sites).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

/// Expected result computed on a merged single-site replica.
QueryResult expected_on_merged(Cluster& cluster, const Query& q) {
  SiteStore merged(0);
  for (SiteId s = 0; s < cluster.size(); ++s) {
    cluster.store(s).for_each([&](const Object& obj) { merged.put(obj); });
    for (const auto& name : cluster.store(s).set_names()) {
      merged.bind_set(name, *cluster.store(s).find_set(name));
    }
  }
  LocalEngine engine(merged);
  auto r = engine.run_readonly(q);
  EXPECT_TRUE(r.ok());
  return r.value_or(QueryResult{});
}

const char* kClosure =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)";

TEST(Cluster, SingleSiteMatchesLocalEngine) {
  Cluster cluster(1);
  populate_cross_site_chain(cluster, 20);
  Query q = parse_or_die(kClosure);
  QueryResult expected = expected_on_merged(cluster, q);

  cluster.start();
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(sorted(r.value().ids), sorted(expected.ids));
  cluster.stop();
}

TEST(Cluster, ThreeSiteChainMatchesMergedRun) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 30);
  Query q = parse_or_die(kClosure);
  QueryResult expected = expected_on_merged(cluster, q);

  cluster.start();
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(sorted(r.value().ids), sorted(expected.ids));
  EXPECT_EQ(r.value().ids.size(), 10u);  // indices 0,3,...,27

  // Every hop crossed a site boundary: 29 forward derefs at minimum.
  auto net = cluster.network_stats();
  EXPECT_GE(net.deref_messages, 29u);
  cluster.stop();
}

TEST(Cluster, RetrievalValuesFlowBackToOriginator) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 12);
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) (string, "Name", ->name) -> T)");

  cluster.start();
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  auto names = r.value().values_for("name");
  ASSERT_EQ(names.size(), 4u);  // obj0, obj3, obj6, obj9
  std::vector<std::string> strs;
  for (const auto& v : names) strs.push_back(v.as_string());
  std::sort(strs.begin(), strs.end());
  EXPECT_EQ(strs, (std::vector<std::string>{"obj0", "obj3", "obj6", "obj9"}));
  cluster.stop();
}

TEST(Cluster, ContextsDiscardedAfterGlobalTermination) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 30);
  cluster.start();
  auto r = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(r.ok());

  // QueryDone messages race with the reply; poll briefly.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    std::size_t live = 0;
    for (SiteId s = 0; s < cluster.size(); ++s) {
      live += cluster.server(s).context_count();
    }
    if (live == 0) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << live << " contexts still alive";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  cluster.stop();
}

TEST(Cluster, SequentialQueriesAndChainedSets) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 30);
  cluster.start();

  auto r1 = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(r1.ok());
  ASSERT_EQ(r1.value().ids.size(), 10u);

  // T is bound at the originator; a follow-up query can start from it.
  auto r2 = cluster.client().run(parse_or_die(R"(T (string, "Name", /obj(3|9)$/) -> U)"));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(r2.value().ids.size(), 2u);
  cluster.stop();
}

TEST(Cluster, CountOnlyDistributedSetAndContinuation) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 30);
  cluster.start();

  Query q1 = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) count -> D)");
  auto r1 = cluster.client().run(q1);
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  EXPECT_TRUE(r1.value().count_only);
  EXPECT_EQ(r1.value().total_count, 10u);
  EXPECT_TRUE(r1.value().ids.empty());  // members stayed distributed

  // Continuation: restrict the distributed set; the originator fans
  // StartQuery to the sites holding portions.
  auto r2 = cluster.client().run(parse_or_die(R"(D (string, "Name", /obj[0-9]$/) -> U)"));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(r2.value().ids.size(), 4u);  // obj0, obj3, obj6, obj9
  cluster.stop();
}

TEST(Cluster, SiteFailureYieldsPartialResults) {
  Cluster cluster(3);
  auto ids = populate_cross_site_chain(cluster, 30);
  cluster.start();
  cluster.stop_site(2);  // kill one site before querying

  auto r = cluster.client().run(parse_or_die(kClosure), Duration(10'000'000));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  // The chain dies at the first pointer into site 2 (index 2), so only
  // index 0 survives the filter — a partial but correct subset.
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{ids[0]});
  cluster.stop();
}

TEST(Cluster, ExplicitInitialIdsAcrossSites) {
  Cluster cluster(3);
  auto ids = populate_cross_site_chain(cluster, 9);
  cluster.start();

  Query q = QueryBuilder::from_ids({ids[1], ids[4], ids[6]})
                .select(Pattern::literal("keyword"), Pattern::literal("hit"),
                        Pattern::any())
                .into("T");
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{ids[6]});  // only 6 % 3 == 0
  cluster.stop();
}

TEST(Cluster, UnknownInitialSetIsReportedError) {
  Cluster cluster(2);
  cluster.start();
  auto r = cluster.client().run(parse_or_die(R"(Nope (?, ?, ?) -> T)"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("Nope"), std::string::npos);
  cluster.stop();
}

TEST(Cluster, QueryOriginatedAtNonDefaultServer) {
  Cluster cluster(3);
  auto ids = populate_cross_site_chain(cluster, 9);
  // Bind a set at site 1 as well.
  cluster.store(1).create_set("Mine", std::span<const ObjectId>(&ids[1], 1));
  cluster.start();

  auto r = cluster.client().run_at(1, parse_or_die(R"(Mine (?, ?, ?) -> T)"));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{ids[1]});
  cluster.stop();
}

TEST(Cluster, MovedObjectFoundViaBirthSiteForwarding) {
  Cluster cluster(3);
  auto ids = populate_cross_site_chain(cluster, 6);
  // Move object 1 (site 1) to site 2. Pointers still presume site 1.
  ASSERT_TRUE(cluster.move_object(ids[1], 1, 2).ok());
  cluster.start();

  auto r = cluster.client().run(parse_or_die(kClosure));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(sorted(r.value().ids), sorted({ids[0], ids[3]}));
  cluster.stop();
}

TEST(Cluster, ManySequentialQueriesStayStable) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 30);
  cluster.start();
  Query q = parse_or_die(kClosure);
  for (int i = 0; i < 25; ++i) {
    auto r = cluster.client().run(q);
    ASSERT_TRUE(r.ok()) << "iteration " << i << ": " << r.error().to_string();
    EXPECT_EQ(r.value().ids.size(), 10u) << "iteration " << i;
  }
  cluster.stop();
}

TEST(Cluster, BatchedDerefsProduceSameResults) {
  SiteServerOptions options;
  options.batch_remote_derefs = true;
  Cluster cluster(3, options);
  populate_cross_site_chain(cluster, 30);
  Query q = parse_or_die(kClosure);
  QueryResult expected = expected_on_merged(cluster, q);

  cluster.start();
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(sorted(r.value().ids), sorted(expected.ids));
  cluster.stop();

  auto net = cluster.network_stats();
  // The chain forces one batch per hop (each drain produces exactly one
  // remote pointer), so batching is exercised even if it cannot save
  // messages here.
  EXPECT_GE(net.batch_deref_messages, 29u);
  EXPECT_EQ(net.deref_messages, 0u);
}

TEST(Cluster, BatchedDerefsSaveMessagesOnFanout) {
  // A star: the root points at 10 objects per remote site. Per-pointer mode
  // sends 20 deref messages; batched mode sends 2.
  auto build = [](Cluster& cluster) {
    std::vector<ObjectId> leaves;
    for (SiteId s = 1; s <= 2; ++s) {
      for (int i = 0; i < 10; ++i) {
        ObjectId id = cluster.store(s).allocate();
        cluster.store(s).put(Object(id, {Tuple::keyword("hit")}));
        leaves.push_back(id);
      }
    }
    ObjectId root = cluster.store(0).allocate();
    Object obj(root);
    for (const ObjectId& leaf : leaves) obj.add(Tuple::pointer("Fan", leaf));
    obj.add(Tuple::keyword("hit"));
    cluster.store(0).put(std::move(obj));
    cluster.store(0).create_set("S", std::span<const ObjectId>(&root, 1));
  };
  Query q = parse_or_die(R"(S (pointer, "Fan", ?X) ^^X (keyword, "hit", ?) -> T)");

  Cluster plain(3);
  build(plain);
  plain.start();
  auto r1 = plain.client().run(q);
  ASSERT_TRUE(r1.ok());
  plain.stop();

  SiteServerOptions options;
  options.batch_remote_derefs = true;
  Cluster batched(3, options);
  build(batched);
  batched.start();
  auto r2 = batched.client().run(q);
  ASSERT_TRUE(r2.ok());
  batched.stop();

  EXPECT_EQ(r1.value().ids.size(), 21u);
  EXPECT_EQ(sorted(r1.value().ids).size(), sorted(r2.value().ids).size());
  EXPECT_EQ(plain.network_stats().deref_messages, 20u);
  EXPECT_EQ(batched.network_stats().batch_deref_messages, 2u);
  EXPECT_EQ(batched.network_stats().deref_messages, 0u);
}

TEST(Cluster, RewriteOnByDefaultPreservesResults) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 18);
  // A query with removable fluff: duplicate select + redundant wildcard.
  Query q = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) (keyword, "hit", ?) (?, ?, ?) -> T)");
  QueryResult expected = expected_on_merged(cluster, q);
  cluster.start();
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(sorted(r.value().ids), sorted(expected.ids));
  cluster.stop();
}

class TerminationAlgos
    : public ::testing::TestWithParam<TerminationAlgorithm> {};

TEST_P(TerminationAlgos, ClosureMatchesUnderBothDetectors) {
  SiteServerOptions options;
  options.termination = GetParam();
  Cluster cluster(3, options);
  populate_cross_site_chain(cluster, 30);
  Query q = parse_or_die(kClosure);
  QueryResult expected = expected_on_merged(cluster, q);
  cluster.start();
  for (int i = 0; i < 5; ++i) {
    auto r = cluster.client().run(q, Duration(20'000'000));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(sorted(r.value().ids), sorted(expected.ids));
  }
  cluster.stop();
}

TEST_P(TerminationAlgos, PartialResultsOnFailure) {
  SiteServerOptions options;
  options.termination = GetParam();
  Cluster cluster(3, options);
  auto ids = populate_cross_site_chain(cluster, 30);
  cluster.start();
  cluster.stop_site(2);
  auto r = cluster.client().run(parse_or_die(kClosure), Duration(10'000'000));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().ids, std::vector<ObjectId>{ids[0]});
  cluster.stop();
}

TEST_P(TerminationAlgos, CountOnlyContinuationWorks) {
  SiteServerOptions options;
  options.termination = GetParam();
  options.batch_remote_derefs = true;  // exercise the combination too
  Cluster cluster(3, options);
  populate_cross_site_chain(cluster, 30);
  cluster.start();
  auto r1 = cluster.client().run(parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) count -> D)"));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  EXPECT_EQ(r1.value().total_count, 10u);
  auto r2 = cluster.client().run(parse_or_die(R"(D (?, ?, ?) -> U)"));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(r2.value().ids.size(), 10u);
  cluster.stop();
}

INSTANTIATE_TEST_SUITE_P(Algos, TerminationAlgos,
                         ::testing::Values(
                             TerminationAlgorithm::kWeightedMessages,
                             TerminationAlgorithm::kDijkstraScholten));

TEST(Cluster, DijkstraScholtenSendsAcksWeightedDoesNot) {
  auto run_with = [](TerminationAlgorithm algo) {
    SiteServerOptions options;
    options.termination = algo;
    Cluster cluster(3, options);
    populate_cross_site_chain(cluster, 12);
    cluster.start();
    auto r = cluster.client().run(parse_or_die(kClosure));
    EXPECT_TRUE(r.ok());
    cluster.stop();
    return cluster.network_stats();
  };
  auto weighted = run_with(TerminationAlgorithm::kWeightedMessages);
  auto ds = run_with(TerminationAlgorithm::kDijkstraScholten);
  // Same query traffic; only D-S adds acknowledgement messages.
  EXPECT_EQ(weighted.deref_messages, ds.deref_messages);
  EXPECT_GT(ds.messages_sent, weighted.messages_sent);
}

TEST(Cluster, ConcurrentClientsInterleaveSafely) {
  // Two clients hammer the cluster simultaneously with different queries;
  // per-query contexts at each site must not interfere.
  Cluster cluster(3, SiteServerOptions{}, /*clients=*/2);
  auto ids = populate_cross_site_chain(cluster, 30);
  cluster.start();

  Query q_hits = parse_or_die(kClosure);
  Query q_names = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (string, "Name", /obj1/) -> N)");

  std::atomic<int> failures{0};
  auto worker = [&](Client& client, const Query& q, std::size_t expect) {
    for (int i = 0; i < 10; ++i) {
      auto r = client.run(q, Duration(20'000'000));
      if (!r.ok() || r.value().ids.size() != expect) {
        ++failures;
        return;
      }
    }
  };
  // obj1, obj10..obj19 -> 11 matches for the name query.
  std::thread t1([&] { worker(cluster.client(0), q_hits, 10); });
  std::thread t2([&] { worker(cluster.client(1), q_names, 11); });
  t1.join();
  t2.join();
  EXPECT_EQ(failures.load(), 0);
  cluster.stop();
}

TEST(Cluster, SnapshotRestartAnswersIdentically) {
  const std::string dir = ::testing::TempDir() + "/hf_dist_snap";
  std::filesystem::create_directories(dir);
  Query q = parse_or_die(kClosure);
  std::vector<ObjectId> want;
  {
    Cluster original(3);
    populate_cross_site_chain(original, 24);
    original.start();
    auto r = original.client().run(q);
    ASSERT_TRUE(r.ok());
    want = sorted(r.value().ids);
    original.stop();
    ASSERT_TRUE(original.save_snapshots(dir).ok());
  }
  // A brand-new deployment restored from disk.
  Cluster restored(3);
  auto lr = restored.load_snapshots(dir);
  ASSERT_TRUE(lr.ok()) << lr.error().to_string();
  restored.start();
  auto r2 = restored.client().run(q);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), want);
  restored.stop();
}

TEST(Cluster, OnlineSnapshotWhileServing) {
  // save_snapshots no longer demands a stopped cluster: each running site
  // serializes its store from inside its own event loop (run_exclusive), so
  // the image is consistent even while queries are in flight. load_snapshots
  // stays stopped-only — swapping a store under a live loop would tear.
  const std::string dir = ::testing::TempDir() + "/hf_dist_online_snap";
  std::filesystem::create_directories(dir);
  Query q = parse_or_die(kClosure);
  std::vector<ObjectId> want;
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 24);
  cluster.start();
  auto r = cluster.client().run(q);
  ASSERT_TRUE(r.ok());
  want = sorted(r.value().ids);
  ASSERT_TRUE(cluster.save_snapshots(dir).ok());  // still running
  EXPECT_FALSE(cluster.load_snapshots(dir).ok());  // load stays stopped-only
  cluster.stop();

  Cluster restored(3);
  auto lr = restored.load_snapshots(dir);
  ASSERT_TRUE(lr.ok()) << lr.error().to_string();
  restored.start();
  auto r2 = restored.client().run(q);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), want);
  restored.stop();
}

// --- Protocol-driver regressions: a raw endpoint plays client and remote
// participant against a single SiteServer, so malformed/duplicated traffic
// can be injected byte-for-byte. ---------------------------------------

TEST(SiteServerProtocol, DuplicateResultMessagesCountedOnce) {
  // Regression: a wire-duplicated ResultMessage must be suppressed by
  // (src, msg_seq), not merged twice. Without suppression the duplicate
  // double-counts local_count (count_only hides the ids_seen dedup that
  // masks the bug for id results).
  InProcNetwork net(2);
  SiteStore store(0);
  const ObjectId local = store.allocate();
  const ObjectId remote(1, 1);  // presumed at site 1 — the driver below
  Object obj(local);
  obj.add(Tuple::pointer("Reference", remote));
  obj.add(Tuple::keyword("hit"));
  store.put(std::move(obj));
  store.create_set("S", std::span<const ObjectId>(&local, 1));

  SiteServer server(net.endpoint(0), std::move(store));
  server.start();
  auto driver = net.endpoint(1);

  wire::ClientRequest cr;
  cr.client_seq = 1;
  cr.query = parse_or_die(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) count -> D)");
  ASSERT_TRUE(driver->send(0, cr).ok());

  // The server counts its local hit and chases the remote pointer to us.
  auto env = driver->recv(Duration(5'000'000));
  ASSERT_TRUE(env.has_value());
  auto* dr = std::get_if<wire::DerefRequest>(&env->message);
  ASSERT_NE(dr, nullptr);

  // Our site's count, delivered twice (the network duplicated the frame).
  wire::ResultMessage rm;
  rm.qid = dr->qid;
  rm.count_only = true;
  rm.local_count = 5;
  rm.msg_seq = 7;
  ASSERT_TRUE(driver->send(0, wire::Message(rm)).ok());
  ASSERT_TRUE(driver->send(0, wire::Message(rm)).ok());

  // A later drain returns the borrowed weight: the query can now terminate.
  wire::ResultMessage fin;
  fin.qid = dr->qid;
  fin.count_only = true;
  fin.weight = dr->weight;
  fin.msg_seq = 8;
  ASSERT_TRUE(driver->send(0, wire::Message(fin)).ok());

  bool got_reply = false;
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    auto e = driver->recv(Duration(500'000));
    if (!e.has_value()) continue;
    if (auto* reply = std::get_if<wire::ClientReply>(&e->message)) {
      EXPECT_TRUE(reply->ok) << reply->error;
      EXPECT_EQ(reply->total_count, 6u);  // 1 local + 5 ours, NOT 11
      EXPECT_FALSE(reply->partial);
      EXPECT_EQ(reply->dropped_items, 0u);
      got_reply = true;
      break;
    }
  }
  EXPECT_TRUE(got_reply) << "no ClientReply within deadline";
  server.stop();
}

TEST(SiteServerProtocol, StrandedParticipantContextExpiresViaTtl) {
  // Regression: a participant context whose QueryDone is lost must not live
  // forever — the TTL sweep discards it ("self-healing", DESIGN.md §11).
  InProcNetwork net(2);
  SiteStore store(0);
  const ObjectId id = store.allocate();
  store.put(Object(id, {Tuple::keyword("hit")}));

  SiteServerOptions options;
  options.context_ttl = Duration(500'000);  // 500ms: fast expiry for the test
  SiteServer server(net.endpoint(0), std::move(store), options);
  server.start();
  auto driver = net.endpoint(1);

  // A deref from a pretend originator at site 1 installs a context.
  wire::DerefRequest dr;
  dr.qid = {1, 1};
  dr.query = parse_or_die(R"(S (keyword, "hit", ?) -> T)");
  dr.oid = id;
  dr.weight = {1};  // half the originator's weight
  dr.msg_seq = 1;
  ASSERT_TRUE(driver->send(0, dr).ok());

  // The drain answers with results + weight...
  auto env = driver->recv(Duration(5'000'000));
  ASSERT_TRUE(env.has_value());
  ASSERT_NE(std::get_if<wire::ResultMessage>(&env->message), nullptr);
  // The reply is observable before the loop tick that refreshes the
  // context_count() cache finishes, so poll for the context to appear.
  const auto seen =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.context_count() != 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), seen)
        << "participant context never installed";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // ...but we never send QueryDone. The sweep must reap the context anyway.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.context_count() != 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "stranded context never expired";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.stop();
}

TEST(SiteServerProtocol, SummaryAdvertDedupAndMalformedRecordRejection) {
  // Three REVIEW-driven contracts of the advert path, driven byte-for-byte:
  //  1. the (epoch, seq) high-water dedup suppresses duplicated and
  //     reordered adverts but passes a restarted sender's fresh adverts
  //     (seq counter back at 1, epoch higher) immediately;
  //  2. a malformed record (absurd hash_count would turn every Bloom probe
  //     on the route_remote hot path into a multi-billion-iteration loop)
  //     is rejected at install and revokes the origin's cached authority;
  //  3. installs are counted so both behaviors are observable.
  InProcNetwork net(2);
  SiteStore store(0);
  SiteServerOptions options;
  options.summary_interval = Duration(50'000);  // exchange enabled, no peers
  SiteServer server(net.endpoint(0), std::move(store), options);
  server.start();
  auto driver = net.endpoint(1);

  auto advert = [](std::uint64_t epoch, std::uint64_t version,
                   std::uint64_t seq) {
    wire::SummaryRecord rec;
    rec.origin = 1;
    rec.epoch = epoch;
    rec.version = version;
    rec.hash_count = 7;
    rec.entries = 3;
    rec.bits.assign(32, 0xff);
    wire::SummaryMessage sm;
    sm.records.push_back(std::move(rec));
    sm.msg_seq = seq;
    return sm;
  };
  auto installs = [] {
    return metrics().counter("dist.summary_installs").value();
  };
  auto wait_count = [&](std::size_t want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.summary_count() != want) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "summary_count never reached " << want;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // A first advert installs.
  const std::uint64_t base_installs = installs();
  ASSERT_TRUE(driver->send(0, wire::Message(advert(1, 1, 5))).ok());
  wait_count(1);
  EXPECT_EQ(installs(), base_installs + 1);

  // A duplicate (same seq) and a reordered older advert (lower seq, higher
  // version) are both suppressed before any install side effect.
  ASSERT_TRUE(driver->send(0, wire::Message(advert(1, 1, 5))).ok());
  ASSERT_TRUE(driver->send(0, wire::Message(advert(1, 2, 4))).ok());
  // A fresh advert behind them proves the suppressed ones were processed.
  ASSERT_TRUE(driver->send(0, wire::Message(advert(1, 2, 6))).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (installs() != base_installs + 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "follow-up advert never installed";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Restart simulation: epoch up, seq back at 1. Must NOT be suppressed —
  // a restarted site whose adverts were deduped against its pre-crash seq
  // range would leave stale gossiped records of it in authority.
  ASSERT_TRUE(driver->send(0, wire::Message(advert(3, 1, 1))).ok());
  while (installs() != base_installs + 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "post-restart advert was suppressed by the pre-crash high water";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Malformed record: hostile hash_count. Rejected, and the origin's
  // cached summary is revoked (conservative never-prune fallback).
  wire::SummaryMessage evil = advert(3, 9, 2);
  evil.records[0].hash_count = 0xFFFFFFFFu;
  const std::uint64_t rejects_before =
      metrics().counter("dist.summary_rejects").value();
  ASSERT_TRUE(driver->send(0, wire::Message(std::move(evil))).ok());
  wait_count(0);
  EXPECT_EQ(metrics().counter("dist.summary_rejects").value(),
            rejects_before + 1);
  EXPECT_EQ(installs(), base_installs + 3);
  server.stop();
}

TEST(Cluster, EngineStatsAggregateAcrossSites) {
  Cluster cluster(3);
  populate_cross_site_chain(cluster, 30);
  cluster.start();
  ASSERT_TRUE(cluster.client().run(parse_or_die(kClosure)).ok());
  cluster.stop();  // folds remaining stats
  auto stats = cluster.engine_stats();
  EXPECT_EQ(stats.processed, 30u);
  EXPECT_EQ(stats.results, 10u);
}

}  // namespace
}  // namespace hyperfile
