#include <gtest/gtest.h>

#include "model/object.hpp"

namespace hyperfile {
namespace {

TEST(ObjectId, IdentityIgnoresPresumedSite) {
  ObjectId a(1, 42, 1);
  ObjectId b(1, 42, 5);  // moved: different hint
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.identical(b));
  EXPECT_TRUE(a.identical(ObjectId(1, 42, 1)));
  EXPECT_EQ(ObjectIdHash{}(a), ObjectIdHash{}(b));
}

TEST(ObjectId, Ordering) {
  EXPECT_LT(ObjectId(0, 5), ObjectId(1, 1));
  EXPECT_LT(ObjectId(1, 1), ObjectId(1, 2));
  EXPECT_FALSE(ObjectId(1, 2) < ObjectId(1, 2));
}

TEST(ObjectId, Validity) {
  EXPECT_FALSE(ObjectId().valid());
  EXPECT_TRUE(ObjectId(0, 1).valid());
}

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value::string("hi").as_string(), "hi");
  EXPECT_EQ(Value::number(-5).as_number(), -5);
  EXPECT_EQ(Value::pointer(ObjectId(2, 3)).as_pointer(), ObjectId(2, 3));
  EXPECT_EQ(Value::blob({1, 2, 3}).as_blob().size(), 3u);
  EXPECT_EQ(Value::blob_text("abc").as_blob().size(), 3u);
}

TEST(Value, EqualityAcrossKinds) {
  EXPECT_EQ(Value::string("a"), Value::string("a"));
  EXPECT_NE(Value::string("a"), Value::string("b"));
  EXPECT_NE(Value::string("1"), Value::number(1));
  EXPECT_EQ(Value(), Value());
  // Pointer equality ignores the presumed-site hint.
  EXPECT_EQ(Value::pointer(ObjectId(1, 1, 0)), Value::pointer(ObjectId(1, 1, 7)));
}

TEST(Value, TotalOrderIsStrict) {
  std::vector<Value> vals = {Value(), Value::string("a"), Value::string("b"),
                             Value::number(1), Value::number(2),
                             Value::pointer(ObjectId(0, 1)),
                             Value::blob({1})};
  for (const auto& a : vals) {
    EXPECT_FALSE(a < a);
    for (const auto& b : vals) {
      if (a == b) continue;
      EXPECT_TRUE((a < b) != (b < a)) << a.to_string() << " vs " << b.to_string();
    }
  }
}

TEST(Value, ByteSizeAccountsForPayload) {
  EXPECT_GT(Value::blob(std::vector<std::uint8_t>(1000)).byte_size(), 1000u);
  EXPECT_LT(Value::number(5).byte_size(), 20u);
}

TEST(Tuple, Shorthands) {
  EXPECT_EQ(Tuple::string("Author", "Joe").type, tuple_types::kString);
  EXPECT_EQ(Tuple::keyword("Distributed").key, "Distributed");
  EXPECT_EQ(Tuple::number("Year", 1991).data.as_number(), 1991);
  EXPECT_TRUE(Tuple::pointer("Link", ObjectId(0, 1)).is_pointer());
  EXPECT_EQ(Tuple::text("Body", "hello").data.as_blob().size(), 5u);
}

TEST(Object, FindAndFindAll) {
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::string("Author", "alice"));
  obj.add(Tuple::string("Author", "bob"));
  obj.add(Tuple::string("Title", "T"));
  ASSERT_NE(obj.find("string", "Author"), nullptr);
  EXPECT_EQ(obj.find("string", "Author")->data.as_string(), "alice");
  EXPECT_EQ(obj.find_all("string", "Author").size(), 2u);
  EXPECT_EQ(obj.find("string", "Nope"), nullptr);
}

TEST(Object, PointersByCategory) {
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::pointer("Reference", ObjectId(0, 2)));
  obj.add(Tuple::pointer("Reference", ObjectId(0, 3)));
  obj.add(Tuple::pointer("Library", ObjectId(0, 4)));
  obj.add(Tuple::string("Name", "x"));
  EXPECT_EQ(obj.pointers("Reference").size(), 2u);
  EXPECT_EQ(obj.pointers("Library").size(), 1u);
  EXPECT_EQ(obj.pointers().size(), 3u);  // wildcard: all categories
}

TEST(Object, Remove) {
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::string("A", "1"));
  obj.add(Tuple::string("A", "2"));
  obj.add(Tuple::string("B", "3"));
  EXPECT_EQ(obj.remove("string", "A"), 2u);
  EXPECT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj.remove("string", "Z"), 0u);
}

TEST(Object, ByteSizeIncludesBlobs) {
  Object small(ObjectId(0, 1));
  small.add(Tuple::string("k", "v"));
  Object big(ObjectId(0, 2));
  big.add(Tuple::text("Body", std::string(10'000, 'x')));
  EXPECT_GT(big.byte_size(), small.byte_size() + 9'000);
}

TEST(Object, EqualityIsDeep) {
  Object a(ObjectId(0, 1));
  a.add(Tuple::string("k", "v"));
  Object b(ObjectId(0, 1));
  b.add(Tuple::string("k", "v"));
  EXPECT_EQ(a, b);
  b.add(Tuple::string("k2", "v2"));
  EXPECT_NE(a, b);
}

TEST(Object, ToStringIsReadable) {
  Object obj(ObjectId(3, 7));
  obj.add(Tuple::string("Title", "doc"));
  const std::string s = obj.to_string();
  EXPECT_NE(s.find("obj(3.7)"), std::string::npos);
  EXPECT_NE(s.find("Title"), std::string::npos);
}

}  // namespace
}  // namespace hyperfile
