// Per-query distributed tracing (common/trace.hpp): span merge semantics,
// and the end-to-end contract — a query over a >=3-site pointer chain comes
// back with one span per engaged site whose first_hop/path reconstruct the
// fan-out, on both transports, and duplicate-suppressed redeliveries never
// double-record (span counters are cumulative + merged by max, so the
// whole pipeline is idempotent).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/trace.hpp"
#include "dist/client.hpp"
#include "dist/cluster.hpp"
#include "dist/site_server.hpp"
#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

const char* kClosure =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)";

// --- merge semantics ----------------------------------------------------

TraceSpan sample_span() {
  TraceSpan s;
  s.site = 2;
  s.first_hop = 3;
  s.path = {0, 1, 2};
  s.messages = 4;
  s.duplicates = 1;
  s.items = 7;
  s.forwarded = 5;
  s.results = 2;
  s.drains = 3;
  s.drain_us = 1500;
  s.retries = 1;
  return s;
}

TEST(TraceMerge, IsIdempotent) {
  const TraceSpan s = sample_span();
  TraceSpan once;
  merge_into(once, s);
  TraceSpan twice = once;
  merge_into(twice, s);  // a redelivered summary must change nothing
  EXPECT_EQ(once, s);
  EXPECT_EQ(twice, s);
}

TEST(TraceMerge, KeepsEarliestEngagementAndMaxCounters) {
  TraceSpan late = sample_span();
  TraceSpan early = sample_span();
  early.first_hop = 1;
  early.path = {0, 2};
  early.items = 2;  // an older, smaller snapshot of the cumulative counters

  TraceSpan merged;
  merge_into(merged, late);
  merge_into(merged, early);
  EXPECT_EQ(merged.first_hop, 1u);            // min wins
  EXPECT_EQ(merged.path, early.path);         // path follows the first hop
  EXPECT_EQ(merged.items, late.items);        // counters: max (newest) wins
  EXPECT_EQ(merged.messages, late.messages);
}

TEST(TraceText, RendersOneLinePerSpan) {
  QueryTrace t;
  t.query_id = "0:7";
  t.elapsed_us = 1234;
  t.spans = {sample_span()};
  const std::string text = t.to_text();
  EXPECT_NE(text.find("trace 0:7 elapsed 1234us"), std::string::npos);
  EXPECT_NE(text.find("site 2 hop 3 path [0->1->2]"), std::string::npos);
  const std::string json = t.to_json();
  EXPECT_NE(json.find("\"path\": [0, 1, 2]"), std::string::npos);
  EXPECT_NE(json.find("\"items\": 7"), std::string::npos);
}

// --- end to end ---------------------------------------------------------

/// obj0(site0) -> obj1(site1) -> obj2(site2, self-loop), "hit" on all
/// three: the query engages the sites strictly in chain order, so the
/// expected hop path of each span is exact.
std::vector<ObjectId> populate_linear(std::vector<SiteStore*> stores) {
  std::vector<ObjectId> ids;
  for (auto* s : stores) ids.push_back(s->allocate());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Reference",
                           i + 1 < ids.size() ? ids[i + 1] : ids[i]));
    obj.add(Tuple::keyword("hit"));
    stores[i]->put(std::move(obj));
  }
  stores[0]->create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

void check_linear_trace(const QueryTrace& trace) {
  EXPECT_FALSE(trace.query_id.empty());
  EXPECT_GT(trace.elapsed_us, 0u);
  ASSERT_EQ(trace.spans.size(), 3u) << trace.to_text();
  for (SiteId s = 0; s < 3; ++s) {
    const TraceSpan& span = trace.spans[s];  // maybe_finish sorts by site
    EXPECT_EQ(span.site, s);
    EXPECT_EQ(span.first_hop, s) << trace.to_text();
    std::vector<SiteId> want_path(s + 1);
    std::iota(want_path.begin(), want_path.end(), SiteId{0});
    EXPECT_EQ(span.path, want_path) << trace.to_text();
    EXPECT_GE(span.messages, 1u);
    EXPECT_GE(span.drains, 1u);
    EXPECT_EQ(span.results, 1u);  // each site holds exactly one "hit"
  }
  // Sites 1 and 2 each received their one object as a computation message;
  // site 0's object was seeded locally by the client request.
  EXPECT_EQ(trace.spans[0].items, 0u);
  EXPECT_EQ(trace.spans[1].items, 1u);
  EXPECT_EQ(trace.spans[2].items, 1u);
  EXPECT_GE(trace.spans[0].forwarded, 1u);
  EXPECT_GE(trace.spans[1].forwarded, 1u);
}

TEST(TraceEndToEnd, InProcChainReportsHopPathPerSite) {
  Cluster cluster(3);
  populate_linear({&cluster.store(0), &cluster.store(1), &cluster.store(2)});
  cluster.start();
  auto r = cluster.client().run(parse_or_die(kClosure), Duration(30'000'000));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().ids.size(), 3u);
  check_linear_trace(r.value().trace);
  cluster.stop();
}

std::uint64_t total(const QueryTrace& t, std::uint64_t TraceSpan::*field) {
  std::uint64_t sum = 0;
  for (const TraceSpan& s : t.spans) sum += s.*field;
  return sum;
}

/// 30-object chain round-robin over 3 sites, once on a clean network and
/// once under dup_p = 0.5: the span item counts must be identical — the
/// msg_seq dedup layer swallows every duplicated frame before it reaches
/// the engine, and the duplicates land in `span.duplicates` instead.
TEST(TraceEndToEnd, DuplicateRedeliveryNeverDoubleRecords) {
  auto run_chain = [](double dup_p) {
    Cluster cluster(
        3, SiteServerOptions{}, /*clients=*/1,
        [dup_p](SiteId site, std::unique_ptr<MessageEndpoint> inner)
            -> std::unique_ptr<MessageEndpoint> {
          if (dup_p == 0) return inner;
          FaultOptions o;
          o.dup_p = dup_p;
          o.seed = 500 + site;
          o.exempt.push_back(3);  // client link stays reliable
          return std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
        });
    std::vector<ObjectId> ids;
    for (std::size_t i = 0; i < 30; ++i) {
      ids.push_back(cluster.store(i % 3).allocate());
    }
    for (std::size_t i = 0; i < 30; ++i) {
      Object obj(ids[i]);
      obj.add(Tuple::pointer("Reference", i + 1 < 30 ? ids[i + 1] : ids[i]));
      if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
      cluster.store(i % 3).put(std::move(obj));
    }
    cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
    cluster.start();
    auto r = cluster.client().run(parse_or_die(kClosure), Duration(30'000'000));
    cluster.stop();
    EXPECT_TRUE(r.ok());
    return r.ok() ? r.value() : QueryResult{};
  };

  const QueryResult clean = run_chain(0);
  const QueryResult noisy = run_chain(0.5);
  EXPECT_EQ(sorted(noisy.ids), sorted(clean.ids));
  EXPECT_FALSE(noisy.partial);
  // Same work reached the engines despite every frame risking duplication.
  EXPECT_EQ(total(noisy.trace, &TraceSpan::items),
            total(clean.trace, &TraceSpan::items));
  EXPECT_EQ(total(clean.trace, &TraceSpan::duplicates), 0u);
  EXPECT_GT(total(noisy.trace, &TraceSpan::duplicates), 0u)
      << "dup_p=0.5 injected no duplicates: fault wiring broken";
}

TEST(TraceEndToEnd, TcpChainReportsHopPathPerSite) {
  constexpr SiteId kSites = 3;
  std::vector<TcpPeer> zeros(kSites + 1, TcpPeer{"127.0.0.1", 0});
  std::vector<std::unique_ptr<TcpNetwork>> nets;
  for (SiteId s = 0; s <= kSites; ++s) {
    auto net = TcpNetwork::create(s, zeros);
    if (!net.ok()) GTEST_SKIP() << "no localhost sockets";
    nets.push_back(std::move(net).value());
  }
  for (auto& net : nets) {
    for (SiteId peer = 0; peer <= kSites; ++peer) {
      net->update_peer(peer, {"127.0.0.1", nets[peer]->bound_port()});
    }
  }

  std::vector<SiteStore> stores;
  for (SiteId s = 0; s < kSites; ++s) stores.emplace_back(s);
  populate_linear({&stores[0], &stores[1], &stores[2]});

  std::vector<std::unique_ptr<SiteServer>> servers;
  for (SiteId s = 0; s < kSites; ++s) {
    servers.push_back(std::make_unique<SiteServer>(
        std::move(nets[s]), std::move(stores[s]), SiteServerOptions{}));
    servers.back()->start();
  }
  Client client(std::move(nets[kSites]), 0);
  auto r = client.run(parse_or_die(kClosure), Duration(30'000'000));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().ids.size(), 3u);
  check_linear_trace(r.value().trace);
  for (auto& s : servers) s->stop();
}

}  // namespace
}  // namespace hyperfile
