// Termination detection: exact dyadic weights, the weighted-message
// protocol, and a randomized cross-check against Dijkstra-Scholten on the
// same simulated message traces.
#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "common/rng.hpp"
#include "term/dijkstra_scholten.hpp"
#include "term/weight.hpp"
#include "term/weighted.hpp"

namespace hyperfile {
namespace {

TEST(Weight, OneAndZero) {
  EXPECT_TRUE(Weight::one().is_one());
  EXPECT_FALSE(Weight::one().is_zero());
  EXPECT_TRUE(Weight::zero().is_zero());
  EXPECT_FALSE(Weight::zero().is_one());
  EXPECT_TRUE(Weight().is_zero());
}

TEST(Weight, SplitConserves) {
  Weight w = Weight::one();
  Weight half = w.split();
  EXPECT_FALSE(w.is_zero());
  EXPECT_FALSE(half.is_zero());
  EXPECT_FALSE(w.is_one());
  w.add(half);
  EXPECT_TRUE(w.is_one());
}

TEST(Weight, ManySplitsStillRecombineToOne) {
  Weight master = Weight::one();
  std::vector<Weight> pieces;
  for (int i = 0; i < 1000; ++i) pieces.push_back(master.split());
  for (auto& p : pieces) master.add(p.take_all());
  EXPECT_TRUE(master.is_one());
}

TEST(Weight, SplitOfTinyPieceWorks) {
  Weight w = Weight::one();
  // Repeatedly split and discard the kept side into a bank, splitting the
  // ever-smaller remainder.
  Weight bank;
  for (int i = 0; i < 200; ++i) bank.add(w.split());
  bank.add(w.take_all());
  EXPECT_TRUE(bank.is_one());
}

TEST(Weight, ExponentsRoundTrip) {
  Weight w = Weight::one();
  Weight a = w.split();
  Weight b = w.split();
  for (const Weight* piece : {&w, &a, &b}) {
    Weight back = Weight::from_exponents(piece->exponents());
    EXPECT_EQ(back, *piece);
  }
}

TEST(Weight, AddMergesEqualUnits) {
  // 1/2 + 1/4 + 1/4 == 3/4; adding another 1/4 makes 1 exactly.
  Weight w = Weight::from_exponents({1});       // 1/2
  w.add(Weight::from_exponents({2}));           // + 1/4
  w.add(Weight::from_exponents({2}));           // + 1/4
  EXPECT_EQ(w, Weight::from_exponents({0}));    // == 1 after carries...
  EXPECT_TRUE(w.is_one());
}

TEST(Weight, FromExponentsMergesDuplicates) {
  // {2, 2} = 1/4 + 1/4 = 1/2 = {1}.
  Weight w = Weight::from_exponents({2, 2});
  EXPECT_EQ(w, Weight::from_exponents({1}));
  // Canonical output: each exponent at most once.
  auto exps = w.exponents();
  ASSERT_EQ(exps.size(), 1u);
  EXPECT_EQ(exps[0], 1u);
}

TEST(Weight, ApproxMatches) {
  Weight w = Weight::from_exponents({1, 3});  // 1/2 + 1/8
  EXPECT_NEAR(w.approx(), 0.625, 1e-12);
}

TEST(Weight, OverflowPastOneThrows) {
  Weight w = Weight::one();
  EXPECT_THROW(w.add(Weight::one()), std::logic_error);
}

TEST(Weight, SplitZeroThrows) {
  Weight w;
  EXPECT_THROW(w.split(), std::logic_error);
}

TEST(WeightedProtocol, SimpleRoundTrip) {
  WeightedTerminationOriginator origin;
  EXPECT_TRUE(origin.all_weight_home());

  Weight msg = origin.borrow();
  EXPECT_FALSE(origin.all_weight_home());

  WeightedTerminationParticipant site;
  site.receive(std::move(msg));
  EXPECT_TRUE(site.holding());

  Weight forwarded = site.borrow();  // site engages a third party
  WeightedTerminationParticipant site2;
  site2.receive(std::move(forwarded));

  origin.repay(site.release_all());
  EXPECT_FALSE(origin.all_weight_home());  // site2 still holds weight
  origin.repay(site2.release_all());
  EXPECT_TRUE(origin.all_weight_home());
}

// --- Randomized protocol simulation, cross-checked against D-S ----------
//
// A synthetic "computation": messages carry work between sites; each site,
// upon receiving a message, sends 0..3 further messages (decreasing
// probability over time so the computation dies out). Both detectors
// observe the same trace; they must never report termination while any
// message is in flight or any site is active, and both must report it at
// the end.

struct TraceMessage {
  SiteId from;
  SiteId to;
  Weight weight;
};

TEST(WeightedProtocol, RandomizedNeverFalseNeverMissed) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    constexpr SiteId kSites = 5;
    constexpr SiteId kOrigin = 0;

    WeightedTerminationOriginator origin;
    std::vector<WeightedTerminationParticipant> parts(kSites);
    std::vector<DijkstraScholtenNode> ds;
    for (SiteId s = 0; s < kSites; ++s) {
      ds.emplace_back(s, s == kOrigin);
    }

    std::deque<TraceMessage> in_flight;
    std::map<std::pair<SiteId, SiteId>, int> ds_acks;  // (to, from) pending acks

    // Origin sends initial burst.
    const int initial = 1 + static_cast<int>(rng.next_below(3));
    ds[kOrigin].set_idle(false);
    for (int i = 0; i < initial; ++i) {
      const SiteId to = 1 + static_cast<SiteId>(rng.next_below(kSites - 1));
      in_flight.push_back({kOrigin, to, origin.borrow()});
      ds[kOrigin].on_send();
    }
    ds[kOrigin].set_idle(true);

    int budget = 200;  // total extra messages the computation may spawn
    while (!in_flight.empty()) {
      // Both detectors must agree: not terminated while messages fly.
      EXPECT_FALSE(origin.all_weight_home());
      EXPECT_FALSE(ds[kOrigin].terminated());

      const std::size_t pick = rng.next_below(in_flight.size());
      TraceMessage m = std::move(in_flight[pick]);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));

      // --- weighted side ---
      auto& part = parts[m.to];
      const bool to_origin_weight = (m.to == kOrigin);
      if (to_origin_weight) {
        origin.repay(std::move(m.weight));
      } else {
        part.receive(std::move(m.weight));
      }

      // --- D-S side ---
      const bool engaged = ds[m.to].on_message(m.from);
      if (!engaged) ++ds_acks[{m.from, m.to}];  // immediate ack owed
      ds[m.to].set_idle(false);

      // The site does some work: maybe sends more messages.
      const int fanout =
          budget > 0 ? static_cast<int>(rng.next_below(3)) : 0;
      for (int i = 0; i < fanout && budget > 0; --budget, ++i) {
        const SiteId to = static_cast<SiteId>(rng.next_below(kSites));
        Weight w = to_origin_weight ? origin.borrow() : part.borrow();
        in_flight.push_back({m.to, to, std::move(w)});
        ds[m.to].on_send();
      }
      ds[m.to].set_idle(true);

      // Deliver owed immediate acks.
      for (auto it = ds_acks.begin(); it != ds_acks.end();) {
        while (it->second > 0) {
          ds[it->first.first].on_ack();
          --it->second;
        }
        it = ds_acks.erase(it);
      }

      // Weighted: site done with this message -> return weight.
      if (!to_origin_weight && part.holding()) {
        origin.repay(part.release_all());
      }
      // D-S: detach any node that is idle with zero deficit.
      bool progress = true;
      while (progress) {
        progress = false;
        for (SiteId s = 0; s < kSites; ++s) {
          if (ds[s].ready_to_detach()) {
            const SiteId parent = *ds[s].parent();
            ds[s].detach();
            ds[parent].on_ack();
            progress = true;
          }
        }
      }
    }

    EXPECT_TRUE(origin.all_weight_home()) << "seed " << seed;
    EXPECT_TRUE(ds[kOrigin].terminated()) << "seed " << seed;
  }
}

TEST(WeightedProtocol, ReplayedRepayViolatesConservation) {
  WeightedTerminationOriginator origin;
  Weight w = origin.borrow();
  const auto bits = w.exponents();
  origin.repay(Weight::from_exponents(bits));
  EXPECT_TRUE(origin.all_weight_home());
  // The same weight bits arriving again (a wire-duplicated ResultMessage)
  // must be suppressed *before* the repay: crediting them is not merely
  // wrong, it is detectably impossible — the exact dyadic representation
  // overflows past one. This is why SiteServer dedups by msg_seq first.
  EXPECT_THROW(origin.repay(Weight::from_exponents(bits)), std::logic_error);
}

// Conservation ledger under loss and replay: at every step of a randomized
// computation, originator weight + participant weight + in-flight weight +
// weight lost to the network sums to exactly one; and while anything is
// lost, the originator must never see all weight home (a partial answer can
// only come from the TTL path, never from false termination).
TEST(WeightedProtocol, ConservationHoldsUnderLossAndReplay) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed);
    constexpr int kParts = 4;
    WeightedTerminationOriginator origin;
    std::vector<WeightedTerminationParticipant> parts(kParts);
    std::deque<std::pair<int, Weight>> in_flight;  // (dest, carried weight)
    Weight lost;

    auto check = [&] {
      Weight total;
      total.add(origin.held());
      for (const auto& p : parts) total.add(p.held());
      for (const auto& f : in_flight) total.add(f.second);
      total.add(lost);
      ASSERT_TRUE(total.is_one()) << "seed " << seed;
      if (!lost.is_zero()) {
        EXPECT_FALSE(origin.all_weight_home()) << "seed " << seed;
      }
    };

    const int burst = 2 + static_cast<int>(rng.next_below(2));
    for (int i = 0; i < burst; ++i) {
      in_flight.emplace_back(static_cast<int>(rng.next_below(kParts)),
                             origin.borrow());
    }
    check();

    int budget = 150;
    while (!in_flight.empty()) {
      const std::size_t pick = rng.next_below(in_flight.size());
      auto [to, w] = std::move(in_flight[pick]);
      in_flight.erase(in_flight.begin() + static_cast<std::ptrdiff_t>(pick));

      if (rng.next_bool(0.15)) {
        // The network ate the frame; its weight is gone for good.
        lost.add(w.take_all());
      } else {
        parts[to].receive(w.take_all());
        if (rng.next_bool(0.25)) {
          // Replayed delivery: the receiver's msg_seq dedup discards the
          // copy, so the duplicate credits nothing — the ledger is
          // untouched (crediting it would push the total past one).
        }
        const int fanout =
            budget > 0 ? static_cast<int>(rng.next_below(3)) : 0;
        for (int i = 0; i < fanout && budget > 0; --budget, ++i) {
          in_flight.emplace_back(static_cast<int>(rng.next_below(kParts)),
                                 parts[to].borrow());
        }
        if (parts[to].holding() && rng.next_bool(0.8)) {
          // Drain: the result message carries all held weight home — and it
          // too can be lost in flight.
          Weight back = parts[to].release_all();
          if (rng.next_bool(0.1)) {
            lost.add(back.take_all());
          } else {
            origin.repay(back.take_all());
          }
        }
      }
      check();
    }
    for (auto& p : parts) {
      if (p.holding()) origin.repay(p.release_all());
    }
    check();
    // Settled: weight is home iff the network lost nothing.
    EXPECT_EQ(origin.all_weight_home(), lost.is_zero()) << "seed " << seed;
  }
}

TEST(DijkstraScholten, BasicTree) {
  DijkstraScholtenNode root(0, true);
  DijkstraScholtenNode child(1);

  root.set_idle(false);
  root.on_send();
  root.set_idle(true);
  EXPECT_FALSE(root.terminated());

  EXPECT_TRUE(child.on_message(0));  // engaging message
  child.set_idle(false);
  child.set_idle(true);
  ASSERT_TRUE(child.ready_to_detach());
  EXPECT_EQ(*child.parent(), 0u);
  child.detach();
  root.on_ack();
  EXPECT_TRUE(root.terminated());
}

TEST(DijkstraScholten, NonEngagingMessageAckedImmediately) {
  DijkstraScholtenNode node(1);
  EXPECT_TRUE(node.on_message(0));
  EXPECT_FALSE(node.on_message(2));  // already engaged: caller acks now
  EXPECT_EQ(*node.parent(), 0u);
}

}  // namespace
}  // namespace hyperfile
