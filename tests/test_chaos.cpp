// Chaos suite: the paper's cross-site closure workload under injected
// message faults (net/faulty.hpp), across both termination detectors and
// both transports. The contract under faults (DESIGN.md §11):
//   * with a lossless schedule (none / duplicate / reorder+delay) the
//     answer is exact and unflagged — duplicate suppression and the
//     held-frame release make those faults invisible;
//   * with a lossy schedule (drops, partitions) the answer is a subset of
//     the true result, free of duplicates, and any shortfall is flagged
//     `partial` — never wrong, and never a hang (the client's timeout is
//     the assertion);
//   * every site's query contexts drain to zero afterwards (QueryDone or,
//     when that was lost, the context TTL).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>

#include "common/metrics.hpp"
#include "dist/client.hpp"
#include "dist/cluster.hpp"
#include "dist/site_server.hpp"
#include "engine/local_engine.hpp"
#include "net/faulty.hpp"
#include "net/transport.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

const char* kClosure =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)";

struct FaultCase {
  const char* name;
  FaultOptions faults;
  bool lossless;  // schedule cannot lose frames -> exact results required
};

std::vector<FaultCase> fault_cases() {
  std::vector<FaultCase> cases;
  cases.push_back({"none", FaultOptions{}, true});
  FaultOptions drop5;
  drop5.drop_p = 0.05;
  drop5.seed = 11;
  cases.push_back({"drop5", drop5, false});
  FaultOptions drop20;
  drop20.drop_p = 0.20;
  drop20.seed = 12;
  cases.push_back({"drop20", drop20, false});
  FaultOptions dup;
  dup.dup_p = 0.35;
  dup.seed = 13;
  cases.push_back({"dup", dup, true});
  FaultOptions reorder;
  reorder.reorder_p = 0.4;
  reorder.delay_p = 0.25;
  reorder.seed = 14;
  cases.push_back({"reorder", reorder, true});
  return cases;
}

/// Chain of `n` objects round-robin over the sites, "hit" on every third —
/// every hop is a cross-site message, so each frame is exposed to faults.
std::vector<ObjectId> populate_chain(Cluster& cluster, std::size_t n) {
  const std::size_t sites = cluster.size();
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(cluster.store(i % sites).allocate());
  }
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Reference", i + 1 < n ? ids[i + 1] : ids[i]));
    if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
    cluster.store(i % sites).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

SiteServerOptions chaos_options(TerminationAlgorithm algo) {
  SiteServerOptions options;
  options.termination = algo;
  // Fast self-healing so lossy schedules resolve within test budgets.
  options.context_ttl = Duration(400'000);
  options.retry_backoff = Duration(100);
  return options;
}

/// Summary exchange at test cadence (DESIGN.md §16): fast adverts, a TTL
/// long enough that only the protocol (epoch supersession, suspicion
/// drops), never expiry, is what keeps pruning honest in these tests.
void enable_summaries(SiteServerOptions& o) {
  o.summary_interval = Duration(20'000);
  o.summary_ttl = Duration(10'000'000);
}

/// Star-of-subchains: one root at site 0 fanning "Branch" pointers to a
/// fully local subchain per site, each subchain tagged with a *site-unique*
/// keyword. A query for kw<s> can only be answered by site s, and every
/// other site's summary provably refutes it — the shape where pruning
/// actually fires (the round-robin chain above has a remote traversal edge
/// at every hop, so its summaries conservatively never prune).
std::vector<std::vector<ObjectId>> populate_tree(
    const std::function<SiteStore&(SiteId)>& store_of, std::size_t sites) {
  std::vector<std::vector<ObjectId>> subs(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    for (int i = 0; i < 3; ++i) {
      subs[s].push_back(store_of(static_cast<SiteId>(s)).allocate());
    }
  }
  const ObjectId root = store_of(0).allocate();
  {
    Object obj(root);
    for (std::size_t s = 0; s < sites; ++s) {
      obj.add(Tuple::pointer("Branch", subs[s][0]));
    }
    store_of(0).put(std::move(obj));
  }
  for (std::size_t s = 0; s < sites; ++s) {
    for (std::size_t i = 0; i < subs[s].size(); ++i) {
      Object obj(subs[s][i]);
      obj.add(Tuple::pointer(
          "Branch", i + 1 < subs[s].size() ? subs[s][i + 1] : subs[s][i]));
      obj.add(Tuple::keyword("kw" + std::to_string(s)));
      store_of(static_cast<SiteId>(s)).put(std::move(obj));
    }
  }
  store_of(0).create_set("S", std::span<const ObjectId>(&root, 1));
  return subs;
}

Query tree_query(const std::string& kw) {
  return parse_or_die(
      R"(S [ (pointer, "Branch", ?X) | ^^X ]* (keyword, ")" + kw +
      R"(", ?) -> T)");
}

/// In-process cluster whose server endpoints are wrapped in fault
/// injectors (client links exempt, so the request/reply channel is
/// reliable and the assertions observe the query protocol alone).
struct ChaosCluster {
  std::unique_ptr<Cluster> cluster;
  std::vector<FaultInjectingEndpoint*> injectors;  // owned by the servers

  ChaosCluster(TerminationAlgorithm algo, const FaultOptions& faults,
               std::size_t sites = 3,
               std::function<void(SiteServerOptions&)> tweak = {}) {
    SiteServerOptions options = chaos_options(algo);
    if (tweak) tweak(options);
    injectors.resize(sites, nullptr);
    cluster = std::make_unique<Cluster>(
        sites, options, /*clients=*/1,
        [this, faults, sites](SiteId site,
                              std::unique_ptr<MessageEndpoint> inner)
            -> std::unique_ptr<MessageEndpoint> {
          FaultOptions o = faults;
          o.seed = faults.seed * 1000 + site + 1;  // distinct per-site streams
          o.exempt.push_back(static_cast<SiteId>(sites));
          auto ep =
              std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
          injectors[site] = ep.get();
          return ep;
        });
  }
};

/// Frame conservation (net/faulty.hpp): every send() attempt is accounted
/// for by exactly one fate, and once held frames are flushed nothing stays
/// in flight. Call while the cluster is still alive, after the workload.
void expect_frame_conservation(FaultInjectingEndpoint* inj, bool lossless,
                               bool strict_delivery) {
  ASSERT_NE(inj, nullptr);
  inj->flush_held();
  const FaultStats s = inj->fault_stats();
  EXPECT_EQ(s.attempts,
            s.forwarded + s.dropped + s.held + s.partitioned + s.crashed)
      << "a frame left the injector without a recorded fate";
  EXPECT_EQ(s.held, s.released + s.crash_dropped)
      << "held frames remain after flush_held()";
  EXPECT_LE(s.delivered, s.forwarded + s.duplicated + s.released);
  if (lossless) {
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_EQ(s.partitioned, 0u);
    EXPECT_EQ(s.crashed, 0u);
  }
  // In-proc lossless only: a live mailbox accepts every inner send. Over
  // TCP a send may fail transiently mid-connect (the protocol's retry is a
  // fresh injector attempt), so equality is not transport-independent.
  if (lossless && strict_delivery) {
    EXPECT_EQ(s.delivered, s.forwarded + s.duplicated + s.released);
  }
}

/// Poll until every site's context table empties (QueryDone or TTL).
void expect_contexts_drain(Cluster& cluster) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    std::size_t live = 0;
    for (SiteId s = 0; s < cluster.size(); ++s) {
      live += cluster.server(s).context_count();
    }
    if (live == 0) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << live << " contexts never drained";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Invariants every chaos answer must satisfy; returns the sorted ids.
std::vector<ObjectId> check_result(const QueryResult& result,
                                   const std::vector<ObjectId>& want_sorted,
                                   bool lossless) {
  std::vector<ObjectId> got = sorted(result.ids);
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
      << "duplicate ids in the answer";
  EXPECT_TRUE(std::includes(want_sorted.begin(), want_sorted.end(),
                            got.begin(), got.end()))
      << "answer contains ids outside the true result";
  if (lossless) {
    EXPECT_EQ(got, want_sorted) << "lossless schedule must be exact";
  }
  if (got != want_sorted) {
    EXPECT_TRUE(result.partial)
        << "shortfall without the partial flag: silently wrong answer";
  }
  return got;
}

/// Poll until every site caches a summary from every peer.
void wait_summaries(Cluster& cluster) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    bool converged = true;
    for (SiteId s = 0; s < cluster.size(); ++s) {
      if (cluster.server(s).summary_count() + 1 < cluster.size()) {
        converged = false;
      }
    }
    if (converged) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "summaries never converged";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void wait_summaries(const std::vector<std::unique_ptr<SiteServer>>& servers) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    bool converged = true;
    for (const auto& s : servers) {
      if (s && s->summary_count() + 1 < servers.size()) converged = false;
    }
    if (converged) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "summaries never converged";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

class ChaosAlgos : public ::testing::TestWithParam<TerminationAlgorithm> {};

TEST_P(ChaosAlgos, InProcWorkloadSurvivesFaultSchedules) {
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    ChaosCluster chaos(GetParam(), fc.faults);
    Cluster& cluster = *chaos.cluster;
    populate_chain(cluster, 30);
    Query q = parse_or_die(kClosure);

    // True answer, computed on a merged single-site replica.
    SiteStore merged(0);
    for (SiteId s = 0; s < cluster.size(); ++s) {
      cluster.store(s).for_each([&](const Object& obj) { merged.put(obj); });
      for (const auto& name : cluster.store(s).set_names()) {
        merged.bind_set(name, *cluster.store(s).find_set(name));
      }
    }
    LocalEngine engine(merged);
    auto truth = engine.run_readonly(q);
    ASSERT_TRUE(truth.ok());
    const std::vector<ObjectId> want = sorted(truth.value().ids);

    cluster.start();
    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto r = cluster.client().run(q, Duration(30'000'000));
      ASSERT_TRUE(r.ok()) << r.error().to_string();  // "never a hang"
      check_result(r.value(), want, fc.lossless);
      if (std::string(fc.name) == "none") {
        EXPECT_FALSE(r.value().partial);
        EXPECT_EQ(r.value().dropped_items, 0u);
      }
    }
    expect_contexts_drain(cluster);
    for (auto* inj : chaos.injectors) {
      expect_frame_conservation(inj, fc.lossless, /*strict_delivery=*/true);
    }
    cluster.stop();
  }
}

TEST_P(ChaosAlgos, PartitionedSiteHealsIntoExactAnswers) {
  ChaosCluster chaos(GetParam(), FaultOptions{});
  Cluster& cluster = *chaos.cluster;
  auto ids = populate_chain(cluster, 12);
  Query q = parse_or_die(kClosure);
  const std::vector<ObjectId> want = sorted({ids[0], ids[3], ids[6], ids[9]});
  cluster.start();

  // Isolate site 1: its outgoing links die, and its peers' links to it die.
  chaos.injectors[0]->partition(1);
  chaos.injectors[2]->partition(1);
  chaos.injectors[1]->partition_all();

  auto r1 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want, /*lossless=*/false);
  // The chain dies at the first pointer into site 1, so the answer is a
  // strict subset — and must say so.
  EXPECT_LT(got1.size(), want.size());
  EXPECT_TRUE(r1.value().partial);

  // Heal and ask again: the same deployment recovers full answers.
  chaos.injectors[0]->heal(1);
  chaos.injectors[2]->heal(1);
  chaos.injectors[1]->heal_all();

  auto r2 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), want);
  expect_contexts_drain(cluster);
  // Not lossless (the partition swallowed frames), but still conserved:
  // partitioned frames have a fate of their own.
  for (auto* inj : chaos.injectors) {
    expect_frame_conservation(inj, /*lossless=*/false,
                              /*strict_delivery=*/true);
    EXPECT_GT(inj->fault_stats().attempts, 0u);
  }
  EXPECT_GT(chaos.injectors[0]->fault_stats().partitioned, 0u)
      << "no frame ever hit the cut 0->1 link";
  cluster.stop();
}

// --- Crash-stop faults (DESIGN.md §13) ----------------------------------

TEST_P(ChaosAlgos, KilledSiteAnswersPartialThenRestartRecoversExact) {
  // Durable sites: every acknowledged mutation is WAL-logged, so a killed
  // site restarted from an *empty* store serves exactly what it served
  // before the crash.
  const std::string wal_dir =
      ::testing::TempDir() + "/hf_chaos_wal_" +
      std::to_string(static_cast<int>(GetParam()));
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  ChaosCluster chaos(GetParam(), FaultOptions{}, 3,
                     [&](SiteServerOptions& o) { o.wal_dir = wal_dir; });
  Cluster& cluster = *chaos.cluster;
  auto ids = populate_chain(cluster, 12);
  Query q = parse_or_die(kClosure);
  const std::vector<ObjectId> want = sorted({ids[0], ids[3], ids[6], ids[9]});
  const std::size_t site1_objects = cluster.store(1).size();
  cluster.start();

  // Healthy baseline.
  auto r0 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), want);
  EXPECT_FALSE(r0.value().partial);

  // Kill site 1 while a query is in flight: the result must be a flagged
  // subset or exact — never wrong, never hung.
  std::thread racer([&] {
    auto r = cluster.client().run(q, Duration(30'000'000));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    check_result(r.value(), want, /*lossless=*/false);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cluster.kill_site(1);
  racer.join();

  // With the site dead, peers' sends fail *loudly* (closed mailbox = dead
  // fd), so the protocol repays the weight at once: partial answer fast,
  // not after waiting anything out.
  const auto t0 = std::chrono::steady_clock::now();
  auto r1 = cluster.client().run(q, Duration(30'000'000));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want, /*lossless=*/false);
  EXPECT_LT(got1.size(), want.size());
  EXPECT_TRUE(r1.value().partial);
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  // Restart: WAL replay rebuilds the store, births re-register, and the
  // same deployment answers exactly again.
  auto rr = cluster.restart_site(1);
  ASSERT_TRUE(rr.ok()) << rr.error().to_string();
  auto recovered_size = [&]() {
    std::size_t n = 0;
    EXPECT_TRUE(cluster.server(1)
                    .run_exclusive([&]() -> Result<void> {
                      n = cluster.server(1).store().size();
                      return {};
                    })
                    .ok());
    return n;
  };
  EXPECT_EQ(recovered_size(), site1_objects)
      << "WAL recovery lost acknowledged mutations";
  auto r2 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), want);

  // Same crash again, but now recovery goes through an online checkpoint
  // (snapshot taken inside the live event loop) instead of raw replay.
  ASSERT_TRUE(cluster.server(1).checkpoint().ok());
  cluster.kill_site(1);
  ASSERT_TRUE(cluster.restart_site(1).ok());
  EXPECT_EQ(recovered_size(), site1_objects)
      << "checkpoint recovery lost acknowledged mutations";
  auto r3 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r3.ok()) << r3.error().to_string();
  EXPECT_EQ(sorted(r3.value().ids), want);

  expect_contexts_drain(cluster);
  for (auto* inj : chaos.injectors) {
    expect_frame_conservation(inj, /*lossless=*/false,
                              /*strict_delivery=*/false);
  }
  cluster.stop();
}

TEST_P(ChaosAlgos, SuspicionAnswersWithinWindowNotTtl) {
  // A *silent* failure (partition swallows frames — no loud error ever
  // reaches the originator) is the case only liveness can rescue: with an
  // hour-scale context_ttl the query must still answer within a few
  // suspicion windows, flagged partial.
  const std::uint64_t suspicions_before =
      metrics().counter("dist.suspicions").value();
  ChaosCluster chaos(GetParam(), FaultOptions{}, 3, [](SiteServerOptions& o) {
    o.context_ttl = Duration(60'000'000);  // TTL may not be the rescuer
    o.suspect_after = Duration(300'000);   // 300ms suspicion window
  });
  Cluster& cluster = *chaos.cluster;
  auto ids = populate_chain(cluster, 12);
  Query q = parse_or_die(kClosure);
  const std::vector<ObjectId> want = sorted({ids[0], ids[3], ids[6], ids[9]});
  cluster.start();

  chaos.injectors[0]->partition(1);
  chaos.injectors[2]->partition(1);
  chaos.injectors[1]->partition_all();

  const auto t0 = std::chrono::steady_clock::now();
  auto r1 = cluster.client().run(q, Duration(30'000'000));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want, /*lossless=*/false);
  EXPECT_LT(got1.size(), want.size());
  EXPECT_TRUE(r1.value().partial);
  EXPECT_LT(elapsed, std::chrono::seconds(15))
      << "the 60s TTL, not suspicion, must not be what resolved the query";
  EXPECT_GT(metrics().counter("dist.suspicions").value(), suspicions_before);

  // Suspicion must heal: the originator keeps probing its suspect, so once
  // the partition mends a ping reply revives the peer and the same
  // deployment answers exactly again.
  chaos.injectors[0]->heal(1);
  chaos.injectors[2]->heal(1);
  chaos.injectors[1]->heal_all();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    auto r2 = cluster.client().run(q, Duration(30'000'000));
    ASSERT_TRUE(r2.ok()) << r2.error().to_string();
    auto got2 = check_result(r2.value(), want, /*lossless=*/false);
    if (got2 == want) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "suspicion never healed after the partition mended";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  expect_contexts_drain(cluster);
  cluster.stop();
}

INSTANTIATE_TEST_SUITE_P(Algos, ChaosAlgos,
                         ::testing::Values(
                             TerminationAlgorithm::kWeightedMessages,
                             TerminationAlgorithm::kDijkstraScholten));

// --- TCP transport ------------------------------------------------------

struct TcpChaosDeployment {
  std::vector<std::unique_ptr<SiteServer>> servers;
  std::vector<FaultInjectingEndpoint*> injectors;  // owned by the servers
  std::unique_ptr<Client> client;
  std::vector<ObjectId> want;  // sorted true answer
  std::vector<std::vector<ObjectId>> subchains;  // tree populate only
  bool ok = false;
  std::vector<TcpPeer> peers;    // resolved addresses, for restarts
  FaultOptions faults;           // re-applied to restarted endpoints
  SiteServerOptions options;     // re-applied to restarted servers
  TcpBackend backend;            // re-applied to restarted transports

  TcpChaosDeployment(TerminationAlgorithm algo, TcpBackend backend_in,
                     const FaultOptions& faults_in, SiteId sites = 3,
                     std::function<void(SiteServerOptions&)> tweak = {},
                     bool tree = false)
      : faults(faults_in), options(chaos_options(algo)), backend(backend_in) {
    if (tweak) tweak(options);
    // Mirror Cluster: with summaries on and no explicit peer list, every
    // site advertises to every other site.
    if (options.summary_interval > Duration(0) &&
        options.summary_peers.empty()) {
      for (SiteId s = 0; s < sites; ++s) options.summary_peers.push_back(s);
    }
    std::vector<TcpPeer> zeros(sites + 1, TcpPeer{"127.0.0.1", 0});
    std::vector<std::unique_ptr<SocketTransport>> nets;
    for (SiteId s = 0; s <= sites; ++s) {
      auto net = make_socket_transport(backend, s, zeros);
      if (!net.ok()) return;  // no sockets in this environment
      nets.push_back(std::move(net).value());
    }
    for (SiteId peer = 0; peer <= sites; ++peer) {
      peers.push_back({"127.0.0.1", nets[peer]->bound_port()});
    }
    for (auto& net : nets) {
      for (SiteId peer = 0; peer <= sites; ++peer) {
        net->update_peer(peer, peers[peer]);
      }
    }

    for (SiteId s = 0; s < sites; ++s) {
      auto ep = decorated_endpoint(std::move(nets[s]), s);
      servers.push_back(std::make_unique<SiteServer>(std::move(ep),
                                                     SiteStore(s), options));
    }
    // Populate through the servers' stores (safe: not started yet) so that
    // when options.wal_dir is set every object lands in the log — recovery
    // from it is exactly what the crash tests exercise.
    if (tree) {
      subchains = populate_tree(
          [&](SiteId s) -> SiteStore& { return servers[s]->store(); }, sites);
    } else {
      std::vector<ObjectId> ids;
      for (std::size_t i = 0; i < 12; ++i) {
        ids.push_back(servers[i % sites]->store().allocate());
      }
      for (std::size_t i = 0; i < ids.size(); ++i) {
        Object obj(ids[i]);
        obj.add(Tuple::pointer("Reference",
                               i + 1 < ids.size() ? ids[i + 1] : ids[i]));
        if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
        servers[i % sites]->store().put(std::move(obj));
      }
      servers[0]->store().create_set("S",
                                     std::span<const ObjectId>(ids.data(), 1));
      want = sorted({ids[0], ids[3], ids[6], ids[9]});
    }

    for (auto& s : servers) s->start();
    client = std::make_unique<Client>(std::move(nets[sites]), 0);
    ok = true;
  }

  std::unique_ptr<FaultInjectingEndpoint> decorated_endpoint(
      std::unique_ptr<MessageEndpoint> inner, SiteId site) {
    FaultOptions o = faults;
    o.seed = faults.seed * 977 + site + 1;
    o.exempt.push_back(static_cast<SiteId>(peers.size() - 1));  // client link
    auto ep = std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
    if (injectors.size() <= site) injectors.resize(site + 1, nullptr);
    injectors[site] = ep.get();
    return ep;
  }

  /// Crash-stop: destroying the server closes its sockets, so peers see
  /// dead fds (loud failures) — exactly like a killed process.
  void kill(SiteId site) {
    servers[site]->stop();
    servers[site].reset();
    injectors[site] = nullptr;
  }

  /// Rebind the site's original port and bring up a fresh server from an
  /// *empty* store: whatever it serves afterwards came from checkpoint+WAL.
  Result<void> restart(SiteId site) {
    auto net = make_socket_transport(backend, site, peers);
    if (!net.ok()) return net.error();
    auto ep = decorated_endpoint(std::move(net).value(), site);
    servers[site] = std::make_unique<SiteServer>(std::move(ep),
                                                 SiteStore(site), options);
    servers[site]->start();
    return {};
  }

  ~TcpChaosDeployment() {
    for (auto& s : servers) {
      if (s) s->stop();
    }
  }
};

// Every TCP chaos test runs over both socket backends: the epoll transport
// must satisfy the exact chaos contract the threaded one does, with the
// FaultInjectingEndpoint decoration unchanged.
class TcpChaosMatrix
    : public ::testing::TestWithParam<
          std::tuple<TerminationAlgorithm, TcpBackend>> {
 protected:
  TerminationAlgorithm algo() const { return std::get<0>(GetParam()); }
  TcpBackend backend() const { return std::get<1>(GetParam()); }
  std::string tag() const {
    return std::to_string(static_cast<int>(algo())) + "_" +
           to_string(backend());
  }
};

TEST_P(TcpChaosMatrix, TcpWorkloadSurvivesFaultSchedules) {
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    TcpChaosDeployment d(algo(), backend(), fc.faults);
    if (!d.ok) GTEST_SKIP() << "no localhost sockets";
    Query q = parse_or_die(kClosure);
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto r = d.client->run(q, Duration(30'000'000));
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      check_result(r.value(), d.want, fc.lossless);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (;;) {
      std::size_t live = 0;
      for (auto& s : d.servers) live += s->context_count();
      if (live == 0) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << live << " contexts never drained";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // The attempt/held conservation laws are transport-independent.
    for (auto* inj : d.injectors) {
      expect_frame_conservation(inj, fc.lossless, /*strict_delivery=*/false);
    }
  }
}

TEST_P(TcpChaosMatrix, TcpKilledSiteAnswersPartialThenRestartRecoversExact) {
  // Same crash/recover contract as in-proc, over real sockets: the killed
  // process's fds die loudly, the restarted one rebinds its port and
  // recovers from the WAL, and peers reconnect lazily on their next send.
  const std::string wal_dir = ::testing::TempDir() + "/hf_tcp_chaos_wal_" + tag();
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  TcpChaosDeployment d(algo(), backend(), FaultOptions{}, 3,
                       [&](SiteServerOptions& o) { o.wal_dir = wal_dir; });
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  Query q = parse_or_die(kClosure);

  auto r0 = d.client->run(q, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), d.want);
  EXPECT_FALSE(r0.value().partial);

  d.kill(1);
  const auto t0 = std::chrono::steady_clock::now();
  auto r1 = d.client->run(q, Duration(30'000'000));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), d.want, /*lossless=*/false);
  EXPECT_LT(got1.size(), d.want.size());
  EXPECT_TRUE(r1.value().partial);
  EXPECT_LT(elapsed, std::chrono::seconds(20))
      << "a dead fd is a loud failure; the reply must not wait out a TTL";

  ASSERT_TRUE(d.restart(1).ok());
  // Reconnection is lazy (dead fds are purged on the next failed send), so
  // poll until the answer is exact again — and never wrong meanwhile.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    auto r2 = d.client->run(q, Duration(30'000'000));
    ASSERT_TRUE(r2.ok()) << r2.error().to_string();
    auto got2 = check_result(r2.value(), d.want, /*lossless=*/false);
    if (got2 == d.want) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "restarted site never served exact answers again";
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

// --- Hot-standby failover under chaos (DESIGN.md §18) -------------------

/// Poll until `follower`'s shadow of `primary` covers the primary's WAL
/// tail and matches its live store object-for-object.
void wait_replica_synced(TcpChaosDeployment& d, SiteId primary,
                         SiteId follower) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    auto probe = d.servers[follower]->replica_probe(primary);
    if (probe.exists && probe.covers_tail) {
      SiteStore truth = d.servers[primary]->store_copy();
      bool equal = truth.size() == probe.shadow.size();
      truth.for_each([&](const Object& obj) {
        const Object* other = probe.shadow.get(obj.id());
        if (other == nullptr || !(*other == obj)) equal = false;
      });
      if (equal) return;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "site " << follower << "'s shadow of site " << primary
        << " never synced";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Replication at test cadence with the ring assignment Cluster would
/// auto-fill (site i ships to site i+1) and a fast failure detector.
std::function<void(SiteServerOptions&)> enable_replication(
    const std::string& wal_dir, SiteId sites = 3) {
  return [wal_dir, sites](SiteServerOptions& o) {
    o.wal_dir = wal_dir;
    o.replication_interval = Duration(5'000);
    o.suspect_after = Duration(300'000);
    for (SiteId s = 0; s < sites; ++s) {
      o.replica_assignment[s] = static_cast<SiteId>((s + 1) % sites);
    }
  };
}

TEST_P(TcpChaosMatrix, PrimaryDeathServesFromReplicaExactOrFlaggedPartial) {
  // The availability contract (DESIGN.md §18): with a synced hot standby,
  // killing a primary must degrade answers to exact-or-flagged-partial
  // (never wrong, never hung), and within the suspicion window the
  // standby's shadow must take over with *exact, unflagged* answers.
  const std::string wal_dir =
      ::testing::TempDir() + "/hf_tcp_failover_wal_" + tag();
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  TcpChaosDeployment d(algo(), backend(), FaultOptions{}, 3,
                       enable_replication(wal_dir));
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  Query q = parse_or_die(kClosure);

  auto r0 = d.client->run(q, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), d.want);
  EXPECT_FALSE(r0.value().partial);

  // The kill only has a covering replica once site 2's shadow of site 1
  // has caught up; killing earlier tests the lag path, not failover.
  wait_replica_synced(d, /*primary=*/1, /*follower=*/2);
  const std::uint64_t failovers_before =
      metrics().counter("dist.failovers").value();
  d.kill(1);

  // Interim answers (before suspicion converges at every router) may be
  // flagged partial; check_result asserts each one is a subset with no
  // duplicates. The loop exits only on the target state: exact and
  // unflagged, served while the primary is still dead.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(25);
  for (;;) {
    auto r = d.client->run(q, Duration(30'000'000));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    auto got = check_result(r.value(), d.want, /*lossless=*/false);
    if (got == d.want && !r.value().partial) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "failover never produced an exact unflagged answer";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GT(metrics().counter("dist.failovers").value(), failovers_before)
      << "the exact answer did not come from the failover path";
}

TEST_P(TcpChaosMatrix, RevivedPrimaryReclaimsRoutingWithoutSplitBrain) {
  // After a failover, the revived primary replays its own WAL, heals the
  // suspicion through ping replies, and reclaims routing: queries stop
  // paying the failover path. The split-brain guard is check_result's
  // duplicate assertion — a primary and its stale shadow both serving the
  // same objects would surface as duplicated ids.
  const std::string wal_dir =
      ::testing::TempDir() + "/hf_tcp_revive_wal_" + tag();
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  TcpChaosDeployment d(algo(), backend(), FaultOptions{}, 3,
                       enable_replication(wal_dir));
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  Query q = parse_or_die(kClosure);

  wait_replica_synced(d, 1, 2);
  d.kill(1);
  const auto failover_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(25);
  for (;;) {
    auto r = d.client->run(q, Duration(30'000'000));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    auto got = check_result(r.value(), d.want, /*lossless=*/false);
    if (got == d.want && !r.value().partial) break;
    ASSERT_LT(std::chrono::steady_clock::now(), failover_deadline)
        << "failover never produced an exact unflagged answer";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  ASSERT_TRUE(d.restart(1).ok());
  // Reclaimed routing: an exact, unflagged answer that incremented no
  // failover counter — the primary itself served its span. Until then
  // every interim answer must still be exact-or-flagged, never wrong.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(25);
  for (;;) {
    const std::uint64_t failovers_before =
        metrics().counter("dist.failovers").value();
    auto r = d.client->run(q, Duration(30'000'000));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    auto got = check_result(r.value(), d.want, /*lossless=*/false);
    if (got == d.want && !r.value().partial &&
        metrics().counter("dist.failovers").value() == failovers_before) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "revived primary never reclaimed routing";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // And it reclaims *shipping*: a post-revival mutation must flow through
  // the recovered WAL (new ship generation) into the standby's shadow.
  ASSERT_TRUE(d.servers[1]
                  ->run_exclusive([&]() -> Result<void> {
                    SiteStore& store = d.servers[1]->store();
                    Object obj(store.allocate());
                    obj.add(Tuple::string("Name", "post-revival"));
                    store.put(std::move(obj));
                    return {};
                  })
                  .ok());
  wait_replica_synced(d, 1, 2);
}

// --- Summary pruning under chaos (DESIGN.md §16) ------------------------

TEST_P(ChaosAlgos, InProcFaultSchedulesStayExactWithPruning) {
  // The fault matrix again, now with summary pruning live on the topology
  // where it actually fires: duplicated adverts must dedup, reordered
  // (stale) adverts must lose the (epoch, version) race, and pruning must
  // never turn a lossless schedule's exact answer into a silent shortfall.
  // Frame conservation is not asserted here — adverts are periodic
  // background traffic, so the injector is never quiescent.
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    ChaosCluster chaos(GetParam(), fc.faults, 3, enable_summaries);
    Cluster& cluster = *chaos.cluster;
    auto subs = populate_tree(
        [&](SiteId s) -> SiteStore& { return cluster.store(s); }, 3);
    cluster.start();
    if (std::string(fc.name) == "none") wait_summaries(cluster);
    const std::uint64_t prunes_before =
        metrics().counter("dist.prunes").value();
    for (std::size_t s = 0; s < subs.size(); ++s) {
      SCOPED_TRACE("kw" + std::to_string(s));
      Query q = tree_query("kw" + std::to_string(s));
      const std::vector<ObjectId> want = sorted(subs[s]);
      for (int round = 0; round < 2; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        auto r = cluster.client().run(q, Duration(30'000'000));
        ASSERT_TRUE(r.ok()) << r.error().to_string();
        check_result(r.value(), want, fc.lossless);
      }
    }
    if (std::string(fc.name) == "none") {
      EXPECT_GT(metrics().counter("dist.prunes").value(), prunes_before)
          << "converged summaries never pruned a refutable deref on the "
             "star-of-subchains topology";
    }
    expect_contexts_drain(cluster);
    cluster.stop();
  }
}

TEST_P(ChaosAlgos, RestartReAdvertisesSummaryNoPermanentFalsePrune) {
  // The stale-summary bug this PR fixes: a site dies, restarts from its
  // WAL, and its content moves on. Peers holding the pre-crash summary
  // must never keep pruning derefs the recovered site could answer —
  // suspicion drops the cached copy, and the restarted site's higher boot
  // epoch supersedes any stale record still gossiping around.
  const std::string wal_dir =
      ::testing::TempDir() + "/hf_summary_wal_" +
      std::to_string(static_cast<int>(GetParam()));
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  ChaosCluster chaos(GetParam(), FaultOptions{}, 3, [&](SiteServerOptions& o) {
    o.wal_dir = wal_dir;
    o.suspect_after = Duration(300'000);
    enable_summaries(o);
  });
  Cluster& cluster = *chaos.cluster;
  auto subs = populate_tree(
      [&](SiteId s) -> SiteStore& { return cluster.store(s); }, 3);
  cluster.start();
  wait_summaries(cluster);

  Query q1 = tree_query("kw1");
  const std::vector<ObjectId> want1 = sorted(subs[1]);
  const std::uint64_t prunes_before = metrics().counter("dist.prunes").value();
  auto r0 = cluster.client().run(q1, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), want1);
  EXPECT_FALSE(r0.value().partial);
  EXPECT_GT(metrics().counter("dist.prunes").value(), prunes_before)
      << "site 2's summary refutes kw1, so its deref must have been pruned";

  // Crash site 1. Its summary is still cached at peers and says kw1 lives
  // there, so the deref is *not* pruned — the send fails loudly and the
  // answer comes back a flagged subset. Pruning must never convert a dead
  // site into a silent empty "exact" result.
  cluster.kill_site(1);
  auto r1 = cluster.client().run(q1, Duration(30'000'000));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want1, /*lossless=*/false);
  EXPECT_LT(got1.size(), want1.size());
  EXPECT_TRUE(r1.value().partial);

  // Restart from the WAL: the recovered site re-advertises and peers
  // converge back to exact answers.
  ASSERT_TRUE(cluster.restart_site(1).ok());
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (;;) {
      auto r2 = cluster.client().run(q1, Duration(30'000'000));
      ASSERT_TRUE(r2.ok()) << r2.error().to_string();
      auto got2 = check_result(r2.value(), want1, /*lossless=*/false);
      if (got2 == want1) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "restarted site never served exact answers again";
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  // Now the content *changes*: a keyword no pre-crash summary ever saw.
  // If any peer kept pruning on the stale summary this query would stay
  // empty forever; the next advert cadence must make it answerable. (The
  // answer may transiently be empty within one advert interval of the
  // mutation — that residual window is the documented bound, so this poll
  // checks convergence, not per-round flags.)
  ASSERT_TRUE(cluster.server(1)
                  .run_exclusive([&]() -> Result<void> {
                    return cluster.server(1).store().add_tuple(
                        subs[1][0], Tuple::keyword("fresh"));
                  })
                  .ok());
  Query qf = tree_query("fresh");
  const std::vector<ObjectId> wantf = {subs[1][0]};
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (;;) {
      auto rf = cluster.client().run(qf, Duration(30'000'000));
      ASSERT_TRUE(rf.ok()) << rf.error().to_string();
      if (sorted(rf.value().ids) == wantf) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "post-restart mutation never became visible: a stale summary "
             "is permanently false-pruning the recovered site";
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  expect_contexts_drain(cluster);
  cluster.stop();
}

TEST_P(ChaosAlgos, VolatileRestartReAdvertisesSummaryNoPermanentFalsePrune) {
  // The stale-summary scenario the durable (WAL) restart tests cannot
  // reach: a *volatile* site has no boot sidecar, and its store-version
  // counter restarts at zero. Its pre-crash record — higher version, kept
  // alive by site 2's gossip (site 2 never has a query waiting on site 1,
  // so it never suspects it and never drops the cache) — would beat every
  // fresh post-restart advert under the (epoch, version) rule forever,
  // silently false-pruning the restarted site. The boot-wall-clock epoch
  // must make the new incarnation supersede instead. summary_ttl stays 0
  // (the default: no expiry) so only epoch supersession can retire the
  // stale record, and no query runs during the outage so no suspicion ever
  // opens a no-summary window that would mask the bug.
  ChaosCluster chaos(GetParam(), FaultOptions{}, 3, [](SiteServerOptions& o) {
    o.suspect_after = Duration(300'000);
    o.summary_interval = Duration(20'000);
    o.summary_ttl = Duration(0);
  });
  Cluster& cluster = *chaos.cluster;
  auto subs = populate_tree(
      [&](SiteId s) -> SiteStore& { return cluster.store(s); }, 3);
  cluster.start();
  wait_summaries(cluster);

  Query q1 = tree_query("kw1");
  const std::vector<ObjectId> want1 = sorted(subs[1]);
  auto r0 = cluster.client().run(q1, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), want1);
  EXPECT_FALSE(r0.value().partial);

  // Crash-restart site 1 volatile: the store comes back empty. Re-create
  // the head of its subchain *at the same id* the root still points to,
  // but carrying a keyword no pre-crash summary ever saw. The stale
  // summary holds the id probe and refutes "fresh" with a site-confined
  // traversal — exactly the shape that false-prunes.
  cluster.kill_site(1);
  ASSERT_TRUE(cluster.restart_site(1).ok());
  ASSERT_TRUE(cluster.server(1)
                  .run_exclusive([&]() -> Result<void> {
                    SiteStore& s1 = cluster.server(1).store();
                    Object obj(subs[1][0]);
                    obj.add(Tuple::pointer("Branch", subs[1][0]));
                    obj.add(Tuple::keyword("fresh"));
                    s1.put(std::move(obj));
                    cluster.server(1).names().register_birth(subs[1][0]);
                    return {};
                  })
                  .ok());

  // If the pre-crash record keeps authority anywhere on the gossip path,
  // site 0 prunes the Branch deref to subs[1][0] on every round and this
  // poll never converges.
  Query qf = tree_query("fresh");
  const std::vector<ObjectId> wantf = {subs[1][0]};
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (;;) {
      auto rf = cluster.client().run(qf, Duration(30'000'000));
      ASSERT_TRUE(rf.ok()) << rf.error().to_string();
      if (sorted(rf.value().ids) == wantf) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "volatile restart never became visible: a stale summary is "
             "permanently false-pruning the restarted site";
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  expect_contexts_drain(cluster);
  cluster.stop();
}

TEST_P(TcpChaosMatrix, TcpFaultSchedulesStayExactWithPruning) {
  // Same contract as the in-proc matrix, over real sockets: fault
  // schedules mangle advert traffic too, and answers must stay exact
  // (lossless) or flagged (lossy) with pruning live.
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    TcpChaosDeployment d(algo(), backend(), fc.faults, 3, enable_summaries,
                         /*tree=*/true);
    if (!d.ok) GTEST_SKIP() << "no localhost sockets";
    if (std::string(fc.name) == "none") wait_summaries(d.servers);
    for (std::size_t s = 0; s < d.subchains.size(); ++s) {
      SCOPED_TRACE("kw" + std::to_string(s));
      Query q = tree_query("kw" + std::to_string(s));
      const std::vector<ObjectId> want = sorted(d.subchains[s]);
      auto r = d.client->run(q, Duration(30'000'000));
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      check_result(r.value(), want, fc.lossless);
    }
  }
}

TEST_P(TcpChaosMatrix, TcpRestartReAdvertisesSummaryNoPermanentFalsePrune) {
  // The kill/restart staleness regression over TCP: the restarted process
  // rebinds its port, recovers from the WAL under a higher boot epoch, and
  // its re-advertised summary must displace the stale cached copies so a
  // post-restart mutation becomes queryable.
  const std::string wal_dir =
      ::testing::TempDir() + "/hf_tcp_summary_wal_" + tag();
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  TcpChaosDeployment d(
      algo(), backend(), FaultOptions{}, 3,
      [&](SiteServerOptions& o) {
        o.wal_dir = wal_dir;
        o.suspect_after = Duration(300'000);
        enable_summaries(o);
      },
      /*tree=*/true);
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  wait_summaries(d.servers);

  Query q1 = tree_query("kw1");
  const std::vector<ObjectId> want1 = sorted(d.subchains[1]);
  auto r0 = d.client->run(q1, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), want1);
  EXPECT_FALSE(r0.value().partial);

  d.kill(1);
  auto r1 = d.client->run(q1, Duration(30'000'000));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want1, /*lossless=*/false);
  EXPECT_LT(got1.size(), want1.size());
  EXPECT_TRUE(r1.value().partial);

  ASSERT_TRUE(d.restart(1).ok());
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      auto r2 = d.client->run(q1, Duration(30'000'000));
      ASSERT_TRUE(r2.ok()) << r2.error().to_string();
      auto got2 = check_result(r2.value(), want1, /*lossless=*/false);
      if (got2 == want1) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "restarted site never served exact answers again";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

  ASSERT_TRUE(d.servers[1]
                  ->run_exclusive([&]() -> Result<void> {
                    return d.servers[1]->store().add_tuple(
                        d.subchains[1][0], Tuple::keyword("fresh"));
                  })
                  .ok());
  Query qf = tree_query("fresh");
  const std::vector<ObjectId> wantf = {d.subchains[1][0]};
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      auto rf = d.client->run(qf, Duration(30'000'000));
      ASSERT_TRUE(rf.ok()) << rf.error().to_string();
      if (sorted(rf.value().ids) == wantf) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "post-restart mutation never became visible: a stale summary "
             "is permanently false-pruning the recovered site";
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgosByBackend, TcpChaosMatrix,
    ::testing::Combine(
        ::testing::Values(TerminationAlgorithm::kWeightedMessages,
                          TerminationAlgorithm::kDijkstraScholten),
        ::testing::Values(TcpBackend::kThreaded, TcpBackend::kEpoll)),
    [](const ::testing::TestParamInfo<TcpChaosMatrix::ParamType>& info) {
      const char* algo =
          std::get<0>(info.param) == TerminationAlgorithm::kWeightedMessages
              ? "weighted"
              : "dijkstra_scholten";
      return std::string(algo) + "_" + to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hyperfile
