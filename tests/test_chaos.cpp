// Chaos suite: the paper's cross-site closure workload under injected
// message faults (net/faulty.hpp), across both termination detectors and
// both transports. The contract under faults (DESIGN.md §11):
//   * with a lossless schedule (none / duplicate / reorder+delay) the
//     answer is exact and unflagged — duplicate suppression and the
//     held-frame release make those faults invisible;
//   * with a lossy schedule (drops, partitions) the answer is a subset of
//     the true result, free of duplicates, and any shortfall is flagged
//     `partial` — never wrong, and never a hang (the client's timeout is
//     the assertion);
//   * every site's query contexts drain to zero afterwards (QueryDone or,
//     when that was lost, the context TTL).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <thread>

#include "common/metrics.hpp"
#include "dist/client.hpp"
#include "dist/cluster.hpp"
#include "dist/site_server.hpp"
#include "engine/local_engine.hpp"
#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

const char* kClosure =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)";

struct FaultCase {
  const char* name;
  FaultOptions faults;
  bool lossless;  // schedule cannot lose frames -> exact results required
};

std::vector<FaultCase> fault_cases() {
  std::vector<FaultCase> cases;
  cases.push_back({"none", FaultOptions{}, true});
  FaultOptions drop5;
  drop5.drop_p = 0.05;
  drop5.seed = 11;
  cases.push_back({"drop5", drop5, false});
  FaultOptions drop20;
  drop20.drop_p = 0.20;
  drop20.seed = 12;
  cases.push_back({"drop20", drop20, false});
  FaultOptions dup;
  dup.dup_p = 0.35;
  dup.seed = 13;
  cases.push_back({"dup", dup, true});
  FaultOptions reorder;
  reorder.reorder_p = 0.4;
  reorder.delay_p = 0.25;
  reorder.seed = 14;
  cases.push_back({"reorder", reorder, true});
  return cases;
}

/// Chain of `n` objects round-robin over the sites, "hit" on every third —
/// every hop is a cross-site message, so each frame is exposed to faults.
std::vector<ObjectId> populate_chain(Cluster& cluster, std::size_t n) {
  const std::size_t sites = cluster.size();
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(cluster.store(i % sites).allocate());
  }
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Reference", i + 1 < n ? ids[i + 1] : ids[i]));
    if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
    cluster.store(i % sites).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

SiteServerOptions chaos_options(TerminationAlgorithm algo) {
  SiteServerOptions options;
  options.termination = algo;
  // Fast self-healing so lossy schedules resolve within test budgets.
  options.context_ttl = Duration(400'000);
  options.retry_backoff = Duration(100);
  return options;
}

/// In-process cluster whose server endpoints are wrapped in fault
/// injectors (client links exempt, so the request/reply channel is
/// reliable and the assertions observe the query protocol alone).
struct ChaosCluster {
  std::unique_ptr<Cluster> cluster;
  std::vector<FaultInjectingEndpoint*> injectors;  // owned by the servers

  ChaosCluster(TerminationAlgorithm algo, const FaultOptions& faults,
               std::size_t sites = 3,
               std::function<void(SiteServerOptions&)> tweak = {}) {
    SiteServerOptions options = chaos_options(algo);
    if (tweak) tweak(options);
    injectors.resize(sites, nullptr);
    cluster = std::make_unique<Cluster>(
        sites, options, /*clients=*/1,
        [this, faults, sites](SiteId site,
                              std::unique_ptr<MessageEndpoint> inner)
            -> std::unique_ptr<MessageEndpoint> {
          FaultOptions o = faults;
          o.seed = faults.seed * 1000 + site + 1;  // distinct per-site streams
          o.exempt.push_back(static_cast<SiteId>(sites));
          auto ep =
              std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
          injectors[site] = ep.get();
          return ep;
        });
  }
};

/// Frame conservation (net/faulty.hpp): every send() attempt is accounted
/// for by exactly one fate, and once held frames are flushed nothing stays
/// in flight. Call while the cluster is still alive, after the workload.
void expect_frame_conservation(FaultInjectingEndpoint* inj, bool lossless,
                               bool strict_delivery) {
  ASSERT_NE(inj, nullptr);
  inj->flush_held();
  const FaultStats s = inj->fault_stats();
  EXPECT_EQ(s.attempts,
            s.forwarded + s.dropped + s.held + s.partitioned + s.crashed)
      << "a frame left the injector without a recorded fate";
  EXPECT_EQ(s.held, s.released + s.crash_dropped)
      << "held frames remain after flush_held()";
  EXPECT_LE(s.delivered, s.forwarded + s.duplicated + s.released);
  if (lossless) {
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_EQ(s.partitioned, 0u);
    EXPECT_EQ(s.crashed, 0u);
  }
  // In-proc lossless only: a live mailbox accepts every inner send. Over
  // TCP a send may fail transiently mid-connect (the protocol's retry is a
  // fresh injector attempt), so equality is not transport-independent.
  if (lossless && strict_delivery) {
    EXPECT_EQ(s.delivered, s.forwarded + s.duplicated + s.released);
  }
}

/// Poll until every site's context table empties (QueryDone or TTL).
void expect_contexts_drain(Cluster& cluster) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    std::size_t live = 0;
    for (SiteId s = 0; s < cluster.size(); ++s) {
      live += cluster.server(s).context_count();
    }
    if (live == 0) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << live << " contexts never drained";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Invariants every chaos answer must satisfy; returns the sorted ids.
std::vector<ObjectId> check_result(const QueryResult& result,
                                   const std::vector<ObjectId>& want_sorted,
                                   bool lossless) {
  std::vector<ObjectId> got = sorted(result.ids);
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
      << "duplicate ids in the answer";
  EXPECT_TRUE(std::includes(want_sorted.begin(), want_sorted.end(),
                            got.begin(), got.end()))
      << "answer contains ids outside the true result";
  if (lossless) {
    EXPECT_EQ(got, want_sorted) << "lossless schedule must be exact";
  }
  if (got != want_sorted) {
    EXPECT_TRUE(result.partial)
        << "shortfall without the partial flag: silently wrong answer";
  }
  return got;
}

class ChaosAlgos : public ::testing::TestWithParam<TerminationAlgorithm> {};

TEST_P(ChaosAlgos, InProcWorkloadSurvivesFaultSchedules) {
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    ChaosCluster chaos(GetParam(), fc.faults);
    Cluster& cluster = *chaos.cluster;
    populate_chain(cluster, 30);
    Query q = parse_or_die(kClosure);

    // True answer, computed on a merged single-site replica.
    SiteStore merged(0);
    for (SiteId s = 0; s < cluster.size(); ++s) {
      cluster.store(s).for_each([&](const Object& obj) { merged.put(obj); });
      for (const auto& name : cluster.store(s).set_names()) {
        merged.bind_set(name, *cluster.store(s).find_set(name));
      }
    }
    LocalEngine engine(merged);
    auto truth = engine.run_readonly(q);
    ASSERT_TRUE(truth.ok());
    const std::vector<ObjectId> want = sorted(truth.value().ids);

    cluster.start();
    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto r = cluster.client().run(q, Duration(30'000'000));
      ASSERT_TRUE(r.ok()) << r.error().to_string();  // "never a hang"
      check_result(r.value(), want, fc.lossless);
      if (std::string(fc.name) == "none") {
        EXPECT_FALSE(r.value().partial);
        EXPECT_EQ(r.value().dropped_items, 0u);
      }
    }
    expect_contexts_drain(cluster);
    for (auto* inj : chaos.injectors) {
      expect_frame_conservation(inj, fc.lossless, /*strict_delivery=*/true);
    }
    cluster.stop();
  }
}

TEST_P(ChaosAlgos, PartitionedSiteHealsIntoExactAnswers) {
  ChaosCluster chaos(GetParam(), FaultOptions{});
  Cluster& cluster = *chaos.cluster;
  auto ids = populate_chain(cluster, 12);
  Query q = parse_or_die(kClosure);
  const std::vector<ObjectId> want = sorted({ids[0], ids[3], ids[6], ids[9]});
  cluster.start();

  // Isolate site 1: its outgoing links die, and its peers' links to it die.
  chaos.injectors[0]->partition(1);
  chaos.injectors[2]->partition(1);
  chaos.injectors[1]->partition_all();

  auto r1 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want, /*lossless=*/false);
  // The chain dies at the first pointer into site 1, so the answer is a
  // strict subset — and must say so.
  EXPECT_LT(got1.size(), want.size());
  EXPECT_TRUE(r1.value().partial);

  // Heal and ask again: the same deployment recovers full answers.
  chaos.injectors[0]->heal(1);
  chaos.injectors[2]->heal(1);
  chaos.injectors[1]->heal_all();

  auto r2 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), want);
  expect_contexts_drain(cluster);
  // Not lossless (the partition swallowed frames), but still conserved:
  // partitioned frames have a fate of their own.
  for (auto* inj : chaos.injectors) {
    expect_frame_conservation(inj, /*lossless=*/false,
                              /*strict_delivery=*/true);
    EXPECT_GT(inj->fault_stats().attempts, 0u);
  }
  EXPECT_GT(chaos.injectors[0]->fault_stats().partitioned, 0u)
      << "no frame ever hit the cut 0->1 link";
  cluster.stop();
}

// --- Crash-stop faults (DESIGN.md §13) ----------------------------------

TEST_P(ChaosAlgos, KilledSiteAnswersPartialThenRestartRecoversExact) {
  // Durable sites: every acknowledged mutation is WAL-logged, so a killed
  // site restarted from an *empty* store serves exactly what it served
  // before the crash.
  const std::string wal_dir =
      ::testing::TempDir() + "/hf_chaos_wal_" +
      std::to_string(static_cast<int>(GetParam()));
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  ChaosCluster chaos(GetParam(), FaultOptions{}, 3,
                     [&](SiteServerOptions& o) { o.wal_dir = wal_dir; });
  Cluster& cluster = *chaos.cluster;
  auto ids = populate_chain(cluster, 12);
  Query q = parse_or_die(kClosure);
  const std::vector<ObjectId> want = sorted({ids[0], ids[3], ids[6], ids[9]});
  const std::size_t site1_objects = cluster.store(1).size();
  cluster.start();

  // Healthy baseline.
  auto r0 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), want);
  EXPECT_FALSE(r0.value().partial);

  // Kill site 1 while a query is in flight: the result must be a flagged
  // subset or exact — never wrong, never hung.
  std::thread racer([&] {
    auto r = cluster.client().run(q, Duration(30'000'000));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    check_result(r.value(), want, /*lossless=*/false);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  cluster.kill_site(1);
  racer.join();

  // With the site dead, peers' sends fail *loudly* (closed mailbox = dead
  // fd), so the protocol repays the weight at once: partial answer fast,
  // not after waiting anything out.
  const auto t0 = std::chrono::steady_clock::now();
  auto r1 = cluster.client().run(q, Duration(30'000'000));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want, /*lossless=*/false);
  EXPECT_LT(got1.size(), want.size());
  EXPECT_TRUE(r1.value().partial);
  EXPECT_LT(elapsed, std::chrono::seconds(10));

  // Restart: WAL replay rebuilds the store, births re-register, and the
  // same deployment answers exactly again.
  auto rr = cluster.restart_site(1);
  ASSERT_TRUE(rr.ok()) << rr.error().to_string();
  auto recovered_size = [&]() {
    std::size_t n = 0;
    EXPECT_TRUE(cluster.server(1)
                    .run_exclusive([&]() -> Result<void> {
                      n = cluster.server(1).store().size();
                      return {};
                    })
                    .ok());
    return n;
  };
  EXPECT_EQ(recovered_size(), site1_objects)
      << "WAL recovery lost acknowledged mutations";
  auto r2 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), want);

  // Same crash again, but now recovery goes through an online checkpoint
  // (snapshot taken inside the live event loop) instead of raw replay.
  ASSERT_TRUE(cluster.server(1).checkpoint().ok());
  cluster.kill_site(1);
  ASSERT_TRUE(cluster.restart_site(1).ok());
  EXPECT_EQ(recovered_size(), site1_objects)
      << "checkpoint recovery lost acknowledged mutations";
  auto r3 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r3.ok()) << r3.error().to_string();
  EXPECT_EQ(sorted(r3.value().ids), want);

  expect_contexts_drain(cluster);
  for (auto* inj : chaos.injectors) {
    expect_frame_conservation(inj, /*lossless=*/false,
                              /*strict_delivery=*/false);
  }
  cluster.stop();
}

TEST_P(ChaosAlgos, SuspicionAnswersWithinWindowNotTtl) {
  // A *silent* failure (partition swallows frames — no loud error ever
  // reaches the originator) is the case only liveness can rescue: with an
  // hour-scale context_ttl the query must still answer within a few
  // suspicion windows, flagged partial.
  const std::uint64_t suspicions_before =
      metrics().counter("dist.suspicions").value();
  ChaosCluster chaos(GetParam(), FaultOptions{}, 3, [](SiteServerOptions& o) {
    o.context_ttl = Duration(60'000'000);  // TTL may not be the rescuer
    o.suspect_after = Duration(300'000);   // 300ms suspicion window
  });
  Cluster& cluster = *chaos.cluster;
  auto ids = populate_chain(cluster, 12);
  Query q = parse_or_die(kClosure);
  const std::vector<ObjectId> want = sorted({ids[0], ids[3], ids[6], ids[9]});
  cluster.start();

  chaos.injectors[0]->partition(1);
  chaos.injectors[2]->partition(1);
  chaos.injectors[1]->partition_all();

  const auto t0 = std::chrono::steady_clock::now();
  auto r1 = cluster.client().run(q, Duration(30'000'000));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want, /*lossless=*/false);
  EXPECT_LT(got1.size(), want.size());
  EXPECT_TRUE(r1.value().partial);
  EXPECT_LT(elapsed, std::chrono::seconds(15))
      << "the 60s TTL, not suspicion, must not be what resolved the query";
  EXPECT_GT(metrics().counter("dist.suspicions").value(), suspicions_before);

  // Suspicion must heal: the originator keeps probing its suspect, so once
  // the partition mends a ping reply revives the peer and the same
  // deployment answers exactly again.
  chaos.injectors[0]->heal(1);
  chaos.injectors[2]->heal(1);
  chaos.injectors[1]->heal_all();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    auto r2 = cluster.client().run(q, Duration(30'000'000));
    ASSERT_TRUE(r2.ok()) << r2.error().to_string();
    auto got2 = check_result(r2.value(), want, /*lossless=*/false);
    if (got2 == want) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "suspicion never healed after the partition mended";
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  expect_contexts_drain(cluster);
  cluster.stop();
}

INSTANTIATE_TEST_SUITE_P(Algos, ChaosAlgos,
                         ::testing::Values(
                             TerminationAlgorithm::kWeightedMessages,
                             TerminationAlgorithm::kDijkstraScholten));

// --- TCP transport ------------------------------------------------------

struct TcpChaosDeployment {
  std::vector<std::unique_ptr<SiteServer>> servers;
  std::vector<FaultInjectingEndpoint*> injectors;  // owned by the servers
  std::unique_ptr<Client> client;
  std::vector<ObjectId> want;  // sorted true answer
  bool ok = false;
  std::vector<TcpPeer> peers;    // resolved addresses, for restarts
  FaultOptions faults;           // re-applied to restarted endpoints
  SiteServerOptions options;     // re-applied to restarted servers

  TcpChaosDeployment(TerminationAlgorithm algo, const FaultOptions& faults_in,
                     SiteId sites = 3,
                     std::function<void(SiteServerOptions&)> tweak = {})
      : faults(faults_in), options(chaos_options(algo)) {
    if (tweak) tweak(options);
    std::vector<TcpPeer> zeros(sites + 1, TcpPeer{"127.0.0.1", 0});
    std::vector<std::unique_ptr<TcpNetwork>> nets;
    for (SiteId s = 0; s <= sites; ++s) {
      auto net = TcpNetwork::create(s, zeros);
      if (!net.ok()) return;  // no sockets in this environment
      nets.push_back(std::move(net).value());
    }
    for (SiteId peer = 0; peer <= sites; ++peer) {
      peers.push_back({"127.0.0.1", nets[peer]->bound_port()});
    }
    for (auto& net : nets) {
      for (SiteId peer = 0; peer <= sites; ++peer) {
        net->update_peer(peer, peers[peer]);
      }
    }

    for (SiteId s = 0; s < sites; ++s) {
      auto ep = decorated_endpoint(std::move(nets[s]), s);
      servers.push_back(std::make_unique<SiteServer>(std::move(ep),
                                                     SiteStore(s), options));
    }
    // Populate through the servers' stores (safe: not started yet) so that
    // when options.wal_dir is set every object lands in the log — recovery
    // from it is exactly what the crash tests exercise.
    std::vector<ObjectId> ids;
    for (std::size_t i = 0; i < 12; ++i) {
      ids.push_back(servers[i % sites]->store().allocate());
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Object obj(ids[i]);
      obj.add(
          Tuple::pointer("Reference", i + 1 < ids.size() ? ids[i + 1] : ids[i]));
      if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
      servers[i % sites]->store().put(std::move(obj));
    }
    servers[0]->store().create_set("S",
                                   std::span<const ObjectId>(ids.data(), 1));
    want = sorted({ids[0], ids[3], ids[6], ids[9]});

    for (auto& s : servers) s->start();
    client = std::make_unique<Client>(std::move(nets[sites]), 0);
    ok = true;
  }

  std::unique_ptr<FaultInjectingEndpoint> decorated_endpoint(
      std::unique_ptr<MessageEndpoint> inner, SiteId site) {
    FaultOptions o = faults;
    o.seed = faults.seed * 977 + site + 1;
    o.exempt.push_back(static_cast<SiteId>(peers.size() - 1));  // client link
    auto ep = std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
    if (injectors.size() <= site) injectors.resize(site + 1, nullptr);
    injectors[site] = ep.get();
    return ep;
  }

  /// Crash-stop: destroying the server closes its sockets, so peers see
  /// dead fds (loud failures) — exactly like a killed process.
  void kill(SiteId site) {
    servers[site]->stop();
    servers[site].reset();
    injectors[site] = nullptr;
  }

  /// Rebind the site's original port and bring up a fresh server from an
  /// *empty* store: whatever it serves afterwards came from checkpoint+WAL.
  Result<void> restart(SiteId site) {
    auto net = TcpNetwork::create(site, peers);
    if (!net.ok()) return net.error();
    auto ep = decorated_endpoint(std::move(net).value(), site);
    servers[site] = std::make_unique<SiteServer>(std::move(ep),
                                                 SiteStore(site), options);
    servers[site]->start();
    return {};
  }

  ~TcpChaosDeployment() {
    for (auto& s : servers) {
      if (s) s->stop();
    }
  }
};

TEST_P(ChaosAlgos, TcpWorkloadSurvivesFaultSchedules) {
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    TcpChaosDeployment d(GetParam(), fc.faults);
    if (!d.ok) GTEST_SKIP() << "no localhost sockets";
    Query q = parse_or_die(kClosure);
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto r = d.client->run(q, Duration(30'000'000));
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      check_result(r.value(), d.want, fc.lossless);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (;;) {
      std::size_t live = 0;
      for (auto& s : d.servers) live += s->context_count();
      if (live == 0) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << live << " contexts never drained";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // The attempt/held conservation laws are transport-independent.
    for (auto* inj : d.injectors) {
      expect_frame_conservation(inj, fc.lossless, /*strict_delivery=*/false);
    }
  }
}

TEST_P(ChaosAlgos, TcpKilledSiteAnswersPartialThenRestartRecoversExact) {
  // Same crash/recover contract as in-proc, over real sockets: the killed
  // process's fds die loudly, the restarted one rebinds its port and
  // recovers from the WAL, and peers reconnect lazily on their next send.
  const std::string wal_dir =
      ::testing::TempDir() + "/hf_tcp_chaos_wal_" +
      std::to_string(static_cast<int>(GetParam()));
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);
  TcpChaosDeployment d(GetParam(), FaultOptions{}, 3,
                       [&](SiteServerOptions& o) { o.wal_dir = wal_dir; });
  if (!d.ok) GTEST_SKIP() << "no localhost sockets";
  Query q = parse_or_die(kClosure);

  auto r0 = d.client->run(q, Duration(30'000'000));
  ASSERT_TRUE(r0.ok()) << r0.error().to_string();
  EXPECT_EQ(sorted(r0.value().ids), d.want);
  EXPECT_FALSE(r0.value().partial);

  d.kill(1);
  const auto t0 = std::chrono::steady_clock::now();
  auto r1 = d.client->run(q, Duration(30'000'000));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), d.want, /*lossless=*/false);
  EXPECT_LT(got1.size(), d.want.size());
  EXPECT_TRUE(r1.value().partial);
  EXPECT_LT(elapsed, std::chrono::seconds(20))
      << "a dead fd is a loud failure; the reply must not wait out a TTL";

  ASSERT_TRUE(d.restart(1).ok());
  // Reconnection is lazy (dead fds are purged on the next failed send), so
  // poll until the answer is exact again — and never wrong meanwhile.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    auto r2 = d.client->run(q, Duration(30'000'000));
    ASSERT_TRUE(r2.ok()) << r2.error().to_string();
    auto got2 = check_result(r2.value(), d.want, /*lossless=*/false);
    if (got2 == d.want) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "restarted site never served exact answers again";
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace
}  // namespace hyperfile
