// Chaos suite: the paper's cross-site closure workload under injected
// message faults (net/faulty.hpp), across both termination detectors and
// both transports. The contract under faults (DESIGN.md §11):
//   * with a lossless schedule (none / duplicate / reorder+delay) the
//     answer is exact and unflagged — duplicate suppression and the
//     held-frame release make those faults invisible;
//   * with a lossy schedule (drops, partitions) the answer is a subset of
//     the true result, free of duplicates, and any shortfall is flagged
//     `partial` — never wrong, and never a hang (the client's timeout is
//     the assertion);
//   * every site's query contexts drain to zero afterwards (QueryDone or,
//     when that was lost, the context TTL).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>

#include "dist/client.hpp"
#include "dist/cluster.hpp"
#include "dist/site_server.hpp"
#include "engine/local_engine.hpp"
#include "net/faulty.hpp"
#include "net/tcp.hpp"
#include "test_helpers.hpp"

namespace hyperfile {
namespace {

using testing::parse_or_die;
using testing::sorted;

const char* kClosure =
    R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)";

struct FaultCase {
  const char* name;
  FaultOptions faults;
  bool lossless;  // schedule cannot lose frames -> exact results required
};

std::vector<FaultCase> fault_cases() {
  std::vector<FaultCase> cases;
  cases.push_back({"none", FaultOptions{}, true});
  FaultOptions drop5;
  drop5.drop_p = 0.05;
  drop5.seed = 11;
  cases.push_back({"drop5", drop5, false});
  FaultOptions drop20;
  drop20.drop_p = 0.20;
  drop20.seed = 12;
  cases.push_back({"drop20", drop20, false});
  FaultOptions dup;
  dup.dup_p = 0.35;
  dup.seed = 13;
  cases.push_back({"dup", dup, true});
  FaultOptions reorder;
  reorder.reorder_p = 0.4;
  reorder.delay_p = 0.25;
  reorder.seed = 14;
  cases.push_back({"reorder", reorder, true});
  return cases;
}

/// Chain of `n` objects round-robin over the sites, "hit" on every third —
/// every hop is a cross-site message, so each frame is exposed to faults.
std::vector<ObjectId> populate_chain(Cluster& cluster, std::size_t n) {
  const std::size_t sites = cluster.size();
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(cluster.store(i % sites).allocate());
  }
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Reference", i + 1 < n ? ids[i + 1] : ids[i]));
    if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
    cluster.store(i % sites).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
  return ids;
}

SiteServerOptions chaos_options(TerminationAlgorithm algo) {
  SiteServerOptions options;
  options.termination = algo;
  // Fast self-healing so lossy schedules resolve within test budgets.
  options.context_ttl = Duration(400'000);
  options.retry_backoff = Duration(100);
  return options;
}

/// In-process cluster whose server endpoints are wrapped in fault
/// injectors (client links exempt, so the request/reply channel is
/// reliable and the assertions observe the query protocol alone).
struct ChaosCluster {
  std::unique_ptr<Cluster> cluster;
  std::vector<FaultInjectingEndpoint*> injectors;  // owned by the servers

  ChaosCluster(TerminationAlgorithm algo, const FaultOptions& faults,
               std::size_t sites = 3) {
    injectors.resize(sites, nullptr);
    cluster = std::make_unique<Cluster>(
        sites, chaos_options(algo), /*clients=*/1,
        [this, faults, sites](SiteId site,
                              std::unique_ptr<MessageEndpoint> inner)
            -> std::unique_ptr<MessageEndpoint> {
          FaultOptions o = faults;
          o.seed = faults.seed * 1000 + site + 1;  // distinct per-site streams
          o.exempt.push_back(static_cast<SiteId>(sites));
          auto ep =
              std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
          injectors[site] = ep.get();
          return ep;
        });
  }
};

/// Frame conservation (net/faulty.hpp): every send() attempt is accounted
/// for by exactly one fate, and once held frames are flushed nothing stays
/// in flight. Call while the cluster is still alive, after the workload.
void expect_frame_conservation(FaultInjectingEndpoint* inj, bool lossless,
                               bool strict_delivery) {
  ASSERT_NE(inj, nullptr);
  inj->flush_held();
  const FaultStats s = inj->fault_stats();
  EXPECT_EQ(s.attempts, s.forwarded + s.dropped + s.held + s.partitioned)
      << "a frame left the injector without a recorded fate";
  EXPECT_EQ(s.held, s.released) << "held frames remain after flush_held()";
  EXPECT_LE(s.delivered, s.forwarded + s.duplicated + s.released);
  if (lossless) {
    EXPECT_EQ(s.dropped, 0u);
    EXPECT_EQ(s.partitioned, 0u);
  }
  // In-proc lossless only: a live mailbox accepts every inner send. Over
  // TCP a send may fail transiently mid-connect (the protocol's retry is a
  // fresh injector attempt), so equality is not transport-independent.
  if (lossless && strict_delivery) {
    EXPECT_EQ(s.delivered, s.forwarded + s.duplicated + s.released);
  }
}

/// Poll until every site's context table empties (QueryDone or TTL).
void expect_contexts_drain(Cluster& cluster) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  for (;;) {
    std::size_t live = 0;
    for (SiteId s = 0; s < cluster.size(); ++s) {
      live += cluster.server(s).context_count();
    }
    if (live == 0) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << live << " contexts never drained";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

/// Invariants every chaos answer must satisfy; returns the sorted ids.
std::vector<ObjectId> check_result(const QueryResult& result,
                                   const std::vector<ObjectId>& want_sorted,
                                   bool lossless) {
  std::vector<ObjectId> got = sorted(result.ids);
  EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
      << "duplicate ids in the answer";
  EXPECT_TRUE(std::includes(want_sorted.begin(), want_sorted.end(),
                            got.begin(), got.end()))
      << "answer contains ids outside the true result";
  if (lossless) {
    EXPECT_EQ(got, want_sorted) << "lossless schedule must be exact";
  }
  if (got != want_sorted) {
    EXPECT_TRUE(result.partial)
        << "shortfall without the partial flag: silently wrong answer";
  }
  return got;
}

class ChaosAlgos : public ::testing::TestWithParam<TerminationAlgorithm> {};

TEST_P(ChaosAlgos, InProcWorkloadSurvivesFaultSchedules) {
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    ChaosCluster chaos(GetParam(), fc.faults);
    Cluster& cluster = *chaos.cluster;
    populate_chain(cluster, 30);
    Query q = parse_or_die(kClosure);

    // True answer, computed on a merged single-site replica.
    SiteStore merged(0);
    for (SiteId s = 0; s < cluster.size(); ++s) {
      cluster.store(s).for_each([&](const Object& obj) { merged.put(obj); });
      for (const auto& name : cluster.store(s).set_names()) {
        merged.bind_set(name, *cluster.store(s).find_set(name));
      }
    }
    LocalEngine engine(merged);
    auto truth = engine.run_readonly(q);
    ASSERT_TRUE(truth.ok());
    const std::vector<ObjectId> want = sorted(truth.value().ids);

    cluster.start();
    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto r = cluster.client().run(q, Duration(30'000'000));
      ASSERT_TRUE(r.ok()) << r.error().to_string();  // "never a hang"
      check_result(r.value(), want, fc.lossless);
      if (std::string(fc.name) == "none") {
        EXPECT_FALSE(r.value().partial);
        EXPECT_EQ(r.value().dropped_items, 0u);
      }
    }
    expect_contexts_drain(cluster);
    for (auto* inj : chaos.injectors) {
      expect_frame_conservation(inj, fc.lossless, /*strict_delivery=*/true);
    }
    cluster.stop();
  }
}

TEST_P(ChaosAlgos, PartitionedSiteHealsIntoExactAnswers) {
  ChaosCluster chaos(GetParam(), FaultOptions{});
  Cluster& cluster = *chaos.cluster;
  auto ids = populate_chain(cluster, 12);
  Query q = parse_or_die(kClosure);
  const std::vector<ObjectId> want = sorted({ids[0], ids[3], ids[6], ids[9]});
  cluster.start();

  // Isolate site 1: its outgoing links die, and its peers' links to it die.
  chaos.injectors[0]->partition(1);
  chaos.injectors[2]->partition(1);
  chaos.injectors[1]->partition_all();

  auto r1 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  auto got1 = check_result(r1.value(), want, /*lossless=*/false);
  // The chain dies at the first pointer into site 1, so the answer is a
  // strict subset — and must say so.
  EXPECT_LT(got1.size(), want.size());
  EXPECT_TRUE(r1.value().partial);

  // Heal and ask again: the same deployment recovers full answers.
  chaos.injectors[0]->heal(1);
  chaos.injectors[2]->heal(1);
  chaos.injectors[1]->heal_all();

  auto r2 = cluster.client().run(q, Duration(30'000'000));
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(sorted(r2.value().ids), want);
  expect_contexts_drain(cluster);
  // Not lossless (the partition swallowed frames), but still conserved:
  // partitioned frames have a fate of their own.
  for (auto* inj : chaos.injectors) {
    expect_frame_conservation(inj, /*lossless=*/false,
                              /*strict_delivery=*/true);
    EXPECT_GT(inj->fault_stats().attempts, 0u);
  }
  EXPECT_GT(chaos.injectors[0]->fault_stats().partitioned, 0u)
      << "no frame ever hit the cut 0->1 link";
  cluster.stop();
}

INSTANTIATE_TEST_SUITE_P(Algos, ChaosAlgos,
                         ::testing::Values(
                             TerminationAlgorithm::kWeightedMessages,
                             TerminationAlgorithm::kDijkstraScholten));

// --- TCP transport ------------------------------------------------------

struct TcpChaosDeployment {
  std::vector<std::unique_ptr<SiteServer>> servers;
  std::vector<FaultInjectingEndpoint*> injectors;  // owned by the servers
  std::unique_ptr<Client> client;
  std::vector<ObjectId> want;  // sorted true answer
  bool ok = false;

  TcpChaosDeployment(TerminationAlgorithm algo, const FaultOptions& faults,
                     SiteId sites = 3) {
    std::vector<TcpPeer> zeros(sites + 1, TcpPeer{"127.0.0.1", 0});
    std::vector<std::unique_ptr<TcpNetwork>> nets;
    for (SiteId s = 0; s <= sites; ++s) {
      auto net = TcpNetwork::create(s, zeros);
      if (!net.ok()) return;  // no sockets in this environment
      nets.push_back(std::move(net).value());
    }
    for (auto& net : nets) {
      for (SiteId peer = 0; peer <= sites; ++peer) {
        net->update_peer(peer, {"127.0.0.1", nets[peer]->bound_port()});
      }
    }

    std::vector<SiteStore> stores;
    for (SiteId s = 0; s < sites; ++s) stores.emplace_back(s);
    std::vector<ObjectId> ids;
    for (std::size_t i = 0; i < 12; ++i) {
      ids.push_back(stores[i % sites].allocate());
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Object obj(ids[i]);
      obj.add(
          Tuple::pointer("Reference", i + 1 < ids.size() ? ids[i + 1] : ids[i]));
      if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
      stores[i % sites].put(std::move(obj));
    }
    stores[0].create_set("S", std::span<const ObjectId>(ids.data(), 1));
    want = sorted({ids[0], ids[3], ids[6], ids[9]});

    for (SiteId s = 0; s < sites; ++s) {
      FaultOptions o = faults;
      o.seed = faults.seed * 977 + s + 1;
      o.exempt.push_back(sites);  // the client link stays reliable
      auto ep = std::make_unique<FaultInjectingEndpoint>(std::move(nets[s]), o);
      injectors.push_back(ep.get());
      servers.push_back(std::make_unique<SiteServer>(
          std::move(ep), std::move(stores[s]), chaos_options(algo)));
      servers.back()->start();
    }
    client = std::make_unique<Client>(std::move(nets[sites]), 0);
    ok = true;
  }

  ~TcpChaosDeployment() {
    for (auto& s : servers) s->stop();
  }
};

TEST_P(ChaosAlgos, TcpWorkloadSurvivesFaultSchedules) {
  for (const FaultCase& fc : fault_cases()) {
    SCOPED_TRACE(fc.name);
    TcpChaosDeployment d(GetParam(), fc.faults);
    if (!d.ok) GTEST_SKIP() << "no localhost sockets";
    Query q = parse_or_die(kClosure);
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      auto r = d.client->run(q, Duration(30'000'000));
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      check_result(r.value(), d.want, fc.lossless);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (;;) {
      std::size_t live = 0;
      for (auto& s : d.servers) live += s->context_count();
      if (live == 0) break;
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << live << " contexts never drained";
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // The attempt/held conservation laws are transport-independent.
    for (auto* inj : d.injectors) {
      expect_frame_conservation(inj, fc.lossless, /*strict_delivery=*/false);
    }
  }
}

}  // namespace
}  // namespace hyperfile
