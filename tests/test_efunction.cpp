// Direct unit tests of the E function (paper Section 3.1 pseudocode) and
// the iteration-stack normalization — below the engine's Figure 3 loop.
#include <gtest/gtest.h>

#include "engine/efunction.hpp"
#include "query/builder.hpp"
#include "query/parser.hpp"

namespace hyperfile {
namespace {

Query closure_q() {
  return parse_query(
             R"(S [ (pointer, "Ref", ?X) | ^^X ]3 (keyword, "k", ?) -> T)")
      .value();
}

WorkItem item_at(std::uint32_t next, const Query& q) {
  WorkItem item = WorkItem::initial(ObjectId(0, 1));
  item.next = next;
  item.start = next;
  normalize_iter_stack(q, item);
  return item;
}

TEST(EFunction, SelectionPassIncrementsNext) {
  Query q = closure_q();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 2)));
  WorkItem item = item_at(1, q);
  EOutcome out = apply_filter(q, item, &obj);
  EXPECT_TRUE(out.alive);
  EXPECT_EQ(item.next, 2u);
  EXPECT_TRUE(out.derefs.empty());  // selection never dereferences
  // The binding was recorded.
  ASSERT_NE(item.mvars.lookup("X"), nullptr);
  EXPECT_EQ(item.mvars.lookup("X")->size(), 1u);
}

TEST(EFunction, SelectionFailReturnsNullWithoutAdvancing) {
  Query q = closure_q();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::keyword("unrelated"));
  WorkItem item = item_at(1, q);
  EOutcome out = apply_filter(q, item, &obj);
  EXPECT_FALSE(out.alive);
  EXPECT_EQ(item.next, 1u);  // E returns ({}, null); next untouched
}

TEST(EFunction, SelectionBindsAllMatchingTuples) {
  Query q = closure_q();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 2)));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 3)));
  obj.add(Tuple::pointer("Other", ObjectId(0, 4)));
  WorkItem item = item_at(1, q);
  apply_filter(q, item, &obj);
  ASSERT_NE(item.mvars.lookup("X"), nullptr);
  EXPECT_EQ(item.mvars.lookup("X")->size(), 2u);  // Other not bound
}

TEST(EFunction, BindingDuplicatesCollapse) {
  Query q = closure_q();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 2)));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 2)));  // same target twice
  WorkItem item = item_at(1, q);
  apply_filter(q, item, &obj);
  EXPECT_EQ(item.mvars.lookup("X")->size(), 1u);  // set semantics
}

TEST(EFunction, DerefInitializesChildrenPerPaper) {
  // "P.id = x, P.start = O.next+1, P.next = O.next+1,
  //  P.iter# = O.iter#+1, P.mvars = {}"
  Query q = closure_q();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 2)));
  WorkItem item = item_at(1, q);
  apply_filter(q, item, &obj);  // F1: bind
  ASSERT_EQ(item.next, 2u);
  EOutcome out = apply_filter(q, item, &obj);  // F2: ^^X
  ASSERT_EQ(out.derefs.size(), 1u);
  const WorkItem& child = out.derefs[0];
  EXPECT_EQ(child.id, ObjectId(0, 2));
  EXPECT_EQ(child.start, 3u);
  EXPECT_EQ(child.next, 3u);
  EXPECT_EQ(child.iter_top(), item.iter_top() + 1);
  EXPECT_TRUE(child.mvars.empty());
  // ^^ keeps the source alive and advances it.
  EXPECT_TRUE(out.alive);
  EXPECT_EQ(item.next, 3u);
}

TEST(EFunction, DerefSkipsNonPointerBindings) {
  // "if x is an object id" — a Ref tuple with string data binds a string,
  // which the dereference must skip.
  Query q = closure_q();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple("pointer", "Ref", Value::string("unresolved")));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 2)));
  WorkItem item = item_at(1, q);
  apply_filter(q, item, &obj);
  EXPECT_EQ(item.mvars.lookup("X")->size(), 2u);  // both values bound
  EOutcome out = apply_filter(q, item, &obj);
  EXPECT_EQ(out.derefs.size(), 1u);  // only the object id dereferenced
}

TEST(EFunction, DerefDropSourceKillsObject) {
  Query q = parse_query(R"(S (pointer, "Ref", ?X) ^X -> T)").value();
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::pointer("Ref", ObjectId(0, 2)));
  WorkItem item = item_at(1, q);
  apply_filter(q, item, &obj);
  EOutcome out = apply_filter(q, item, &obj);
  EXPECT_EQ(out.derefs.size(), 1u);
  EXPECT_FALSE(out.alive);  // ↑ returns (set, null)
}

TEST(EFunction, DerefUnboundVariableYieldsNothing) {
  Query q = closure_q();
  Object obj(ObjectId(0, 1));  // no Ref tuples, but force item to F2
  WorkItem item = item_at(2, q);
  EOutcome out = apply_filter(q, item, &obj);
  EXPECT_TRUE(out.derefs.empty());
  EXPECT_TRUE(out.alive);  // ^^ keeps the source even with no bindings
}

TEST(EFunction, IterateFreshEntrantLoopsBack) {
  Query q = closure_q();  // iterator at 3, body_start 1, k 3
  WorkItem item = item_at(3, q);
  item.iter_stack = {1, 2};  // chain depth 2 < k
  EOutcome out = apply_filter(q, item, nullptr);  // no object data needed
  EXPECT_TRUE(out.alive);
  EXPECT_EQ(item.next, 1u);
  EXPECT_EQ(item.start, 1u);  // "so that O will pass next time"
}

TEST(EFunction, IterateDepthBoundExits) {
  Query q = closure_q();
  WorkItem item = item_at(3, q);
  item.iter_stack = {1, 3};  // chain depth 3 >= k
  EOutcome out = apply_filter(q, item, nullptr);
  EXPECT_TRUE(out.alive);
  EXPECT_EQ(item.next, 4u);
  EXPECT_EQ(item.start, 3u);  // start unchanged on exit
}

TEST(EFunction, IterateAlreadyThroughBodyExits) {
  Query q = closure_q();
  WorkItem item = item_at(3, q);
  item.start = 1;  // came through the body
  item.iter_stack = {1, 2};
  EOutcome out = apply_filter(q, item, nullptr);
  EXPECT_TRUE(out.alive);
  EXPECT_EQ(item.next, 4u);
}

TEST(EFunction, RetrieveInKeyPosition) {
  Query q;
  q.set_initial_set_name("S");
  const std::uint32_t slot = q.add_retrieve_slot("word");
  q.add_filter(SelectFilter{Pattern::literal("keyword"), Pattern::retrieve(slot),
                            Pattern::any()});
  ASSERT_TRUE(q.validate().ok());

  Object obj(ObjectId(0, 1));
  obj.add(Tuple::keyword("database"));
  obj.add(Tuple::keyword("systems"));
  WorkItem item = item_at(1, q);
  EOutcome out = apply_filter(q, item, &obj);
  ASSERT_EQ(out.retrieved.size(), 2u);
  EXPECT_EQ(out.retrieved[0].value, Value::string("database"));
  EXPECT_EQ(out.retrieved[1].value, Value::string("systems"));
  EXPECT_EQ(out.retrieved[0].source, obj.id());
}

TEST(EFunction, BindAndUseInSameFilterCannotBootstrap) {
  // Bindings apply only once a tuple matches as a whole, so a filter whose
  // $A use has no *prior* bindings can never match its first tuple: the
  // bind in the same tuple is still pending when the use is evaluated.
  Query q;
  q.set_initial_set_name("S");
  q.add_filter(SelectFilter{Pattern::literal("string"), Pattern::bind("A"),
                            Pattern::use("A")});
  ASSERT_TRUE(q.validate().ok());
  Object obj(ObjectId(0, 1));
  obj.add(Tuple::string("x", "x"));
  WorkItem item = item_at(1, q);
  EOutcome out = apply_filter(q, item, &obj);
  EXPECT_FALSE(out.alive);
}

TEST(EFunction, UseSeesBindingsFromEarlierTupleInSameFilter) {
  // The pseudocode mutates O.mvars tuple-by-tuple: once a tuple of this
  // filter matches (against bindings from an earlier filter), its ?A bind
  // becomes visible to the evaluation of the *next* tuple in the same pass.
  Query q;
  q.set_initial_set_name("S");
  q.add_filter(SelectFilter{Pattern::literal("string"), Pattern::literal("Author"),
                            Pattern::bind("A")});
  q.add_filter(SelectFilter{Pattern::literal("string"), Pattern::bind("A"),
                            Pattern::use("A")});
  ASSERT_TRUE(q.validate().ok());

  Object obj(ObjectId(0, 1));
  obj.add(Tuple::string("Author", "bob"));       // F1: A = {bob}
  obj.add(Tuple::string("alice", "bob"));        // F2 tuple 1: matches via
                                                 // data=bob; binds A += alice
  obj.add(Tuple::string("x", "alice"));          // F2 tuple 2: data=alice
                                                 // matches only thanks to
                                                 // tuple 1's fresh binding
  WorkItem item = item_at(1, q);
  ASSERT_TRUE(apply_filter(q, item, &obj).alive);   // F1
  EOutcome out = apply_filter(q, item, &obj);       // F2
  EXPECT_TRUE(out.alive);
  // F2 matched all three tuples (the Author tuple itself also has data bob),
  // binding their keys: A = {bob, Author, alice, x}.
  EXPECT_EQ(item.mvars.lookup("A")->size(), 4u);
}

TEST(NormalizeIterStack, PushesAndPopsToNestingDepth) {
  Query q = QueryBuilder::from_set("S")
                .begin_iterate(2)
                .begin_iterate(2)
                .follow("A")
                .end_iterate()
                .follow("B")
                .end_iterate()
                .select_key("keyword", "k")
                .build();
  // Depths: f1..f3 -> 2, f4..f6 -> 1, f7 -> 0.
  WorkItem item = WorkItem::initial(ObjectId(0, 1));
  item.next = 1;
  normalize_iter_stack(q, item);
  EXPECT_EQ(item.iter_stack.size(), 3u);
  item.next = 4;
  normalize_iter_stack(q, item);
  EXPECT_EQ(item.iter_stack.size(), 2u);
  item.next = 7;
  normalize_iter_stack(q, item);
  EXPECT_EQ(item.iter_stack.size(), 1u);
  item.next = 8;  // past the end
  normalize_iter_stack(q, item);
  EXPECT_EQ(item.iter_stack.size(), 1u);
  // Re-entering pushes fresh counters (value 1).
  item.next = 1;
  normalize_iter_stack(q, item);
  ASSERT_EQ(item.iter_stack.size(), 3u);
  EXPECT_EQ(item.iter_stack[1], 1u);
  EXPECT_EQ(item.iter_stack[2], 1u);
}

TEST(MatchBindings, LookupAndContains) {
  MatchBindings b;
  EXPECT_EQ(b.lookup("X"), nullptr);
  b.bind("X", Value::number(1));
  b.bind("X", Value::number(2));
  b.bind("X", Value::number(1));  // dup
  ASSERT_NE(b.lookup("X"), nullptr);
  EXPECT_EQ(b.lookup("X")->size(), 2u);
  EXPECT_TRUE(b.contains("X", Value::number(2)));
  EXPECT_FALSE(b.contains("X", Value::number(3)));
  EXPECT_FALSE(b.contains("Y", Value::number(1)));
  b.clear();
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace hyperfile
