file(REMOVE_RECURSE
  "CMakeFiles/test_term.dir/test_term.cpp.o"
  "CMakeFiles/test_term.dir/test_term.cpp.o.d"
  "test_term"
  "test_term.pdb"
  "test_term[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
