file(REMOVE_RECURSE
  "CMakeFiles/test_accelerate.dir/test_accelerate.cpp.o"
  "CMakeFiles/test_accelerate.dir/test_accelerate.cpp.o.d"
  "test_accelerate"
  "test_accelerate.pdb"
  "test_accelerate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_accelerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
