# Empty dependencies file for test_accelerate.
# This may be replaced when dependencies are built.
