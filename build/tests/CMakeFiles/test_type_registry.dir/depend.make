# Empty dependencies file for test_type_registry.
# This may be replaced when dependencies are built.
