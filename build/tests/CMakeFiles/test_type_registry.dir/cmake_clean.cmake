file(REMOVE_RECURSE
  "CMakeFiles/test_type_registry.dir/test_type_registry.cpp.o"
  "CMakeFiles/test_type_registry.dir/test_type_registry.cpp.o.d"
  "test_type_registry"
  "test_type_registry.pdb"
  "test_type_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_type_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
