# Empty dependencies file for test_efunction.
# This may be replaced when dependencies are built.
