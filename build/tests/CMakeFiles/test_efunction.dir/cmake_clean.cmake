file(REMOVE_RECURSE
  "CMakeFiles/test_efunction.dir/test_efunction.cpp.o"
  "CMakeFiles/test_efunction.dir/test_efunction.cpp.o.d"
  "test_efunction"
  "test_efunction.pdb"
  "test_efunction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_efunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
