# Empty compiler generated dependencies file for test_tcp_dist.
# This may be replaced when dependencies are built.
