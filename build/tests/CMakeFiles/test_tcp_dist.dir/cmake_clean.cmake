file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_dist.dir/test_tcp_dist.cpp.o"
  "CMakeFiles/test_tcp_dist.dir/test_tcp_dist.cpp.o.d"
  "test_tcp_dist"
  "test_tcp_dist.pdb"
  "test_tcp_dist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
