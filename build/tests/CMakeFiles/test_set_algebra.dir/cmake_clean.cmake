file(REMOVE_RECURSE
  "CMakeFiles/test_set_algebra.dir/test_set_algebra.cpp.o"
  "CMakeFiles/test_set_algebra.dir/test_set_algebra.cpp.o.d"
  "test_set_algebra"
  "test_set_algebra.pdb"
  "test_set_algebra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_set_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
