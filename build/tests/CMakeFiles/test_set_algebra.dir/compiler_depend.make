# Empty compiler generated dependencies file for test_set_algebra.
# This may be replaced when dependencies are built.
