file(REMOVE_RECURSE
  "CMakeFiles/test_engine_iterators.dir/test_engine_iterators.cpp.o"
  "CMakeFiles/test_engine_iterators.dir/test_engine_iterators.cpp.o.d"
  "test_engine_iterators"
  "test_engine_iterators.pdb"
  "test_engine_iterators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_iterators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
