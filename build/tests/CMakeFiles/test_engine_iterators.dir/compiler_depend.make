# Empty compiler generated dependencies file for test_engine_iterators.
# This may be replaced when dependencies are built.
