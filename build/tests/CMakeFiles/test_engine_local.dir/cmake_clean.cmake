file(REMOVE_RECURSE
  "CMakeFiles/test_engine_local.dir/test_engine_local.cpp.o"
  "CMakeFiles/test_engine_local.dir/test_engine_local.cpp.o.d"
  "test_engine_local"
  "test_engine_local.pdb"
  "test_engine_local[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_local.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
