# Empty dependencies file for test_engine_local.
# This may be replaced when dependencies are built.
