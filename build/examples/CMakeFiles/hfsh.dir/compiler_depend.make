# Empty compiler generated dependencies file for hfsh.
# This may be replaced when dependencies are built.
