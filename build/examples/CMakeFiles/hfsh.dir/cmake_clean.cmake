file(REMOVE_RECURSE
  "CMakeFiles/hfsh.dir/hfsh.cpp.o"
  "CMakeFiles/hfsh.dir/hfsh.cpp.o.d"
  "hfsh"
  "hfsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
