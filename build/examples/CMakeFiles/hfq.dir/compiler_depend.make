# Empty compiler generated dependencies file for hfq.
# This may be replaced when dependencies are built.
