file(REMOVE_RECURSE
  "CMakeFiles/hfq.dir/hfq.cpp.o"
  "CMakeFiles/hfq.dir/hfq.cpp.o.d"
  "hfq"
  "hfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
