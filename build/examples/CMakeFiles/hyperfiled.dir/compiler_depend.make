# Empty compiler generated dependencies file for hyperfiled.
# This may be replaced when dependencies are built.
