file(REMOVE_RECURSE
  "CMakeFiles/hyperfiled.dir/hyperfiled.cpp.o"
  "CMakeFiles/hyperfiled.dir/hyperfiled.cpp.o.d"
  "hyperfiled"
  "hyperfiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperfiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
