file(REMOVE_RECURSE
  "CMakeFiles/shared_memory_server.dir/shared_memory_server.cpp.o"
  "CMakeFiles/shared_memory_server.dir/shared_memory_server.cpp.o.d"
  "shared_memory_server"
  "shared_memory_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_memory_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
