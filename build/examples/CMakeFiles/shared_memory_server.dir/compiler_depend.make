# Empty compiler generated dependencies file for shared_memory_server.
# This may be replaced when dependencies are built.
