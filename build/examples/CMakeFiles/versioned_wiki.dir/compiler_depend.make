# Empty compiler generated dependencies file for versioned_wiki.
# This may be replaced when dependencies are built.
