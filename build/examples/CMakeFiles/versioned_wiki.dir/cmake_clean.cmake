file(REMOVE_RECURSE
  "CMakeFiles/versioned_wiki.dir/versioned_wiki.cpp.o"
  "CMakeFiles/versioned_wiki.dir/versioned_wiki.cpp.o.d"
  "versioned_wiki"
  "versioned_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/versioned_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
