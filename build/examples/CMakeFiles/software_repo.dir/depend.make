# Empty dependencies file for software_repo.
# This may be replaced when dependencies are built.
