file(REMOVE_RECURSE
  "CMakeFiles/software_repo.dir/software_repo.cpp.o"
  "CMakeFiles/software_repo.dir/software_repo.cpp.o.d"
  "software_repo"
  "software_repo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_repo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
