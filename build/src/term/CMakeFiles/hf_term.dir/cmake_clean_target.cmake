file(REMOVE_RECURSE
  "libhf_term.a"
)
