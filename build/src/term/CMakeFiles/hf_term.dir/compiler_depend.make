# Empty compiler generated dependencies file for hf_term.
# This may be replaced when dependencies are built.
