file(REMOVE_RECURSE
  "CMakeFiles/hf_term.dir/weight.cpp.o"
  "CMakeFiles/hf_term.dir/weight.cpp.o.d"
  "libhf_term.a"
  "libhf_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
