file(REMOVE_RECURSE
  "libhf_naming.a"
)
