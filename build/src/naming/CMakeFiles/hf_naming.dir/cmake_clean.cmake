file(REMOVE_RECURSE
  "CMakeFiles/hf_naming.dir/persist.cpp.o"
  "CMakeFiles/hf_naming.dir/persist.cpp.o.d"
  "libhf_naming.a"
  "libhf_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
