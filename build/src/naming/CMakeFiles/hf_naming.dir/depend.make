# Empty dependencies file for hf_naming.
# This may be replaced when dependencies are built.
