file(REMOVE_RECURSE
  "CMakeFiles/hf_common.dir/logging.cpp.o"
  "CMakeFiles/hf_common.dir/logging.cpp.o.d"
  "CMakeFiles/hf_common.dir/result.cpp.o"
  "CMakeFiles/hf_common.dir/result.cpp.o.d"
  "CMakeFiles/hf_common.dir/rng.cpp.o"
  "CMakeFiles/hf_common.dir/rng.cpp.o.d"
  "CMakeFiles/hf_common.dir/types.cpp.o"
  "CMakeFiles/hf_common.dir/types.cpp.o.d"
  "libhf_common.a"
  "libhf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
