file(REMOVE_RECURSE
  "CMakeFiles/hf_net.dir/inproc.cpp.o"
  "CMakeFiles/hf_net.dir/inproc.cpp.o.d"
  "CMakeFiles/hf_net.dir/tcp.cpp.o"
  "CMakeFiles/hf_net.dir/tcp.cpp.o.d"
  "libhf_net.a"
  "libhf_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
