file(REMOVE_RECURSE
  "CMakeFiles/hf_wire.dir/message.cpp.o"
  "CMakeFiles/hf_wire.dir/message.cpp.o.d"
  "CMakeFiles/hf_wire.dir/serialize.cpp.o"
  "CMakeFiles/hf_wire.dir/serialize.cpp.o.d"
  "libhf_wire.a"
  "libhf_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
