file(REMOVE_RECURSE
  "libhf_wire.a"
)
