# Empty compiler generated dependencies file for hf_wire.
# This may be replaced when dependencies are built.
