# Empty compiler generated dependencies file for hf_query.
# This may be replaced when dependencies are built.
