
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/builder.cpp" "src/query/CMakeFiles/hf_query.dir/builder.cpp.o" "gcc" "src/query/CMakeFiles/hf_query.dir/builder.cpp.o.d"
  "/root/repo/src/query/parser.cpp" "src/query/CMakeFiles/hf_query.dir/parser.cpp.o" "gcc" "src/query/CMakeFiles/hf_query.dir/parser.cpp.o.d"
  "/root/repo/src/query/pattern.cpp" "src/query/CMakeFiles/hf_query.dir/pattern.cpp.o" "gcc" "src/query/CMakeFiles/hf_query.dir/pattern.cpp.o.d"
  "/root/repo/src/query/query.cpp" "src/query/CMakeFiles/hf_query.dir/query.cpp.o" "gcc" "src/query/CMakeFiles/hf_query.dir/query.cpp.o.d"
  "/root/repo/src/query/rewrite.cpp" "src/query/CMakeFiles/hf_query.dir/rewrite.cpp.o" "gcc" "src/query/CMakeFiles/hf_query.dir/rewrite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
