file(REMOVE_RECURSE
  "libhf_query.a"
)
