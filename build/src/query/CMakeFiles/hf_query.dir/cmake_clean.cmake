file(REMOVE_RECURSE
  "CMakeFiles/hf_query.dir/builder.cpp.o"
  "CMakeFiles/hf_query.dir/builder.cpp.o.d"
  "CMakeFiles/hf_query.dir/parser.cpp.o"
  "CMakeFiles/hf_query.dir/parser.cpp.o.d"
  "CMakeFiles/hf_query.dir/pattern.cpp.o"
  "CMakeFiles/hf_query.dir/pattern.cpp.o.d"
  "CMakeFiles/hf_query.dir/query.cpp.o"
  "CMakeFiles/hf_query.dir/query.cpp.o.d"
  "CMakeFiles/hf_query.dir/rewrite.cpp.o"
  "CMakeFiles/hf_query.dir/rewrite.cpp.o.d"
  "libhf_query.a"
  "libhf_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
