file(REMOVE_RECURSE
  "CMakeFiles/hf_sim.dir/cost_model.cpp.o"
  "CMakeFiles/hf_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/hf_sim.dir/simulation.cpp.o"
  "CMakeFiles/hf_sim.dir/simulation.cpp.o.d"
  "libhf_sim.a"
  "libhf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
