file(REMOVE_RECURSE
  "libhf_workload.a"
)
