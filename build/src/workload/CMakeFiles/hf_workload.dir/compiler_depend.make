# Empty compiler generated dependencies file for hf_workload.
# This may be replaced when dependencies are built.
