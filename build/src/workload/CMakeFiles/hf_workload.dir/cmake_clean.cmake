file(REMOVE_RECURSE
  "CMakeFiles/hf_workload.dir/paper_workload.cpp.o"
  "CMakeFiles/hf_workload.dir/paper_workload.cpp.o.d"
  "libhf_workload.a"
  "libhf_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
