file(REMOVE_RECURSE
  "libhf_model.a"
)
