
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/object.cpp" "src/model/CMakeFiles/hf_model.dir/object.cpp.o" "gcc" "src/model/CMakeFiles/hf_model.dir/object.cpp.o.d"
  "/root/repo/src/model/type_registry.cpp" "src/model/CMakeFiles/hf_model.dir/type_registry.cpp.o" "gcc" "src/model/CMakeFiles/hf_model.dir/type_registry.cpp.o.d"
  "/root/repo/src/model/value.cpp" "src/model/CMakeFiles/hf_model.dir/value.cpp.o" "gcc" "src/model/CMakeFiles/hf_model.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
