file(REMOVE_RECURSE
  "CMakeFiles/hf_model.dir/object.cpp.o"
  "CMakeFiles/hf_model.dir/object.cpp.o.d"
  "CMakeFiles/hf_model.dir/type_registry.cpp.o"
  "CMakeFiles/hf_model.dir/type_registry.cpp.o.d"
  "CMakeFiles/hf_model.dir/value.cpp.o"
  "CMakeFiles/hf_model.dir/value.cpp.o.d"
  "libhf_model.a"
  "libhf_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
