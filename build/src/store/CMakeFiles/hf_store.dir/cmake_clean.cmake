file(REMOVE_RECURSE
  "CMakeFiles/hf_store.dir/gc.cpp.o"
  "CMakeFiles/hf_store.dir/gc.cpp.o.d"
  "CMakeFiles/hf_store.dir/set_algebra.cpp.o"
  "CMakeFiles/hf_store.dir/set_algebra.cpp.o.d"
  "CMakeFiles/hf_store.dir/site_store.cpp.o"
  "CMakeFiles/hf_store.dir/site_store.cpp.o.d"
  "CMakeFiles/hf_store.dir/snapshot.cpp.o"
  "CMakeFiles/hf_store.dir/snapshot.cpp.o.d"
  "CMakeFiles/hf_store.dir/versioning.cpp.o"
  "CMakeFiles/hf_store.dir/versioning.cpp.o.d"
  "libhf_store.a"
  "libhf_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
