file(REMOVE_RECURSE
  "libhf_store.a"
)
