# Empty compiler generated dependencies file for hf_store.
# This may be replaced when dependencies are built.
