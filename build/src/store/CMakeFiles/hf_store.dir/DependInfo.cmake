
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/gc.cpp" "src/store/CMakeFiles/hf_store.dir/gc.cpp.o" "gcc" "src/store/CMakeFiles/hf_store.dir/gc.cpp.o.d"
  "/root/repo/src/store/set_algebra.cpp" "src/store/CMakeFiles/hf_store.dir/set_algebra.cpp.o" "gcc" "src/store/CMakeFiles/hf_store.dir/set_algebra.cpp.o.d"
  "/root/repo/src/store/site_store.cpp" "src/store/CMakeFiles/hf_store.dir/site_store.cpp.o" "gcc" "src/store/CMakeFiles/hf_store.dir/site_store.cpp.o.d"
  "/root/repo/src/store/snapshot.cpp" "src/store/CMakeFiles/hf_store.dir/snapshot.cpp.o" "gcc" "src/store/CMakeFiles/hf_store.dir/snapshot.cpp.o.d"
  "/root/repo/src/store/versioning.cpp" "src/store/CMakeFiles/hf_store.dir/versioning.cpp.o" "gcc" "src/store/CMakeFiles/hf_store.dir/versioning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/hf_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/hf_query.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
