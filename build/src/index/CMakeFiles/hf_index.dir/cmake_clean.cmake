file(REMOVE_RECURSE
  "CMakeFiles/hf_index.dir/accelerate.cpp.o"
  "CMakeFiles/hf_index.dir/accelerate.cpp.o.d"
  "CMakeFiles/hf_index.dir/attribute_index.cpp.o"
  "CMakeFiles/hf_index.dir/attribute_index.cpp.o.d"
  "CMakeFiles/hf_index.dir/explain.cpp.o"
  "CMakeFiles/hf_index.dir/explain.cpp.o.d"
  "CMakeFiles/hf_index.dir/reachability_index.cpp.o"
  "CMakeFiles/hf_index.dir/reachability_index.cpp.o.d"
  "libhf_index.a"
  "libhf_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
