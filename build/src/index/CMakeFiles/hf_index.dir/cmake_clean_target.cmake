file(REMOVE_RECURSE
  "libhf_index.a"
)
