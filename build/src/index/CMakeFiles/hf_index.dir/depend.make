# Empty dependencies file for hf_index.
# This may be replaced when dependencies are built.
