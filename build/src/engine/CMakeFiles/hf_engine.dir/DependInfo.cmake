
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/efunction.cpp" "src/engine/CMakeFiles/hf_engine.dir/efunction.cpp.o" "gcc" "src/engine/CMakeFiles/hf_engine.dir/efunction.cpp.o.d"
  "/root/repo/src/engine/execution.cpp" "src/engine/CMakeFiles/hf_engine.dir/execution.cpp.o" "gcc" "src/engine/CMakeFiles/hf_engine.dir/execution.cpp.o.d"
  "/root/repo/src/engine/local_engine.cpp" "src/engine/CMakeFiles/hf_engine.dir/local_engine.cpp.o" "gcc" "src/engine/CMakeFiles/hf_engine.dir/local_engine.cpp.o.d"
  "/root/repo/src/engine/parallel_engine.cpp" "src/engine/CMakeFiles/hf_engine.dir/parallel_engine.cpp.o" "gcc" "src/engine/CMakeFiles/hf_engine.dir/parallel_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/hf_query.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/hf_store.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/hf_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
