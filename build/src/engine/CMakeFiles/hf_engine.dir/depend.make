# Empty dependencies file for hf_engine.
# This may be replaced when dependencies are built.
