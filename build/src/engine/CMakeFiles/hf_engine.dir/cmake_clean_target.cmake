file(REMOVE_RECURSE
  "libhf_engine.a"
)
