file(REMOVE_RECURSE
  "CMakeFiles/hf_engine.dir/efunction.cpp.o"
  "CMakeFiles/hf_engine.dir/efunction.cpp.o.d"
  "CMakeFiles/hf_engine.dir/execution.cpp.o"
  "CMakeFiles/hf_engine.dir/execution.cpp.o.d"
  "CMakeFiles/hf_engine.dir/local_engine.cpp.o"
  "CMakeFiles/hf_engine.dir/local_engine.cpp.o.d"
  "CMakeFiles/hf_engine.dir/parallel_engine.cpp.o"
  "CMakeFiles/hf_engine.dir/parallel_engine.cpp.o.d"
  "libhf_engine.a"
  "libhf_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
