file(REMOVE_RECURSE
  "CMakeFiles/hf_dist.dir/client.cpp.o"
  "CMakeFiles/hf_dist.dir/client.cpp.o.d"
  "CMakeFiles/hf_dist.dir/cluster.cpp.o"
  "CMakeFiles/hf_dist.dir/cluster.cpp.o.d"
  "CMakeFiles/hf_dist.dir/site_server.cpp.o"
  "CMakeFiles/hf_dist.dir/site_server.cpp.o.d"
  "libhf_dist.a"
  "libhf_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
