file(REMOVE_RECURSE
  "libhf_dist.a"
)
