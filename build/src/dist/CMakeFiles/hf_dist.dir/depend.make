# Empty dependencies file for hf_dist.
# This may be replaced when dependencies are built.
