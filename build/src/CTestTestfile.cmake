# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("model")
subdirs("query")
subdirs("term")
subdirs("wire")
subdirs("store")
subdirs("index")
subdirs("engine")
subdirs("net")
subdirs("naming")
subdirs("dist")
subdirs("sim")
subdirs("workload")
subdirs("baseline")
