# Empty compiler generated dependencies file for hf_baseline.
# This may be replaced when dependencies are built.
