file(REMOVE_RECURSE
  "libhf_baseline.a"
)
