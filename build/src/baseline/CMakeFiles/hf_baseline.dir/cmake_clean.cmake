file(REMOVE_RECURSE
  "CMakeFiles/hf_baseline.dir/file_server.cpp.o"
  "CMakeFiles/hf_baseline.dir/file_server.cpp.o.d"
  "libhf_baseline.a"
  "libhf_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hf_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
