file(REMOVE_RECURSE
  "CMakeFiles/bench_basic_costs.dir/bench_basic_costs.cpp.o"
  "CMakeFiles/bench_basic_costs.dir/bench_basic_costs.cpp.o.d"
  "bench_basic_costs"
  "bench_basic_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_basic_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
