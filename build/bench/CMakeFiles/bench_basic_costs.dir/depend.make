# Empty dependencies file for bench_basic_costs.
# This may be replaced when dependencies are built.
