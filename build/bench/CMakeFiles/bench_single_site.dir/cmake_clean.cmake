file(REMOVE_RECURSE
  "CMakeFiles/bench_single_site.dir/bench_single_site.cpp.o"
  "CMakeFiles/bench_single_site.dir/bench_single_site.cpp.o.d"
  "bench_single_site"
  "bench_single_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
