# Empty dependencies file for bench_single_site.
# This may be replaced when dependencies are built.
