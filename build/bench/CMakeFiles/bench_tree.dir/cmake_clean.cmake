file(REMOVE_RECURSE
  "CMakeFiles/bench_tree.dir/bench_tree.cpp.o"
  "CMakeFiles/bench_tree.dir/bench_tree.cpp.o.d"
  "bench_tree"
  "bench_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
