# Empty dependencies file for bench_tree.
# This may be replaced when dependencies are built.
