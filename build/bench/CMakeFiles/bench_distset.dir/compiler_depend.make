# Empty compiler generated dependencies file for bench_distset.
# This may be replaced when dependencies are built.
