file(REMOVE_RECURSE
  "CMakeFiles/bench_distset.dir/bench_distset.cpp.o"
  "CMakeFiles/bench_distset.dir/bench_distset.cpp.o.d"
  "bench_distset"
  "bench_distset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_distset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
