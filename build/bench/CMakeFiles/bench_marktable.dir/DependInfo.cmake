
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_marktable.cpp" "bench/CMakeFiles/bench_marktable.dir/bench_marktable.cpp.o" "gcc" "bench/CMakeFiles/bench_marktable.dir/bench_marktable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/hf_index.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/hf_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/naming/CMakeFiles/hf_naming.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/hf_net.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hf_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hf_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hf_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/hf_store.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/hf_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/hf_query.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/hf_model.dir/DependInfo.cmake"
  "/root/repo/build/src/term/CMakeFiles/hf_term.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
