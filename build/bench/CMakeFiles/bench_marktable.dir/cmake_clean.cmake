file(REMOVE_RECURSE
  "CMakeFiles/bench_marktable.dir/bench_marktable.cpp.o"
  "CMakeFiles/bench_marktable.dir/bench_marktable.cpp.o.d"
  "bench_marktable"
  "bench_marktable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_marktable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
