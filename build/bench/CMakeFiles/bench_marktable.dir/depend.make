# Empty dependencies file for bench_marktable.
# This may be replaced when dependencies are built.
