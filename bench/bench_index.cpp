// Ablation A4 (paper Section 2): indexing facilities.
//
// "In addition to the distributed server, we have developed facilities for
// indexing. These support conventional indexes (say for keywords in
// documents), as well as indexes based on the reachability of an object (to
// speed up queries such as 'Find all documents referenced directly or
// indirectly by this document that in addition have a given keyword')."
//
// Host-time comparison: engine scan vs attribute-index lookup for a flat
// selection, and engine closure traversal vs reachability-index probe for
// the reach-plus-key query.
#include <benchmark/benchmark.h>

#include "engine/local_engine.hpp"
#include "index/attribute_index.hpp"
#include "index/reachability_index.hpp"
#include "workload/paper_workload.hpp"

namespace {

using namespace hyperfile;

constexpr std::size_t kObjects = 2700;

SiteStore& store() {
  static SiteStore* s = [] {
    auto* st = new SiteStore(0);
    SiteStore* ptr[] = {st};
    workload::WorkloadConfig cfg;
    cfg.num_objects = kObjects;
    workload::populate_paper_workload(ptr, cfg);
    st->create_set("All", st->all_ids());
    return st;
  }();
  return *s;
}

void BM_Select_EngineScan(benchmark::State& state) {
  Query q = QueryBuilder::from_set("All")
                .select(Pattern::literal(workload::kSearchType),
                        Pattern::literal(workload::kRand1000pKey),
                        Pattern::literal(std::int64_t{77}))
                .build();
  LocalEngine engine(store());
  for (auto _ : state) {
    auto r = engine.run_readonly(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_Select_EngineScan);

void BM_Select_AttributeIndex(benchmark::State& state) {
  static index::AttributeIndex idx(store(), workload::kSearchType,
                                   workload::kRand1000pKey);
  for (auto _ : state) {
    auto ids = idx.lookup(Value::number(77));
    benchmark::DoNotOptimize(ids);
  }
}
BENCHMARK(BM_Select_AttributeIndex);

void BM_RangeSelect_EngineScan(benchmark::State& state) {
  Query q = QueryBuilder::from_set("All")
                .select(Pattern::literal(workload::kSearchType),
                        Pattern::literal(workload::kRand1000pKey),
                        Pattern::range(100, 200))
                .build();
  LocalEngine engine(store());
  for (auto _ : state) {
    auto r = engine.run_readonly(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RangeSelect_EngineScan);

void BM_RangeSelect_AttributeIndex(benchmark::State& state) {
  static index::AttributeIndex idx(store(), workload::kSearchType,
                                   workload::kRand1000pKey);
  for (auto _ : state) {
    auto ids = idx.lookup_range(100, 200);
    benchmark::DoNotOptimize(ids);
  }
}
BENCHMARK(BM_RangeSelect_AttributeIndex);

void BM_ReachAndKey_EngineTraversal(benchmark::State& state) {
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  LocalEngine engine(store());
  for (auto _ : state) {
    auto r = engine.run_readonly(q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ReachAndKey_EngineTraversal);

void BM_ReachAndKey_ReachabilityIndex(benchmark::State& state) {
  static index::ReachabilityIndex reach(store(), workload::kTreeKey);
  static index::AttributeIndex keys(store(), workload::kSearchType,
                                    workload::kRand10pKey);
  ObjectId root;
  store().for_each([&](const Object& obj) {
    if (const Tuple* t = obj.find(workload::kSearchType, workload::kUniqueKey)) {
      if (t->data.as_number() == 0) root = obj.id();
    }
  });
  for (auto _ : state) {
    std::vector<ObjectId> out;
    for (const ObjectId& id : keys.lookup(Value::number(5))) {
      if (id == root || reach.reaches(root, id)) out.push_back(id);
    }
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReachAndKey_ReachabilityIndex);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "A4: index-assisted retrieval vs engine scans (%zu objects).\n"
      "Index build cost is one-time; lookups answer the paper's\n"
      "reach-plus-keyword query without touching the pointer graph.\n\n",
      kObjects);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
