// Connection-scaling smoke for the socket transports (DESIGN.md §17): one
// hub site on the backend under test, N raw-socket clients pushing frames
// at it. The hub is the measured component — the clients are plain
// blocking sockets so neither backend's client machinery skews the
// comparison.
//
// What the numbers mean:
//   * msgs_per_sec — hub-side delivery rate (every frame crosses a real
//     localhost socket and the full decode path);
//   * fds — /proc/self/fd count while all N connections are live. Both
//     backends pay ~2 fds per connection in-process (the raw client end
//     plus the accepted end); the column exists to catch leaks, not to
//     rank the backends;
//   * threads — /proc/self/task count at steady state. This is the
//     scaling story: the threaded hub parks one reader thread per
//     connection, the epoll hub holds every connection on one loop.
//
// The gate in tools/check_bench_epoll.py enforces the PR's acceptance
// floor: the epoll backend at 100+ connections must deliver everything,
// hold a bounded fd count, and sustain throughput at least that of the
// threaded backend at 5 connections.
//
// Emits BENCH_epoll.json (override with --json <path>).
#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "net/transport.hpp"
#include "wire/message.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

constexpr int kMsgsPerConn = 200;
// Frames per client write: bursts keep the pump's syscall cost off the
// measurement so the hub's drain rate is the bottleneck under test.
constexpr int kBurst = 20;

double count_dir(const char* path) {
  int n = 0;
  if (DIR* dir = ::opendir(path)) {
    while (::readdir(dir) != nullptr) ++n;
    ::closedir(dir);
  }
  return n;
}

/// One length-prefixed wire frame carrying a QueryDone from `src` to the
/// hub — pre-encoded once per client, then written verbatim.
std::vector<uint8_t> make_frame(SiteId src) {
  wire::Envelope env;
  env.src = src;
  env.dst = 0;
  wire::QueryDone qd;
  qd.qid = {src, 1};
  env.message = qd;
  const wire::Bytes body = wire::encode_envelope(env);
  std::vector<uint8_t> frame(4 + body.size());
  const std::uint32_t len = static_cast<std::uint32_t>(body.size());
  frame[0] = static_cast<uint8_t>(len >> 24);
  frame[1] = static_cast<uint8_t>(len >> 16);
  frame[2] = static_cast<uint8_t>(len >> 8);
  frame[3] = static_cast<uint8_t>(len);
  std::memcpy(frame.data() + 4, body.data(), body.size());
  return frame;
}

bool write_all(int fd, const uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// N raw clients each push kMsgsPerConn frames at the hub; returns false
/// when the environment cannot produce the deployment or frames are lost.
bool run_scale(JsonSink& sink, TcpBackend backend, int conns) {
  std::vector<TcpPeer> zeros(1, TcpPeer{"127.0.0.1", 0});
  auto hub = make_socket_transport(backend, 0, zeros);
  if (!hub.ok()) return false;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hub.value()->bound_port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);

  std::vector<int> fds_raw;
  std::vector<std::vector<uint8_t>> frames;
  for (int i = 0; i < conns; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    fds_raw.push_back(fd);
    frames.push_back(make_frame(static_cast<SiteId>(i + 1)));
  }
  // Open every connection before the clock starts: one frame each, all
  // delivered, so the fd/thread samples below see the steady state.
  for (int i = 0; i < conns; ++i) {
    if (!write_all(fds_raw[i], frames[i].data(), frames[i].size())) {
      return false;
    }
  }
  for (int got = 0; got < conns;) {
    if (!hub.value()->recv(Duration(5'000'000)).has_value()) return false;
    ++got;
  }
  const double fds = count_dir("/proc/self/fd");
  const double threads = count_dir("/proc/self/task");

  std::vector<std::vector<uint8_t>> bursts;
  for (int i = 0; i < conns; ++i) {
    std::vector<uint8_t> burst;
    for (int b = 0; b < kBurst; ++b) {
      burst.insert(burst.end(), frames[i].begin(), frames[i].end());
    }
    bursts.push_back(std::move(burst));
  }
  const long total = static_cast<long>(conns) * kMsgsPerConn;
  const auto t0 = std::chrono::steady_clock::now();
  std::thread pump([&] {
    for (int m = 0; m < kMsgsPerConn / kBurst; ++m) {
      for (int i = 0; i < conns; ++i) {
        if (!write_all(fds_raw[i], bursts[i].data(), bursts[i].size())) {
          return;  // hub torn down; the delivered count records the loss
        }
      }
    }
  });
  long received = 0;
  while (received < total) {
    if (hub.value()->recv(Duration(10'000'000)).has_value()) {
      ++received;
    } else {
      break;  // stalled: report what arrived rather than hang the bench
    }
  }
  pump.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double sec = std::chrono::duration<double>(t1 - t0).count();

  BenchRecord rec;
  rec.config = std::string(to_string(backend)) + ",conns=" +
               std::to_string(conns);
  rec.mean = sec > 0 ? static_cast<double>(received) / sec : 0;
  rec.min = rec.mean;
  rec.max = rec.mean;
  rec.unit = "msgs_per_sec";
  rec.counters.emplace_back("conns", conns);
  rec.counters.emplace_back("delivered", static_cast<double>(received));
  rec.counters.emplace_back("expected", static_cast<double>(total));
  rec.counters.emplace_back("fds", fds);
  rec.counters.emplace_back("threads", threads);
  sink.add(rec);
  std::printf(
      "%-24s %10.0f msgs/s  fds=%4.0f  threads=%4.0f  delivered=%ld/%ld\n",
      rec.config.c_str(), rec.mean, fds, threads, received, total);

  for (int fd : fds_raw) ::close(fd);
  hub.value()->shutdown();
  return received == total;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink sink("epoll", &argc, argv);
  header("socket transport connection scaling",
         "one event loop must hold 100+ connections with bounded fds");

  bool ok = true;
  for (TcpBackend backend : {TcpBackend::kThreaded, TcpBackend::kEpoll}) {
    for (int conns : {5, 100, 128}) {
      // 128 threaded connections means 128 parked reader threads on the
      // hub — the point of the epoll backend is exactly not to do that,
      // but measure it anyway: the comparison IS the result.
      ok = run_scale(sink, backend, conns) && ok;
    }
  }
  if (!sink.write()) return 1;
  if (!ok) {
    std::fprintf(stderr, "bench_epoll: some configurations fell short\n");
    return 1;
  }
  return 0;
}
