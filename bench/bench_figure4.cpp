// Figure 4 (paper Section 5): query response time vs the probability that a
// random pointer is local, for 3 and 9 machines.
//
// "Each data point represents a test using the graph formed by the pointers
// with the given probability of being local (two such pointers per object).
// The cases at the far right generate fewer messages, however they also are
// less likely to make full use of the available parallelism. The cases at
// the far left generate too much message traffic for our system ... We see
// that the system operates best with at least 80% local references. We can
// also see that with more machines we are more capable of handling a higher
// percentage of remote references."
//
// One series per machine count, plus a single-site reference line; 100
// queries per point with a randomly varied search key, as in the paper.
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main() {
  header("Figure 4: response time vs pointer locality (random pointers)",
         "best >= 80% local; 9 machines tolerate more remote refs than 3; "
         "at .95 local, 3/9 machines beat the single site (1.1 s vs 1.5 s)");

  std::printf("%-12s %-12s %-12s %-12s %-14s\n", "P(local)", "1 site",
              "3 sites", "9 sites", "msgs(3 sites)");

  // Single-site reference per class (the graph differs per class, so the
  // 1-site column varies slightly with reachability).
  PaperSim one(1);
  PaperSim three(3);
  PaperSim nine(9);

  double best3 = 1e300, best9 = 1e300;
  double left3 = 0, right3 = 0, left9 = 0, right9 = 0;
  for (std::size_t cls = 0; cls < 7; ++cls) {
    const char* key = workload::kRandKeys[cls];
    SeriesStats s1 = run_series(one, key, workload::kRand10pKey, 10);
    SeriesStats s3 = run_series(three, key, workload::kRand10pKey, 10);
    SeriesStats s9 = run_series(nine, key, workload::kRand10pKey, 10);
    std::printf("%-12.2f %8.2f s  %8.2f s  %8.2f s  %10.1f\n",
                workload::kRandLocality[cls], s1.mean_sec, s3.mean_sec,
                s9.mean_sec, s3.mean_derefs + s3.mean_result_msgs);
    best3 = std::min(best3, s3.mean_sec);
    best9 = std::min(best9, s9.mean_sec);
    if (cls == 0) {
      left3 = s3.mean_sec;
      left9 = s9.mean_sec;
    }
    if (cls == 6) {
      right3 = s3.mean_sec;
      right9 = s9.mean_sec;
    }
  }

  std::printf("\nshape checks:\n");
  std::printf("  left edge (.05 local) is the most expensive point:   %s\n",
              left3 >= best3 && left9 >= best9 ? "yes" : "NO");
  std::printf("  response falls as locality rises (left > right):     %s\n",
              left3 > right3 && left9 > right9 ? "yes" : "NO");
  std::printf("  9 sites beat 3 sites at low locality (more capacity "
              "for remote refs): %s\n",
              left9 < left3 ? "yes" : "NO");
  return 0;
}
