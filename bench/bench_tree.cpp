// Experiment E4 (paper Section 5): tree pointers — high parallelism at low
// message cost.
//
// "When we instead followed tree pointers a query averaged 1.5 seconds using
// three machines, and 1 second using nine machines. We obviously gain from
// parallelism in this query; times are significantly less than for a single
// site [2.7 s]."
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main() {
  header("E4: tree pointers, best-case parallelism",
         "2.7 s (1 site) -> 1.5 s (3 sites) -> 1.0 s (9 sites)");

  std::printf("%-8s %-12s %-14s %-16s\n", "sites", "mean resp", "deref msgs",
              "max site busy");
  for (std::size_t sites : {1u, 3u, 9u}) {
    PaperSim ps(sites);
    Rng rng(42);
    double mean = 0, busy = 0, derefs = 0;
    constexpr int kRuns = 100;
    for (int i = 0; i < kRuns; ++i) {
      Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey,
                                        rng.next_range(1, 10));
      auto r = ps.sim.run(q);
      if (!r.ok()) return 1;
      mean += static_cast<double>(r.value().response_time.count()) / 1e6;
      busy += static_cast<double>(r.value().stats.max_busy().count()) / 1e6;
      derefs += static_cast<double>(r.value().stats.deref_messages);
    }
    std::printf("%-8zu %8.2f s  %10.1f    %10.2f s\n", sites, mean / kRuns,
                derefs / kRuns, busy / kRuns);
  }
  std::printf("\nshape check: response time falls with machine count — the\n"
              "root fans out once per machine, then every machine traverses\n"
              "its local subtree in parallel.\n");
  return 0;
}
