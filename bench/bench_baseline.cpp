// Experiment E8 (paper Sections 1 and 5): HyperFile vs a file-interface
// server.
//
// "Performing similar queries in a distributed file system would require
// searching entire files; this in effect results in sending all data to a
// central site. At best this uses a single message for each file, the
// worst-case requires a message for each object. Our messages send only the
// query (about 40 bytes for the experiments presented here) versus
// potentially huge messages required to send a complete file."
//
// Objects carry an 8 KiB body (a file server cannot filter content it does
// not understand, so it ships everything); HyperFile's protocol messages
// never include bodies.
#include "baseline/file_server.hpp"
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main() {
  header("E8: HyperFile vs file-interface baseline (8 KiB document bodies)",
         "~40-byte query messages vs shipping complete files to the client");

  workload::WorkloadConfig cfg;
  cfg.blob_bytes = 8192;

  std::printf("%-34s %-12s %-14s %-10s\n", "system", "resp time", "bytes moved",
              "messages");
  for (std::size_t sites : {3u, 9u}) {
    // HyperFile: simulated distributed processing.
    PaperSim ps(sites, cfg);
    Query q = workload::closure_query(workload::kRandKeys[6],
                                      workload::kRand10pKey, 5);
    auto h = ps.sim.run(q);
    if (!h.ok()) return 1;
    char label[64];
    std::snprintf(label, sizeof label, "HyperFile (%zu sites)", sites);
    std::printf("%-34s %8.2f s  %12llu  %8llu\n", label,
                static_cast<double>(h.value().response_time.count()) / 1e6,
                static_cast<unsigned long long>(h.value().stats.bytes_on_wire),
                static_cast<unsigned long long>(h.value().stats.deref_messages +
                                                h.value().stats.result_messages));

    // Baseline: ship everything, evaluate at the client.
    std::vector<std::unique_ptr<SiteStore>> owned;
    std::vector<SiteStore*> stores;
    for (std::size_t i = 0; i < sites; ++i) {
      owned.push_back(std::make_unique<SiteStore>(static_cast<SiteId>(i)));
      stores.push_back(owned.back().get());
    }
    workload::populate_paper_workload(stores, cfg);

    for (auto gran : {baseline::TransferGranularity::kPerSite,
                      baseline::TransferGranularity::kPerObject}) {
      baseline::BaselineConfig bc;
      bc.granularity = gran;
      auto b = baseline::run_file_server_baseline(stores, q, bc);
      if (!b.ok()) return 1;
      std::snprintf(label, sizeof label, "file server (%zu sites, per-%s)",
                    sites,
                    gran == baseline::TransferGranularity::kPerSite ? "site"
                                                                    : "object");
      std::printf("%-34s %8.2f s  %12llu  %8llu\n", label,
                  static_cast<double>(b.value().response_time.count()) / 1e6,
                  static_cast<unsigned long long>(b.value().bytes_shipped),
                  static_cast<unsigned long long>(b.value().messages));
    }
  }
  std::printf("\nshape check: HyperFile moves orders of magnitude fewer bytes;\n"
              "the baseline's cost is dominated by shipping bodies it cannot\n"
              "filter, and per-object framing makes it strictly worse.\n");
  return 0;
}
