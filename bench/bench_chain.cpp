// Experiment E3 (paper Section 5): chain pointers — the worst-case delay
// scenario.
//
// "In the worst case delay scenario (following chain pointers) in the
// distributed case (on either three or nine machines) the query took 15
// seconds. ... pointers with such a structure can probably be avoided in
// practice."
//
// Every chain hop crosses a machine boundary, so the full per-message cost
// (~50 ms) lands on the critical path, serialized with the 8 ms of
// processing: 269 x 58 ms ≈ 15.6 s regardless of machine count.
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main() {
  header("E3: chain pointers, worst-case delay",
         "15 s on 3 or 9 machines (vs 2.7 s single-site)");

  std::printf("%-8s %-12s %-14s %-14s\n", "sites", "mean resp", "deref msgs",
              "result msgs");
  for (std::size_t sites : {1u, 3u, 9u}) {
    PaperSim ps(sites);
    SeriesStats s = run_series(ps, workload::kChainKey, workload::kRand10pKey, 10);
    std::printf("%-8zu %8.2f s  %10.1f    %10.1f\n", sites, s.mean_sec,
                s.mean_derefs, s.mean_result_msgs);
  }
  std::printf("\nshape check: distributed chain is ~5-6x slower than a single\n"
              "site and does NOT improve with more machines (all servers idle\n"
              "while each message is in transit).\n");
  return 0;
}
