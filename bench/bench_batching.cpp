// Ablation A5: batched remote dereferences.
//
// The paper's protocol sends one message per remote pointer, maximizing
// overlap (the remote site starts on the first pointer while the local site
// is still working). The batched variant ships a drain's worth of
// dereferences per destination in one message — far fewer messages, but
// remote sites start later. The paper's design goals pull both ways
// ("messages should be as small as possible, limited in number" vs the
// parallelism its evaluation celebrates); this bench quantifies the trade
// on the Figure 4 workloads.
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

struct Point {
  double sec;
  double msgs;
};

Point run_point(std::size_t sites, const char* pointer_key, bool batch) {
  sim::SimOptions opts;
  opts.batch_derefs = batch;
  sim::Simulation s(sim::CostModel::paper_1991(), sites, opts);
  std::vector<SiteStore*> stores;
  for (SiteId i = 0; i < sites; ++i) stores.push_back(&s.store(i));
  workload::populate_paper_workload(stores, workload::WorkloadConfig{});

  Rng rng(42);
  double sec = 0, msgs = 0;
  constexpr int kRuns = 100;
  for (int i = 0; i < kRuns; ++i) {
    Query q = workload::closure_query(pointer_key, workload::kRand10pKey,
                                      rng.next_range(1, 10));
    auto r = s.run(q);
    if (!r.ok()) std::abort();
    sec += static_cast<double>(r.value().response_time.count()) / 1e6;
    msgs += static_cast<double>(r.value().stats.deref_messages +
                                r.value().stats.batch_messages +
                                r.value().stats.result_messages);
  }
  return {sec / kRuns, msgs / kRuns};
}

}  // namespace

int main() {
  header("A5: per-pointer vs batched remote dereferences",
         "one message per pointer (the paper) vs one per (drain, site); "
         "batching cuts messages but delays remote starts");

  std::printf("%-10s %-8s %-22s %-22s\n", "pointers", "sites",
              "per-pointer (paper)", "batched");
  std::printf("%-10s %-8s %-11s %-10s %-11s %-10s\n", "", "", "resp", "msgs",
              "resp", "msgs");
  for (const char* key :
       {workload::kTreeKey, workload::kRandKeys[0], workload::kRandKeys[3],
        workload::kRandKeys[6]}) {
    for (std::size_t sites : {3u, 9u}) {
      Point plain = run_point(sites, key, /*batch=*/false);
      Point batched = run_point(sites, key, /*batch=*/true);
      std::printf("%-10s %-8zu %7.2f s  %8.1f  %7.2f s  %8.1f\n", key, sites,
                  plain.sec, plain.msgs, batched.sec, batched.msgs);
    }
  }
  std::printf(
      "\nshape check: batching slashes message counts wherever a drain emits\n"
      "several pointers to one destination. At low locality it also improves\n"
      "response time (per-message CPU dominates there — Figure 4's left edge\n"
      "was 'too much message traffic'); on the tree it slightly hurts, since\n"
      "the win there was starting remote subtrees as early as possible.\n");
  return 0;
}
