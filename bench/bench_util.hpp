// Shared helpers for the experiment-reproduction benches.
//
// Every timing bench runs on the discrete-event simulator with
// CostModel::paper_1991() (constants measured by the paper's authors; see
// src/sim/cost_model.hpp), so "seconds" below are *simulated 1991 seconds*,
// directly comparable to the numbers in the paper's Section 5 — host speed
// does not affect them. Each bench prints the paper's reported value next
// to ours; EXPERIMENTS.md records the comparison.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/simulation.hpp"
#include "workload/paper_workload.hpp"

namespace hyperfile::bench {

/// A simulation pre-loaded with the paper workload.
struct PaperSim {
  sim::Simulation sim;
  workload::PopulatedWorkload pop;

  explicit PaperSim(std::size_t sites, workload::WorkloadConfig cfg = {},
                    sim::CostModel costs = sim::CostModel::paper_1991())
      : sim(costs, sites) {
    std::vector<SiteStore*> stores;
    for (SiteId s = 0; s < sites; ++s) stores.push_back(&sim.store(s));
    pop = workload::populate_paper_workload(stores, cfg);
  }
};

struct SeriesStats {
  double mean_sec = 0;
  double min_sec = 0;
  double max_sec = 0;
  double mean_derefs = 0;
  double mean_result_msgs = 0;
  double mean_results = 0;
  double mean_bytes = 0;
};

/// The paper's methodology: "For each test we timed 100 queries which
/// followed the same pointers and looked for the same type of search key
/// tuple, but randomly varied the key searched for."
inline SeriesStats run_series(PaperSim& ps, const std::string& pointer_key,
                              const std::string& search_key,
                              std::int64_t key_space, int runs = 100,
                              std::uint64_t seed = 42) {
  Rng rng(seed);
  SeriesStats out;
  out.min_sec = 1e300;
  for (int i = 0; i < runs; ++i) {
    const std::int64_t key = rng.next_range(1, key_space);
    Query q = workload::closure_query(pointer_key, search_key, key);
    auto r = ps.sim.run(q);
    if (!r.ok()) {
      std::fprintf(stderr, "sim run failed: %s\n", r.error().to_string().c_str());
      std::abort();
    }
    const double sec = static_cast<double>(r.value().response_time.count()) / 1e6;
    out.mean_sec += sec;
    out.min_sec = std::min(out.min_sec, sec);
    out.max_sec = std::max(out.max_sec, sec);
    out.mean_derefs += static_cast<double>(r.value().stats.deref_messages);
    out.mean_result_msgs += static_cast<double>(r.value().stats.result_messages);
    out.mean_results += static_cast<double>(r.value().result.ids.size());
    out.mean_bytes += static_cast<double>(r.value().stats.bytes_on_wire);
  }
  out.mean_sec /= runs;
  out.mean_derefs /= runs;
  out.mean_result_msgs /= runs;
  out.mean_results /= runs;
  out.mean_bytes /= runs;
  return out;
}

inline void header(const char* title, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

}  // namespace hyperfile::bench
