// Shared helpers for the experiment-reproduction benches.
//
// Every timing bench runs on the discrete-event simulator with
// CostModel::paper_1991() (constants measured by the paper's authors; see
// src/sim/cost_model.hpp), so "seconds" below are *simulated 1991 seconds*,
// directly comparable to the numbers in the paper's Section 5 — host speed
// does not affect them. Each bench prints the paper's reported value next
// to ours; EXPERIMENTS.md records the comparison.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "sim/simulation.hpp"
#include "workload/paper_workload.hpp"

namespace hyperfile::bench {

/// A simulation pre-loaded with the paper workload.
struct PaperSim {
  sim::Simulation sim;
  workload::PopulatedWorkload pop;

  explicit PaperSim(std::size_t sites, workload::WorkloadConfig cfg = {},
                    sim::CostModel costs = sim::CostModel::paper_1991())
      : sim(costs, sites) {
    std::vector<SiteStore*> stores;
    for (SiteId s = 0; s < sites; ++s) stores.push_back(&sim.store(s));
    pop = workload::populate_paper_workload(stores, cfg);
  }
};

struct SeriesStats {
  double mean_sec = 0;
  double min_sec = 0;
  double max_sec = 0;
  double mean_derefs = 0;
  double mean_result_msgs = 0;
  double mean_results = 0;
  double mean_bytes = 0;
};

/// The paper's methodology: "For each test we timed 100 queries which
/// followed the same pointers and looked for the same type of search key
/// tuple, but randomly varied the key searched for."
inline SeriesStats run_series(PaperSim& ps, const std::string& pointer_key,
                              const std::string& search_key,
                              std::int64_t key_space, int runs = 100,
                              std::uint64_t seed = 42) {
  Rng rng(seed);
  SeriesStats out;
  // Degenerate series: report zeroed stats instead of leaving the 1e300
  // min sentinel (and a 0/0 mean) to leak into BENCH JSON.
  if (runs <= 0) return out;
  out.min_sec = 1e300;
  for (int i = 0; i < runs; ++i) {
    const std::int64_t key = rng.next_range(1, key_space);
    Query q = workload::closure_query(pointer_key, search_key, key);
    auto r = ps.sim.run(q);
    if (!r.ok()) {
      std::fprintf(stderr, "sim run failed: %s\n", r.error().to_string().c_str());
      std::abort();
    }
    const double sec = static_cast<double>(r.value().response_time.count()) / 1e6;
    out.mean_sec += sec;
    out.min_sec = std::min(out.min_sec, sec);
    out.max_sec = std::max(out.max_sec, sec);
    out.mean_derefs += static_cast<double>(r.value().stats.deref_messages);
    out.mean_result_msgs += static_cast<double>(r.value().stats.result_messages);
    out.mean_results += static_cast<double>(r.value().result.ids.size());
    out.mean_bytes += static_cast<double>(r.value().stats.bytes_on_wire);
  }
  out.mean_sec /= runs;
  out.mean_derefs /= runs;
  out.mean_result_msgs /= runs;
  out.mean_results /= runs;
  out.mean_bytes /= runs;
  return out;
}

inline void header(const char* title, const char* paper_claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("================================================================\n");
}

// ---------------------------------------------------------------------------
// Host wall-clock timing + machine-readable output. The simulated-seconds
// series above reproduce the paper's 1991 numbers; the helpers below measure
// *this* machine (parallel drains, index lookups, ...) and emit BENCH_*.json
// so the perf trajectory of the repo can be tracked across commits.

struct WallStats {
  double mean_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
  int runs = 0;
};

/// Time `fn` `runs` times (after `warmup` untimed runs) and report wall
/// milliseconds.
template <typename Fn>
WallStats time_wall(Fn&& fn, int runs, int warmup = 1) {
  for (int i = 0; i < warmup; ++i) fn();
  WallStats out;
  if (runs <= 0) return out;  // see run_series: no 1e300 sentinel, no 0/0
  out.runs = runs;
  out.min_ms = 1e300;
  for (int i = 0; i < runs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.mean_ms += ms;
    out.min_ms = std::min(out.min_ms, ms);
    out.max_ms = std::max(out.max_ms, ms);
  }
  out.mean_ms /= runs;
  return out;
}

/// One measured configuration of a bench: a config label, mean/min/max in
/// the stated unit, and free-form numeric counters (message counts, result
/// sizes, worker counts, ...).
struct BenchRecord {
  std::string config;
  double mean = 0;
  double min = 0;
  double max = 0;
  std::string unit = "ms";
  std::vector<std::pair<std::string, double>> counters;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Collects BenchRecords and writes `BENCH_<name>.json` (override the path
/// with `--json <path>`; the flag is stripped from argv so benches can keep
/// their own argument handling).
class JsonSink {
 public:
  JsonSink(std::string bench_name, int* argc = nullptr, char** argv = nullptr)
      : bench_(std::move(bench_name)), path_("BENCH_" + bench_ + ".json") {
    if (argc == nullptr || argv == nullptr) return;
    for (int i = 1; i < *argc; ++i) {
      if (std::string(argv[i]) == "--json" && i + 1 < *argc) {
        path_ = argv[i + 1];
        for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
        *argc -= 2;
        return;
      }
    }
  }

  void add(BenchRecord record) { records_.push_back(std::move(record)); }

  /// Write the collected records; returns false (with a stderr note) on IO
  /// failure so benches can exit nonzero.
  bool write() const {
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    // max_digits10: the default 6 significant digits quantized every
    // mean/min/max, so small commit-to-commit perf shifts rounded away.
    // At this precision a parse of the JSON recovers the exact double.
    out << std::setprecision(std::numeric_limits<double>::max_digits10);
    out << "{\n  \"bench\": \"" << json_escape(bench_) << "\",\n"
        << "  \"records\": [\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      out << "    {\"config\": \"" << json_escape(r.config) << "\", "
          << "\"mean\": " << r.mean << ", \"min\": " << r.min
          << ", \"max\": " << r.max << ", \"unit\": \""
          << json_escape(r.unit) << "\"";
      if (!r.counters.empty()) {
        out << ", \"counters\": {";
        for (std::size_t c = 0; c < r.counters.size(); ++c) {
          out << (c != 0 ? ", " : "") << "\"" << json_escape(r.counters[c].first)
              << "\": " << r.counters[c].second;
        }
        out << "}";
      }
      out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    // Snapshot of the process-wide metrics registry: drain latencies, fault
    // injections, retries — the observability counters behind the numbers
    // above ride along in every bench artifact.
    out << "  \"metrics\": " << metrics().to_json() << "\n}\n";
    if (!out.good()) {
      std::fprintf(stderr, "write to %s failed\n", path_.c_str());
      return false;
    }
    std::printf("wrote %s (%zu records)\n", path_.c_str(), records_.size());
    return true;
  }

  const std::string& path() const { return path_; }

 private:
  std::string bench_;
  std::string path_;
  std::vector<BenchRecord> records_;
};

}  // namespace hyperfile::bench
