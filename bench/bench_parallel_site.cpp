// Parallel site drain (SiteServerOptions::drain_workers): wall-clock speedup
// of CPU-bound multi-site closure queries when each site drains its working
// set on a shared-memory worker pool instead of the event-loop thread alone
// (paper Section 6 applied inside the distributed runtime).
//
// Workload: a root at site 0 points at one "portal" per site; each portal
// fans out to that site's local population of text-heavy objects (regex
// selection over many long string tuples), so one incoming dereference seeds
// a large, CPU-bound local drain — the shape the pool is built for. Both the
// in-process and the TCP transport run the same stores and query; `--heavy`
// multiplies the per-object text so filter CPU dominates messaging even on
// slow hosts.
//
// Two engines run in the same binary (DESIGN.md §14):
//   * legacy  — the frozen pre-overhaul drain (engine/legacy_drain.hpp):
//     mutex-sharded marks, one shared deque, allocating hot loop, generic
//     std::regex matching.
//   * current — lock-free marks, per-worker work-stealing queues,
//     allocation-free steady state, literal/prefix regex fast path.
//
// Every row's `speedup_vs_serial` is measured against the SAME baseline: the
// legacy engine at workers=0 on that transport. The legacy rows are the
// pre-change curve; the current rows show what the overhaul buys, and
// tools/check_bench_speedup.py gates CI on the workers=4 in-proc row.
// Thread-scaling depends on host cores (see the hardware_threads counter):
// with 3 sites draining concurrently the serial configuration already uses
// up to 3 cores, and on a single-core host all speedup comes from the
// single-thread wins.
//
// Emits BENCH_parallel_site.json (override with --json <path>).
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "dist/cluster.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

constexpr SiteId kSites = 3;

struct WorkloadShape {
  std::size_t nodes_per_site = 300;
  std::size_t tuples_per_node = 16;
  std::size_t chars_per_tuple = 192;
};

/// Deterministically populate `stores` (one per site) with the portal/fanout
/// graph. Returns the number of objects that match the bench query.
std::size_t populate(std::vector<SiteStore*>& stores, const WorkloadShape& shape) {
  Rng rng(4242);
  std::size_t expected = 0;

  std::vector<ObjectId> portals;
  for (SiteId s = 0; s < kSites; ++s) portals.push_back(stores[s]->allocate());

  for (SiteId s = 0; s < kSites; ++s) {
    std::vector<ObjectId> locals;
    for (std::size_t i = 0; i < shape.nodes_per_site; ++i) {
      locals.push_back(stores[s]->allocate());
    }
    for (std::size_t i = 0; i < shape.nodes_per_site; ++i) {
      Object obj(locals[i]);
      obj.add(Tuple::pointer("Link", locals[i]));  // survive the loop body
      const bool hit = rng.next_bool(0.1);
      if (hit) ++expected;
      for (std::size_t t = 0; t < shape.tuples_per_node; ++t) {
        std::string text;
        text.reserve(shape.chars_per_tuple);
        while (text.size() < shape.chars_per_tuple) {
          text.push_back(static_cast<char>('a' + rng.next_below(26)));
        }
        // The needle lands in exactly one tuple of matching objects; the
        // matcher still has to scan the other tuples to reject them.
        if (hit && t == 0) text.replace(text.size() / 2, 8, "needle42");
        obj.add(Tuple::string("Text", text));
      }
      stores[s]->put(std::move(obj));
    }
    Object portal(portals[s]);
    portal.add(Tuple::pointer("Link", portals[s]));
    for (const ObjectId& id : locals) portal.add(Tuple::pointer("Link", id));
    stores[s]->put(std::move(portal));
  }

  ObjectId root = stores[0]->allocate();
  Object obj(root);
  for (const ObjectId& portal : portals) obj.add(Tuple::pointer("Link", portal));
  stores[0]->put(std::move(obj));
  stores[0]->create_set("S", std::span<const ObjectId>(&root, 1));
  return expected;
}

Query bench_query() {
  auto q = parse_query(
      R"(S [ (pointer, "Link", ?X) | ^^X ]* (string, "Text", /needle42/) -> T)");
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.error().to_string().c_str());
    std::abort();
  }
  return std::move(q).value();
}

/// Snapshot of the process-wide drain counters; per-config deltas ride along
/// in each JSON row so steal/park behaviour is visible next to the timings.
struct DrainCounters {
  std::uint64_t steals = 0;
  std::uint64_t stolen_items = 0;
  std::uint64_t queue_wait_us = 0;
  std::uint64_t suppressed = 0;

  static DrainCounters snapshot() {
    DrainCounters c;
    c.steals = metrics().counter("engine.steals").value();
    c.stolen_items = metrics().counter("engine.stolen_items").value();
    c.queue_wait_us = metrics().counter("engine.queue_wait_us").value();
    c.suppressed = metrics().counter("engine.suppressed").value();
    return c;
  }

  DrainCounters delta_since(const DrainCounters& before) const {
    return {steals - before.steals, stolen_items - before.stolen_items,
            queue_wait_us - before.queue_wait_us,
            suppressed - before.suppressed};
  }
};

struct RunOutcome {
  WallStats wall;
  std::size_t results = 0;
  NetworkStats net;
  bool has_net = false;
  bool ok = true;
  DrainCounters drain;
};

RunOutcome run_inproc(const WorkloadShape& shape, std::size_t workers,
                      bool legacy, const Query& q, int runs) {
  SiteServerOptions options;
  options.drain_workers = workers;
  options.legacy_drain = legacy;
  Cluster cluster(kSites, options);
  std::vector<SiteStore*> stores;
  for (SiteId s = 0; s < kSites; ++s) stores.push_back(&cluster.store(s));
  populate(stores, shape);
  cluster.start();

  RunOutcome out;
  const DrainCounters before = DrainCounters::snapshot();
  out.wall = time_wall(
      [&] {
        auto r = cluster.client().run(q, Duration(120'000'000));
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.error().to_string().c_str());
          out.ok = false;
          return;
        }
        out.results = r.value().ids.size();
      },
      runs);
  out.drain = DrainCounters::snapshot().delta_since(before);
  cluster.stop();
  out.net = cluster.network_stats();
  out.has_net = true;
  return out;
}

RunOutcome run_tcp(const WorkloadShape& shape, std::size_t workers,
                   bool legacy, const Query& q, int runs) {
  RunOutcome out;

  std::vector<TcpPeer> zeros(kSites + 1, TcpPeer{"127.0.0.1", 0});
  std::vector<std::unique_ptr<TcpNetwork>> nets;
  for (SiteId s = 0; s <= kSites; ++s) {
    auto net = TcpNetwork::create(s, zeros);
    if (!net.ok()) {
      out.ok = false;  // no localhost sockets in this environment
      return out;
    }
    nets.push_back(std::move(net).value());
  }
  for (auto& net : nets) {
    for (SiteId peer = 0; peer <= kSites; ++peer) {
      net->update_peer(peer, {"127.0.0.1", nets[peer]->bound_port()});
    }
  }

  std::vector<SiteStore> stores;
  for (SiteId s = 0; s < kSites; ++s) stores.emplace_back(s);
  std::vector<SiteStore*> ptrs;
  for (auto& st : stores) ptrs.push_back(&st);
  populate(ptrs, shape);

  SiteServerOptions options;
  options.drain_workers = workers;
  options.legacy_drain = legacy;
  std::vector<std::unique_ptr<SiteServer>> servers;
  for (SiteId s = 0; s < kSites; ++s) {
    servers.push_back(std::make_unique<SiteServer>(std::move(nets[s]),
                                                   std::move(stores[s]),
                                                   options));
    servers.back()->start();
  }
  Client client(std::move(nets[kSites]), /*default_server=*/0);

  const DrainCounters before = DrainCounters::snapshot();
  out.wall = time_wall(
      [&] {
        auto r = client.run(q, Duration(120'000'000));
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.error().to_string().c_str());
          out.ok = false;
          return;
        }
        out.results = r.value().ids.size();
      },
      runs);
  out.drain = DrainCounters::snapshot().delta_since(before);
  for (auto& server : servers) server->stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink json("parallel_site", &argc, argv);

  WorkloadShape shape;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      shape.nodes_per_site = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--runs" && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (arg == "--heavy") {
      // CPU-bound tier: ~4x the matcher work per object, so filter CPU
      // dwarfs transport cost and worker scaling is measurable even with
      // fast messaging.
      shape.nodes_per_site = 400;
      shape.tuples_per_node = 32;
      shape.chars_per_tuple = 384;
    }
  }

  const unsigned hw_threads = std::thread::hardware_concurrency();
  header("Parallel site drain: multi-worker SiteServer (paper Section 6)",
         "all processors share the query context, mark table, and working "
         "set; one site need not mean one core");
  std::printf(
      "%zu sites x %zu text-heavy objects (%zu tuples x %zu chars), closure "
      "query; host hardware threads: %u\nworkers=0 is the serial event-loop "
      "drain; every speedup is vs the LEGACY serial drain per transport.\n\n",
      static_cast<std::size_t>(kSites), shape.nodes_per_site,
      shape.tuples_per_node, shape.chars_per_tuple, hw_threads);
  std::printf("%-8s %-8s %-8s %12s %12s %10s %8s %8s %12s %10s\n", "net",
              "engine", "workers", "mean(ms)", "min(ms)", "results", "steals",
              "stolen", "wait(ms)", "speedup");

  const Query q = bench_query();
  const std::size_t worker_counts[] = {0, 1, 2, 4, 8};
  bool all_ok = true;

  for (const char* transport : {"inproc", "tcp"}) {
    // The shared baseline for this transport: legacy engine, serial drain.
    double legacy_serial_mean = 0;
    for (const bool legacy : {true, false}) {
      for (std::size_t workers : worker_counts) {
        const bool inproc = std::string(transport) == "inproc";
        RunOutcome out = inproc ? run_inproc(shape, workers, legacy, q, runs)
                                : run_tcp(shape, workers, legacy, q, runs);
        const char* engine = legacy ? "legacy" : "current";
        if (!out.ok) {
          std::printf("%-8s %-8s %-8zu %12s\n", transport, engine, workers,
                      "(skipped)");
          continue;
        }
        if (legacy && workers == 0) legacy_serial_mean = out.wall.mean_ms;
        const double speedup = legacy_serial_mean > 0
                                   ? legacy_serial_mean / out.wall.mean_ms
                                   : 0;
        std::printf(
            "%-8s %-8s %-8zu %12.2f %12.2f %10zu %8llu %8llu %12.2f %9.2fx\n",
            transport, engine, workers, out.wall.mean_ms, out.wall.min_ms,
            out.results, static_cast<unsigned long long>(out.drain.steals),
            static_cast<unsigned long long>(out.drain.stolen_items),
            static_cast<double>(out.drain.queue_wait_us) / 1000.0, speedup);

        BenchRecord rec;
        rec.config = std::string(transport) + ",engine=" + engine +
                     ",workers=" + std::to_string(workers);
        rec.mean = out.wall.mean_ms;
        rec.min = out.wall.min_ms;
        rec.max = out.wall.max_ms;
        rec.counters = {
            {"workers", static_cast<double>(workers)},
            {"legacy_engine", legacy ? 1.0 : 0.0},
            {"results", static_cast<double>(out.results)},
            {"speedup_vs_serial", speedup},
            {"hardware_threads", static_cast<double>(hw_threads)},
            {"steals", static_cast<double>(out.drain.steals)},
            {"stolen_items", static_cast<double>(out.drain.stolen_items)},
            {"queue_wait_us", static_cast<double>(out.drain.queue_wait_us)},
            {"suppressed", static_cast<double>(out.drain.suppressed)},
        };
        if (out.has_net) {
          rec.counters.push_back(
              {"deref_messages", static_cast<double>(out.net.deref_messages)});
          rec.counters.push_back(
              {"result_messages",
               static_cast<double>(out.net.result_messages)});
          rec.counters.push_back(
              {"messages_sent", static_cast<double>(out.net.messages_sent)});
        }
        json.add(std::move(rec));
        all_ok = all_ok && out.ok;
      }
    }
  }

  return json.write() && all_ok ? 0 : 1;
}
