// Parallel site drain (SiteServerOptions::drain_workers): wall-clock speedup
// of CPU-bound multi-site closure queries when each site drains its working
// set on a shared-memory worker pool instead of the event-loop thread alone
// (paper Section 6 applied inside the distributed runtime).
//
// Workload: a root at site 0 points at one "portal" per site; each portal
// fans out to that site's local population of text-heavy objects (regex
// selection over many long string tuples), so one incoming dereference seeds
// a large, CPU-bound local drain — the shape the pool is built for. Both the
// in-process and the TCP transport run the same stores and query.
//
// Speedups are relative to workers=0 (the serial drain) per transport; they
// depend on host cores — with 3 sites draining concurrently, the serial
// configuration already uses up to 3 cores.
//
// Emits BENCH_parallel_site.json (override with --json <path>).
#include <memory>
#include <thread>

#include "bench_util.hpp"
#include "dist/cluster.hpp"
#include "net/tcp.hpp"
#include "query/parser.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

constexpr SiteId kSites = 3;

struct WorkloadShape {
  std::size_t nodes_per_site = 300;
  std::size_t tuples_per_node = 16;
  std::size_t chars_per_tuple = 192;
};

/// Deterministically populate `stores` (one per site) with the portal/fanout
/// graph. Returns the number of objects that match the bench query.
std::size_t populate(std::vector<SiteStore*>& stores, const WorkloadShape& shape) {
  Rng rng(4242);
  std::size_t expected = 0;

  std::vector<ObjectId> portals;
  for (SiteId s = 0; s < kSites; ++s) portals.push_back(stores[s]->allocate());

  for (SiteId s = 0; s < kSites; ++s) {
    std::vector<ObjectId> locals;
    for (std::size_t i = 0; i < shape.nodes_per_site; ++i) {
      locals.push_back(stores[s]->allocate());
    }
    for (std::size_t i = 0; i < shape.nodes_per_site; ++i) {
      Object obj(locals[i]);
      obj.add(Tuple::pointer("Link", locals[i]));  // survive the loop body
      const bool hit = rng.next_bool(0.1);
      if (hit) ++expected;
      for (std::size_t t = 0; t < shape.tuples_per_node; ++t) {
        std::string text;
        text.reserve(shape.chars_per_tuple);
        while (text.size() < shape.chars_per_tuple) {
          text.push_back(static_cast<char>('a' + rng.next_below(26)));
        }
        // The needle lands in exactly one tuple of matching objects; the
        // regex still has to scan the other tuples to reject them.
        if (hit && t == 0) text.replace(text.size() / 2, 8, "needle42");
        obj.add(Tuple::string("Text", text));
      }
      stores[s]->put(std::move(obj));
    }
    Object portal(portals[s]);
    portal.add(Tuple::pointer("Link", portals[s]));
    for (const ObjectId& id : locals) portal.add(Tuple::pointer("Link", id));
    stores[s]->put(std::move(portal));
  }

  ObjectId root = stores[0]->allocate();
  Object obj(root);
  for (const ObjectId& portal : portals) obj.add(Tuple::pointer("Link", portal));
  stores[0]->put(std::move(obj));
  stores[0]->create_set("S", std::span<const ObjectId>(&root, 1));
  return expected;
}

Query bench_query() {
  auto q = parse_query(
      R"(S [ (pointer, "Link", ?X) | ^^X ]* (string, "Text", /needle42/) -> T)");
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.error().to_string().c_str());
    std::abort();
  }
  return std::move(q).value();
}

struct RunOutcome {
  WallStats wall;
  std::size_t results = 0;
  NetworkStats net;
  bool has_net = false;
  bool ok = true;
};

RunOutcome run_inproc(const WorkloadShape& shape, std::size_t workers,
                      const Query& q, int runs) {
  SiteServerOptions options;
  options.drain_workers = workers;
  Cluster cluster(kSites, options);
  std::vector<SiteStore*> stores;
  for (SiteId s = 0; s < kSites; ++s) stores.push_back(&cluster.store(s));
  populate(stores, shape);
  cluster.start();

  RunOutcome out;
  out.wall = time_wall(
      [&] {
        auto r = cluster.client().run(q, Duration(120'000'000));
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.error().to_string().c_str());
          out.ok = false;
          return;
        }
        out.results = r.value().ids.size();
      },
      runs);
  cluster.stop();
  out.net = cluster.network_stats();
  out.has_net = true;
  return out;
}

RunOutcome run_tcp(const WorkloadShape& shape, std::size_t workers,
                   const Query& q, int runs) {
  RunOutcome out;

  std::vector<TcpPeer> zeros(kSites + 1, TcpPeer{"127.0.0.1", 0});
  std::vector<std::unique_ptr<TcpNetwork>> nets;
  for (SiteId s = 0; s <= kSites; ++s) {
    auto net = TcpNetwork::create(s, zeros);
    if (!net.ok()) {
      out.ok = false;  // no localhost sockets in this environment
      return out;
    }
    nets.push_back(std::move(net).value());
  }
  for (auto& net : nets) {
    for (SiteId peer = 0; peer <= kSites; ++peer) {
      net->update_peer(peer, {"127.0.0.1", nets[peer]->bound_port()});
    }
  }

  std::vector<SiteStore> stores;
  for (SiteId s = 0; s < kSites; ++s) stores.emplace_back(s);
  std::vector<SiteStore*> ptrs;
  for (auto& st : stores) ptrs.push_back(&st);
  populate(ptrs, shape);

  SiteServerOptions options;
  options.drain_workers = workers;
  std::vector<std::unique_ptr<SiteServer>> servers;
  for (SiteId s = 0; s < kSites; ++s) {
    servers.push_back(std::make_unique<SiteServer>(std::move(nets[s]),
                                                   std::move(stores[s]),
                                                   options));
    servers.back()->start();
  }
  Client client(std::move(nets[kSites]), /*default_server=*/0);

  out.wall = time_wall(
      [&] {
        auto r = client.run(q, Duration(120'000'000));
        if (!r.ok()) {
          std::fprintf(stderr, "query failed: %s\n",
                       r.error().to_string().c_str());
          out.ok = false;
          return;
        }
        out.results = r.value().ids.size();
      },
      runs);
  for (auto& server : servers) server->stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink json("parallel_site", &argc, argv);

  WorkloadShape shape;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--nodes" && i + 1 < argc) {
      shape.nodes_per_site = std::strtoul(argv[++i], nullptr, 10);
    } else if (arg == "--runs" && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    }
  }

  header("Parallel site drain: multi-worker SiteServer (paper Section 6)",
         "all processors share the query context, mark table, and working "
         "set; one site need not mean one core");
  std::printf(
      "%zu sites x %zu text-heavy objects, regex closure; host hardware "
      "threads: %u\nworkers=0 is the serial event-loop drain.\n\n",
      static_cast<std::size_t>(kSites), shape.nodes_per_site,
      std::thread::hardware_concurrency());
  std::printf("%-8s %-8s %12s %12s %12s %10s %10s\n", "net", "workers",
              "mean(ms)", "min(ms)", "max(ms)", "results", "speedup");

  const Query q = bench_query();
  const std::size_t worker_counts[] = {0, 1, 2, 4, 8};
  bool all_ok = true;

  for (const char* transport : {"inproc", "tcp"}) {
    double serial_mean = 0;
    for (std::size_t workers : worker_counts) {
      RunOutcome out = std::string(transport) == "inproc"
                           ? run_inproc(shape, workers, q, runs)
                           : run_tcp(shape, workers, q, runs);
      if (!out.ok) {
        std::printf("%-8s %-8zu %12s\n", transport, workers, "(skipped)");
        continue;
      }
      if (workers == 0) serial_mean = out.wall.mean_ms;
      const double speedup =
          serial_mean > 0 ? serial_mean / out.wall.mean_ms : 0;
      std::printf("%-8s %-8zu %12.2f %12.2f %12.2f %10zu %9.2fx\n", transport,
                  workers, out.wall.mean_ms, out.wall.min_ms, out.wall.max_ms,
                  out.results, speedup);

      BenchRecord rec;
      rec.config = std::string(transport) + ",workers=" + std::to_string(workers);
      rec.mean = out.wall.mean_ms;
      rec.min = out.wall.min_ms;
      rec.max = out.wall.max_ms;
      rec.counters = {{"workers", static_cast<double>(workers)},
                      {"results", static_cast<double>(out.results)},
                      {"speedup_vs_serial", speedup}};
      if (out.has_net) {
        rec.counters.push_back(
            {"deref_messages", static_cast<double>(out.net.deref_messages)});
        rec.counters.push_back(
            {"result_messages", static_cast<double>(out.net.result_messages)});
        rec.counters.push_back(
            {"messages_sent", static_cast<double>(out.net.messages_sent)});
      }
      json.add(std::move(rec));
      all_ok = all_ok && out.ok;
    }
  }

  return json.write() && all_ok ? 0 : 1;
}
