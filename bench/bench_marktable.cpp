// Ablation A2 (paper Section 3.1): the mark-table subtlety.
//
// "However, there is one important subtlety. Consider a query
// Q = S F1 F2 F3 F4. Say a particular object O is in the initial set, but
// fails to make it through filter F1. Some other object containing a
// reference to O makes it through ... and the pointer to O is dereferenced.
// Now we must realize that even though O was seen earlier (at F1), it still
// needs to be processed starting at F3. Thus, our mark table will record not
// only the identifiers of objects seen by a query, but also where in the
// query they were seen."
//
// This bench quantifies the correctness cost of naive whole-object marking
// on graphs where initial-set members are also dereference targets, and the
// (small) memory/speed cost of per-filter-index marking.
#include <cstdio>

#include "common/rng.hpp"
#include "engine/local_engine.hpp"
#include "query/parser.hpp"

namespace {

using namespace hyperfile;

/// Graph where every object is both in the initial set and a dereference
/// target: members that fail the first filter must still be deliverable via
/// pointers from members that pass it.
SiteStore build_store(std::uint64_t seed, std::size_t n, double pass_p) {
  Rng rng(seed);
  SiteStore store(0);
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < n; ++i) ids.push_back(store.allocate());
  for (std::size_t i = 0; i < n; ++i) {
    Object obj(ids[i]);
    if (rng.next_bool(pass_p)) obj.add(Tuple::keyword("good"));
    obj.add(Tuple::pointer("Link", ids[rng.next_below(n)]));
    obj.add(Tuple::pointer("Link", ids[rng.next_below(n)]));
    store.put(std::move(obj));
  }
  store.create_set("S", ids);  // everyone is in the initial set
  return store;
}

std::size_t run(const SiteStore& store, const Query& q, bool naive) {
  ExecutionOptions opts;
  opts.naive_whole_object_marking = naive;
  QueryExecution exec(q, store, std::move(opts));
  (void)exec.seed_initial();
  exec.drain();
  return exec.result_ids().size();
}

}  // namespace

int main() {
  std::printf(
      "A2: per-filter-index marking vs naive whole-object marking.\n"
      "Query: S (keyword, \"good\", ?) (pointer, \"Link\", ?X) ^X -> T\n"
      "Objects failing the keyword must still be deliverable as deref\n"
      "targets of objects that pass it. Naive marking suppresses them.\n\n");

  auto q = parse_query(R"(S (keyword, "good", ?) (pointer, "Link", ?X) ^X -> T)");
  if (!q.ok()) return 1;

  std::printf("%-8s %-10s %-12s %-12s %-10s\n", "seed", "P(pass)", "paper marks",
              "naive marks", "lost");
  std::size_t total_lost = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (double p : {0.3, 0.6}) {
      SiteStore store = build_store(seed, 200, p);
      const std::size_t correct = run(store, q.value(), /*naive=*/false);
      const std::size_t naive = run(store, q.value(), /*naive=*/true);
      std::printf("%-8llu %-10.1f %-12zu %-12zu %-10zu\n",
                  static_cast<unsigned long long>(seed), p, correct, naive,
                  correct - naive);
      total_lost += correct - naive;
    }
  }
  std::printf("\nshape check: naive marking loses results (%zu across runs); "
              "the paper's (id, filter-index) marks lose none.\n",
              total_lost);
  return total_lost > 0 ? 0 : 1;  // the ablation must demonstrate the loss
}
