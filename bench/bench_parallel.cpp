// Ablation A3 (paper Section 6): shared-memory multiprocessor processing.
//
// "Our algorithms are also applicable to a shared memory multi-processor
// server. In this case all available processors can share the same general
// query information, mark table, and working set."
//
// Host wall-time speedup of the ParallelEngine over worker counts on the
// paper workload (scaled up 20x so there is enough work to parallelize —
// the 1991 data set fits in a modern L2).
#include <benchmark/benchmark.h>

#include <thread>

#include "engine/parallel_engine.hpp"
#include "workload/paper_workload.hpp"

namespace {

using namespace hyperfile;

SiteStore& big_store() {
  static SiteStore* store = [] {
    auto* s = new SiteStore(0);
    SiteStore* ptr[] = {s};
    workload::WorkloadConfig cfg;
    cfg.num_objects = 5400;  // 20x the paper's data set
    workload::populate_paper_workload(ptr, cfg);
    return s;
  }();
  return *store;
}

void BM_ParallelClosure(benchmark::State& state) {
  SiteStore& store = big_store();
  const auto workers = static_cast<std::size_t>(state.range(0));
  Query q = workload::closure_query(workload::kRandKeys[6],
                                    workload::kRand10pKey, 5);
  ParallelEngine engine(store, workers);
  std::size_t results = 0;
  for (auto _ : state) {
    auto r = engine.run(q);
    if (!r.ok()) state.SkipWithError("run failed");
    results = r.value().ids.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["results"] = static_cast<double>(results);
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_ParallelClosure)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "A3: shared-memory parallel engine (paper Section 6), 5400-object\n"
      "closure. Result sets are identical across worker counts (tested);\n"
      "this measures the wall-time scaling of the shared work set.\n"
      "Host hardware threads: %u (scaling is only visible with >1).\n\n",
      std::thread::hardware_concurrency());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
