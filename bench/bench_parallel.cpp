// Ablation A3 (paper Section 6): shared-memory multiprocessor processing.
//
// "Our algorithms are also applicable to a shared memory multi-processor
// server. In this case all available processors can share the same general
// query information, mark table, and working set."
//
// Host wall-time speedup of the ParallelEngine over worker counts on the
// paper workload (scaled up 20x so there is enough work to parallelize —
// the 1991 data set fits in a modern L2). Emits BENCH_parallel.json
// (override with --json <path>).
#include <thread>

#include "bench_util.hpp"
#include "engine/parallel_engine.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main(int argc, char** argv) {
  JsonSink json("parallel", &argc, argv);

  SiteStore store(0);
  {
    SiteStore* ptr[] = {&store};
    workload::WorkloadConfig cfg;
    cfg.num_objects = 5400;  // 20x the paper's data set
    workload::populate_paper_workload(ptr, cfg);
  }
  Query q = workload::closure_query(workload::kRandKeys[6],
                                    workload::kRand10pKey, 5);

  header("A3: shared-memory parallel engine (paper Section 6)",
         "all processors share the query context, mark table, and working "
         "set; duplicate processing is benign");
  std::printf("5400-object closure; host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());
  std::printf("%-10s %12s %12s %12s %10s %10s\n", "workers", "mean(ms)",
              "min(ms)", "max(ms)", "results", "speedup");

  double serial_mean = 0;
  for (std::size_t workers : {1u, 2u, 4u, 8u}) {
    ParallelEngine engine(store, workers);
    std::size_t results = 0;
    WallStats w = time_wall(
        [&] {
          auto r = engine.run(q);
          if (!r.ok()) {
            std::fprintf(stderr, "run failed: %s\n",
                         r.error().to_string().c_str());
            std::abort();
          }
          results = r.value().ids.size();
        },
        /*runs=*/5);
    if (workers == 1) serial_mean = w.mean_ms;
    const double speedup = serial_mean / w.mean_ms;
    std::printf("%-10zu %12.2f %12.2f %12.2f %10zu %9.2fx\n", workers,
                w.mean_ms, w.min_ms, w.max_ms, results, speedup);

    BenchRecord rec;
    rec.config = "workers=" + std::to_string(workers);
    rec.mean = w.mean_ms;
    rec.min = w.min_ms;
    rec.max = w.max_ms;
    rec.counters = {{"workers", static_cast<double>(workers)},
                    {"results", static_cast<double>(results)},
                    {"speedup_vs_1", speedup}};
    json.add(std::move(rec));
  }
  return json.write() ? 0 : 1;
}
