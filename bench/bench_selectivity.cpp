// Experiment E5 (paper Section 5): effect of query selectivity.
//
// "Increasing the number of items returned significantly increases the query
// processing time. Given two queries that follow the same pointers, a highly
// selective query may be faster in the distributed case, while a less
// selective query may run faster when the entire database is on a single
// server. For example, the case where 95% of the pointers are local takes an
// average 1.1 seconds when run on three or nine machines, and 1.5 seconds
// when run at a single site [~10% of items returned]. If we instead select
// all of the items ... the single site time jumps to 5.1 seconds. For three
// and nine sites we have 6.4 and 5.7 seconds. Sending results is expensive
// in our system."
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main() {
  header("E5: selectivity vs distribution (Rand95 pointers, 95% local)",
         "10% selectivity: 1.5 s (1 site) vs 1.1 s (3/9 sites); "
         "select-all: 5.1 s (1) vs 6.4 s (3) / 5.7 s (9) — the win inverts");

  const char* ptr = workload::kRandKeys[6];  // Rand95

  std::printf("%-22s %-10s %-10s %-10s\n", "query", "1 site", "3 sites",
              "9 sites");

  // ~10% selectivity: Rand10p with a random key.
  {
    double t[3];
    int i = 0;
    double results = 0;
    for (std::size_t sites : {1u, 3u, 9u}) {
      PaperSim ps(sites);
      SeriesStats s = run_series(ps, ptr, workload::kRand10pKey, 10);
      t[i++] = s.mean_sec;
      results = s.mean_results;
    }
    std::printf("%-22s %6.2f s  %6.2f s  %6.2f s   (mean results %.1f)\n",
                "selective (Rand10p)", t[0], t[1], t[2], results);
    std::printf("  -> distributed wins: %s\n",
                (t[1] < t[0] && t[2] < t[0]) ? "yes" : "NO");
  }

  // Select-all: the Common key matches every object.
  {
    double t[3];
    int i = 0;
    double results = 0;
    for (std::size_t sites : {1u, 3u, 9u}) {
      PaperSim ps(sites);
      SeriesStats s = run_series(ps, ptr, workload::kCommonKey, 1);
      t[i++] = s.mean_sec;
      results = s.mean_results;
    }
    std::printf("%-22s %6.2f s  %6.2f s  %6.2f s   (mean results %.1f)\n",
                "select-all (Common)", t[0], t[1], t[2], results);
    std::printf("  -> single site wins: %s\n",
                (t[0] < t[1] && t[0] < t[2]) ? "yes" : "NO");
  }

  std::printf("\nshape check: shipping results is what makes distribution\n"
              "lose at low selectivity — see bench_distset for the paper's\n"
              "proposed fix.\n");
  return 0;
}
