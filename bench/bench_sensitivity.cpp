// Sensitivity analysis (extension): how robust are the paper's conclusions
// to its 1991 cost constants?
//
// The evaluation's qualitative claims — chain pathology, the >= 80%-local
// sweet spot, select-all favoring a single site — all hinge on the ratio of
// message cost to per-object processing (50 ms vs 8 ms ≈ 6x). We sweep that
// ratio from the paper's hardware down to a modern-LAN-like regime and
// report where each conclusion flips. (The per-object cost stays at 8 ms so
// the ratio is the only variable; only ratios are meaningful here.)
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

sim::CostModel scaled_messages(double factor) {
  sim::CostModel m = sim::CostModel::paper_1991();
  auto scale = [factor](Duration d) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(d.count()) * factor));
  };
  m.msg_send_cpu = scale(m.msg_send_cpu);
  m.msg_recv_cpu = scale(m.msg_recv_cpu);
  m.msg_latency = scale(m.msg_latency);
  m.remote_result_id = scale(m.remote_result_id);
  return m;
}

struct Row {
  double chain3;
  double single_chain;
  double rand05_3;
  double rand95_3;
  double single_rand;
  double selectall_1;
  double selectall_3;
};

Row run_row(double factor) {
  Row row{};
  {
    PaperSim one(1, {}, scaled_messages(factor));
    row.single_chain =
        run_series(one, workload::kChainKey, workload::kRand10pKey, 10).mean_sec;
    row.single_rand =
        run_series(one, workload::kRandKeys[6], workload::kRand10pKey, 10).mean_sec;
    row.selectall_1 =
        run_series(one, workload::kRandKeys[6], workload::kCommonKey, 1).mean_sec;
  }
  {
    PaperSim three(3, {}, scaled_messages(factor));
    row.chain3 =
        run_series(three, workload::kChainKey, workload::kRand10pKey, 10).mean_sec;
    row.rand05_3 =
        run_series(three, workload::kRandKeys[0], workload::kRand10pKey, 10).mean_sec;
    row.rand95_3 =
        run_series(three, workload::kRandKeys[6], workload::kRand10pKey, 10).mean_sec;
    row.selectall_3 =
        run_series(three, workload::kRandKeys[6], workload::kCommonKey, 1).mean_sec;
  }
  return row;
}

}  // namespace

int main() {
  header("Sensitivity: the paper's conclusions vs message cost",
         "1991: ~50 ms/message vs 8 ms/object. Sweep the message cost and "
         "watch which conclusions survive a faster network");

  std::printf("%-10s %-22s %-24s %-22s\n", "msg cost", "chain pathology",
              "low locality hurts", "select-all prefers 1 site");
  std::printf("%-10s %-10s %-10s %-12s %-10s %-11s %-10s\n", "(x paper)",
              "3 sites", "1 site", ".05 local", ".95 local", "1 site",
              "3 sites");
  for (double factor : {1.0, 0.5, 0.1, 0.02}) {
    Row row = run_row(factor);
    std::printf("%-10.2f %7.2f s  %7.2f s  %8.2f s  %8.2f s  %8.2f s %7.2f s\n",
                factor, row.chain3, row.single_chain, row.rand05_3, row.rand95_3,
                row.selectall_1, row.selectall_3);
    std::printf("%-10s chain worse than 1 site: %-3s  .05 worse than .95: %-3s"
                "  select-all: 1 site wins: %s\n",
                "", row.chain3 > row.single_chain ? "yes" : "NO",
                row.rand05_3 > row.rand95_3 ? "yes" : "NO",
                row.selectall_1 < row.selectall_3 ? "yes" : "NO");
  }
  std::printf(
      "\nreading: with 1991 messages every conclusion holds. Cheapen messages\n"
      "and they fall one by one — select-all prefers distribution below ~0.5x,\n"
      "the chain pathology disappears near 0.02x, and the locality gap shrinks\n"
      "from ~9 s to well under 0.1 s. The paper's design advice is calibrated\n"
      "to its era's message/compute ratio, exactly as its Section 1 goals\n"
      "('communication may be expensive') state.\n");
  return 0;
}
