// Recovery bench: time for a crashed site to rebuild its store, as a
// function of WAL length (DESIGN.md §13).
//
// Two recovery shapes per log size:
//   * replay      — no checkpoint: load nothing, re-apply every WAL record;
//   * checkpoint  — an online checkpoint subsumed the log: load the
//                   snapshot, replay an empty WAL.
// The gap between them is what periodic checkpointing (hyperfiled
// --checkpoint-interval) buys: recovery cost stops growing with uptime and
// becomes proportional to store size.
//
// Emits BENCH_recovery.json (override with --json <path>).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "store/site_store.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

std::string bench_dir() {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/hf_bench_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Drive `records` mutations through a WAL-attached store, the way a
/// serving site would: mostly puts, a sprinkling of erases, one named set.
SiteStore build_history(const std::string& wal_path, std::size_t records) {
  std::filesystem::remove(wal_path);
  auto replay = replay_wal(wal_path);
  auto wal = WriteAheadLog::open(wal_path, replay.value());
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n",
                 wal.error().to_string().c_str());
    std::abort();
  }
  WriteAheadLog log = std::move(wal).value();
  SiteStore store(0);
  store.attach_wal(&log);
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < records; ++i) {
    if (i % 10 == 9 && !ids.empty()) {
      store.erase(ids[ids.size() / 2]);  // every 10th record is a delete
      continue;
    }
    const ObjectId id = store.allocate();
    Object obj(id);
    obj.add(Tuple::string("Title", "object " + std::to_string(i)));
    obj.add(Tuple::pointer("Reference", ObjectId(0, (i % 97) + 1)));
    if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
    store.put(std::move(obj));
    ids.push_back(id);
  }
  store.create_set("S", std::span<const ObjectId>(ids.data(),
                                                  std::min<std::size_t>(
                                                      ids.size(), 8)));
  store.attach_wal(nullptr);
  return store;
}

/// WAL-only recovery: what a site that never checkpointed does on restart.
SiteStore recover_from_wal(const std::string& wal_path) {
  SiteStore store(0);
  auto replay = replay_wal(wal_path);
  if (!replay.ok()) std::abort();
  for (const auto& rec : replay.value().records) {
    store.apply_wal_record(rec);
  }
  return store;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink json("recovery", &argc, argv);

  int runs = 5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--runs" && i + 1 < argc) runs = std::atoi(argv[++i]);
  }

  header("Recovery: time to rebuild a crashed site vs WAL length",
         "checkpoints bound recovery by store size; raw replay grows with "
         "uptime (DESIGN.md §13)");
  std::printf("%d runs per point\n\n", runs);
  std::printf("%-12s %10s %12s %12s %12s %12s\n", "mode", "records",
              "wal(KiB)", "mean(ms)", "min(ms)", "max(ms)");

  const std::string dir = bench_dir();
  bool all_ok = true;
  for (std::size_t records : {std::size_t{1000}, std::size_t{4000},
                              std::size_t{16000}}) {
    const std::string wal_path =
        dir + "/site_" + std::to_string(records) + ".wal";
    const std::string ckpt_path =
        dir + "/site_" + std::to_string(records) + ".ckpt";
    SiteStore truth = build_history(wal_path, records);
    const double wal_kib =
        static_cast<double>(std::filesystem::file_size(wal_path)) / 1024.0;

    // Correctness gate: recovery must reproduce the store exactly.
    {
      SiteStore recovered = recover_from_wal(wal_path);
      if (recovered.size() != truth.size() ||
          recovered.next_seq() != truth.next_seq()) {
        std::fprintf(stderr, "recovery mismatch at %zu records\n", records);
        all_ok = false;
      }
    }

    WallStats replay_wall = time_wall(
        [&] {
          SiteStore recovered = recover_from_wal(wal_path);
          if (recovered.size() == 0) std::abort();
        },
        runs, /*warmup=*/1);
    std::printf("%-12s %10zu %12.1f %12.2f %12.2f %12.2f\n", "replay",
                records, wal_kib, replay_wall.mean_ms, replay_wall.min_ms,
                replay_wall.max_ms);
    BenchRecord rec;
    rec.config = "replay/records=" + std::to_string(records);
    rec.mean = replay_wall.mean_ms;
    rec.min = replay_wall.min_ms;
    rec.max = replay_wall.max_ms;
    rec.counters = {
        {"records", static_cast<double>(records)},
        {"wal_kib", wal_kib},
        {"objects", static_cast<double>(truth.size())},
    };
    json.add(std::move(rec));

    // The checkpointed path: snapshot once, then recovery = snapshot load.
    if (auto r = save_snapshot(truth, ckpt_path); !r.ok()) {
      std::fprintf(stderr, "%s\n", r.error().to_string().c_str());
      return 1;
    }
    WallStats ckpt_wall = time_wall(
        [&] {
          auto loaded = load_snapshot(ckpt_path);
          if (!loaded.ok() || loaded.value().size() != truth.size()) {
            std::abort();
          }
        },
        runs, /*warmup=*/1);
    std::printf("%-12s %10zu %12.1f %12.2f %12.2f %12.2f\n", "checkpoint",
                records, wal_kib, ckpt_wall.mean_ms, ckpt_wall.min_ms,
                ckpt_wall.max_ms);
    BenchRecord crec;
    crec.config = "checkpoint/records=" + std::to_string(records);
    crec.mean = ckpt_wall.mean_ms;
    crec.min = ckpt_wall.min_ms;
    crec.max = ckpt_wall.max_ms;
    crec.counters = {
        {"records", static_cast<double>(records)},
        {"objects", static_cast<double>(truth.size())},
    };
    json.add(std::move(crec));
  }

  return json.write() && all_ok ? 0 : 1;
}
