// Ablation A1 (paper Section 3.1, footnote 4): working-set discipline.
//
// "The choice of data structure for the working set determines the search
// order for the algorithm, for example a queue gives breadth-first search.
// Work by Sarantos Kapidakis shows that a node-based search (such as a
// breadth-first search) will give the best results in the average case."
//
// The result set is identical either way (property-tested); what changes is
// the peak working-set size and host-time behaviour. We measure both over
// the paper workload's pointer classes plus host wall time via
// google-benchmark.
#include <benchmark/benchmark.h>

#include "engine/local_engine.hpp"
#include "workload/paper_workload.hpp"

namespace {

using namespace hyperfile;

SiteStore& paper_store() {
  static SiteStore* store = [] {
    auto* s = new SiteStore(0);
    SiteStore* ptr[] = {s};
    workload::populate_paper_workload(ptr, workload::WorkloadConfig{});
    return s;
  }();
  return *store;
}

void run_discipline(benchmark::State& state, WorkSetDiscipline d,
                    const char* pointer_key) {
  SiteStore& store = paper_store();
  Query q = workload::closure_query(pointer_key, workload::kRand10pKey, 5);
  std::uint64_t peak = 0;
  for (auto _ : state) {
    ExecutionOptions opts;
    opts.discipline = d;
    QueryExecution exec(q, store, std::move(opts));
    (void)exec.seed_initial();
    exec.drain();
    peak = exec.stats().max_working_set;
    benchmark::DoNotOptimize(exec.result_ids());
  }
  state.counters["peak_workset"] = static_cast<double>(peak);
}

void BM_Bfs_Tree(benchmark::State& s) {
  run_discipline(s, WorkSetDiscipline::kFifo, workload::kTreeKey);
}
void BM_Dfs_Tree(benchmark::State& s) {
  run_discipline(s, WorkSetDiscipline::kLifo, workload::kTreeKey);
}
void BM_Bfs_Rand(benchmark::State& s) {
  run_discipline(s, WorkSetDiscipline::kFifo, workload::kRandKeys[6]);
}
void BM_Dfs_Rand(benchmark::State& s) {
  run_discipline(s, WorkSetDiscipline::kLifo, workload::kRandKeys[6]);
}
BENCHMARK(BM_Bfs_Tree);
BENCHMARK(BM_Dfs_Tree);
BENCHMARK(BM_Bfs_Rand);
BENCHMARK(BM_Dfs_Rand);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "A1: working-set discipline (queue/BFS vs stack/DFS).\n"
      "Identical results either way; peak_workset shows the memory-shape\n"
      "difference footnote 4 alludes to.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
