// Availability bench: what does WAL-shipped hot-standby replication
// (DESIGN.md §18) buy when a site dies mid-workload? Each cell deploys
// three sites over a real socket transport, streams every site's WAL to
// its ring follower, drives a steady closure-query workload, kills one
// primary with no goodbye, and keeps the workload running through
// suspicion, failover, and revival.
//
// Cells are backend × termination detector × {replicated, control}. The
// control rows (replication off) show the baseline this PR replaces:
// every post-kill query is permanently partial until the primary comes
// back. The replicated rows are the gated product: queries keep
// completing, each one either exact (served from the follower's shadow
// once the failure detector fires) or honestly flagged partial during
// the suspicion window — never wrong, never hung.
//
// Per-cell outcome classes, checked against the true answer:
//   * exact    — ids == truth, unflagged;
//   * partial  — flagged partial AND a duplicate-free subset of truth;
//   * wrong    — anything else that "succeeded": duplicates, foreign
//                ids, or an unflagged shortfall. Must stay 0 forever.
//   * failed   — client error or timeout (a hang). Must stay 0.
//
// Headline number per record is failover_ms: kill → first exact answer
// served while the primary is still dead (-1 when none was, which is
// the expected shape of the control rows). revived_ms is restart →
// first exact answer with no failover hop in its trace (routing
// reclaimed).
//
// tools/check_bench_availability.py gates the artifact in CI: zero
// wrong results in every cell, and ≥99% of queries in every replicated
// cell completing exact-or-partial.
//
// Emits BENCH_availability.json (override with --json <path>).
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dist/client.hpp"
#include "dist/site_server.hpp"
#include "net/transport.hpp"
#include "query/parser.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

constexpr SiteId kSites = 3;
constexpr SiteId kVictim = 1;
// Wall-clock budget for each phase of the workload (alive / dead /
// revived). Long enough to see hundreds of queries per phase; the
// suspicion window below is 300ms, so the dead phase dwarfs it.
constexpr auto kPhase = std::chrono::milliseconds(1500);

Query bench_query() {
  auto q = parse_query(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)");
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.error().to_string().c_str());
    std::abort();
  }
  return std::move(q).value();
}

struct Tally {
  long attempted = 0;
  long exact = 0;
  long partial = 0;
  long wrong = 0;
  long failed = 0;
  std::vector<double> latencies_ms;
};

/// Classify one client result against the sorted true answer.
void classify(const Result<QueryResult>& r, const std::vector<ObjectId>& want,
              Tally& t) {
  ++t.attempted;
  if (!r.ok()) {
    ++t.failed;
    return;
  }
  std::vector<ObjectId> got = r.value().ids;
  std::sort(got.begin(), got.end());
  const bool dup = std::adjacent_find(got.begin(), got.end()) != got.end();
  const bool subset =
      std::includes(want.begin(), want.end(), got.begin(), got.end());
  if (!dup && subset && got == want && !r.value().partial) {
    ++t.exact;
  } else if (!dup && subset && r.value().partial) {
    ++t.partial;
  } else {
    ++t.wrong;  // duplicates, foreign ids, or an unflagged shortfall
  }
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i = static_cast<std::size_t>(p * (v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

/// Three sites and a client over real localhost sockets — the bench twin
/// of tests/test_chaos.cpp's deployment, minus the fault injection.
struct Deployment {
  std::vector<std::unique_ptr<SiteServer>> servers;
  std::unique_ptr<Client> client;
  std::vector<ObjectId> want;
  std::vector<TcpPeer> peers;
  SiteServerOptions options;
  TcpBackend backend;
  bool ok = false;

  Deployment(TcpBackend backend_in, TerminationAlgorithm algo,
             const std::string& wal_dir, bool replicated)
      : backend(backend_in) {
    options.termination = algo;
    options.context_ttl = Duration(400'000);
    options.retry_backoff = Duration(100);
    options.suspect_after = Duration(300'000);
    options.wal_dir = wal_dir;
    if (replicated) {
      options.replication_interval = Duration(5'000);
      for (SiteId s = 0; s < kSites; ++s) {
        options.replica_assignment[s] = static_cast<SiteId>((s + 1) % kSites);
      }
    }

    std::vector<TcpPeer> zeros(kSites + 1, TcpPeer{"127.0.0.1", 0});
    std::vector<std::unique_ptr<SocketTransport>> nets;
    for (SiteId s = 0; s <= kSites; ++s) {
      auto net = make_socket_transport(backend, s, zeros);
      if (!net.ok()) return;  // no sockets in this environment
      nets.push_back(std::move(net).value());
    }
    for (SiteId peer = 0; peer <= kSites; ++peer) {
      peers.push_back({"127.0.0.1", nets[peer]->bound_port()});
    }
    for (auto& net : nets) {
      for (SiteId peer = 0; peer <= kSites; ++peer) {
        net->update_peer(peer, peers[peer]);
      }
    }
    for (SiteId s = 0; s < kSites; ++s) {
      servers.push_back(std::make_unique<SiteServer>(
          std::move(nets[s]), SiteStore(s), options));
    }

    // The paper's cross-site closure chain: 12 objects round-robin over
    // the sites, every third a hit. Populated pre-start so the WAL holds
    // everything the follower must mirror.
    std::vector<ObjectId> ids;
    for (std::size_t i = 0; i < 12; ++i) {
      ids.push_back(servers[i % kSites]->store().allocate());
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      Object obj(ids[i]);
      obj.add(Tuple::pointer("Reference",
                             i + 1 < ids.size() ? ids[i + 1] : ids[i]));
      if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
      servers[i % kSites]->store().put(std::move(obj));
    }
    servers[0]->store().create_set("S",
                                   std::span<const ObjectId>(ids.data(), 1));
    want = {ids[0], ids[3], ids[6], ids[9]};
    std::sort(want.begin(), want.end());

    for (auto& s : servers) s->start();
    client = std::make_unique<Client>(std::move(nets[kSites]), 0);
    ok = true;
  }

  /// Crash-stop: dead fds, no goodbye.
  void kill(SiteId site) {
    servers[site]->stop();
    servers[site].reset();
  }

  /// Rebind the site's port; the fresh server recovers from its WAL.
  Result<void> restart(SiteId site) {
    auto net = make_socket_transport(backend, site, peers);
    if (!net.ok()) return net.error();
    servers[site] = std::make_unique<SiteServer>(std::move(net).value(),
                                                 SiteStore(site), options);
    servers[site]->start();
    return {};
  }

  ~Deployment() {
    for (auto& s : servers) {
      if (s) s->stop();
    }
  }
};

const char* algo_name(TerminationAlgorithm a) {
  return a == TerminationAlgorithm::kWeightedMessages ? "weighted"
                                                      : "dijkstra_scholten";
}

bool run_cell(JsonSink& sink, TcpBackend backend, TerminationAlgorithm algo,
              bool replicated, const Query& q) {
  const std::string label = std::string(to_string(backend)) + "," +
                            algo_name(algo) + "," +
                            (replicated ? "interval=5ms" : "no_replica");
  std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() /
      ("hf_avail_" + std::to_string(static_cast<int>(backend)) + "_" +
       std::to_string(static_cast<int>(algo)) + (replicated ? "_r" : "_n"));
  std::filesystem::remove_all(wal_dir);
  std::filesystem::create_directories(wal_dir);

  const double failovers_before =
      metrics().counter("dist.failovers").value();
  bool cell_ok = true;
  Tally t;
  double failover_ms = 0;
  double revived_ms = 0;
  {
    Deployment d(backend, algo, wal_dir.string(), replicated);
    if (!d.ok) {
      std::fprintf(stderr, "%s: no localhost sockets, skipping\n",
                   label.c_str());
      std::filesystem::remove_all(wal_dir);
      return true;
    }

    auto phase = [&](const char* why, auto&& until) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto deadline = t0 + kPhase;
      double first_hit_ms = -1;
      for (;;) {
        const auto q0 = std::chrono::steady_clock::now();
        auto r = d.client->run(q, Duration(30'000'000));
        const auto q1 = std::chrono::steady_clock::now();
        classify(r, d.want, t);
        t.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(q1 - q0).count());
        if (first_hit_ms < 0 && until(r)) {
          first_hit_ms =
              std::chrono::duration<double, std::milli>(q1 - t0).count();
        }
        if (q1 >= deadline) break;
      }
      // -1 marks a phase that never reached its target state. Expected for
      // the control cells' dead window (why == nullptr): with no replica
      // there is nothing to serve an exact answer from.
      if (first_hit_ms < 0 && why != nullptr) {
        std::fprintf(stderr, "%s: %s never reached its target state\n",
                     label.c_str(), why);
      }
      return first_hit_ms;
    };
    auto exact = [&](const Result<QueryResult>& r) {
      return r.ok() && !r.value().partial && [&] {
        std::vector<ObjectId> got = r.value().ids;
        std::sort(got.begin(), got.end());
        return got == d.want;
      }();
    };

    // Phase 1 — healthy steady state (and, when replicated, wait for the
    // victim's follower to mirror it so the kill is a fair fight).
    phase("steady state", exact);
    if (replicated) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      for (;;) {
        auto probe = d.servers[(kVictim + 1) % kSites]->replica_probe(kVictim);
        if (probe.exists && probe.covers_tail) break;
        if (std::chrono::steady_clock::now() >= deadline) {
          std::fprintf(stderr, "%s: replica never synced\n", label.c_str());
          cell_ok = false;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }

    // Phase 2 — kill the victim mid-workload, keep querying through the
    // suspicion window. Replicated cells must return to exact answers
    // while the site is still dead; control cells stay partial throughout
    // and report the whole dead window as their "failover" time.
    d.kill(kVictim);
    failover_ms = phase(replicated ? "failover" : nullptr, exact);

    // Phase 3 — revive. The restarted primary recovers from its WAL and
    // must reclaim routing: exact answer, no failover hop in the trace.
    if (auto r = d.restart(kVictim); !r.ok()) {
      std::fprintf(stderr, "%s: restart failed: %s\n", label.c_str(),
                   r.error().to_string().c_str());
      cell_ok = false;
    } else {
      revived_ms = phase("revival", [&](const Result<QueryResult>& r2) {
        if (!exact(r2)) return false;
        for (const auto& s : r2.value().trace.spans) {
          if (s.failovers > 0) return false;
        }
        return true;
      });
    }
  }
  std::filesystem::remove_all(wal_dir);

  const double completed_ok = static_cast<double>(t.exact + t.partial);
  const double attempted = static_cast<double>(t.attempted);
  BenchRecord rec;
  rec.config = label;
  rec.mean = failover_ms;
  rec.min = percentile(t.latencies_ms, 0.50);
  rec.max = percentile(t.latencies_ms, 1.0);
  rec.unit = "failover_ms";
  rec.counters = {
      {"replicated", replicated ? 1.0 : 0.0},
      {"attempted", attempted},
      {"exact", static_cast<double>(t.exact)},
      {"partial", static_cast<double>(t.partial)},
      {"wrong", static_cast<double>(t.wrong)},
      {"failed", static_cast<double>(t.failed)},
      {"success_rate", attempted > 0 ? completed_ok / attempted : 0.0},
      {"failover_ms", failover_ms},
      {"revived_ms", revived_ms},
      {"p50_ms", percentile(t.latencies_ms, 0.50)},
      {"p95_ms", percentile(t.latencies_ms, 0.95)},
      {"max_ms", percentile(t.latencies_ms, 1.0)},
      {"failovers",
       metrics().counter("dist.failovers").value() - failovers_before},
  };
  sink.add(rec);
  std::printf(
      "%-36s failover=%7.1fms revived=%7.1fms  exact=%ld partial=%ld "
      "wrong=%ld failed=%ld  p50=%.2fms p95=%.2fms\n",
      label.c_str(), failover_ms, revived_ms, t.exact, t.partial, t.wrong,
      t.failed, percentile(t.latencies_ms, 0.50),
      percentile(t.latencies_ms, 0.95));

  // The bench itself refuses to bless a wrong or hung answer; the JSON
  // gate in tools/check_bench_availability.py re-checks the artifact.
  return cell_ok && t.wrong == 0 && t.failed == 0;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink sink("availability", &argc, argv);
  header("availability under a primary kill (hot-standby replication)",
         "queries keep flowing while a site is dead — exact from the "
         "follower's shadow, or honestly partial; never wrong, never hung");

  const Query q = bench_query();
  bool ok = true;
  for (TcpBackend backend : {TcpBackend::kThreaded, TcpBackend::kEpoll}) {
    for (TerminationAlgorithm algo :
         {TerminationAlgorithm::kWeightedMessages,
          TerminationAlgorithm::kDijkstraScholten}) {
      for (bool replicated : {false, true}) {
        ok = run_cell(sink, backend, algo, replicated, q) && ok;
      }
    }
  }
  if (!sink.write()) return 1;
  if (!ok) {
    std::fprintf(stderr, "bench_availability: invariant violated\n");
    return 1;
  }
  return 0;
}
