// Experiment E7 (paper Section 5): the distributed-set optimisation the
// paper proposes for low-selectivity queries.
//
// "In the case of queries which only construct a new set ... the result
// could be left as a 'distributed set'. Each server would send back the
// number of local result items, rather than pointers to the items
// themselves. ... The portion of this set at each site would be used to
// initialize the working set at that site for the new query."
//
// We measure: (a) a select-all closure that ships every result id, vs
// (b) the same query in count-only mode, then (c) a follow-up restriction
// query over the distributed set.
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

double run_one(sim::Simulation& sim, const Query& q) {
  auto r = sim.run(q);
  if (!r.ok()) {
    std::fprintf(stderr, "sim failed: %s\n", r.error().to_string().c_str());
    std::abort();
  }
  return static_cast<double>(r.value().response_time.count()) / 1e6;
}

}  // namespace

int main() {
  header("E7: distributed-set optimisation for low-selectivity queries",
         "return counts instead of ids; restrict with a follow-up query "
         "seeded from each site's local portion");

  std::printf("%-8s %-14s %-14s %-18s\n", "sites", "ship ids", "count only",
              "continuation");
  for (std::size_t sites : {3u, 9u}) {
    PaperSim a(sites), b(sites);

    Query ship =
        workload::closure_query(workload::kTreeKey, workload::kCommonKey, 1);
    const double t_ship = run_one(a.sim, ship);

    Query count = workload::closure_query(workload::kTreeKey, workload::kCommonKey,
                                          1, "D", /*count_only=*/true);
    const double t_count = run_one(b.sim, count);

    // The user saw "270 items" and narrows down without the ids ever having
    // moved: restrict the distributed set D by a selective key.
    Query narrow = QueryBuilder::from_set("D")
                       .select(Pattern::literal(workload::kSearchType),
                               Pattern::literal(workload::kRand10pKey),
                               Pattern::literal(std::int64_t{5}))
                       .into("U");
    const double t_narrow = run_one(b.sim, narrow);

    std::printf("%-8zu %8.2f s    %8.2f s    %8.2f s\n", sites, t_ship, t_count,
                t_narrow);
    std::printf("  -> count+continue (%.2f s) vs shipping (%.2f s): %s\n",
                t_count + t_narrow, t_ship,
                t_count + t_narrow < t_ship ? "optimisation wins" : "no win");
  }
  return 0;
}
