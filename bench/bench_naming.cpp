// Ablation A6 (paper Section 4): the cost of moving an object under
// birth-site naming, measured on the live threaded runtime.
//
// "The obvious alternative of including the host site as part of the
// pointer seriously increases the cost of moving an object, as all pointers
// to the object must be updated if it changes sites. We use a variant of
// the method of R* which includes the birth site and the presumed current
// site of an object in the name."
//
// Setup: N objects across 3 sites all point at one target X; X migrates.
// Measured: protocol messages for the move (should be O(1), not O(N)), and
// the per-query forwarding overhead afterwards (stale hints chase one extra
// hop per dereference until pointers are refreshed — which never *needs* to
// happen).
#include <cstdio>

#include "dist/cluster.hpp"
#include "query/parser.hpp"

using namespace hyperfile;

int main() {
  std::printf(
      "A6: live object migration cost (paper Section 4)\n"
      "paper: moving updates one birth-site record + one hint; pointers are\n"
      "never rewritten. Strawman host-in-pointer naming rewrites N pointers.\n\n");

  std::printf("%-12s %-16s %-16s %-18s\n", "N pointers", "move msgs",
              "strawman writes", "query msgs after");
  for (std::size_t n : {10u, 100u, 1000u}) {
    Cluster cluster(3);
    // Target X at site 1; N referrers spread across the sites.
    ObjectId x = cluster.store(1).allocate();
    cluster.store(1).put(Object(x, {Tuple::keyword("target")}));
    std::vector<ObjectId> referrers;
    for (std::size_t i = 0; i < n; ++i) {
      const SiteId s = static_cast<SiteId>(i % 3);
      ObjectId r = cluster.store(s).allocate();
      cluster.store(s).put(Object(r, {Tuple::pointer("Ref", x),
                                      Tuple::keyword("referrer")}));
      referrers.push_back(r);
    }
    cluster.store(0).create_set("S", referrers);
    cluster.start();

    const auto before_move = cluster.network_stats();
    auto moved = cluster.client().move(x, 2);
    if (!moved.ok()) {
      std::fprintf(stderr, "move failed: %s\n", moved.error().to_string().c_str());
      return 1;
    }
    const auto after_move = cluster.network_stats();
    const auto move_msgs = after_move.messages_sent - before_move.messages_sent;

    // Every referrer dereferences the moved target: each remote deref lands
    // on the stale site and forwards once.
    auto q = parse_query(R"(S (pointer, "Ref", ?X) ^X (keyword, "target", ?) -> T)");
    auto r = cluster.client().run(q.value());
    if (!r.ok() || r.value().ids.size() != 1) {
      std::fprintf(stderr, "post-move query wrong\n");
      return 1;
    }
    const auto after_query = cluster.network_stats();
    const auto query_msgs = after_query.messages_sent - after_move.messages_sent;
    cluster.stop();

    std::printf("%-12zu %-16llu %-16zu %-18llu\n", n,
                static_cast<unsigned long long>(move_msgs), n,
                static_cast<unsigned long long>(query_msgs));
  }
  std::printf(
      "\nshape check: move cost is constant in N (a command, the object,\n"
      "one location update, one reply) while the strawman rewrites all N\n"
      "pointers; queries keep resolving through the birth site/hints.\n");
  return 0;
}
