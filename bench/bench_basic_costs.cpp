// Experiment E1 (paper Section 5): the basic per-operation costs.
//
// "Local processing of a single object took approximately 8 milliseconds,
// plus another 20 milliseconds to add the object to the result set. The
// added time to process a remote pointer was roughly 50 milliseconds ...
// About 50 milliseconds was also required for each remote result message."
//
// Two halves:
//   1. google-benchmark microbenchmarks of the *real* engine and codec on
//      this host — the modern equivalents of those 1991 numbers (our
//      optimized C++ engine processes an object in microseconds; the paper's
//      Eiffel prototype took 8 ms, and its authors noted "an optimized
//      system would significantly decrease the times we present");
//   2. the cost-model constants used by every simulation bench, echoing the
//      paper values.
#include <benchmark/benchmark.h>

#include "engine/local_engine.hpp"
#include "query/parser.hpp"
#include "sim/cost_model.hpp"
#include "wire/message.hpp"
#include "wire/serialize.hpp"
#include "workload/paper_workload.hpp"

namespace {

using namespace hyperfile;

SiteStore& paper_store() {
  static SiteStore* store = [] {
    auto* s = new SiteStore(0);
    SiteStore* ptr[] = {s};
    workload::populate_paper_workload(ptr, workload::WorkloadConfig{});
    return s;
  }();
  return *store;
}

/// Cost of pushing one object through a selection filter (the paper's
/// "local processing of a single object").
void BM_ProcessObject(benchmark::State& state) {
  SiteStore& store = paper_store();
  Query q = QueryBuilder::from_set(workload::kRootSet)
                .select(Pattern::literal(workload::kSearchType),
                        Pattern::literal(workload::kRand10pKey),
                        Pattern::literal(std::int64_t{5}))
                .build();
  for (auto _ : state) {
    QueryExecution exec(q, store);
    (void)exec.seed_initial();
    exec.drain();
    benchmark::DoNotOptimize(exec.result_ids());
  }
}
BENCHMARK(BM_ProcessObject);

/// Full 270-object transitive closure, single site (paper: 2.7 simulated
/// seconds; here: real host time for the same algorithmic work).
void BM_Closure270(benchmark::State& state) {
  SiteStore& store = paper_store();
  Query q = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  for (auto _ : state) {
    QueryExecution exec(q, store);
    (void)exec.seed_initial();
    exec.drain();
    benchmark::DoNotOptimize(exec.result_ids());
  }
  state.SetItemsProcessed(state.iterations() * 270);
}
BENCHMARK(BM_Closure270);

/// Encoding a remote-dereference message ("constructing the message" part
/// of the paper's 50 ms remote-pointer cost).
void BM_EncodeDerefMessage(benchmark::State& state) {
  wire::DerefRequest dr;
  dr.qid = {0, 1};
  dr.query = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  dr.oid = ObjectId(1, 42);
  dr.start = 3;
  dr.iter_stack = {1, 2};
  dr.weight = {5};
  std::size_t bytes = 0;
  for (auto _ : state) {
    auto b = wire::encode_message(dr);
    bytes = b.size();
    benchmark::DoNotOptimize(b);
  }
  state.counters["msg_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_EncodeDerefMessage);

void BM_DecodeDerefMessage(benchmark::State& state) {
  wire::DerefRequest dr;
  dr.qid = {0, 1};
  dr.query = workload::closure_query(workload::kTreeKey, workload::kRand10pKey, 5);
  dr.oid = ObjectId(1, 42);
  const auto bytes = wire::encode_message(dr);
  for (auto _ : state) {
    auto m = wire::decode_message(bytes);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_DecodeDerefMessage);

/// Parse the paper's Section 3 query from text.
void BM_ParseQuery(benchmark::State& state) {
  constexpr const char* kText =
      R"(S [ (pointer, "Reference", ?X) | ^^X ]3 (keyword, "Distributed", ?) -> T)";
  for (auto _ : state) {
    auto q = parse_query(kText);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ParseQuery);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "E1: basic costs. Paper (IBM PC/RT, Eiffel prototype, 1991):\n"
      "  process one object   ~8 ms\n"
      "  add to result set    ~20 ms\n"
      "  remote pointer msg   ~50 ms\n"
      "  remote result msg    ~50 ms\n"
      "Simulation benches use exactly those constants "
      "(sim::CostModel::paper_1991()).\n"
      "Below: the same operations measured on this host with this engine.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
