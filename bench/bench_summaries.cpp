// Summary pruning bench (DESIGN.md §16): messages, bytes and client
// latency of the live in-process cluster over the paper's Section 5
// topologies, with Bloom site-summary pruning off vs on.
//
// The shape the paper's workload predicts (and the gate in
// tools/check_bench_prune.py enforces): on the *tree* topology every
// subtree is local to its site, so a peer's summary refutes most
// low-selectivity searches outright and the deref (plus its result/done
// traffic) is never sent — while the *chain* crosses sites at every hop,
// so every site's summary carries a remote Chain edge and conservative
// pruning correctly declines to prune at all. Random-pointer classes sit
// in between (remote edges everywhere -> no pruning; an honest no-win
// row, not a regression).
//
// Message counts for the pruned mode deliberately include the advert
// gossip itself — the reduction reported is net of the scheme's own
// overhead. Both modes run the identical query sequence (same seed) and
// the bench exits nonzero unless the answers are byte-identical, partial
// flags and all: pruning must never change a result.
//
// Emits BENCH_summaries.json (override with --json <path>).
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "dist/cluster.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

constexpr SiteId kSites = 3;
constexpr int kRuns = 30;

struct Selectivity {
  const char* name;
  const char* search_key;
  std::int64_t space;  // value space; expected matches = 270 / space
};

const Selectivity kSelectivities[] = {
    {"hi", workload::kRand10pKey, 10},      // ~27 matching objects
    {"mid", workload::kRand100pKey, 100},   // ~3 matching objects
    {"low", workload::kRand1000pKey, 1000}, // usually 0-1 matching objects
};

struct Topology {
  const char* name;
  const char* pointer_key;
};

const Topology kTopologies[] = {
    {"tree", workload::kTreeKey},
    {"chain", workload::kChainKey},
    {"rand50", workload::kRandKeys[3]},  // P(local) = .50
};

struct ModeOutcome {
  WallStats wall;            // per-query client latency
  double messages = 0;       // per-query wire messages (incl. adverts)
  double bytes = 0;          // per-query wire bytes (incl. adverts)
  double derefs = 0;         // per-query deref messages
  double prunes = 0;         // per-query pruned derefs
  double exchanges = 0;      // advert sends over the burst
  double false_positives = 0;
  std::vector<std::vector<ObjectId>> answers;  // sorted ids per query
};

std::vector<ObjectId> sorted_ids(std::vector<ObjectId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

void wait_summaries(Cluster& cluster) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    bool converged = true;
    for (SiteId s = 0; s < kSites; ++s) {
      if (cluster.server(s).summary_count() + 1 < kSites) converged = false;
    }
    if (converged) return;
    if (std::chrono::steady_clock::now() > deadline) {
      std::fprintf(stderr, "summaries never converged\n");
      std::abort();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

ModeOutcome run_mode(const Topology& topo, const Selectivity& sel,
                     bool pruned) {
  SiteServerOptions options;
  if (pruned) {
    options.summary_interval = Duration(100'000);
    options.summary_ttl = Duration(60'000'000);
  }
  Cluster cluster(kSites, options);
  std::vector<SiteStore*> stores;
  for (SiteId s = 0; s < kSites; ++s) stores.push_back(&cluster.store(s));
  workload::populate_paper_workload(stores, workload::WorkloadConfig{});
  cluster.start();
  if (pruned) wait_summaries(cluster);

  const NetworkStats net0 = cluster.network_stats();
  const std::uint64_t prunes0 = metrics().counter("dist.prunes").value();
  const std::uint64_t exch0 = metrics().counter("dist.summary_exchanges").value();
  const std::uint64_t fp0 =
      metrics().counter("dist.prune_false_positives").value();

  ModeOutcome out;
  out.wall.runs = kRuns;
  out.wall.min_ms = 1e300;
  Rng rng(42);  // identical value sequence in both modes
  for (int i = 0; i < kRuns; ++i) {
    Query q = workload::closure_query(topo.pointer_key, sel.search_key,
                                      rng.next_range(1, sel.space));
    const auto t0 = std::chrono::steady_clock::now();
    auto r = cluster.client().run(q, Duration(30'000'000));
    const auto t1 = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   r.error().to_string().c_str());
      std::abort();
    }
    if (r.value().partial) {
      std::fprintf(stderr, "fault-free cluster answered partial\n");
      std::abort();
    }
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.wall.mean_ms += ms;
    out.wall.min_ms = std::min(out.wall.min_ms, ms);
    out.wall.max_ms = std::max(out.wall.max_ms, ms);
    out.answers.push_back(sorted_ids(r.value().ids));
  }
  out.wall.mean_ms /= kRuns;

  const NetworkStats net1 = cluster.network_stats();
  out.messages =
      static_cast<double>(net1.messages_sent - net0.messages_sent) / kRuns;
  out.bytes = static_cast<double>(net1.bytes_sent - net0.bytes_sent) / kRuns;
  out.derefs =
      static_cast<double>(net1.deref_messages - net0.deref_messages) / kRuns;
  out.prunes = static_cast<double>(metrics().counter("dist.prunes").value() -
                                   prunes0) /
               kRuns;
  out.exchanges = static_cast<double>(
      metrics().counter("dist.summary_exchanges").value() - exch0);
  out.false_positives = static_cast<double>(
      metrics().counter("dist.prune_false_positives").value() - fp0);
  cluster.stop();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink sink("summaries", &argc, argv);
  header("Summary pruning: remote fan-out vs gossiped Bloom site summaries",
         "prune derefs a peer's content summary refutes; results must stay "
         "byte-identical, tree/low-selectivity messages must drop >= 30%");

  std::printf("%-8s %-5s %-6s %9s %12s %9s %9s %8s\n", "topo", "sel", "mode",
              "msgs/q", "bytes/q", "derefs/q", "prunes/q", "ms/q");
  bool identical = true;
  for (const Topology& topo : kTopologies) {
    for (const Selectivity& sel : kSelectivities) {
      ModeOutcome off = run_mode(topo, sel, /*pruned=*/false);
      ModeOutcome on = run_mode(topo, sel, /*pruned=*/true);
      if (off.answers != on.answers) {
        identical = false;
        std::fprintf(stderr,
                     "ANSWER MISMATCH on %s/%s: pruning changed a result\n",
                     topo.name, sel.name);
      }
      for (const auto* mode : {"off", "on"}) {
        const ModeOutcome& m = (std::string(mode) == "off") ? off : on;
        std::printf("%-8s %-5s %-6s %9.1f %12.0f %9.1f %9.1f %8.2f\n",
                    topo.name, sel.name, mode, m.messages, m.bytes, m.derefs,
                    m.prunes, m.wall.mean_ms);
        BenchRecord rec;
        rec.config = std::string(topo.name) + "/" + sel.name + "/" + mode;
        rec.mean = m.wall.mean_ms;
        rec.min = m.wall.min_ms;
        rec.max = m.wall.max_ms;
        rec.counters = {
            {"messages", m.messages},
            {"bytes", m.bytes},
            {"derefs", m.derefs},
            {"prunes", m.prunes},
            {"summary_exchanges", m.exchanges},
            {"prune_false_positives", m.false_positives},
            {"runs", static_cast<double>(kRuns)},
        };
        sink.add(std::move(rec));
      }
    }
  }
  if (!identical) {
    std::fprintf(stderr, "pruning must never change an answer; failing\n");
    return 1;
  }
  std::printf(
      "\nshape check: tree at low selectivity is the paper's pruning\n"
      "sweet spot (subtrees local, most searches refutable); the chain is\n"
      "remote at every hop, so its summaries conservatively never prune.\n");
  return sink.write() ? 0 : 1;
}
