// Chaos bench: client-visible response time and answer quality of the
// distributed runtime as the network degrades. Server endpoints are wrapped
// in FaultInjectingEndpoint (net/faulty.hpp) at increasing drop rates; the
// client link stays reliable, so the numbers isolate the query protocol's
// behaviour — bounded retries, duplicate suppression, and the context-TTL
// self-healing path that turns lost termination weight into a flagged
// partial answer instead of a hang (DESIGN.md §11).
//
// At drop=0 the latency is the protocol's native cost; at higher drop rates
// the mean is dominated by queries that had to wait out the context TTL, so
// the TTL (here 300ms, deliberately small) is visible as a latency plateau
// rather than a timeout.
//
// Emits BENCH_chaos.json (override with --json <path>).
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "dist/cluster.hpp"
#include "net/faulty.hpp"
#include "query/parser.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

namespace {

constexpr SiteId kSites = 3;
constexpr std::size_t kChain = 30;

Query bench_query() {
  auto q = parse_query(
      R"(S [ (pointer, "Reference", ?X) | ^^X ]* (keyword, "hit", ?) -> T)");
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.error().to_string().c_str());
    std::abort();
  }
  return std::move(q).value();
}

void populate(Cluster& cluster) {
  std::vector<ObjectId> ids;
  for (std::size_t i = 0; i < kChain; ++i) {
    ids.push_back(cluster.store(i % kSites).allocate());
  }
  for (std::size_t i = 0; i < kChain; ++i) {
    Object obj(ids[i]);
    obj.add(Tuple::pointer("Reference", i + 1 < kChain ? ids[i + 1] : ids[i]));
    if (i % 3 == 0) obj.add(Tuple::keyword("hit"));
    cluster.store(i % kSites).put(std::move(obj));
  }
  cluster.store(0).create_set("S", std::span<const ObjectId>(ids.data(), 1));
}

struct ChaosOutcome {
  WallStats wall;
  std::size_t full_results = 0;   // queries answering the complete set
  std::size_t partial_flagged = 0;  // queries flagged partial
  std::size_t failures = 0;       // errors/timeouts (should stay 0)
  std::size_t mean_ids = 0;
  FaultStats faults;              // summed over the site endpoints
};

ChaosOutcome run_drop_rate(double drop_p, const Query& q, int runs) {
  SiteServerOptions options;
  options.context_ttl = Duration(300'000);
  options.retry_backoff = Duration(100);

  std::vector<FaultInjectingEndpoint*> injectors(kSites, nullptr);
  Cluster cluster(
      kSites, options, /*clients=*/1,
      [&injectors, drop_p](SiteId site, std::unique_ptr<MessageEndpoint> inner)
          -> std::unique_ptr<MessageEndpoint> {
        FaultOptions o;
        o.drop_p = drop_p;
        o.seed = 7000 + site;
        o.exempt.push_back(kSites);  // client link stays reliable
        auto ep = std::make_unique<FaultInjectingEndpoint>(std::move(inner), o);
        injectors[site] = ep.get();
        return ep;
      });
  populate(cluster);
  cluster.start();

  ChaosOutcome out;
  std::size_t calls = 0;  // includes the warmup run, unlike `runs`
  std::size_t total_ids = 0;
  out.wall = time_wall(
      [&] {
        ++calls;
        auto r = cluster.client().run(q, Duration(30'000'000));
        if (!r.ok()) {
          ++out.failures;
          return;
        }
        total_ids += r.value().ids.size();
        if (r.value().partial) {
          ++out.partial_flagged;
        } else {
          ++out.full_results;
        }
      },
      runs, /*warmup=*/1);
  out.mean_ids = calls > 0 ? total_ids / calls : 0;
  cluster.stop();
  for (auto* inj : injectors) {
    if (inj == nullptr) continue;
    const FaultStats s = inj->fault_stats();
    out.faults.attempts += s.attempts;
    out.faults.forwarded += s.forwarded;
    out.faults.dropped += s.dropped;
    out.faults.duplicated += s.duplicated;
    out.faults.held += s.held;
    out.faults.released += s.released;
    out.faults.partitioned += s.partitioned;
    out.faults.delivered += s.delivered;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  JsonSink json("chaos", &argc, argv);

  int runs = 20;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--runs" && i + 1 < argc) runs = std::atoi(argv[++i]);
  }

  header("Chaos: response time and answer quality vs message drop rate",
         "partial results are better than none at all (Section 1) — and the "
         "degradation should be visible, bounded, and hang-free");
  std::printf(
      "%zu sites, %zu-object cross-site chain, context TTL 300ms, %d runs "
      "per rate\n\n",
      static_cast<std::size_t>(kSites), kChain, runs);
  std::printf("%-8s %12s %12s %12s %8s %9s %9s %9s\n", "drop", "mean(ms)",
              "min(ms)", "max(ms)", "full", "partial", "failed", "dropped");

  const Query q = bench_query();
  bool all_ok = true;
  for (double drop_p : {0.0, 0.05, 0.10, 0.20}) {
    ChaosOutcome out = run_drop_rate(drop_p, q, runs);
    std::printf("%-8.2f %12.2f %12.2f %12.2f %8zu %9zu %9zu %9llu\n", drop_p,
                out.wall.mean_ms, out.wall.min_ms, out.wall.max_ms,
                out.full_results, out.partial_flagged, out.failures,
                static_cast<unsigned long long>(out.faults.dropped));

    BenchRecord rec;
    rec.config = "drop=" + std::to_string(drop_p);
    rec.mean = out.wall.mean_ms;
    rec.min = out.wall.min_ms;
    rec.max = out.wall.max_ms;
    rec.counters = {
        {"drop_p", drop_p},
        {"full_results", static_cast<double>(out.full_results)},
        {"partial_flagged", static_cast<double>(out.partial_flagged)},
        {"failures", static_cast<double>(out.failures)},
        {"mean_ids", static_cast<double>(out.mean_ids)},
        {"frames_attempted", static_cast<double>(out.faults.attempts)},
        {"frames_forwarded", static_cast<double>(out.faults.forwarded)},
        {"frames_dropped", static_cast<double>(out.faults.dropped)},
        {"frames_delivered", static_cast<double>(out.faults.delivered)},
    };
    json.add(std::move(rec));
    // A failure here means a hang or an error reply — the one thing the
    // self-healing protocol must never produce.
    all_ok = all_ok && out.failures == 0;
  }

  return json.write() && all_ok ? 0 : 1;
}
