// Experiment E2 (paper Section 5): single-site transitive closure.
//
// "Running the query shown above (a transitive closure over 270 items, with
// approximately 27 in the result set) took 2.7 seconds when all the objects
// were at a single site, when following either tree or chain pointers."
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main() {
  header("E2: single-site transitive closure (270 objects, ~27 results)",
         "2.7 s for tree or chain pointers, all objects at one site");

  PaperSim ps(1);
  std::printf("%-10s %-12s %-10s %-10s\n", "pointers", "mean resp", "min",
              "max");
  for (const char* key : {workload::kChainKey, workload::kTreeKey}) {
    SeriesStats s = run_series(ps, key, workload::kRand10pKey, 10);
    std::printf("%-10s %8.2f s  %7.2f s  %7.2f s   (mean results: %.1f)\n",
                key, s.mean_sec, s.min_sec, s.max_sec, s.mean_results);
  }
  std::printf("\nshape check: both pointer kinds cost the same at one site\n"
              "(no messages exist); paper reports 2.7 s for either.\n");
  return 0;
}
