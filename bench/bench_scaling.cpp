// Experiment E6 (paper Section 5): data-set size scaling.
//
// "As the algorithm is linear we expect using a different number of items in
// the query would result in a linear change in the response time. We did
// construct a data set with half the number of items; this didn't quite cut
// the query time in half. This is as we would expect (since there is some
// constant overhead associated with the query, regardless of size)."
#include "bench_util.hpp"

using namespace hyperfile;
using namespace hyperfile::bench;

int main() {
  header("E6: half-size data set (135 vs 270 objects)",
         "halving the data does not quite halve the time (constant overhead)");

  std::printf("%-8s %-10s %-10s %-10s\n", "sites", "270 objs", "135 objs",
              "ratio");
  for (std::size_t sites : {1u, 3u, 9u}) {
    workload::WorkloadConfig full, half;
    half.num_objects = 135;
    PaperSim ps_full(sites, full);
    PaperSim ps_half(sites, half);
    SeriesStats sf =
        run_series(ps_full, workload::kTreeKey, workload::kRand10pKey, 10);
    SeriesStats sh =
        run_series(ps_half, workload::kTreeKey, workload::kRand10pKey, 10);
    const double ratio = sh.mean_sec / sf.mean_sec;
    std::printf("%-8zu %6.2f s  %6.2f s  %6.3f %s\n", sites, sf.mean_sec,
                sh.mean_sec, ratio, ratio > 0.5 ? "(> 0.5: fixed overhead)" : "");
  }
  return 0;
}
