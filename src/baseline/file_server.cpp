#include "baseline/file_server.hpp"

#include "engine/local_engine.hpp"

namespace hyperfile::baseline {

Result<BaselineOutcome> run_file_server_baseline(
    std::span<SiteStore* const> stores, const Query& query,
    const BaselineConfig& config) {
  if (auto v = query.validate(); !v.ok()) return v.error();

  BaselineOutcome out;

  // The "client" builds a merged local replica — that's what fetching every
  // file amounts to. Fetch costs: per-message overhead plus byte transfer.
  SiteStore replica(kNoSite - 1);
  const auto& costs = config.costs;
  Duration clock = costs.query_setup;

  for (const SiteStore* site : stores) {
    std::uint64_t site_bytes = 0;
    std::uint64_t site_objects = 0;
    site->for_each([&](const Object& obj) {
      replica.put(obj);
      site_bytes += obj.byte_size();
      ++site_objects;
    });
    out.bytes_shipped += site_bytes;
    out.objects_shipped += site_objects;
    if (config.granularity == TransferGranularity::kPerObject) {
      out.messages += site_objects;
    } else if (site_objects > 0) {
      out.messages += 1;
    }
  }
  // Request messages (one per site) + reply messages + bandwidth.
  const Duration msg_cost = costs.msg_send_cpu + costs.msg_latency + costs.msg_recv_cpu;
  clock += Duration(static_cast<std::int64_t>(stores.size()) * msg_cost.count());
  clock += Duration(static_cast<std::int64_t>(out.messages) * msg_cost.count());
  clock += Duration(static_cast<std::int64_t>(
      static_cast<double>(out.bytes_shipped) / config.bandwidth_bytes_per_sec * 1e6));

  // Named sets live with their home sites; replicate the bindings so the
  // query's initial set resolves.
  for (const SiteStore* site : stores) {
    for (const auto& name : site->set_names()) {
      if (auto id = site->find_set(name)) replica.bind_set(name, *id);
    }
  }

  // Client-side evaluation over the replica: same engine, so identical
  // results — the comparison is purely about where the work and bytes go.
  LocalEngine engine(replica);
  auto result = engine.run(query);
  if (!result.ok()) return result.error();
  out.result = std::move(result).value();

  // Client CPU: it still pushes every examined object through the filters.
  clock += Duration(static_cast<std::int64_t>(out.result.stats.processed) *
                    costs.process_object.count());
  clock += Duration(static_cast<std::int64_t>(out.result.stats.results) *
                    costs.result_insert.count());
  clock += costs.query_reply;
  out.response_time = clock;
  return out;
}

}  // namespace hyperfile::baseline
