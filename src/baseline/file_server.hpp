// Baseline comparator: the file-interface server the paper argues against
// (Sections 1 and 5).
//
// "Performing similar queries in a distributed file system would require
// searching entire files; this in effect results in sending all data to a
// central site. At best this uses a single message for each file, the
// worst-case requires a message for each object. Our messages send only the
// query (about 40 bytes ...) versus potentially huge messages required to
// send a complete file."
//
// The baseline ships every stored object's full bytes (including blob
// payloads — a file server cannot filter by content it does not understand)
// to the client, which then evaluates the query locally. Costs follow the
// same constants as the simulator, plus a bandwidth term for bulk data:
// the paper-era Ethernet moves roughly 1 MB/s of user payload.
#pragma once

#include <span>

#include "engine/query_result.hpp"
#include "sim/cost_model.hpp"
#include "store/site_store.hpp"

namespace hyperfile::baseline {

enum class TransferGranularity {
  kPerObject,  // the paper's worst case: one message per object
  kPerSite,    // the paper's best case: one bulk message per site ("file")
};

struct BaselineConfig {
  sim::CostModel costs = sim::CostModel::paper_1991();
  /// Bytes per second for bulk object data (1991 Ethernet, user payload).
  double bandwidth_bytes_per_sec = 1.0e6;
  TransferGranularity granularity = TransferGranularity::kPerSite;
};

struct BaselineOutcome {
  QueryResult result;
  Duration response_time{0};
  std::uint64_t bytes_shipped = 0;
  std::uint64_t messages = 0;
  std::uint64_t objects_shipped = 0;
};

/// Evaluate `query` the file-server way: fetch everything from every site,
/// then run the real engine client-side over the merged copy. stores[0]
/// must hold the query's named initial set (as in the HyperFile runs).
Result<BaselineOutcome> run_file_server_baseline(
    std::span<SiteStore* const> stores, const Query& query,
    const BaselineConfig& config = {});

}  // namespace hyperfile::baseline
