#include "workload/paper_workload.hpp"

#include <cassert>
#include <stdexcept>

namespace hyperfile::workload {

const char* const kRandKeys[7] = {"Rand05", "Rand20", "Rand35", "Rand50",
                                  "Rand65", "Rand80", "Rand95"};
const double kRandLocality[7] = {0.05, 0.20, 0.35, 0.50, 0.65, 0.80, 0.95};

namespace {

constexpr std::size_t kGroups = WorkloadConfig::kGroups;
constexpr std::size_t kSuperGroups = 3;

/// Abstract object graph: everything by object index.
struct AbstractGraph {
  std::size_t n = 0;
  std::vector<std::size_t> group;               // object -> group (0..8)
  std::vector<std::size_t> chain_order;         // position -> object index
  std::vector<std::int64_t> rand10, rand100, rand1000;
  std::vector<std::vector<std::size_t>> rand_targets;  // [obj][class*2 + k]
  std::vector<std::vector<std::size_t>> tree_children;  // [obj] -> children
  std::size_t root = 0;
};

std::size_t super_group(std::size_t g) { return g / (kGroups / kSuperGroups); }

AbstractGraph build_abstract(const WorkloadConfig& cfg) {
  AbstractGraph g;
  g.n = cfg.num_objects;
  if (g.n < kGroups) {
    throw std::invalid_argument("workload needs at least 9 objects");
  }
  Rng rng(cfg.seed);

  // Groups round-robin so every group has floor/ceil(n/9) members.
  g.group.resize(g.n);
  std::vector<std::vector<std::size_t>> members(kGroups);
  for (std::size_t i = 0; i < g.n; ++i) {
    g.group[i] = i % kGroups;
    members[i % kGroups].push_back(i);
  }

  // Chain: visit super-groups round-robin (0,3,6,1,4,7,2,5,8,...) so every
  // consecutive pair lies in different super-groups — remote at 3 and at 9
  // sites. Objects are consumed group-by-group in a fixed rotation.
  static constexpr std::size_t kCycle[kGroups] = {0, 3, 6, 1, 4, 7, 2, 5, 8};
  std::vector<std::size_t> cursor(kGroups, 0);
  for (std::size_t p = 0; p < g.n; ++p) {
    // Find the next group in the rotation that still has members.
    for (std::size_t attempt = 0; attempt < kGroups; ++attempt) {
      const std::size_t grp = kCycle[(p + attempt) % kGroups];
      if (cursor[grp] < members[grp].size()) {
        g.chain_order.push_back(members[grp][cursor[grp]++]);
        break;
      }
    }
  }
  assert(g.chain_order.size() == g.n);
  g.root = g.chain_order.front();

  // Search keys.
  g.rand10.resize(g.n);
  g.rand100.resize(g.n);
  g.rand1000.resize(g.n);
  for (std::size_t i = 0; i < g.n; ++i) {
    g.rand10[i] = rng.next_range(1, 10);
    g.rand100[i] = rng.next_range(1, 100);
    g.rand1000[i] = rng.next_range(1, 1000);
  }

  // Random pointers: 7 classes x 2 pointers. "Local" stays in the object's
  // own 9-group; "remote" goes to a uniformly chosen object in a different
  // super-group, so locality is the stated probability under both the
  // 3-site and the 9-site mapping.
  g.rand_targets.assign(g.n, {});
  for (std::size_t i = 0; i < g.n; ++i) {
    g.rand_targets[i].reserve(14);
    for (std::size_t cls = 0; cls < 7; ++cls) {
      for (int k = 0; k < 2; ++k) {
        std::size_t target;
        if (rng.next_bool(kRandLocality[cls])) {
          const auto& pool = members[g.group[i]];
          do {
            target = pool[rng.next_below(pool.size())];
          } while (target == i && pool.size() > 1);
        } else {
          do {
            target = rng.next_below(g.n);
          } while (super_group(g.group[target]) == super_group(g.group[i]));
        }
        g.rand_targets[i].push_back(target);
      }
    }
  }

  // Tree: within each group, a random spanning tree rooted at the group's
  // first member (parent chosen uniformly among earlier members); the
  // global root additionally points at every other group's root.
  g.tree_children.assign(g.n, {});
  for (std::size_t grp = 0; grp < kGroups; ++grp) {
    const auto& pool = members[grp];
    for (std::size_t j = 1; j < pool.size(); ++j) {
      const std::size_t parent = pool[rng.next_below(j)];
      g.tree_children[parent].push_back(pool[j]);
    }
  }
  const std::size_t global_root = members[g.group[g.root]][0];
  assert(global_root == g.root);
  for (std::size_t grp = 0; grp < kGroups; ++grp) {
    if (grp == g.group[g.root]) continue;
    g.tree_children[g.root].push_back(members[grp][0]);
  }
  return g;
}

}  // namespace

PopulatedWorkload populate_paper_workload(std::span<SiteStore* const> stores,
                                          const WorkloadConfig& cfg) {
  const std::size_t sites = stores.size();
  if (sites != 1 && sites != 3 && sites != 9) {
    throw std::invalid_argument("paper workload supports 1, 3, or 9 sites");
  }
  const AbstractGraph g = build_abstract(cfg);

  PopulatedWorkload out;
  out.site_of.resize(g.n);
  out.ids.resize(g.n);

  // Map group -> site (block mapping: 9 groups fold onto 3 sites as
  // {0,1,2} {3,4,5} {6,7,8}; onto 1 site trivially).
  auto site_of_group = [&](std::size_t grp) -> SiteId {
    return static_cast<SiteId>(grp * sites / kGroups);
  };

  // Allocate ids deterministically in index order.
  for (std::size_t i = 0; i < g.n; ++i) {
    const SiteId site = site_of_group(g.group[i]);
    out.site_of[i] = site;
    out.ids[i] = stores[site]->allocate();
  }
  out.root = out.ids[g.root];

  // Chain successor lookup.
  std::vector<std::size_t> chain_next(g.n, g.n);
  for (std::size_t p = 0; p + 1 < g.n; ++p) {
    chain_next[g.chain_order[p]] = g.chain_order[p + 1];
  }

  std::string body;
  if (cfg.blob_bytes > 0) {
    body.assign(cfg.blob_bytes, 'x');
  }

  for (std::size_t i = 0; i < g.n; ++i) {
    Object obj(out.ids[i]);
    obj.add(Tuple(kSearchType, kUniqueKey, Value::number(static_cast<std::int64_t>(i))));
    obj.add(Tuple(kSearchType, kCommonKey, Value::number(1)));
    obj.add(Tuple(kSearchType, kRand10pKey, Value::number(g.rand10[i])));
    obj.add(Tuple(kSearchType, kRand100pKey, Value::number(g.rand100[i])));
    obj.add(Tuple(kSearchType, kRand1000pKey, Value::number(g.rand1000[i])));
    // Sinks self-point: inside a closure loop the traversal selection
    // (pointer, <key>, ?X) filters, so an object with no such tuple would
    // die in the loop body and never reach the search-key filter. The
    // paper's result counts (~10% of all items in the closure) imply every
    // closure member is tested, so the chain tail and tree leaves carry a
    // self-pointer — local, and immediately mark-suppressed on deref.
    obj.add(Tuple::pointer(
        kChainKey, chain_next[i] < g.n ? out.ids[chain_next[i]] : out.ids[i]));
    for (std::size_t cls = 0; cls < 7; ++cls) {
      for (int k = 0; k < 2; ++k) {
        const std::size_t target = g.rand_targets[i][cls * 2 + k];
        obj.add(Tuple::pointer(kRandKeys[cls], out.ids[target]));
      }
    }
    if (g.tree_children[i].empty()) {
      obj.add(Tuple::pointer(kTreeKey, out.ids[i]));
    } else {
      for (std::size_t child : g.tree_children[i]) {
        obj.add(Tuple::pointer(kTreeKey, out.ids[child]));
      }
    }
    if (!body.empty()) {
      obj.add(Tuple::text("Body", body));
    }
    stores[out.site_of[i]]->put(std::move(obj));
  }

  const ObjectId root_id = out.root;
  stores[0]->create_set(kRootSet, std::span<const ObjectId>(&root_id, 1));
  return out;
}

Query closure_query(const std::string& pointer_key, const std::string& search_key,
                    std::int64_t value, const std::string& result_set,
                    bool count_only) {
  auto b = QueryBuilder::from_set(kRootSet)
               .begin_iterate()
               .select(Pattern::literal(tuple_types::kPointer),
                       Pattern::literal(pointer_key), Pattern::bind("X"))
               .deref_keep("X")
               .end_iterate()
               .select(Pattern::literal(kSearchType), Pattern::literal(search_key),
                       Pattern::literal(value));
  if (count_only) b.count_only();
  return b.into(result_set);
}

}  // namespace hyperfile::workload
