// The synthetic workload of the paper's experiments (Section 5), generated
// faithfully to its description. Each object contains:
//
//   * Five search-key tuples: one *unique* to the object, one *common* to
//     all objects, and three drawn from spaces of 10, 100 and 1000 values
//     ("Rand10p" / "Rand100p" / "Rand1000p") — varying the searched tuple
//     varies query selectivity.
//   * One *chain* pointer forming a linked list of all items; with more
//     than one machine, the successor is always on a different machine
//     ("maximum delay time; all servers are idle while each message is in
//     transit").
//   * Fourteen *random* pointers in 7 locality classes (P(local) = .05,
//     .20, .35, .50, .65, .80, .95), two pointers per class per object.
//   * *Tree* pointers forming a spanning tree whose root has one remote
//     pointer to a subtree root on each other machine, each of which roots
//     a local spanning tree ("high parallelism with low message cost").
//
// Partition invariance: the paper stresses that "the graph formed by the
// pointers was identical regardless of the number of machines". We generate
// the abstract graph once (from the seed) over 9 object *groups* and map
// groups onto 1, 3, or 9 sites; a pointer generated as "local" targets the
// same 9-group (so it is local at 3 and 9 sites alike), and one generated
// as "remote" targets a different *3-super-group* (so it is remote at 3 and
// 9 sites alike). The chain visits super-groups round-robin, making every
// hop remote in both multi-site layouts.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "query/builder.hpp"
#include "store/site_store.hpp"

namespace hyperfile::workload {

/// Pointer-class keys as stored in the tuples.
inline constexpr const char* kChainKey = "Chain";
inline constexpr const char* kTreeKey = "Tree";
/// Random classes, index 0..6 -> P(local) = .05 .20 .35 .50 .65 .80 .95.
extern const char* const kRandKeys[7];
extern const double kRandLocality[7];

/// Search-key tuple names (type "skey", numeric data).
inline constexpr const char* kSearchType = "skey";
inline constexpr const char* kUniqueKey = "Unique";
inline constexpr const char* kCommonKey = "Common";
inline constexpr const char* kRand10pKey = "Rand10p";
inline constexpr const char* kRand100pKey = "Rand100p";
inline constexpr const char* kRand1000pKey = "Rand1000p";

/// Name of the starting set created at site 0.
inline constexpr const char* kRootSet = "Root";

struct WorkloadConfig {
  /// "There were 270 objects involved in the queries for which we report
  /// results." The scaling experiment uses 135.
  std::size_t num_objects = 270;
  std::uint64_t seed = 1991;
  /// Optional opaque payload per object (bytes); used by the baseline
  /// comparator to model document bodies a file server would have to ship.
  std::size_t blob_bytes = 0;

  /// Number of abstract groups (the finest machine layout). 9 in the paper.
  static constexpr std::size_t kGroups = 9;
};

struct PopulatedWorkload {
  std::vector<ObjectId> ids;    // by abstract object index
  std::vector<SiteId> site_of;  // by abstract object index
  ObjectId root;                // chain head == tree root, in the Root set
};

/// Populate `stores` (size 1, 3, or 9) with the workload. The abstract
/// graph depends only on `config`, never on the deployment size.
/// The "Root" set is created at stores[0].
PopulatedWorkload populate_paper_workload(std::span<SiteStore* const> stores,
                                          const WorkloadConfig& config);

/// The paper's test query: traverse the transitive closure of `pointer_key`
/// pointers from the Root set, selecting objects whose `search_key` tuple
/// holds `value`; bind the result to `result_set`.
///
///   Root [ (pointer, <pointer_key>, ?X) | ^^X ]* (skey, <search_key>, <value>) -> T
Query closure_query(const std::string& pointer_key, const std::string& search_key,
                    std::int64_t value, const std::string& result_set = "T",
                    bool count_only = false);

}  // namespace hyperfile::workload
