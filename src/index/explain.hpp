// Query explanation: a human-readable account of what a query will do —
// structure, rewriter effect, traversal shape, acceleration eligibility,
// and warnings about the language's sharp edges (drop-source closures,
// sink objects dying inside loop bodies). Surfaced by hfsh's `explain`.
#pragma once

#include <string>
#include <vector>

#include "index/accelerate.hpp"
#include "query/rewrite.hpp"

namespace hyperfile::index {

struct QueryExplanation {
  std::string original;
  std::string rewritten;
  RewriteStats rewrite;

  std::uint32_t filters = 0;
  std::uint32_t selections = 0;
  std::uint32_t dereferences = 0;
  std::uint32_t iterators = 0;
  std::uint32_t max_nesting = 0;
  bool transitive_closure = false;  // any unbounded iterator
  bool count_only = false;
  std::uint32_t retrieve_slots = 0;

  /// Nonempty if the (rewritten) query matches the canonical reachable-
  /// index shape (index/accelerate.hpp): "type/key" of the traversal.
  std::string accelerable_via;

  std::vector<std::string> notes;

  std::string to_string() const;
};

QueryExplanation explain_query(const Query& query);

}  // namespace hyperfile::index
