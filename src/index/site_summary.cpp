#include "index/site_summary.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_set>
#include <variant>

#include "common/hash.hpp"

namespace hyperfile::index {
namespace {

/// Protocol constant: every site must hash identically or probes against a
/// peer's filter would be meaningless.
constexpr std::uint64_t kBloomSeed = 0x48595046'32303236ULL;  // "HYPF2026"

constexpr std::size_t kBitsPerEntry = 10;
constexpr std::uint32_t kDefaultHashes = 7;  // round(ln2 * 10)
constexpr std::int64_t kMaxRangeProbe = 16;

/// A name field (tuple type / key) the pattern pins to one exact string:
/// a string literal, or an "^lit$" regex fast path. Non-string literals in
/// a name field can match no tuple at all — reported via `impossible`.
std::optional<std::string> exact_name(const Pattern& p, bool* impossible) {
  switch (p.kind()) {
    case PatternKind::kLiteral:
      if (!p.literal_value().is_string()) {
        *impossible = true;
        return std::nullopt;
      }
      return p.literal_value().as_string();
    case PatternKind::kRegex:
      if (p.fast_path() == RegexFastPath::kExact) return p.fast_text();
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::string id_probe(const ObjectId& id) {
  return "I|" + std::to_string(id.birth_site) + ":" + std::to_string(id.seq);
}

std::string value_canon(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kNull:
      return "0";
    case ValueKind::kString:
      return "S:" + v.as_string();
    case ValueKind::kNumber:
      return "N:" + std::to_string(v.as_number());
    case ValueKind::kPointer:
      return "O:" + std::to_string(v.as_pointer().birth_site) + ":" +
             std::to_string(v.as_pointer().seq);
    case ValueKind::kBlob:
      return "B";  // blobs are opaque; never used to refute
  }
  return "B";
}

BloomFilter BloomFilter::with_capacity(std::size_t expected_entries) {
  BloomFilter f;
  const std::size_t bits = std::max<std::size_t>(
      256, expected_entries * kBitsPerEntry);
  f.bits_.assign((bits + 7) / 8, 0);
  f.hashes_ = kDefaultHashes;
  return f;
}

BloomFilter BloomFilter::from_parts(std::vector<std::uint8_t> bits,
                                    std::uint32_t hashes,
                                    std::uint64_t entries) {
  BloomFilter f;
  f.bits_ = std::move(bits);
  f.hashes_ = hashes;
  f.entries_ = entries;
  return f;
}

void BloomFilter::insert(std::string_view s) {
  if (bits_.empty()) return;
  const std::uint64_t m = bit_count();
  KHashFamily h(kBloomSeed, reinterpret_cast<const std::uint8_t*>(s.data()),
                s.size());
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t b = h.index(i, m);
    bits_[b / 8] |= static_cast<std::uint8_t>(1u << (b % 8));
  }
  ++entries_;
}

bool BloomFilter::maybe_contains(std::string_view s) const {
  if (bits_.empty() || hashes_ == 0) return false;  // empty site: nothing
  const std::uint64_t m = bit_count();
  KHashFamily h(kBloomSeed, reinterpret_cast<const std::uint8_t*>(s.data()),
                s.size());
  for (std::uint32_t i = 0; i < hashes_; ++i) {
    const std::uint64_t b = h.index(i, m);
    if ((bits_[b / 8] & (1u << (b % 8))) == 0) return false;
  }
  return true;
}

double BloomFilter::analytic_fp_rate() const {
  if (bits_.empty() || hashes_ == 0) return 0.0;
  const double m = static_cast<double>(bit_count());
  const double k = static_cast<double>(hashes_);
  const double n = static_cast<double>(entries_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

SiteSummary SiteSummary::build(const SiteStore& store) {
  std::unordered_set<std::string> probes;
  store.for_each([&](const Object& obj) {
    probes.insert(id_probe(obj.id()));
    for (const Tuple& t : obj.tuples()) {
      probes.insert("T|" + t.type);
      const std::string tk = t.type + "|" + t.key;
      probes.insert("K|" + tk);
      if (!t.data.is_blob()) {
        probes.insert("V|" + tk + "|" + value_canon(t.data));
      }
      if (t.data.is_string()) {
        const std::string& s = t.data.as_string();
        if (s.size() >= 4) probes.insert("P4|" + tk + "|" + s.substr(0, 4));
        if (s.size() >= 8) probes.insert("P8|" + tk + "|" + s.substr(0, 8));
      }
      if (t.data.is_pointer() && !store.contains(t.data.as_pointer())) {
        probes.insert("R|" + tk);
        probes.insert("R|*");
      }
    }
  });

  SiteSummary s;
  s.origin = store.site();
  s.version = store.version();
  s.filter = BloomFilter::with_capacity(probes.size());
  for (const std::string& p : probes) s.filter.insert(p);
  return s;
}

/// Can this selection match *no* tuple at the summarized site? Only
/// binding-independent evidence counts; every "can't tell" answers false.
bool SiteSummary::refutes(const SelectFilter& sf) const {
  bool impossible = false;
  const auto type = exact_name(sf.type_pattern, &impossible);
  if (impossible) return true;  // non-string literal in the type field
  const auto key = exact_name(sf.key_pattern, &impossible);
  if (impossible) return true;
  if (!type.has_value()) return false;
  if (!key.has_value()) return !filter.maybe_contains("T|" + *type);

  const std::string tk = *type + "|" + *key;
  // No (type, key) tuple at all refutes every data pattern.
  if (!filter.maybe_contains("K|" + tk)) return true;

  const Pattern& d = sf.data_pattern;
  switch (d.kind()) {
    case PatternKind::kLiteral: {
      const Value& v = d.literal_value();
      if (v.is_blob()) return false;  // blobs have no canonical probe
      return !filter.maybe_contains("V|" + tk + "|" + value_canon(v));
    }
    case PatternKind::kRegex:
      switch (d.fast_path()) {
        case RegexFastPath::kExact:
          return !filter.maybe_contains("V|" + tk + "|S:" + d.fast_text());
        case RegexFastPath::kPrefix: {
          const std::string& p = d.fast_text();
          if (p.size() >= 8) {
            return !filter.maybe_contains("P8|" + tk + "|" + p.substr(0, 8));
          }
          if (p.size() >= 4) {
            return !filter.maybe_contains("P4|" + tk + "|" + p.substr(0, 4));
          }
          return false;
        }
        default:
          return false;  // contains / suffix / general regex
      }
    case PatternKind::kRange: {
      if (d.range_hi() < d.range_lo()) return true;  // empty range
      const std::int64_t span = d.range_hi() - d.range_lo();
      if (span >= kMaxRangeProbe) return false;
      for (std::int64_t x = d.range_lo(); x <= d.range_hi(); ++x) {
        if (filter.maybe_contains("V|" + tk + "|N:" + std::to_string(x))) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;  // any / bind / use / retrieve: K probe was the limit
  }
}

/// Is every dereference reachable in [low..n] provably unable to leave the
/// summarized site? A deref fans out only along pointers bound by selects
/// *inside the reachable window* (matching variables are not shipped with
/// remote work items, so bindings made before `low` do not exist at the
/// peer). Each binding select with exact type+key probes the precise
/// remote-edge class "R|t|k"; anything fuzzier falls back to "R|*".
bool SiteSummary::fanout_confined(const Query& q, std::uint32_t low,
                                  std::uint32_t n) const {
  for (std::uint32_t i = low; i <= n; ++i) {
    const auto* deref = std::get_if<DerefFilter>(&q.filter(i));
    if (deref == nullptr) continue;
    for (std::uint32_t j = low; j <= n; ++j) {
      const auto* sel = std::get_if<SelectFilter>(&q.filter(j));
      if (sel == nullptr) continue;
      const bool binds_var =
          (sel->type_pattern.binds() && sel->type_pattern.var() == deref->var) ||
          (sel->key_pattern.binds() && sel->key_pattern.var() == deref->var) ||
          (sel->data_pattern.binds() && sel->data_pattern.var() == deref->var);
      if (!binds_var) continue;
      bool impossible = false;
      const auto type = exact_name(sel->type_pattern, &impossible);
      const auto key = exact_name(sel->key_pattern, &impossible);
      if (impossible) continue;  // the binding select can never match
      const bool precise =
          type.has_value() && key.has_value() && sel->data_pattern.binds();
      const std::string probe =
          precise ? "R|" + *type + "|" + *key : std::string("R|*");
      if (filter.maybe_contains(probe)) return false;
    }
  }
  return true;
}

bool SiteSummary::may_contribute(const Query& q, std::uint32_t start,
                                 const ObjectId& target) const {
  if (!q.retrieve_slots().empty()) return true;
  const std::uint32_t n = q.size();
  if (start < 1 || start > n) return true;  // item is already a result
  // An id the site never stored still owes the sender a miss-redirect.
  if (!filter.maybe_contains(id_probe(target))) return true;

  // Reachable window: positions the item can visit. Iterate jumps move
  // backward only, so the window is an interval [low..n]; fixpoint over
  // bodies of iterates inside it.
  std::uint32_t low = start;
  for (bool changed = true; changed;) {
    changed = false;
    for (std::uint32_t i = low; i <= n; ++i) {
      const auto* it = std::get_if<IterateFilter>(&q.filter(i));
      if (it != nullptr && it->body_start < low) {
        low = it->body_start;
        changed = true;
      }
    }
  }

  std::uint32_t first_deref = n + 1;
  std::uint32_t last_deref = 0;
  for (std::uint32_t i = low; i <= n; ++i) {
    if (std::holds_alternative<DerefFilter>(q.filter(i))) {
      first_deref = std::min(first_deref, i);
      last_deref = i;
    }
  }

  // (a) Selections the item must pass before it can reach any dereference
  // (or, with no dereference at all, before it can be retained): a single
  // refuted one kills the item before it produces anything.
  const std::uint32_t a_end = std::min(n, first_deref - 1);
  for (std::uint32_t i = start; i <= a_end; ++i) {
    const auto* sf = std::get_if<SelectFilter>(&q.filter(i));
    if (sf != nullptr && refutes(*sf)) return false;
  }
  if (first_deref > n) return true;  // no derefs and nothing refuted

  // (b) Descendants spawned by local dereferences enter at most at
  // last_deref+1, so every retained object passes [L..n]. If one of those
  // selections is refuted and no dereference can leave the site, the whole
  // computation dies there.
  if (!fanout_confined(q, low, n)) return true;
  const std::uint32_t tail = std::max(start, last_deref + 1);
  for (std::uint32_t i = tail; i <= n; ++i) {
    const auto* sf = std::get_if<SelectFilter>(&q.filter(i));
    if (sf != nullptr && refutes(*sf)) return false;
  }
  return true;
}

}  // namespace hyperfile::index
