#include "index/reachability_index.hpp"

namespace hyperfile::index {

ReachabilityIndex::ReachabilityIndex(const SiteStore& store,
                                     std::string pointer_key)
    : pointer_key_(std::move(pointer_key)) {
  build(store);
}

ReachabilityIndex::ReachabilityIndex(const SiteStore& store,
                                     std::string tuple_type,
                                     std::string pointer_key)
    : tuple_type_(std::move(tuple_type)), pointer_key_(std::move(pointer_key)) {
  build(store);
}

void ReachabilityIndex::build(const SiteStore& store) {
  store.for_each([this](const Object& obj) {
    dense_[obj.id()] = ids_.size();
    ids_.push_back(obj.id());
  });
  const std::size_t n = ids_.size();
  const std::size_t words = word_count();
  rows_.assign(n * words, 0);

  // Direct edges.
  std::vector<std::vector<std::size_t>> out_edges(n);
  store.for_each([&](const Object& obj) {
    const std::size_t from = dense_.at(obj.id());
    for (const Tuple& t : obj.tuples()) {
      if (!t.data.is_pointer()) continue;
      if (!tuple_type_.empty() && t.type != tuple_type_) continue;
      if (!pointer_key_.empty() && t.key != pointer_key_) continue;
      auto it = dense_.find(t.data.as_pointer());
      if (it != dense_.end()) out_edges[from].push_back(it->second);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j : out_edges[i]) {
      rows_[i * words + j / 64] |= std::uint64_t{1} << (j % 64);
    }
  }

  // Iterate to a fixed point: row[i] |= row[j] for every edge i -> j.
  // O(n * E / 64) per pass; passes bounded by the longest shortest path.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j : out_edges[i]) {
        for (std::size_t w = 0; w < words; ++w) {
          const std::uint64_t merged = rows_[i * words + w] | rows_[j * words + w];
          if (merged != rows_[i * words + w]) {
            rows_[i * words + w] = merged;
            changed = true;
          }
        }
      }
    }
  }
}

std::vector<ObjectId> ReachabilityIndex::reachable(const ObjectId& from) const {
  std::vector<ObjectId> out;
  auto it = dense_.find(from);
  if (it == dense_.end()) return out;
  const std::size_t row = it->second;
  for (std::size_t j = 0; j < ids_.size(); ++j) {
    if (test(row, j)) out.push_back(ids_[j]);
  }
  return out;
}

bool ReachabilityIndex::reaches(const ObjectId& from, const ObjectId& to) const {
  auto fi = dense_.find(from);
  auto ti = dense_.find(to);
  if (fi == dense_.end() || ti == dense_.end()) return false;
  return test(fi->second, ti->second);
}

}  // namespace hyperfile::index
