#include "index/accelerate.hpp"

#include <unordered_set>

namespace hyperfile::index {
namespace {

bool is_pure_basic(const Pattern& p) {
  switch (p.kind()) {
    case PatternKind::kAny:
    case PatternKind::kLiteral:
    case PatternKind::kRegex:
    case PatternKind::kRange:
      return true;
    case PatternKind::kBind:
    case PatternKind::kUse:
    case PatternKind::kRetrieve:
      return false;
  }
  return false;
}

bool literal_string(const Pattern& p, std::string* out) {
  if (p.kind() != PatternKind::kLiteral || !p.literal_value().is_string()) {
    return false;
  }
  *out = p.literal_value().as_string();
  return true;
}

/// Does the object satisfy a pure selection filter?
bool passes_select(const Object& obj, const SelectFilter& s) {
  for (const Tuple& t : obj.tuples()) {
    if (!s.type_pattern.matches_basic(t.type)) continue;
    if (!s.key_pattern.matches_basic(t.key)) continue;
    if (!s.data_pattern.matches_basic(t.data)) continue;
    return true;
  }
  return false;
}

/// Does the object own at least one traversal tuple (the loop-body
/// selection's pass condition — data is a bind, so any value qualifies)?
bool has_traversal_tuple(const Object& obj, const ClosureShape& shape) {
  for (const Tuple& t : obj.tuples()) {
    if (t.type == shape.tuple_type && t.key == shape.pointer_key) return true;
  }
  return false;
}

}  // namespace

std::optional<ClosureShape> match_closure_shape(const Query& q) {
  if (q.size() < 3) return std::nullopt;

  const auto* body_select = std::get_if<SelectFilter>(&q.filter(1));
  const auto* deref = std::get_if<DerefFilter>(&q.filter(2));
  const auto* iter = std::get_if<IterateFilter>(&q.filter(3));
  if (body_select == nullptr || deref == nullptr || iter == nullptr) {
    return std::nullopt;
  }
  if (!iter->unbounded() || iter->body_start != 1) return std::nullopt;
  if (!deref->keep_source) return std::nullopt;

  ClosureShape shape;
  if (!literal_string(body_select->type_pattern, &shape.tuple_type)) {
    return std::nullopt;
  }
  if (!literal_string(body_select->key_pattern, &shape.pointer_key)) {
    return std::nullopt;
  }
  if (!body_select->data_pattern.binds() ||
      body_select->data_pattern.var() != deref->var) {
    return std::nullopt;
  }

  for (std::uint32_t i = 4; i <= q.size(); ++i) {
    const auto* s = std::get_if<SelectFilter>(&q.filter(i));
    if (s == nullptr) return std::nullopt;  // further loops/derefs: bail
    if (!is_pure_basic(s->type_pattern) || !is_pure_basic(s->key_pattern) ||
        !is_pure_basic(s->data_pattern)) {
      return std::nullopt;
    }
    shape.predicate_filters.push_back(i);
  }
  return shape;
}

std::optional<std::vector<ObjectId>> accelerate_closure(
    const SiteStore& store, const ReachabilityIndex& reach, const Query& q) {
  auto shape = match_closure_shape(q);
  if (!shape.has_value()) return std::nullopt;
  // The index must be edge-precise for this traversal: same key and same
  // tuple type (a key-only index would traverse same-key pointer tuples of
  // other types, which the engine's type match would reject).
  if (reach.pointer_key() != shape->pointer_key) return std::nullopt;
  if (reach.tuple_type() != shape->tuple_type) return std::nullopt;

  // Initial set.
  std::vector<ObjectId> seeds = q.initial_ids();
  if (!q.initial_set_name().empty()) {
    auto members = store.set_members(q.initial_set_name());
    if (!members.ok()) return std::nullopt;
    const auto& m = members.value();
    seeds.insert(seeds.end(), m.begin(), m.end());
  }

  // Candidates: the seeds plus everything reachable from them.
  std::unordered_set<ObjectId> seen;
  std::vector<ObjectId> candidates;
  auto add = [&](const ObjectId& id) {
    if (seen.insert(id).second) candidates.push_back(id);
  };
  for (const ObjectId& seed : seeds) {
    add(seed);
    for (const ObjectId& id : reach.reachable(seed)) add(id);
  }

  std::vector<ObjectId> out;
  for (const ObjectId& id : candidates) {
    const Object* obj = store.get(id);
    if (obj == nullptr) continue;  // dangling pointer: engine drops it too
    // Loop-body pass condition: objects without a traversal tuple die
    // inside the loop, never reaching the predicates.
    if (!has_traversal_tuple(*obj, *shape)) continue;
    bool ok = true;
    for (std::uint32_t i : shape->predicate_filters) {
      if (!passes_select(*obj, std::get<SelectFilter>(q.filter(i)))) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(id);
  }
  return out;
}

const ReachabilityIndex& IndexCache::reachability(
    const SiteStore& store, const std::string& tuple_type,
    const std::string& pointer_key) {
  const std::string cache_key = tuple_type + "|" + pointer_key;
  ReachEntry& e = reach_[cache_key];
  if (e.idx == nullptr || e.version != store.version()) {
    e.idx = std::make_unique<ReachabilityIndex>(store, tuple_type, pointer_key);
    e.version = store.version();
    ++builds_;
  }
  return *e.idx;
}

const AttributeIndex& IndexCache::attribute(const SiteStore& store,
                                            const std::string& type,
                                            const std::string& key) {
  const std::string cache_key = type + "|" + key;
  AttrEntry& e = attr_[cache_key];
  if (e.idx == nullptr || e.version != store.version()) {
    e.idx = std::make_unique<AttributeIndex>(store, type, key);
    e.version = store.version();
    ++builds_;
  }
  return *e.idx;
}

void IndexCache::clear() {
  reach_.clear();
  attr_.clear();
}

std::optional<std::vector<ObjectId>> accelerate_closure(const SiteStore& store,
                                                        IndexCache& cache,
                                                        const Query& q) {
  auto shape = match_closure_shape(q);
  if (!shape.has_value()) return std::nullopt;
  const ReachabilityIndex& reach =
      cache.reachability(store, shape->tuple_type, shape->pointer_key);
  return accelerate_closure(store, reach, q);
}

}  // namespace hyperfile::index
