#include "index/attribute_index.hpp"

#include <algorithm>

#include "model/tuple.hpp"

namespace hyperfile::index {

AttributeIndex::AttributeIndex(const SiteStore& store, std::string type,
                               std::string key)
    : type_(std::move(type)), key_(std::move(key)) {
  store.for_each([this](const Object& obj) { add_object(obj); });
}

void AttributeIndex::add_object(const Object& obj) {
  for (const Tuple& t : obj.tuples()) {
    if (t.type != type_ || t.key != key_) continue;
    auto& ids = by_value_[t.data];
    if (std::find(ids.begin(), ids.end(), obj.id()) == ids.end()) {
      ids.push_back(obj.id());
      ++entries_;
    }
  }
}

void AttributeIndex::remove_object(const Object& obj) {
  for (const Tuple& t : obj.tuples()) {
    if (t.type != type_ || t.key != key_) continue;
    auto it = by_value_.find(t.data);
    if (it == by_value_.end()) continue;
    auto& ids = it->second;
    auto pos = std::find(ids.begin(), ids.end(), obj.id());
    if (pos != ids.end()) {
      ids.erase(pos);
      --entries_;
      if (ids.empty()) by_value_.erase(it);
    }
  }
}

std::vector<ObjectId> AttributeIndex::lookup(const Value& v) const {
  auto it = by_value_.find(v);
  return it == by_value_.end() ? std::vector<ObjectId>{} : it->second;
}

std::vector<ObjectId> AttributeIndex::lookup_range(std::int64_t lo,
                                                   std::int64_t hi) const {
  std::vector<ObjectId> out;
  auto it = by_value_.lower_bound(Value::number(lo));
  for (; it != by_value_.end(); ++it) {
    if (!it->first.is_number() || it->first.as_number() > hi) break;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

KeywordIndex::KeywordIndex(const SiteStore& store) {
  store.for_each([this](const Object& obj) { add_object(obj); });
}

void KeywordIndex::add_object(const Object& obj) {
  for (const Tuple& t : obj.tuples()) {
    if (t.type != tuple_types::kKeyword) continue;
    auto& ids = by_word_[t.key];
    if (std::find(ids.begin(), ids.end(), obj.id()) == ids.end()) {
      ids.push_back(obj.id());
    }
  }
}

std::vector<ObjectId> KeywordIndex::lookup(const std::string& word) const {
  auto it = by_word_.find(word);
  return it == by_word_.end() ? std::vector<ObjectId>{} : it->second;
}

}  // namespace hyperfile::index
