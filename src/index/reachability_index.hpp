// Reachability index (paper Section 2 / reference [4]): precomputed
// transitive closure over one pointer category, answering queries like
// "find all documents referenced directly or indirectly by this document
// that in addition have a given keyword" without traversing at query time.
//
// Representation: objects are numbered densely; each object's reachable set
// is a bitset row. Building is a DFS per object with memoization on the
// (acyclic condensation would be fancier; stores here are small enough that
// iterative closure is fine and simpler to verify).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "store/site_store.hpp"

namespace hyperfile::index {

class ReachabilityIndex {
 public:
  /// Closure over pointers with the given key (empty key = all pointers).
  ReachabilityIndex(const SiteStore& store, std::string pointer_key);

  /// Closure over pointer-valued tuples matching both type and key (empty
  /// = wildcard). The engine's traversal selection matches the tuple *type*
  /// too, so query acceleration needs this precision.
  ReachabilityIndex(const SiteStore& store, std::string tuple_type,
                    std::string pointer_key);

  /// All objects reachable from `from` (excluding `from` itself unless it
  /// lies on a cycle back to itself). Unknown ids yield an empty set.
  std::vector<ObjectId> reachable(const ObjectId& from) const;

  /// Is `to` reachable from `from`?
  bool reaches(const ObjectId& from, const ObjectId& to) const;

  std::size_t size() const { return ids_.size(); }
  const std::string& pointer_key() const { return pointer_key_; }
  const std::string& tuple_type() const { return tuple_type_; }

 private:
  std::size_t word_count() const { return (ids_.size() + 63) / 64; }
  bool test(std::size_t row, std::size_t col) const {
    return (rows_[row * word_count() + col / 64] >> (col % 64)) & 1;
  }

  void build(const SiteStore& store);

  std::string tuple_type_;  // empty = any type
  std::string pointer_key_;
  std::vector<ObjectId> ids_;                       // dense index -> id
  std::unordered_map<ObjectId, std::size_t> dense_; // id -> dense index
  std::vector<std::uint64_t> rows_;                 // n rows x word_count
};

}  // namespace hyperfile::index
