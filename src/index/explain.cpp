#include "index/explain.hpp"

#include <sstream>

namespace hyperfile::index {

QueryExplanation explain_query(const Query& query) {
  QueryExplanation out;
  out.original = query.to_string();
  Query rewritten = rewrite_query(query, &out.rewrite);
  out.rewritten = rewritten.to_string();

  out.filters = rewritten.size();
  out.count_only = rewritten.count_only();
  out.retrieve_slots =
      static_cast<std::uint32_t>(rewritten.retrieve_slots().size());

  bool unbounded_drop_source_loop = false;
  for (std::uint32_t i = 1; i <= rewritten.size(); ++i) {
    const Filter& f = rewritten.filter(i);
    out.max_nesting = std::max(out.max_nesting, rewritten.iterator_depth(i));
    if (std::holds_alternative<SelectFilter>(f)) {
      ++out.selections;
    } else if (const auto* d = std::get_if<DerefFilter>(&f)) {
      ++out.dereferences;
      if (!d->keep_source) {
        // Inside an unbounded loop, drop-source deref means nothing
        // survives on acyclic graphs (every survivor must exit by depth).
        for (std::uint32_t j = i + 1; j <= rewritten.size(); ++j) {
          const auto* it = std::get_if<IterateFilter>(&rewritten.filter(j));
          if (it != nullptr && it->unbounded() && it->body_start <= i) {
            unbounded_drop_source_loop = true;
          }
        }
      }
    } else {
      ++out.iterators;
      if (std::get<IterateFilter>(f).unbounded()) out.transitive_closure = true;
    }
  }

  if (auto shape = match_closure_shape(rewritten)) {
    out.accelerable_via = shape->tuple_type + "/" + shape->pointer_key;
  }

  if (out.rewrite.total() > 0) {
    out.notes.push_back(std::to_string(out.rewrite.total()) +
                        " simplification(s) applied by the rewriter");
  }
  if (out.transitive_closure) {
    out.notes.push_back(
        "transitive closure: objects lacking the traversed pointer tuple die "
        "inside the loop body and are not tested by later filters");
  }
  if (unbounded_drop_source_loop) {
    out.notes.push_back(
        "unbounded loop with drop-source dereference (^): on acyclic graphs "
        "this keeps nothing — did you mean ^^ ?");
  }
  if (!out.accelerable_via.empty()) {
    out.notes.push_back("answerable from a ReachabilityIndex(" +
                        out.accelerable_via + ") without traversal");
  }
  if (out.count_only) {
    out.notes.push_back(
        "count-only: sites retain their result portions (distributed set)");
  }
  return out;
}

std::string QueryExplanation::to_string() const {
  std::ostringstream os;
  os << "query:     " << original << "\n";
  if (rewritten != original) {
    os << "rewritten: " << rewritten << "\n";
  }
  os << "shape:     " << filters << " filters (" << selections
     << " selections, " << dereferences << " dereferences, " << iterators
     << " iterators), nesting depth " << max_nesting;
  if (retrieve_slots > 0) os << ", " << retrieve_slots << " retrieval slot(s)";
  os << "\n";
  for (const auto& note : notes) {
    os << "note:      " << note << "\n";
  }
  return os.str();
}

}  // namespace hyperfile::index
