// Distributed site summaries (ROADMAP "prune remote fan-out"; Bloofi and
// ViP2P in PAPERS.md ground the idea): each site condenses *what it stores*
// into a Bloom filter that peers cache and consult before forwarding a
// query along a remote pointer. A summary can prove a site irrelevant to a
// query — it can never prove it relevant — so pruning on a summary is
// always conservative: a false positive only costs the message we would
// have sent anyway, and a missing/expired/version-regressed summary never
// prunes (DESIGN.md §16).
//
// The filter holds namespaced probe strings derived from every stored
// tuple, plus structural facts the pruning proof needs:
//   "I|b:s"        an object with id (birth b, seq s) is stored here;
//   "T|t"          some tuple of type t exists;
//   "K|t|k"        some (t, k) tuple exists;
//   "V|t|k|c"      some (t, k) tuple carries data with canonical form c;
//   "P4|t|k|p"     some (t, k) string datum starts with the 4 bytes p
//   "P8|t|k|p"     (resp. 8) — serves kPrefix/kExact regex fast paths;
//   "R|t|k", "R|*" some (t, k) pointer tuple targets an object NOT stored
//                  here (a remote edge: dereferencing it leaves the site).
//
// may_contribute() is the pruning proof. Shipping a work item to a peer can
// contribute to a query's answer in exactly three ways: the item survives
// the remaining filters into the result, a dereference it passes fans work
// out to further sites, or a retrieval pattern emits values. The proof
// shows none is possible from the peer's summarized content alone; see the
// member comment for the exact argument.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "model/object_id.hpp"
#include "query/query.hpp"
#include "store/site_store.hpp"

namespace hyperfile::index {

/// Plain Bloom filter over strings with a seeded k-hash family
/// (common/hash.hpp, Kirsch–Mitzenmacher double hashing). Never reports a
/// false negative; the false-positive rate follows the analytic
/// (1 - e^{-kn/m})^k bound (test_summary holds the measured rate to 2× of
/// it).
class BloomFilter {
 public:
  BloomFilter() = default;

  /// Sized for `expected_entries` at ~10 bits/entry (fp ≈ 0.8% at k=7).
  static BloomFilter with_capacity(std::size_t expected_entries);

  /// Reassemble from wire parts (SummaryRecord).
  static BloomFilter from_parts(std::vector<std::uint8_t> bits,
                                std::uint32_t hashes, std::uint64_t entries);

  void insert(std::string_view s);

  /// false = provably never inserted; true = possibly inserted.
  bool maybe_contains(std::string_view s) const;

  std::uint64_t bit_count() const { return bits_.size() * 8; }
  std::uint32_t hash_count() const { return hashes_; }
  std::uint64_t entries() const { return entries_; }
  const std::vector<std::uint8_t>& bytes() const { return bits_; }

  /// (1 - e^{-kn/m})^k for the current (m, k, n).
  double analytic_fp_rate() const;

  friend bool operator==(const BloomFilter& a, const BloomFilter& b) {
    return a.bits_ == b.bits_ && a.hashes_ == b.hashes_ &&
           a.entries_ == b.entries_;
  }

 private:
  std::vector<std::uint8_t> bits_;
  std::uint32_t hashes_ = 0;
  std::uint64_t entries_ = 0;
};

/// Canonical probe strings shared by the builder and the prover (exposed
/// for tests).
std::string id_probe(const ObjectId& id);
std::string value_canon(const Value& v);

/// One site's content summary. `epoch` counts the site's incarnations
/// (durable sites persist it across crashes), `version` is the store's
/// mutation counter at build time; (epoch, version) orders summaries
/// lexicographically so a restarted site's fresh summary always supersedes
/// its pre-crash one even though the version counter restarts.
struct SiteSummary {
  SiteId origin = kNoSite;
  std::uint64_t epoch = 0;
  std::uint64_t version = 0;
  BloomFilter filter;

  /// Condense `store` (epoch is the caller's to fill in).
  static SiteSummary build(const SiteStore& store);

  /// Pruning proof: may forwarding (q, start, target) to the summarized
  /// site possibly contribute to the answer? Returns false only when the
  /// summary *proves* it cannot:
  ///
  ///  * Work flows forward through filters; iterate jumps only move
  ///    backward, so an item entering at `start` passes every position in
  ///    [start..n] at least once, and a refuted selection in that span
  ///    before the first reachable dereference kills the item before it
  ///    can produce anything.
  ///  * Otherwise the item (or a locally dereferenced descendant) might be
  ///    retained — unless every selection common to all descendants (the
  ///    span after the last reachable dereference) is refuted AND no
  ///    reachable dereference can fan out remotely (no "R" probe hits for
  ///    its traversal classes), confining the dead computation to the site.
  ///  * "Refuted" uses only binding-independent evidence: literal / exact /
  ///    prefix / small-range patterns probed against the filter. Anything
  ///    else (contains/suffix/general regex, $X, blob literals) passes.
  ///  * A target id the site provably never stored is NOT a prune: the
  ///    peer must still serve the miss-redirect chase (naming, DESIGN §4).
  ///  * Queries with retrieval slots are never pruned (emissions from
  ///    filters before a refuted selection would be lost).
  bool may_contribute(const Query& q, std::uint32_t start,
                      const ObjectId& target) const;

  friend bool operator==(const SiteSummary& a, const SiteSummary& b) {
    return a.origin == b.origin && a.epoch == b.epoch &&
           a.version == b.version && a.filter == b.filter;
  }

 private:
  bool refutes(const SelectFilter& sf) const;
  bool fanout_confined(const Query& q, std::uint32_t low,
                       std::uint32_t n) const;
};

}  // namespace hyperfile::index
