// Index-accelerated evaluation of canonical closure queries.
//
// The paper (Section 2, citing its companion report [4]) describes indexes
// "based on the reachability of an object (to speed up queries such as
// 'Find all documents referenced directly or indirectly by this document
// that in addition have a given keyword')". This module closes the loop: it
// recognizes queries of exactly that canonical shape,
//
//     S [ (type, key, ?X) | ^^X ]* <pure selection filters...> -> T
//
// and answers them from a prebuilt ReachabilityIndex plus per-candidate
// tuple matching — no traversal, no working set.
//
// Acceleration preserves the engine's exact semantics, including the subtle
// one: an object in the closure still had to *pass the body selection*
// (own at least one matching pointer tuple) or it would have died inside
// the loop — so candidates are filtered on that condition too.
//
// Shape restrictions (anything else returns nullopt and the caller falls
// back to the engine):
//   * exactly one iterator, unbounded (*), body = [select, deref-keep];
//   * the body select is (literal type, literal key, ?X) with X derefed;
//   * every filter after the loop is a selection with no bind/use/retrieve
//     patterns (pure predicates);
//   * the initial set resolves in the given store.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/attribute_index.hpp"
#include "index/reachability_index.hpp"
#include "query/query.hpp"

namespace hyperfile::index {

/// Shape of an accelerable query, extracted by match_closure_shape().
struct ClosureShape {
  std::string tuple_type;   // literal type of the traversal selection
  std::string pointer_key;  // literal key of the traversal selection
  /// 1-based indexes of the pure selection filters after the loop.
  std::vector<std::uint32_t> predicate_filters;
};

/// Returns the closure shape if `q` matches the canonical pattern.
std::optional<ClosureShape> match_closure_shape(const Query& q);

/// Evaluates `q` via `reach` (which must have been built over `store` with
/// the same tuple type and pointer key as the query's traversal selection —
/// mismatches return nullopt). Returns the result ids, deduplicated,
/// identical to what the engine would produce.
std::optional<std::vector<ObjectId>> accelerate_closure(
    const SiteStore& store, const ReachabilityIndex& reach, const Query& q);

/// Memoized index builds. Building a ReachabilityIndex is a full-store
/// transitive closure — paying it per query erases the point of having an
/// index. The cache keys every built index on the (type, key) traversal
/// class *and* the store's mutation counter (SiteStore::version()), so a
/// repeated query reuses the structure and any store mutation invalidates
/// it on the next lookup. Externally synchronized, like the store itself.
class IndexCache {
 public:
  /// The reachability index over `store` for (tuple_type, pointer_key),
  /// building it only if no current-version copy is cached.
  const ReachabilityIndex& reachability(const SiteStore& store,
                                        const std::string& tuple_type,
                                        const std::string& pointer_key);

  /// Same contract for the conventional (type, key) attribute index.
  const AttributeIndex& attribute(const SiteStore& store,
                                  const std::string& type,
                                  const std::string& key);

  /// Total index constructions performed — the regression observable:
  /// repeated identical queries over an unchanged store add nothing here.
  std::size_t builds() const { return builds_; }

  void clear();

 private:
  struct ReachEntry {
    std::uint64_t version;
    std::unique_ptr<ReachabilityIndex> idx;
  };
  struct AttrEntry {
    std::uint64_t version;
    std::unique_ptr<AttributeIndex> idx;
  };
  std::unordered_map<std::string, ReachEntry> reach_;
  std::unordered_map<std::string, AttrEntry> attr_;
  std::size_t builds_ = 0;
};

/// As above, but the traversal index is built (or reused) via `cache`
/// instead of being the caller's problem — the form query paths should use.
std::optional<std::vector<ObjectId>> accelerate_closure(const SiteStore& store,
                                                        IndexCache& cache,
                                                        const Query& q);

}  // namespace hyperfile::index
