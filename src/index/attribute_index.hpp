// Indexing facilities (paper Section 2: "In addition to the distributed
// server, we have developed facilities for indexing. These support
// conventional indexes (say for keywords in documents), as well as indexes
// based on the reachability of an object").
//
// AttributeIndex is the conventional index: it maps the data values of all
// (type, key) tuples in a store to the objects containing them, supporting
// exact-match and numeric-range lookups. It accelerates the first selection
// filter of a query (instead of scanning every object's tuples, seed
// directly from the index) — bench_index measures the effect (ablation A4).
//
// Indexes are site-local, matching the paper's autonomy goal: no global
// index structure exists, each site indexes only what it stores.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "store/site_store.hpp"

namespace hyperfile::index {

class AttributeIndex {
 public:
  /// Index every tuple with the given type and key across the store.
  AttributeIndex(const SiteStore& store, std::string type, std::string key);

  const std::string& type() const { return type_; }
  const std::string& key() const { return key_; }

  /// Objects whose (type, key) tuple equals `v`.
  std::vector<ObjectId> lookup(const Value& v) const;

  /// Objects whose numeric (type, key) tuple lies in [lo, hi].
  std::vector<ObjectId> lookup_range(std::int64_t lo, std::int64_t hi) const;

  /// Incremental maintenance when an object is added/changed/removed.
  void add_object(const Object& obj);
  void remove_object(const Object& obj);

  std::size_t entries() const { return entries_; }

 private:
  std::string type_;
  std::string key_;
  std::map<Value, std::vector<ObjectId>> by_value_;
  std::size_t entries_ = 0;
};

/// Keyword index: the common special case (type "keyword", word in the key
/// position, data ignored). Maps word -> objects.
class KeywordIndex {
 public:
  explicit KeywordIndex(const SiteStore& store);

  std::vector<ObjectId> lookup(const std::string& word) const;
  void add_object(const Object& obj);
  std::size_t words() const { return by_word_.size(); }

 private:
  std::map<std::string, std::vector<ObjectId>> by_word_;
};

}  // namespace hyperfile::index
