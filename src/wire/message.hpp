// Protocol messages of the distributed query processor (paper Section 3.2).
//
// The protocol is deliberately tiny:
//   * DerefRequest — "process object O for query Q, starting at filter
//     O.start". Carries Q.id, Q.originator, Q.body, Q.size (the query is
//     resent whole on every message, exactly as the paper describes; the
//     receiving site installs a context the first time and ignores the body
//     afterwards) plus O.id, O.start, O.iter# and a termination weight.
//   * StartQuery — originator fans a query out to sites that hold portions
//     of a *distributed set* (the Section 5 optimisation), or seeds the
//     initial named set at its home site.
//   * ResultMessage — a site's drained results, sent directly to the
//     originator: object ids that passed every filter, values captured by
//     the -> retrieval operator, or only a count in count_only mode. Also
//     returns all termination weight the site held.
//   * QueryDone — originator tells involved sites to discard context Q
//     after global termination.
//
// Weights travel as exponent lists of exact dyadic fractions (see
// term/weight.hpp); this module stores them uninterpreted.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/hash.hpp"
#include "common/trace.hpp"
#include "model/object.hpp"
#include "query/query.hpp"
#include "wire/codec.hpp"

namespace hyperfile::wire {

struct QueryId {
  SiteId originator = kNoSite;
  QuerySeq seq = 0;

  friend bool operator==(const QueryId&, const QueryId&) = default;
  std::string to_string() const {
    return "q" + std::to_string(seq) + "@" + std::to_string(originator);
  }
};

struct QueryIdHash {
  std::size_t operator()(const QueryId& q) const {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(q.originator) << 40) ^ q.seq));
  }
};

using WeightBits = std::vector<std::uint32_t>;

struct DerefRequest {
  QueryId qid;
  Query query;
  ObjectId oid;
  std::uint32_t start = 1;
  std::vector<std::uint32_t> iter_stack;  // O.iter# (stack, innermost last)
  WeightBits weight;
  /// Sender-unique sequence number for duplicate suppression (0 = legacy /
  /// unsequenced: never suppressed). A retried or wire-duplicated message
  /// must be processed at most once — its weight in particular, since a
  /// second repay pushes held weight past one (term/weight.hpp).
  std::uint64_t msg_seq = 0;
  /// Trace context (common/trace.hpp): distance from the originator in
  /// computation-message hops, and the site path that produced this message
  /// (originator first, capped at TraceSpan::kMaxPath).
  std::uint32_t hop = 0;
  std::vector<SiteId> path;
};

/// One (object, entry point) pair inside a batched dereference.
struct DerefEntry {
  ObjectId oid;
  std::uint32_t start = 1;
  std::vector<std::uint32_t> iter_stack;

  friend bool operator==(const DerefEntry&, const DerefEntry&) = default;
};

/// Extension (ablation A5): a drain's worth of dereferences to one site in
/// a single message. The paper sends one message per remote pointer, which
/// maximizes pipeline overlap; batching trades that overlap for fewer
/// messages ("messages should be ... limited in number", Section 1).
struct BatchDerefRequest {
  QueryId qid;
  Query query;
  std::vector<DerefEntry> items;
  WeightBits weight;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
  std::uint32_t hop = 0;      // see DerefRequest::hop
  std::vector<SiteId> path;
};

struct StartQuery {
  QueryId qid;
  Query query;
  /// Explicit seed ids (each enters at filter 1).
  std::vector<ObjectId> ids;
  /// If nonempty, the receiving site additionally seeds from its local
  /// portion of this named set (distributed-set continuation queries).
  std::string local_set_name;
  WeightBits weight;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
  std::uint32_t hop = 0;      // see DerefRequest::hop
  std::vector<SiteId> path;
};

struct RetrievedValue {
  std::uint32_t slot = 0;
  ObjectId source;
  Value value;

  friend bool operator==(const RetrievedValue&, const RetrievedValue&) = default;
};

struct ResultMessage {
  QueryId qid;
  std::vector<ObjectId> ids;
  std::vector<RetrievedValue> values;
  /// In count_only mode: number of results retained locally at the site.
  std::uint64_t local_count = 0;
  bool count_only = false;
  WeightBits weight;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
  /// Work the sending site knows it lost (derefs it could not deliver after
  /// retries); folded into ClientReply::dropped_items at the originator.
  std::uint64_t dropped_items = 0;
  /// Piggybacked trace: the sending site's cumulative span snapshot(s) for
  /// this query. Merged at the originator by field-wise max, so a
  /// duplicate-suppressed redelivery cannot double-record (common/trace.hpp).
  std::vector<TraceSpan> spans;
};

struct QueryDone {
  QueryId qid;
};

/// Client -> originating server: run this query on my behalf. The paper's
/// experimental client "read a query from a script, submitted it to
/// HyperFile, received the result" — this is that submission.
struct ClientRequest {
  QuerySeq client_seq = 0;
  Query query;
};

/// Originating server -> client: final result after global termination.
struct ClientReply {
  QuerySeq client_seq = 0;
  bool ok = true;
  std::string error;
  std::vector<ObjectId> ids;
  std::vector<RetrievedValue> values;
  std::uint64_t total_count = 0;
  bool count_only = false;
  /// Degraded-answer markers (paper Section 1: "partial results are better
  /// than none at all" — but they must be *visibly* partial). `partial` is
  /// set when the originator force-finished the query (context TTL expiry)
  /// or any site reported lost work; `dropped_items` counts the known
  /// losses.
  bool partial = false;
  std::uint64_t dropped_items = 0;
  /// Trace of the finished query: protocol-level id, request->reply time on
  /// the originator's clock, and the merged per-site spans (originator's own
  /// span included). Assembled into QueryResult::trace by the client.
  QueryId qid;
  std::uint64_t elapsed_us = 0;
  std::vector<TraceSpan> spans;
};

/// Live object migration (paper Section 4: the R*-style name makes moving
/// cheap — only the birth site's record and a local hint change, never the
/// pointers). Flow: client --MoveCommand--> holder --MoveData--> new home,
/// which installs the object, notifies the birth site (LocationUpdate) and
/// answers the client (MoveReply). Queries racing a move may drop the
/// in-flight object (partial results), never hang or duplicate it.
struct MoveCommand {
  QuerySeq client_seq = 0;
  ObjectId id;
  SiteId to = kNoSite;
  /// Where MoveReply must go — carried explicitly because the command may
  /// be forwarded between sites chasing a stale hint, after which the
  /// envelope's src is the forwarder, not the client.
  SiteId reply_to = kNoSite;
  /// Forwarding fuse: a stale location hint may bounce the command once or
  /// twice; this caps the chase.
  std::uint8_t hops_left = 3;
};

struct MoveData {
  Object object;
  SiteId reply_to = kNoSite;  // the client awaiting MoveReply
  QuerySeq client_seq = 0;
};

struct LocationUpdate {
  ObjectId id;
  SiteId now_at = kNoSite;
};

struct MoveReply {
  QuerySeq client_seq = 0;
  bool ok = true;
  std::string error;
  SiteId now_at = kNoSite;
};

/// Dijkstra-Scholten acknowledgement (alternative termination detector,
/// SiteServerOptions::termination): every computation message (deref,
/// batch, start, result) is acknowledged; a node acks its engaging message
/// last, once idle with no outstanding acks of its own.
struct TermAck {
  QueryId qid;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
};

/// Liveness probe (DESIGN.md §13). Heartbeats are normally piggybacked —
/// any received envelope proves its sender alive — so Ping only travels on
/// links that have gone quiet: `want_reply=true` asks the peer to answer
/// with a `want_reply=false` Ping, refreshing the prober's last-seen clock.
/// Pings are fire-and-forget: never retried, never sequenced, and a loud
/// send failure is itself a liveness verdict.
struct PingMessage {
  bool want_reply = false;
};

/// One site's content summary on the wire (index/site_summary.hpp,
/// DESIGN.md §16): a Bloom filter over the site's stored tuples plus the
/// (epoch, version) pair that orders summaries of the same origin. A
/// record may be *gossiped* — relayed by a site other than its origin —
/// so receivers must never treat a record's origin as the frame's sender.
struct SummaryRecord {
  SiteId origin = kNoSite;
  /// Incarnation counter: durable sites persist it across crashes, so a
  /// restarted site's summaries outrank everything it advertised before
  /// the crash even though its store version counter restarted.
  std::uint64_t epoch = 0;
  /// SiteStore::version() at build time; (epoch, version) lexicographic.
  std::uint64_t version = 0;
  std::uint32_t hash_count = 0;
  std::uint64_t entries = 0;
  /// Age of this record when the frame was sent, in microseconds on the
  /// sender's clock: 0 for a site's own freshly built record, time since
  /// install for a gossiped relay. Receivers anchor their staleness clock
  /// at (arrival − age_us), so a record's TTL keeps running across hops —
  /// a stale record can circulate, but it can never regain freshness by
  /// being reinstalled.
  std::uint64_t age_us = 0;
  std::vector<std::uint8_t> bits;

  friend bool operator==(const SummaryRecord&, const SummaryRecord&) = default;
};

/// Summary exchange, piggybacked on the liveness cadence (DESIGN.md §16):
/// the sender's own current record first, optionally followed by cached
/// peer records it is gossiping along.
struct SummaryMessage {
  std::vector<SummaryRecord> records;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
};

/// Follower -> primary: "stream me your WAL, I hold this much already"
/// (DESIGN.md §18). `ship_epoch` is the primary's checkpoint generation the
/// follower's shadow store was built against; `wal_offset` is the byte
/// offset into the primary's WAL (within that generation) up to which the
/// follower has applied. A primary whose generation moved on (it
/// checkpointed and truncated) answers with a WalCatchup instead of a tail.
/// Re-sent on reconnect and whenever a gap is detected, so it must be
/// idempotent at the primary.
struct WalSubscribe {
  SiteId follower = kNoSite;
  std::uint64_t ship_epoch = 0;
  std::uint64_t wal_offset = 0;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
};

/// Primary -> follower: a batch of redo records, the WAL byte range
/// [from_offset, end_offset) of generation `ship_epoch`. `records` are
/// encode_wal_record payloads (store/wal.hpp), applied in order. Dedup /
/// gap detection is positional: a follower applies only when `ship_epoch`
/// matches and `from_offset` equals its watermark; anything else is a
/// duplicate (ignore) or a gap (resubscribe).
struct WalSegment {
  SiteId primary = kNoSite;
  std::uint64_t ship_epoch = 0;
  std::uint64_t from_offset = 0;
  std::uint64_t end_offset = 0;
  std::vector<Bytes> records;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
};

/// Primary -> follower: full checkpoint snapshot (store/snapshot.hpp byte
/// form) when the follower is too far behind for tail replay — its
/// generation predates the primary's last WAL truncation. The follower
/// rebuilds its shadow store from `snapshot` and resumes tailing at
/// (ship_epoch, wal_offset).
struct WalCatchup {
  SiteId primary = kNoSite;
  std::uint64_t ship_epoch = 0;
  std::uint64_t wal_offset = 0;
  Bytes snapshot;
  std::uint64_t msg_seq = 0;  // see DerefRequest::msg_seq
};

using Message = std::variant<DerefRequest, StartQuery, ResultMessage, QueryDone,
                             ClientRequest, ClientReply, BatchDerefRequest,
                             TermAck, MoveCommand, MoveData, LocationUpdate,
                             MoveReply, PingMessage, SummaryMessage,
                             WalSubscribe, WalSegment, WalCatchup>;

/// Transport envelope. src/dst are site ids; the client library occupies a
/// site id of its own (the paper's client ran "at a separate machine from
/// any of the servers").
struct Envelope {
  SiteId src = kNoSite;
  SiteId dst = kNoSite;
  Message message;
};

const char* message_type_name(const Message& m);

Bytes encode_message(const Message& m);
Result<Message> decode_message(std::span<const std::uint8_t> data);

Bytes encode_envelope(const Envelope& e);
/// Encode into `out` (cleared first), reusing its buffer capacity — the
/// allocation-free form for senders that consume the bytes immediately.
void encode_envelope(const Envelope& e, Encoder& out);
Result<Envelope> decode_envelope(std::span<const std::uint8_t> data);

}  // namespace hyperfile::wire
