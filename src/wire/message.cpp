#include "wire/message.hpp"

#include "wire/serialize.hpp"

namespace hyperfile::wire {
namespace {

enum class Tag : std::uint8_t {
  kDeref = 1,
  kStart = 2,
  kResult = 3,
  kDone = 4,
  kClientRequest = 5,
  kClientReply = 6,
  kBatchDeref = 7,
  kTermAck = 8,
  kMoveCommand = 9,
  kMoveData = 10,
  kLocationUpdate = 11,
  kMoveReply = 12,
  kPing = 13,
  kSummary = 14,
  kWalSubscribe = 15,
  kWalSegment = 16,
  kWalCatchup = 17,
};

void encode_qid(Encoder& e, const QueryId& q) {
  e.varint(q.originator);
  e.varint(q.seq);
}

Result<QueryId> decode_qid(Decoder& d) {
  auto orig = d.varint();
  if (!orig.ok()) return orig.error();
  auto seq = d.varint();
  if (!seq.ok()) return seq.error();
  return QueryId{static_cast<SiteId>(orig.value()), seq.value()};
}

void encode_u32s(Encoder& e, const std::vector<std::uint32_t>& v) {
  e.varint(v.size());
  for (auto x : v) e.varint(x);
}

Result<std::vector<std::uint32_t>> decode_u32s(Decoder& d) {
  auto n = d.varint();
  if (!n.ok()) return n.error();
  if (n.value() > d.remaining()) {
    return make_error(Errc::kDecode, "u32 list length exceeds input");
  }
  std::vector<std::uint32_t> v;
  v.reserve(static_cast<std::size_t>(n.value()));
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto x = d.varint();
    if (!x.ok()) return x.error();
    v.push_back(static_cast<std::uint32_t>(x.value()));
  }
  return v;
}

void encode_span(Encoder& e, const TraceSpan& s) {
  e.varint(s.site);
  e.varint(s.first_hop);
  encode_u32s(e, s.path);
  e.varint(s.messages);
  e.varint(s.duplicates);
  e.varint(s.items);
  e.varint(s.forwarded);
  e.varint(s.results);
  e.varint(s.drains);
  e.varint(s.drain_us);
  e.varint(s.retries);
  e.varint(s.suspicions);
  e.varint(s.pruned);
  e.varint(s.failovers);
  e.varint(s.replica_lag);
}

Result<TraceSpan> decode_span(Decoder& d) {
  TraceSpan s;
  auto site = d.varint();
  if (!site.ok()) return site.error();
  s.site = static_cast<SiteId>(site.value());
  auto hop = d.varint();
  if (!hop.ok()) return hop.error();
  s.first_hop = static_cast<std::uint32_t>(hop.value());
  auto path = decode_u32s(d);
  if (!path.ok()) return path.error();
  s.path = std::move(path).value();
  // One explicit read per encoded field, in encode_span's order, so the
  // codec-symmetry check (tools/hfverify) can diff the two mechanically.
  auto messages = d.varint();
  if (!messages.ok()) return messages.error();
  s.messages = messages.value();
  auto duplicates = d.varint();
  if (!duplicates.ok()) return duplicates.error();
  s.duplicates = duplicates.value();
  auto items = d.varint();
  if (!items.ok()) return items.error();
  s.items = items.value();
  auto forwarded = d.varint();
  if (!forwarded.ok()) return forwarded.error();
  s.forwarded = forwarded.value();
  auto results = d.varint();
  if (!results.ok()) return results.error();
  s.results = results.value();
  auto drains = d.varint();
  if (!drains.ok()) return drains.error();
  s.drains = drains.value();
  auto drain_us = d.varint();
  if (!drain_us.ok()) return drain_us.error();
  s.drain_us = drain_us.value();
  auto retries = d.varint();
  if (!retries.ok()) return retries.error();
  s.retries = retries.value();
  auto suspicions = d.varint();
  if (!suspicions.ok()) return suspicions.error();
  s.suspicions = suspicions.value();
  auto pruned = d.varint();
  if (!pruned.ok()) return pruned.error();
  s.pruned = pruned.value();
  auto failovers = d.varint();
  if (!failovers.ok()) return failovers.error();
  s.failovers = failovers.value();
  auto replica_lag = d.varint();
  if (!replica_lag.ok()) return replica_lag.error();
  s.replica_lag = replica_lag.value();
  return s;
}

void encode_spans(Encoder& e, const std::vector<TraceSpan>& spans) {
  e.varint(spans.size());
  for (const auto& s : spans) encode_span(e, s);
}

Result<std::vector<TraceSpan>> decode_spans(Decoder& d) {
  auto n = d.varint();
  if (!n.ok()) return n.error();
  if (n.value() > d.remaining()) {
    return make_error(Errc::kDecode, "span list length exceeds input");
  }
  std::vector<TraceSpan> spans;
  spans.reserve(static_cast<std::size_t>(n.value()));
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto s = decode_span(d);
    if (!s.ok()) return s.error();
    spans.push_back(std::move(s).value());
  }
  return spans;
}

void encode_summary_record(Encoder& e, const SummaryRecord& r) {
  e.varint(r.origin);
  e.varint(r.epoch);
  e.varint(r.version);
  e.varint(r.hash_count);
  e.varint(r.entries);
  e.varint(r.age_us);
  e.bytes(r.bits);
}

Result<SummaryRecord> decode_summary_record(Decoder& d) {
  SummaryRecord r;
  auto origin = d.varint();
  if (!origin.ok()) return origin.error();
  r.origin = static_cast<SiteId>(origin.value());
  auto epoch = d.varint();
  if (!epoch.ok()) return epoch.error();
  r.epoch = epoch.value();
  auto version = d.varint();
  if (!version.ok()) return version.error();
  r.version = version.value();
  auto hashes = d.varint();
  if (!hashes.ok()) return hashes.error();
  r.hash_count = static_cast<std::uint32_t>(hashes.value());
  auto entries = d.varint();
  if (!entries.ok()) return entries.error();
  r.entries = entries.value();
  auto age = d.varint();
  if (!age.ok()) return age.error();
  r.age_us = age.value();
  auto bits = d.bytes();
  if (!bits.ok()) return bits.error();
  r.bits = std::move(bits).value();
  return r;
}

void encode_ids(Encoder& e, const std::vector<ObjectId>& ids) {
  e.varint(ids.size());
  for (const auto& id : ids) encode(e, id);
}

Result<std::vector<ObjectId>> decode_ids(Decoder& d) {
  auto n = d.varint();
  if (!n.ok()) return n.error();
  if (n.value() > d.remaining()) {
    return make_error(Errc::kDecode, "id list length exceeds input");
  }
  std::vector<ObjectId> ids;
  ids.reserve(static_cast<std::size_t>(n.value()));
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto id = decode_object_id(d);
    if (!id.ok()) return id.error();
    ids.push_back(id.value());
  }
  return ids;
}

}  // namespace

const char* message_type_name(const Message& m) {
  switch (m.index()) {
    case 0:
      return "DerefRequest";
    case 1:
      return "StartQuery";
    case 2:
      return "ResultMessage";
    case 3:
      return "QueryDone";
    case 4:
      return "ClientRequest";
    case 5:
      return "ClientReply";
    case 6:
      return "BatchDerefRequest";
    case 7:
      return "TermAck";
    case 8:
      return "MoveCommand";
    case 9:
      return "MoveData";
    case 10:
      return "LocationUpdate";
    case 11:
      return "MoveReply";
    case 12:
      return "PingMessage";
    case 13:
      return "SummaryMessage";
    case 14:
      return "WalSubscribe";
    case 15:
      return "WalSegment";
    case 16:
      return "WalCatchup";
  }
  return "?";
}

Bytes encode_message(const Message& m) {
  Encoder e;
  if (const auto* dr = std::get_if<DerefRequest>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kDeref));
    encode_qid(e, dr->qid);
    encode(e, dr->query);
    encode(e, dr->oid);
    e.varint(dr->start);
    encode_u32s(e, dr->iter_stack);
    encode_u32s(e, dr->weight);
    e.varint(dr->msg_seq);
    e.varint(dr->hop);
    encode_u32s(e, dr->path);
  } else if (const auto* sq = std::get_if<StartQuery>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kStart));
    encode_qid(e, sq->qid);
    encode(e, sq->query);
    encode_ids(e, sq->ids);
    e.string(sq->local_set_name);
    encode_u32s(e, sq->weight);
    e.varint(sq->msg_seq);
    e.varint(sq->hop);
    encode_u32s(e, sq->path);
  } else if (const auto* rm = std::get_if<ResultMessage>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kResult));
    encode_qid(e, rm->qid);
    encode_ids(e, rm->ids);
    e.varint(rm->values.size());
    for (const auto& rv : rm->values) {
      e.varint(rv.slot);
      encode(e, rv.source);
      encode(e, rv.value);
    }
    e.varint(rm->local_count);
    e.u8(rm->count_only ? 1 : 0);
    encode_u32s(e, rm->weight);
    e.varint(rm->msg_seq);
    e.varint(rm->dropped_items);
    encode_spans(e, rm->spans);
  } else if (const auto* qd = std::get_if<QueryDone>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kDone));
    encode_qid(e, qd->qid);
  } else if (const auto* cr = std::get_if<ClientRequest>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kClientRequest));
    e.varint(cr->client_seq);
    encode(e, cr->query);
  } else if (const auto* ta = std::get_if<TermAck>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kTermAck));
    encode_qid(e, ta->qid);
    e.varint(ta->msg_seq);
  } else if (const auto* mc = std::get_if<MoveCommand>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kMoveCommand));
    e.varint(mc->client_seq);
    encode(e, mc->id);
    e.varint(mc->to);
    e.varint(mc->reply_to);
    e.u8(mc->hops_left);
  } else if (const auto* md = std::get_if<MoveData>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kMoveData));
    encode(e, md->object);
    e.varint(md->reply_to);
    e.varint(md->client_seq);
  } else if (const auto* lu = std::get_if<LocationUpdate>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kLocationUpdate));
    encode(e, lu->id);
    e.varint(lu->now_at);
  } else if (const auto* mr = std::get_if<MoveReply>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kMoveReply));
    e.varint(mr->client_seq);
    e.u8(mr->ok ? 1 : 0);
    e.string(mr->error);
    e.varint(mr->now_at);
  } else if (const auto* pg = std::get_if<PingMessage>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kPing));
    e.u8(pg->want_reply ? 1 : 0);
  } else if (const auto* sm = std::get_if<SummaryMessage>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kSummary));
    e.varint(sm->records.size());
    for (const auto& r : sm->records) encode_summary_record(e, r);
    e.varint(sm->msg_seq);
  } else if (const auto* ws = std::get_if<WalSubscribe>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kWalSubscribe));
    e.varint(ws->follower);
    e.varint(ws->ship_epoch);
    e.varint(ws->wal_offset);
    e.varint(ws->msg_seq);
  } else if (const auto* wg = std::get_if<WalSegment>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kWalSegment));
    e.varint(wg->primary);
    e.varint(wg->ship_epoch);
    e.varint(wg->from_offset);
    e.varint(wg->end_offset);
    e.varint(wg->records.size());
    for (const auto& rec : wg->records) e.bytes(rec);
    e.varint(wg->msg_seq);
  } else if (const auto* wc = std::get_if<WalCatchup>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kWalCatchup));
    e.varint(wc->primary);
    e.varint(wc->ship_epoch);
    e.varint(wc->wal_offset);
    e.bytes(wc->snapshot);
    e.varint(wc->msg_seq);
  } else if (const auto* bd = std::get_if<BatchDerefRequest>(&m)) {
    e.u8(static_cast<std::uint8_t>(Tag::kBatchDeref));
    encode_qid(e, bd->qid);
    encode(e, bd->query);
    e.varint(bd->items.size());
    for (const auto& item : bd->items) {
      encode(e, item.oid);
      e.varint(item.start);
      encode_u32s(e, item.iter_stack);
    }
    encode_u32s(e, bd->weight);
    e.varint(bd->msg_seq);
    e.varint(bd->hop);
    encode_u32s(e, bd->path);
  } else {
    const auto& rp = std::get<ClientReply>(m);
    e.u8(static_cast<std::uint8_t>(Tag::kClientReply));
    e.varint(rp.client_seq);
    e.u8(rp.ok ? 1 : 0);
    e.string(rp.error);
    encode_ids(e, rp.ids);
    e.varint(rp.values.size());
    for (const auto& rv : rp.values) {
      e.varint(rv.slot);
      encode(e, rv.source);
      encode(e, rv.value);
    }
    e.varint(rp.total_count);
    e.u8(rp.count_only ? 1 : 0);
    e.u8(rp.partial ? 1 : 0);
    e.varint(rp.dropped_items);
    encode_qid(e, rp.qid);
    e.varint(rp.elapsed_us);
    encode_spans(e, rp.spans);
  }
  return e.take();
}

Result<Message> decode_message(std::span<const std::uint8_t> data) {
  Decoder d(data);
  auto tag = d.u8();
  if (!tag.ok()) return tag.error();
  switch (static_cast<Tag>(tag.value())) {
    case Tag::kDeref: {
      DerefRequest dr;
      auto qid = decode_qid(d);
      if (!qid.ok()) return qid.error();
      dr.qid = qid.value();
      auto q = decode_query(d);
      if (!q.ok()) return q.error();
      dr.query = std::move(q).value();
      auto oid = decode_object_id(d);
      if (!oid.ok()) return oid.error();
      dr.oid = oid.value();
      auto start = d.varint();
      if (!start.ok()) return start.error();
      dr.start = static_cast<std::uint32_t>(start.value());
      auto stack = decode_u32s(d);
      if (!stack.ok()) return stack.error();
      dr.iter_stack = std::move(stack).value();
      auto w = decode_u32s(d);
      if (!w.ok()) return w.error();
      dr.weight = std::move(w).value();
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      dr.msg_seq = seq.value();
      auto hop = d.varint();
      if (!hop.ok()) return hop.error();
      dr.hop = static_cast<std::uint32_t>(hop.value());
      auto path = decode_u32s(d);
      if (!path.ok()) return path.error();
      dr.path = std::move(path).value();
      return Message(std::move(dr));
    }
    case Tag::kStart: {
      StartQuery sq;
      auto qid = decode_qid(d);
      if (!qid.ok()) return qid.error();
      sq.qid = qid.value();
      auto q = decode_query(d);
      if (!q.ok()) return q.error();
      sq.query = std::move(q).value();
      auto ids = decode_ids(d);
      if (!ids.ok()) return ids.error();
      sq.ids = std::move(ids).value();
      auto name = d.string();
      if (!name.ok()) return name.error();
      sq.local_set_name = std::move(name).value();
      auto w = decode_u32s(d);
      if (!w.ok()) return w.error();
      sq.weight = std::move(w).value();
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      sq.msg_seq = seq.value();
      auto hop = d.varint();
      if (!hop.ok()) return hop.error();
      sq.hop = static_cast<std::uint32_t>(hop.value());
      auto path = decode_u32s(d);
      if (!path.ok()) return path.error();
      sq.path = std::move(path).value();
      return Message(std::move(sq));
    }
    case Tag::kResult: {
      ResultMessage rm;
      auto qid = decode_qid(d);
      if (!qid.ok()) return qid.error();
      rm.qid = qid.value();
      auto ids = decode_ids(d);
      if (!ids.ok()) return ids.error();
      rm.ids = std::move(ids).value();
      auto nvals = d.varint();
      if (!nvals.ok()) return nvals.error();
      if (nvals.value() > d.remaining()) {
        return make_error(Errc::kDecode, "value list length exceeds input");
      }
      for (std::uint64_t i = 0; i < nvals.value(); ++i) {
        RetrievedValue rv;
        auto slot = d.varint();
        if (!slot.ok()) return slot.error();
        rv.slot = static_cast<std::uint32_t>(slot.value());
        auto src = decode_object_id(d);
        if (!src.ok()) return src.error();
        rv.source = src.value();
        auto val = decode_value(d);
        if (!val.ok()) return val.error();
        rv.value = std::move(val).value();
        rm.values.push_back(std::move(rv));
      }
      auto count = d.varint();
      if (!count.ok()) return count.error();
      rm.local_count = count.value();
      auto co = d.u8();
      if (!co.ok()) return co.error();
      rm.count_only = co.value() != 0;
      auto w = decode_u32s(d);
      if (!w.ok()) return w.error();
      rm.weight = std::move(w).value();
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      rm.msg_seq = seq.value();
      auto dropped = d.varint();
      if (!dropped.ok()) return dropped.error();
      rm.dropped_items = dropped.value();
      auto spans = decode_spans(d);
      if (!spans.ok()) return spans.error();
      rm.spans = std::move(spans).value();
      return Message(std::move(rm));
    }
    case Tag::kDone: {
      QueryDone qd;
      auto qid = decode_qid(d);
      if (!qid.ok()) return qid.error();
      qd.qid = qid.value();
      return Message(qd);
    }
    case Tag::kClientRequest: {
      ClientRequest cr;
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      cr.client_seq = seq.value();
      auto q = decode_query(d);
      if (!q.ok()) return q.error();
      cr.query = std::move(q).value();
      return Message(std::move(cr));
    }
    case Tag::kClientReply: {
      ClientReply rp;
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      rp.client_seq = seq.value();
      auto ok = d.u8();
      if (!ok.ok()) return ok.error();
      rp.ok = ok.value() != 0;
      auto err = d.string();
      if (!err.ok()) return err.error();
      rp.error = std::move(err).value();
      auto ids = decode_ids(d);
      if (!ids.ok()) return ids.error();
      rp.ids = std::move(ids).value();
      auto nvals = d.varint();
      if (!nvals.ok()) return nvals.error();
      if (nvals.value() > d.remaining()) {
        return make_error(Errc::kDecode, "value list length exceeds input");
      }
      for (std::uint64_t i = 0; i < nvals.value(); ++i) {
        RetrievedValue rv;
        auto slot = d.varint();
        if (!slot.ok()) return slot.error();
        rv.slot = static_cast<std::uint32_t>(slot.value());
        auto src = decode_object_id(d);
        if (!src.ok()) return src.error();
        rv.source = src.value();
        auto val = decode_value(d);
        if (!val.ok()) return val.error();
        rv.value = std::move(val).value();
        rp.values.push_back(std::move(rv));
      }
      auto count = d.varint();
      if (!count.ok()) return count.error();
      rp.total_count = count.value();
      auto co = d.u8();
      if (!co.ok()) return co.error();
      rp.count_only = co.value() != 0;
      auto partial = d.u8();
      if (!partial.ok()) return partial.error();
      rp.partial = partial.value() != 0;
      auto dropped = d.varint();
      if (!dropped.ok()) return dropped.error();
      rp.dropped_items = dropped.value();
      auto qid = decode_qid(d);
      if (!qid.ok()) return qid.error();
      rp.qid = qid.value();
      auto elapsed = d.varint();
      if (!elapsed.ok()) return elapsed.error();
      rp.elapsed_us = elapsed.value();
      auto spans = decode_spans(d);
      if (!spans.ok()) return spans.error();
      rp.spans = std::move(spans).value();
      return Message(std::move(rp));
    }
    case Tag::kBatchDeref: {
      BatchDerefRequest bd;
      auto qid = decode_qid(d);
      if (!qid.ok()) return qid.error();
      bd.qid = qid.value();
      auto q = decode_query(d);
      if (!q.ok()) return q.error();
      bd.query = std::move(q).value();
      auto n = d.varint();
      if (!n.ok()) return n.error();
      if (n.value() > d.remaining()) {
        return make_error(Errc::kDecode, "batch length exceeds input");
      }
      for (std::uint64_t i = 0; i < n.value(); ++i) {
        DerefEntry item;
        auto oid = decode_object_id(d);
        if (!oid.ok()) return oid.error();
        item.oid = oid.value();
        auto start = d.varint();
        if (!start.ok()) return start.error();
        item.start = static_cast<std::uint32_t>(start.value());
        auto stack = decode_u32s(d);
        if (!stack.ok()) return stack.error();
        item.iter_stack = std::move(stack).value();
        bd.items.push_back(std::move(item));
      }
      auto w = decode_u32s(d);
      if (!w.ok()) return w.error();
      bd.weight = std::move(w).value();
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      bd.msg_seq = seq.value();
      auto hop = d.varint();
      if (!hop.ok()) return hop.error();
      bd.hop = static_cast<std::uint32_t>(hop.value());
      auto path = decode_u32s(d);
      if (!path.ok()) return path.error();
      bd.path = std::move(path).value();
      return Message(std::move(bd));
    }
    case Tag::kTermAck: {
      auto qid = decode_qid(d);
      if (!qid.ok()) return qid.error();
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      return Message(TermAck{qid.value(), seq.value()});
    }
    case Tag::kMoveCommand: {
      MoveCommand mc;
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      mc.client_seq = seq.value();
      auto id = decode_object_id(d);
      if (!id.ok()) return id.error();
      mc.id = id.value();
      auto to = d.varint();
      if (!to.ok()) return to.error();
      mc.to = static_cast<SiteId>(to.value());
      auto reply_to = d.varint();
      if (!reply_to.ok()) return reply_to.error();
      mc.reply_to = static_cast<SiteId>(reply_to.value());
      auto hops = d.u8();
      if (!hops.ok()) return hops.error();
      mc.hops_left = hops.value();
      return Message(mc);
    }
    case Tag::kMoveData: {
      MoveData md;
      auto obj = decode_object(d);
      if (!obj.ok()) return obj.error();
      md.object = std::move(obj).value();
      auto reply_to = d.varint();
      if (!reply_to.ok()) return reply_to.error();
      md.reply_to = static_cast<SiteId>(reply_to.value());
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      md.client_seq = seq.value();
      return Message(std::move(md));
    }
    case Tag::kLocationUpdate: {
      LocationUpdate lu;
      auto id = decode_object_id(d);
      if (!id.ok()) return id.error();
      lu.id = id.value();
      auto at = d.varint();
      if (!at.ok()) return at.error();
      lu.now_at = static_cast<SiteId>(at.value());
      return Message(lu);
    }
    case Tag::kMoveReply: {
      MoveReply mr;
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      mr.client_seq = seq.value();
      auto ok = d.u8();
      if (!ok.ok()) return ok.error();
      mr.ok = ok.value() != 0;
      auto err = d.string();
      if (!err.ok()) return err.error();
      mr.error = std::move(err).value();
      auto at = d.varint();
      if (!at.ok()) return at.error();
      mr.now_at = static_cast<SiteId>(at.value());
      return Message(std::move(mr));
    }
    case Tag::kPing: {
      auto want = d.u8();
      if (!want.ok()) return want.error();
      return Message(PingMessage{want.value() != 0});
    }
    case Tag::kSummary: {
      SummaryMessage sm;
      auto n = d.varint();
      if (!n.ok()) return n.error();
      if (n.value() > d.remaining()) {
        return make_error(Errc::kDecode, "summary list length exceeds input");
      }
      for (std::uint64_t i = 0; i < n.value(); ++i) {
        auto r = decode_summary_record(d);
        if (!r.ok()) return r.error();
        sm.records.push_back(std::move(r).value());
      }
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      sm.msg_seq = seq.value();
      return Message(std::move(sm));
    }
    case Tag::kWalSubscribe: {
      WalSubscribe ws;
      auto follower = d.varint();
      if (!follower.ok()) return follower.error();
      ws.follower = static_cast<SiteId>(follower.value());
      auto epoch = d.varint();
      if (!epoch.ok()) return epoch.error();
      ws.ship_epoch = epoch.value();
      auto offset = d.varint();
      if (!offset.ok()) return offset.error();
      ws.wal_offset = offset.value();
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      ws.msg_seq = seq.value();
      return Message(ws);
    }
    case Tag::kWalSegment: {
      WalSegment wg;
      auto primary = d.varint();
      if (!primary.ok()) return primary.error();
      wg.primary = static_cast<SiteId>(primary.value());
      auto epoch = d.varint();
      if (!epoch.ok()) return epoch.error();
      wg.ship_epoch = epoch.value();
      auto from = d.varint();
      if (!from.ok()) return from.error();
      wg.from_offset = from.value();
      auto end = d.varint();
      if (!end.ok()) return end.error();
      wg.end_offset = end.value();
      auto n = d.varint();
      if (!n.ok()) return n.error();
      if (n.value() > d.remaining()) {
        return make_error(Errc::kDecode, "record list length exceeds input");
      }
      for (std::uint64_t i = 0; i < n.value(); ++i) {
        auto rec = d.bytes();
        if (!rec.ok()) return rec.error();
        wg.records.push_back(std::move(rec).value());
      }
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      wg.msg_seq = seq.value();
      return Message(std::move(wg));
    }
    case Tag::kWalCatchup: {
      WalCatchup wc;
      auto primary = d.varint();
      if (!primary.ok()) return primary.error();
      wc.primary = static_cast<SiteId>(primary.value());
      auto epoch = d.varint();
      if (!epoch.ok()) return epoch.error();
      wc.ship_epoch = epoch.value();
      auto offset = d.varint();
      if (!offset.ok()) return offset.error();
      wc.wal_offset = offset.value();
      auto snap = d.bytes();
      if (!snap.ok()) return snap.error();
      wc.snapshot = std::move(snap).value();
      auto seq = d.varint();
      if (!seq.ok()) return seq.error();
      wc.msg_seq = seq.value();
      return Message(std::move(wc));
    }
  }
  return make_error(Errc::kDecode,
                    "unknown message tag " + std::to_string(tag.value()));
}

void encode_envelope(const Envelope& env, Encoder& e) {
  e.clear();
  e.varint(env.src);
  e.varint(env.dst);
  Bytes payload = encode_message(env.message);
  e.bytes(payload);
}

Bytes encode_envelope(const Envelope& env) {
  Encoder e;
  encode_envelope(env, e);
  return e.take();
}

Result<Envelope> decode_envelope(std::span<const std::uint8_t> data) {
  Decoder d(data);
  auto src = d.varint();
  if (!src.ok()) return src.error();
  auto dst = d.varint();
  if (!dst.ok()) return dst.error();
  auto payload = d.bytes();
  if (!payload.ok()) return payload.error();
  auto m = decode_message(payload.value());
  if (!m.ok()) return m.error();
  return Envelope{static_cast<SiteId>(src.value()),
                  static_cast<SiteId>(dst.value()), std::move(m).value()};
}

}  // namespace hyperfile::wire
