// Low-level binary encoding: LEB128 varints, zigzag signed ints,
// length-prefixed byte strings. Hand-rolled (no serialization library),
// matching the paper's spirit of very small messages: the Section 3 example
// query encodes to a few dozen bytes (the paper reports ~40 bytes).
//
// All decoding is bounds-checked and returns Result — wire bytes are
// untrusted input (they may come from a TCP peer).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace hyperfile::wire {

using Bytes = std::vector<std::uint8_t>;

class Encoder {
 public:
  const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

  /// Reset for reuse, keeping the buffer's capacity. Send paths whose bytes
  /// are consumed before returning keep one scratch encoder per thread so
  /// steady-state encoding never allocates (DESIGN.md §14).
  void clear() { out_.clear(); }
  void reserve(std::size_t n) { out_.reserve(n); }

  void u8(std::uint8_t v) { out_.push_back(v); }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    out_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zigzag-encoded signed integer.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63));
  }

  void string(const std::string& s) {
    varint(s.size());
    out_.insert(out_.end(), s.begin(), s.end());
  }

  void bytes(std::span<const std::uint8_t> b) {
    varint(b.size());
    out_.insert(out_.end(), b.begin(), b.end());
  }

 private:
  Bytes out_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

  Result<std::uint8_t> u8() {
    if (pos_ >= data_.size()) return underflow("u8");
    return data_[pos_++];
  }

  Result<std::uint64_t> varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= data_.size()) return underflow("varint");
      if (shift >= 64) {
        return make_error(Errc::kDecode, "varint too long");
      }
      const std::uint8_t byte = data_[pos_++];
      v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return v;
      shift += 7;
    }
  }

  Result<std::int64_t> svarint() {
    auto v = varint();
    if (!v.ok()) return v.error();
    const std::uint64_t u = v.value();
    return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  }

  Result<std::string> string() {
    auto len = varint();
    if (!len.ok()) return len.error();
    if (len.value() > remaining()) return underflow("string");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(len.value()));
    pos_ += static_cast<std::size_t>(len.value());
    return s;
  }

  Result<Bytes> bytes() {
    auto len = varint();
    if (!len.ok()) return len.error();
    if (len.value() > remaining()) return underflow("bytes");
    Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len.value()));
    pos_ += static_cast<std::size_t>(len.value());
    return b;
  }

 private:
  Error underflow(const char* what) const {
    return make_error(Errc::kDecode,
                      std::string("truncated input reading ") + what);
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace hyperfile::wire
