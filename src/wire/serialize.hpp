// Wire encoding of model and query types.
//
// Everything the distributed runtime ships — object ids, values, tuples,
// whole objects (only the baseline comparator ships those!), patterns,
// filters, queries — round-trips through these functions. Decoders validate
// structure and return Result; they never trust lengths or tags.
#pragma once

#include "model/object.hpp"
#include "query/query.hpp"
#include "wire/codec.hpp"

namespace hyperfile::wire {

void encode(Encoder& e, const ObjectId& id);
Result<ObjectId> decode_object_id(Decoder& d);

void encode(Encoder& e, const Value& v);
Result<Value> decode_value(Decoder& d);

void encode(Encoder& e, const Tuple& t);
Result<Tuple> decode_tuple(Decoder& d);

void encode(Encoder& e, const Object& o);
Result<Object> decode_object(Decoder& d);

void encode(Encoder& e, const Pattern& p);
Result<Pattern> decode_pattern(Decoder& d);

void encode(Encoder& e, const Filter& f);
Result<Filter> decode_filter(Decoder& d);

void encode(Encoder& e, const Query& q);
Result<Query> decode_query(Decoder& d);

/// Convenience: one-shot encode to bytes / decode from bytes.
Bytes encode_query(const Query& q);
Result<Query> decode_query(std::span<const std::uint8_t> data);

}  // namespace hyperfile::wire
