#include "wire/serialize.hpp"

namespace hyperfile::wire {

void encode(Encoder& e, const ObjectId& id) {
  e.varint(id.birth_site);
  e.varint(id.seq);
  e.varint(id.presumed_site);
}

Result<ObjectId> decode_object_id(Decoder& d) {
  auto birth = d.varint();
  if (!birth.ok()) return birth.error();
  auto seq = d.varint();
  if (!seq.ok()) return seq.error();
  auto presumed = d.varint();
  if (!presumed.ok()) return presumed.error();
  return ObjectId(static_cast<SiteId>(birth.value()),
                  static_cast<LocalSeq>(seq.value()),
                  static_cast<SiteId>(presumed.value()));
}

void encode(Encoder& e, const Value& v) {
  e.u8(static_cast<std::uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kString:
      e.string(v.as_string());
      break;
    case ValueKind::kNumber:
      e.svarint(v.as_number());
      break;
    case ValueKind::kPointer:
      encode(e, v.as_pointer());
      break;
    case ValueKind::kBlob:
      e.bytes(v.as_blob());
      break;
  }
}

Result<Value> decode_value(Decoder& d) {
  auto kind = d.u8();
  if (!kind.ok()) return kind.error();
  switch (static_cast<ValueKind>(kind.value())) {
    case ValueKind::kNull:
      return Value();
    case ValueKind::kString: {
      auto s = d.string();
      if (!s.ok()) return s.error();
      return Value::string(std::move(s).value());
    }
    case ValueKind::kNumber: {
      auto n = d.svarint();
      if (!n.ok()) return n.error();
      return Value::number(n.value());
    }
    case ValueKind::kPointer: {
      auto id = decode_object_id(d);
      if (!id.ok()) return id.error();
      return Value::pointer(id.value());
    }
    case ValueKind::kBlob: {
      auto b = d.bytes();
      if (!b.ok()) return b.error();
      return Value::blob(std::move(b).value());
    }
  }
  return make_error(Errc::kDecode,
                    "unknown value kind " + std::to_string(kind.value()));
}

void encode(Encoder& e, const Tuple& t) {
  e.string(t.type);
  e.string(t.key);
  encode(e, t.data);
}

Result<Tuple> decode_tuple(Decoder& d) {
  auto type = d.string();
  if (!type.ok()) return type.error();
  auto key = d.string();
  if (!key.ok()) return key.error();
  auto data = decode_value(d);
  if (!data.ok()) return data.error();
  return Tuple(std::move(type).value(), std::move(key).value(),
               std::move(data).value());
}

void encode(Encoder& e, const Object& o) {
  encode(e, o.id());
  e.varint(o.tuples().size());
  for (const auto& t : o.tuples()) encode(e, t);
}

Result<Object> decode_object(Decoder& d) {
  auto id = decode_object_id(d);
  if (!id.ok()) return id.error();
  auto count = d.varint();
  if (!count.ok()) return count.error();
  Object obj(id.value());
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto t = decode_tuple(d);
    if (!t.ok()) return t.error();
    obj.add(std::move(t).value());
  }
  return obj;
}

void encode(Encoder& e, const Pattern& p) {
  e.u8(static_cast<std::uint8_t>(p.kind()));
  switch (p.kind()) {
    case PatternKind::kAny:
      break;
    case PatternKind::kLiteral:
      encode(e, p.literal_value());
      break;
    case PatternKind::kRegex:
      e.string(p.regex_text());
      break;
    case PatternKind::kRange:
      e.svarint(p.range_lo());
      e.svarint(p.range_hi());
      break;
    case PatternKind::kBind:
    case PatternKind::kUse:
      e.string(p.var());
      break;
    case PatternKind::kRetrieve:
      e.varint(p.slot());
      break;
  }
}

Result<Pattern> decode_pattern(Decoder& d) {
  auto kind = d.u8();
  if (!kind.ok()) return kind.error();
  switch (static_cast<PatternKind>(kind.value())) {
    case PatternKind::kAny:
      return Pattern::any();
    case PatternKind::kLiteral: {
      auto v = decode_value(d);
      if (!v.ok()) return v.error();
      return Pattern::literal(std::move(v).value());
    }
    case PatternKind::kRegex: {
      auto s = d.string();
      if (!s.ok()) return s.error();
      return Pattern::regex(std::move(s).value());
    }
    case PatternKind::kRange: {
      auto lo = d.svarint();
      if (!lo.ok()) return lo.error();
      auto hi = d.svarint();
      if (!hi.ok()) return hi.error();
      return Pattern::range(lo.value(), hi.value());
    }
    case PatternKind::kBind: {
      auto s = d.string();
      if (!s.ok()) return s.error();
      return Pattern::bind(std::move(s).value());
    }
    case PatternKind::kUse: {
      auto s = d.string();
      if (!s.ok()) return s.error();
      return Pattern::use(std::move(s).value());
    }
    case PatternKind::kRetrieve: {
      auto slot = d.varint();
      if (!slot.ok()) return slot.error();
      return Pattern::retrieve(static_cast<std::uint32_t>(slot.value()));
    }
  }
  return make_error(Errc::kDecode,
                    "unknown pattern kind " + std::to_string(kind.value()));
}

namespace {
enum class FilterTag : std::uint8_t { kSelect = 1, kDeref = 2, kIterate = 3 };
}  // namespace

void encode(Encoder& e, const Filter& f) {
  if (const auto* s = std::get_if<SelectFilter>(&f)) {
    e.u8(static_cast<std::uint8_t>(FilterTag::kSelect));
    encode(e, s->type_pattern);
    encode(e, s->key_pattern);
    encode(e, s->data_pattern);
  } else if (const auto* dr = std::get_if<DerefFilter>(&f)) {
    e.u8(static_cast<std::uint8_t>(FilterTag::kDeref));
    e.string(dr->var);
    e.u8(dr->keep_source ? 1 : 0);
  } else {
    const auto& it = std::get<IterateFilter>(f);
    e.u8(static_cast<std::uint8_t>(FilterTag::kIterate));
    e.varint(it.body_start);
    e.varint(it.count);
  }
}

Result<Filter> decode_filter(Decoder& d) {
  auto tag = d.u8();
  if (!tag.ok()) return tag.error();
  switch (static_cast<FilterTag>(tag.value())) {
    case FilterTag::kSelect: {
      auto tp = decode_pattern(d);
      if (!tp.ok()) return tp.error();
      auto kp = decode_pattern(d);
      if (!kp.ok()) return kp.error();
      auto dp = decode_pattern(d);
      if (!dp.ok()) return dp.error();
      return Filter(SelectFilter{std::move(tp).value(), std::move(kp).value(),
                                 std::move(dp).value()});
    }
    case FilterTag::kDeref: {
      auto var = d.string();
      if (!var.ok()) return var.error();
      auto keep = d.u8();
      if (!keep.ok()) return keep.error();
      return Filter(DerefFilter{std::move(var).value(), keep.value() != 0});
    }
    case FilterTag::kIterate: {
      auto start = d.varint();
      if (!start.ok()) return start.error();
      auto count = d.varint();
      if (!count.ok()) return count.error();
      return Filter(IterateFilter{static_cast<std::uint32_t>(start.value()),
                                  static_cast<std::uint32_t>(count.value())});
    }
  }
  return make_error(Errc::kDecode,
                    "unknown filter tag " + std::to_string(tag.value()));
}

void encode(Encoder& e, const Query& q) {
  e.varint(q.size());
  for (const auto& f : q.filters()) encode(e, f);
  e.varint(q.initial_ids().size());
  for (const auto& id : q.initial_ids()) encode(e, id);
  e.string(q.initial_set_name());
  e.string(q.result_set_name());
  e.varint(q.retrieve_slots().size());
  for (const auto& s : q.retrieve_slots()) e.string(s);
  e.u8(q.count_only() ? 1 : 0);
}

Result<Query> decode_query(Decoder& d) {
  Query q;
  auto n = d.varint();
  if (!n.ok()) return n.error();
  std::vector<Filter> filters;
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto f = decode_filter(d);
    if (!f.ok()) return f.error();
    filters.push_back(std::move(f).value());
  }
  q.set_filters(std::move(filters));
  auto nids = d.varint();
  if (!nids.ok()) return nids.error();
  std::vector<ObjectId> ids;
  for (std::uint64_t i = 0; i < nids.value(); ++i) {
    auto id = decode_object_id(d);
    if (!id.ok()) return id.error();
    ids.push_back(id.value());
  }
  q.set_initial_ids(std::move(ids));
  auto iname = d.string();
  if (!iname.ok()) return iname.error();
  q.set_initial_set_name(std::move(iname).value());
  auto rname = d.string();
  if (!rname.ok()) return rname.error();
  q.set_result_set_name(std::move(rname).value());
  auto nslots = d.varint();
  if (!nslots.ok()) return nslots.error();
  std::vector<std::string> slots;
  for (std::uint64_t i = 0; i < nslots.value(); ++i) {
    auto s = d.string();
    if (!s.ok()) return s.error();
    slots.push_back(std::move(s).value());
  }
  q.set_retrieve_slots(std::move(slots));
  auto count_only = d.u8();
  if (!count_only.ok()) return count_only.error();
  q.set_count_only(count_only.value() != 0);
  // Decoded queries are validated: a malformed query must not enter an
  // engine via the network.
  if (auto v = q.validate(); !v.ok()) return v.error();
  return q;
}

Bytes encode_query(const Query& q) {
  Encoder e;
  encode(e, q);
  return e.take();
}

Result<Query> decode_query(std::span<const std::uint8_t> data) {
  Decoder d(data);
  auto q = decode_query(d);
  if (!q.ok()) return q.error();
  if (!d.done()) {
    return make_error(Errc::kDecode, "trailing bytes after query");
  }
  return q;
}

}  // namespace hyperfile::wire
