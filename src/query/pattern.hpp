// Patterns appearing in selection filters (paper Sections 2-3).
//
// A selection filter (type_pattern, key_pattern, data_pattern) matches a
// tuple field-by-field. The paper enumerates the pattern forms:
//   * a simple comparison — literal equivalence, a regular expression for
//     strings, or a range of values for a number;
//   * "?" — matches anything;
//   * "?X" — matches anything and *binds* the field value into the object's
//     matching-variable table O.mvars(X) (bindings are applied only if the
//     tuple as a whole matches);
//   * "$X" — matches if the field value is among the current bindings of X
//     (the footnote-2 "compare different tuples within a document" use);
//   * "->slot" — the retrieval operator: matches anything and emits the
//     field value to the query originator, tagged with the slot so the
//     application can bind it to a program variable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <regex>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "model/value.hpp"

namespace hyperfile {

enum class PatternKind : std::uint8_t {
  kAny = 0,        // ?
  kLiteral = 1,    // "abc" or 42 or a pointer literal
  kRegex = 2,      // /expr/ (strings only)
  kRange = 3,      // [lo..hi] (numbers only)
  kBind = 4,       // ?X
  kUse = 5,        // $X
  kRetrieve = 6,   // ->slot
};

/// Fast-path classification of a kRegex pattern whose source contains no
/// regex metacharacters: the innermost tuple scan then runs a plain
/// substring / prefix / suffix comparison instead of std::regex_search
/// (which dominates CPU-bound drains — see DESIGN.md §14). Detected once at
/// compile time; `matches_reference` keeps the generic engine available as
/// the equivalence oracle.
enum class RegexFastPath : std::uint8_t {
  kNone = 0,      // general regex: std::regex_search
  kContains = 1,  // "lit"    — unanchored substring
  kPrefix = 2,    // "^lit"   — anchored at the start
  kSuffix = 3,    // "lit$"   — anchored at the end
  kExact = 4,     // "^lit$"  — whole-string equality
};

class Pattern {
 public:
  /// Default-constructed pattern is kAny.
  Pattern() = default;

  static Pattern any() { return Pattern(); }
  static Pattern literal(Value v);
  /// Convenience literal from a string / number.
  static Pattern literal(std::string s) { return literal(Value::string(std::move(s))); }
  static Pattern literal(const char* s) { return literal(Value::string(s)); }
  static Pattern literal(std::int64_t n) { return literal(Value::number(n)); }
  /// Compiles `expr` as ECMAScript regex; returns an error for bad syntax.
  static Result<Pattern> regex(std::string expr);
  static Pattern range(std::int64_t lo, std::int64_t hi);
  static Pattern bind(std::string var);
  static Pattern use(std::string var);
  static Pattern retrieve(std::uint32_t slot);

  PatternKind kind() const { return kind_; }
  const Value& literal_value() const { return literal_; }
  const std::string& regex_text() const { return text_; }
  const std::string& var() const { return text_; }
  std::int64_t range_lo() const { return lo_; }
  std::int64_t range_hi() const { return hi_; }
  std::uint32_t slot() const { return slot_; }

  bool binds() const { return kind_ == PatternKind::kBind; }
  bool uses() const { return kind_ == PatternKind::kUse; }
  bool retrieves() const { return kind_ == PatternKind::kRetrieve; }

  /// Field-level match, ignoring bind/use semantics (those need the object's
  /// binding table and are handled by the engine's E function):
  ///   kAny / kBind / kRetrieve  -> true
  ///   kLiteral                  -> value equality (numbers vs numbers, ...)
  ///   kRegex                    -> value is a string matching the regex
  ///   kRange                    -> value is a number in [lo, hi]
  ///   kUse                      -> false (engine resolves against bindings)
  bool matches_basic(const Value& v) const;

  /// Match a plain string field (tuple type / key names) without
  /// materializing a Value — the allocation-free form the hot tuple scan
  /// uses. Identical semantics to matches_basic(Value::string(s)).
  bool matches_basic(std::string_view s) const;
  bool matches_basic(const std::string& s) const {
    return matches_basic(std::string_view(s));
  }

  /// The pre-fast-path generic matcher: literal patterns compare Values,
  /// regex patterns always run std::regex_search. Semantically identical to
  /// matches_basic — kept callable so the legacy drain baseline
  /// (engine/legacy_drain.hpp) measures the old cost and so tests can assert
  /// fast path == reference on arbitrary inputs.
  bool matches_reference(const Value& v) const;

  RegexFastPath fast_path() const { return fast_; }

  /// The literal a non-kNone fast path compares against (empty otherwise).
  /// Exposed so site summaries can probe kPrefix/kExact regexes against a
  /// peer's Bloom filter the same way the engine would match them.
  const std::string& fast_text() const { return fast_text_; }

  friend bool operator==(const Pattern& a, const Pattern& b);
  friend bool operator!=(const Pattern& a, const Pattern& b) { return !(a == b); }

  /// Textual form accepted by the parser (round-trips).
  std::string to_string() const;

 private:
  PatternKind kind_ = PatternKind::kAny;
  Value literal_;
  std::string text_;  // regex source, or variable name
  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
  std::uint32_t slot_ = 0;
  std::shared_ptr<const std::regex> compiled_;  // shared: patterns are copied a lot
  RegexFastPath fast_ = RegexFastPath::kNone;
  std::string fast_text_;  // the literal the fast path compares against
};

}  // namespace hyperfile
