#include "query/pattern.hpp"

namespace hyperfile {

Pattern Pattern::literal(Value v) {
  Pattern p;
  p.kind_ = PatternKind::kLiteral;
  p.literal_ = std::move(v);
  return p;
}

Result<Pattern> Pattern::regex(std::string expr) {
  Pattern p;
  p.kind_ = PatternKind::kRegex;
  try {
    p.compiled_ = std::make_shared<const std::regex>(expr, std::regex::ECMAScript);
  } catch (const std::regex_error& e) {
    return make_error(Errc::kInvalidArgument,
                      "bad regex '" + expr + "': " + e.what());
  }
  p.text_ = std::move(expr);
  return p;
}

Pattern Pattern::range(std::int64_t lo, std::int64_t hi) {
  Pattern p;
  p.kind_ = PatternKind::kRange;
  p.lo_ = lo;
  p.hi_ = hi;
  return p;
}

Pattern Pattern::bind(std::string var) {
  Pattern p;
  p.kind_ = PatternKind::kBind;
  p.text_ = std::move(var);
  return p;
}

Pattern Pattern::use(std::string var) {
  Pattern p;
  p.kind_ = PatternKind::kUse;
  p.text_ = std::move(var);
  return p;
}

Pattern Pattern::retrieve(std::uint32_t slot) {
  Pattern p;
  p.kind_ = PatternKind::kRetrieve;
  p.slot_ = slot;
  return p;
}

bool Pattern::matches_basic(const Value& v) const {
  switch (kind_) {
    case PatternKind::kAny:
    case PatternKind::kBind:
    case PatternKind::kRetrieve:
      return true;
    case PatternKind::kLiteral:
      return literal_ == v;
    case PatternKind::kRegex:
      return v.is_string() && compiled_ != nullptr &&
             std::regex_search(v.as_string(), *compiled_);
    case PatternKind::kRange:
      return v.is_number() && v.as_number() >= lo_ && v.as_number() <= hi_;
    case PatternKind::kUse:
      return false;  // needs binding table; resolved by the engine
  }
  return false;
}

bool operator==(const Pattern& a, const Pattern& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case PatternKind::kAny:
      return true;
    case PatternKind::kLiteral:
      return a.literal_ == b.literal_;
    case PatternKind::kRegex:
      return a.text_ == b.text_;
    case PatternKind::kRange:
      return a.lo_ == b.lo_ && a.hi_ == b.hi_;
    case PatternKind::kBind:
    case PatternKind::kUse:
      return a.text_ == b.text_;
    case PatternKind::kRetrieve:
      return a.slot_ == b.slot_;
  }
  return false;
}

std::string Pattern::to_string() const {
  switch (kind_) {
    case PatternKind::kAny:
      return "?";
    case PatternKind::kLiteral:
      return literal_.to_string();
    case PatternKind::kRegex:
      return "/" + text_ + "/";
    case PatternKind::kRange:
      return "[" + std::to_string(lo_) + ".." + std::to_string(hi_) + "]";
    case PatternKind::kBind:
      return "?" + text_;
    case PatternKind::kUse:
      return "$" + text_;
    case PatternKind::kRetrieve:
      return "->#" + std::to_string(slot_);
  }
  return "?";
}

}  // namespace hyperfile
