#include "query/pattern.hpp"

#include <algorithm>

namespace hyperfile {
namespace {

/// ECMAScript regex metacharacters: an expression containing none of these
/// matches exactly the strings its literal text occurs in.
bool is_regex_meta(char c) {
  switch (c) {
    case '\\': case '^': case '$': case '.': case '|':
    case '?': case '*': case '+': case '(': case ')':
    case '[': case ']': case '{': case '}':
      return true;
    default:
      return false;
  }
}

bool is_plain_literal(std::string_view s) {
  return std::none_of(s.begin(), s.end(), is_regex_meta);
}

/// Classify `expr` for the fast path. Anchors are only recognized at the
/// very ends; any other metacharacter (including an interior anchor) falls
/// back to the general engine.
RegexFastPath classify_fast_path(std::string_view expr, std::string* literal) {
  bool anchored_front = false;
  bool anchored_back = false;
  if (!expr.empty() && expr.front() == '^') {
    anchored_front = true;
    expr.remove_prefix(1);
  }
  if (!expr.empty() && expr.back() == '$') {
    anchored_back = true;
    expr.remove_suffix(1);
  }
  if (!is_plain_literal(expr)) return RegexFastPath::kNone;
  *literal = std::string(expr);
  if (anchored_front && anchored_back) return RegexFastPath::kExact;
  if (anchored_front) return RegexFastPath::kPrefix;
  if (anchored_back) return RegexFastPath::kSuffix;
  return RegexFastPath::kContains;
}

bool fast_match(RegexFastPath fast, std::string_view text,
                std::string_view s) {
  switch (fast) {
    case RegexFastPath::kContains:
      return s.find(text) != std::string_view::npos;
    case RegexFastPath::kPrefix:
      return s.size() >= text.size() && s.substr(0, text.size()) == text;
    case RegexFastPath::kSuffix:
      return s.size() >= text.size() &&
             s.substr(s.size() - text.size()) == text;
    case RegexFastPath::kExact:
      return s == text;
    case RegexFastPath::kNone:
      break;
  }
  return false;
}

}  // namespace

Pattern Pattern::literal(Value v) {
  Pattern p;
  p.kind_ = PatternKind::kLiteral;
  p.literal_ = std::move(v);
  return p;
}

Result<Pattern> Pattern::regex(std::string expr) {
  Pattern p;
  p.kind_ = PatternKind::kRegex;
  try {
    p.compiled_ = std::make_shared<const std::regex>(expr, std::regex::ECMAScript);
  } catch (const std::regex_error& e) {
    return make_error(Errc::kInvalidArgument,
                      "bad regex '" + expr + "': " + e.what());
  }
  // The compiled regex is kept even when the fast path applies: the legacy
  // drain baseline and the fast==reference equivalence tests need the
  // generic engine for the same pattern object.
  p.fast_ = classify_fast_path(expr, &p.fast_text_);
  p.text_ = std::move(expr);
  return p;
}

Pattern Pattern::range(std::int64_t lo, std::int64_t hi) {
  Pattern p;
  p.kind_ = PatternKind::kRange;
  p.lo_ = lo;
  p.hi_ = hi;
  return p;
}

Pattern Pattern::bind(std::string var) {
  Pattern p;
  p.kind_ = PatternKind::kBind;
  p.text_ = std::move(var);
  return p;
}

Pattern Pattern::use(std::string var) {
  Pattern p;
  p.kind_ = PatternKind::kUse;
  p.text_ = std::move(var);
  return p;
}

Pattern Pattern::retrieve(std::uint32_t slot) {
  Pattern p;
  p.kind_ = PatternKind::kRetrieve;
  p.slot_ = slot;
  return p;
}

bool Pattern::matches_basic(const Value& v) const {
  switch (kind_) {
    case PatternKind::kAny:
    case PatternKind::kBind:
    case PatternKind::kRetrieve:
      return true;
    case PatternKind::kLiteral:
      return literal_ == v;
    case PatternKind::kRegex:
      if (!v.is_string()) return false;
      if (fast_ != RegexFastPath::kNone) {
        return fast_match(fast_, fast_text_, v.as_string());
      }
      return compiled_ != nullptr && std::regex_search(v.as_string(), *compiled_);
    case PatternKind::kRange:
      return v.is_number() && v.as_number() >= lo_ && v.as_number() <= hi_;
    case PatternKind::kUse:
      return false;  // needs binding table; resolved by the engine
  }
  return false;
}

bool Pattern::matches_basic(std::string_view s) const {
  switch (kind_) {
    case PatternKind::kAny:
    case PatternKind::kBind:
    case PatternKind::kRetrieve:
      return true;
    case PatternKind::kLiteral:
      return literal_.is_string() && literal_.as_string() == s;
    case PatternKind::kRegex:
      if (fast_ != RegexFastPath::kNone) return fast_match(fast_, fast_text_, s);
      return compiled_ != nullptr &&
             std::regex_search(s.begin(), s.end(), *compiled_);
    case PatternKind::kRange:
      return false;  // a string field is never a number
    case PatternKind::kUse:
      return false;  // needs binding table; resolved by the engine
  }
  return false;
}

bool Pattern::matches_reference(const Value& v) const {
  if (kind_ == PatternKind::kRegex) {
    return v.is_string() && compiled_ != nullptr &&
           std::regex_search(v.as_string(), *compiled_);
  }
  return matches_basic(v);
}

bool operator==(const Pattern& a, const Pattern& b) {
  if (a.kind_ != b.kind_) return false;
  switch (a.kind_) {
    case PatternKind::kAny:
      return true;
    case PatternKind::kLiteral:
      return a.literal_ == b.literal_;
    case PatternKind::kRegex:
      return a.text_ == b.text_;
    case PatternKind::kRange:
      return a.lo_ == b.lo_ && a.hi_ == b.hi_;
    case PatternKind::kBind:
    case PatternKind::kUse:
      return a.text_ == b.text_;
    case PatternKind::kRetrieve:
      return a.slot_ == b.slot_;
  }
  return false;
}

std::string Pattern::to_string() const {
  switch (kind_) {
    case PatternKind::kAny:
      return "?";
    case PatternKind::kLiteral:
      return literal_.to_string();
    case PatternKind::kRegex:
      return "/" + text_ + "/";
    case PatternKind::kRange:
      return "[" + std::to_string(lo_) + ".." + std::to_string(hi_) + "]";
    case PatternKind::kBind:
      return "?" + text_;
    case PatternKind::kUse:
      return "$" + text_;
    case PatternKind::kRetrieve:
      return "->#" + std::to_string(slot_);
  }
  return "?";
}

}  // namespace hyperfile
