// Parser for the ASCII rendering of the HyperFile query language.
//
// Grammar (whitespace and '|' separators are insignificant between elements):
//
//   query    := initial body ["count"] "->" [IDENT]
//   initial  := IDENT                         named stored set
//             | "{" [oid ("," oid)*] "}"      explicit object ids
//   oid      := INT "." INT                   birth_site . sequence
//   body     := element*
//   element  := select | deref | "[" body "]" (INT | "*")
//   select   := "(" pattern "," pattern "," pattern ")"
//   deref    := "^^" IDENT                    paper's  ⇑X  (keep source)
//             | "^" IDENT                     paper's  ↑X  (drop source)
//   pattern  := "?" [IDENT]                   wildcard / bind variable
//             | "$" IDENT                     use variable bindings
//             | "->" IDENT                    retrieval into named slot
//             | STRING                        string literal ("...")
//             | "/" regex "/"                 regular expression
//             | INT                           number literal
//             | "[" INT ".." INT "]"          numeric range
//             | IDENT                         bare word = string literal
//
// Examples from the paper:
//   S [ (pointer, "Reference", ?X) | ^^X ]3 (keyword, "Distributed", ?) -> T
//   S [ (pointer, "Called Routine", ?X) | ^^X ]* (string, "Author", "Joe Programmer") -> T
//   S (string, "Author", "Chris Clifton") (string, "Title", ->title) -> T
#pragma once

#include <string>
#include <string_view>

#include "common/result.hpp"
#include "query/query.hpp"

namespace hyperfile {

Result<Query> parse_query(std::string_view text);

}  // namespace hyperfile
