#include "query/parser.hpp"

#include <cctype>
#include <cstdlib>

namespace hyperfile {
namespace {

enum class Tok {
  kEnd,
  kIdent,
  kInt,
  kString,
  kRegex,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kCaret,        // ^
  kCaretCaret,   // ^^
  kQuestion,     // ?
  kDollar,       // $
  kArrow,        // ->
  kStar,         // *
  kDot,          // .
  kDotDot,       // ..
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t number = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<Token> next() {
    skip_noise();
    Token t;
    t.pos = i_;
    if (i_ >= src_.size()) return t;
    const char c = src_[i_];
    switch (c) {
      case '(':
        ++i_;
        t.kind = Tok::kLParen;
        return t;
      case ')':
        ++i_;
        t.kind = Tok::kRParen;
        return t;
      case '{':
        ++i_;
        t.kind = Tok::kLBrace;
        return t;
      case '}':
        ++i_;
        t.kind = Tok::kRBrace;
        return t;
      case '[':
        ++i_;
        t.kind = Tok::kLBracket;
        return t;
      case ']':
        ++i_;
        t.kind = Tok::kRBracket;
        return t;
      case ',':
        ++i_;
        t.kind = Tok::kComma;
        return t;
      case '*':
        ++i_;
        t.kind = Tok::kStar;
        return t;
      case '?':
        ++i_;
        t.kind = Tok::kQuestion;
        return t;
      case '$':
        ++i_;
        t.kind = Tok::kDollar;
        return t;
      case '^':
        ++i_;
        if (i_ < src_.size() && src_[i_] == '^') {
          ++i_;
          t.kind = Tok::kCaretCaret;
        } else {
          t.kind = Tok::kCaret;
        }
        return t;
      case '.':
        ++i_;
        if (i_ < src_.size() && src_[i_] == '.') {
          ++i_;
          t.kind = Tok::kDotDot;
        } else {
          t.kind = Tok::kDot;
        }
        return t;
      case '-':
        if (i_ + 1 < src_.size() && src_[i_ + 1] == '>') {
          i_ += 2;
          t.kind = Tok::kArrow;
          return t;
        }
        return lex_number(t);
      case '"':
        return lex_string(t);
      case '/':
        return lex_regex(t);
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return lex_number(t);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return lex_ident(t);
    }
    return err("unexpected character '" + std::string(1, c) + "'");
  }

 private:
  void skip_noise() {
    // '|' is a visual separator inside iterator bodies; treat as whitespace.
    while (i_ < src_.size() &&
           (std::isspace(static_cast<unsigned char>(src_[i_])) || src_[i_] == '|')) {
      ++i_;
    }
  }

  Result<Token> lex_number(Token t) {
    t.kind = Tok::kInt;
    std::size_t start = i_;
    if (src_[i_] == '-') ++i_;
    while (i_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[i_]))) {
      ++i_;
    }
    if (i_ == start || (src_[start] == '-' && i_ == start + 1)) {
      return err("malformed number");
    }
    t.text = std::string(src_.substr(start, i_ - start));
    t.number = std::strtoll(t.text.c_str(), nullptr, 10);
    return t;
  }

  Result<Token> lex_string(Token t) {
    t.kind = Tok::kString;
    ++i_;  // opening quote
    std::string out;
    while (i_ < src_.size() && src_[i_] != '"') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) ++i_;
      out += src_[i_++];
    }
    if (i_ >= src_.size()) return err("unterminated string literal");
    ++i_;  // closing quote
    t.text = std::move(out);
    return t;
  }

  Result<Token> lex_regex(Token t) {
    t.kind = Tok::kRegex;
    ++i_;  // opening slash
    std::string out;
    while (i_ < src_.size() && src_[i_] != '/') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) out += src_[i_++];
      out += src_[i_++];
    }
    if (i_ >= src_.size()) return err("unterminated regex");
    ++i_;  // closing slash
    t.text = std::move(out);
    return t;
  }

  Result<Token> lex_ident(Token t) {
    t.kind = Tok::kIdent;
    std::size_t start = i_;
    while (i_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[i_])) ||
                                src_[i_] == '_')) {
      ++i_;
    }
    t.text = std::string(src_.substr(start, i_ - start));
    return t;
  }

  Error err(std::string msg) {
    return make_error(Errc::kInvalidArgument,
                      msg + " at offset " + std::to_string(i_));
  }

  std::string_view src_;
  std::size_t i_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  Result<Query> parse() {
    if (auto r = advance(); !r.ok()) return r.error();

    // Initial set.
    if (cur_.kind == Tok::kIdent) {
      q_.set_initial_set_name(cur_.text);
      if (auto r = advance(); !r.ok()) return r.error();
    } else if (cur_.kind == Tok::kLBrace) {
      if (auto r = parse_id_list(); !r.ok()) return r.error();
    } else {
      return fail("expected initial set (name or {ids})");
    }

    // Body.
    if (auto r = parse_body(/*inside_group=*/false); !r.ok()) return r.error();

    // Optional "count", then -> [name].
    if (cur_.kind == Tok::kIdent && cur_.text == "count") {
      q_.set_count_only(true);
      if (auto r = advance(); !r.ok()) return r.error();
    }
    if (cur_.kind != Tok::kArrow) return fail("expected '->' ending the query");
    if (auto r = advance(); !r.ok()) return r.error();
    if (cur_.kind == Tok::kIdent) {
      q_.set_result_set_name(cur_.text);
      if (auto r = advance(); !r.ok()) return r.error();
    }
    if (cur_.kind != Tok::kEnd) return fail("trailing input after query");

    if (auto v = q_.validate(); !v.ok()) return v.error();
    return q_;
  }

 private:
  Result<void> advance() {
    auto t = lex_.next();
    if (!t.ok()) return t.error();
    cur_ = std::move(t).value();
    return {};
  }

  Error fail(std::string msg) {
    return make_error(Errc::kInvalidArgument,
                      msg + " at offset " + std::to_string(cur_.pos));
  }

  Result<void> parse_id_list() {
    // cur_ is '{'
    if (auto r = advance(); !r.ok()) return r.error();
    std::vector<ObjectId> ids;
    while (cur_.kind != Tok::kRBrace) {
      if (cur_.kind != Tok::kInt) return fail("expected object id (site.seq)");
      const auto site = static_cast<SiteId>(cur_.number);
      if (auto r = advance(); !r.ok()) return r.error();
      if (cur_.kind != Tok::kDot) return fail("expected '.' in object id");
      if (auto r = advance(); !r.ok()) return r.error();
      if (cur_.kind != Tok::kInt) return fail("expected sequence in object id");
      ids.emplace_back(site, static_cast<LocalSeq>(cur_.number));
      if (auto r = advance(); !r.ok()) return r.error();
      if (cur_.kind == Tok::kComma) {
        if (auto r = advance(); !r.ok()) return r.error();
      }
    }
    if (auto r = advance(); !r.ok()) return r.error();  // eat '}'
    q_.set_initial_ids(std::move(ids));
    return {};
  }

  /// Parses elements until a token that cannot start one. When
  /// inside_group, the caller handles the closing ']'.
  Result<void> parse_body(bool inside_group) {
    for (;;) {
      switch (cur_.kind) {
        case Tok::kLParen: {
          if (auto r = parse_select(); !r.ok()) return r;
          break;
        }
        case Tok::kCaret:
        case Tok::kCaretCaret: {
          const bool keep = cur_.kind == Tok::kCaretCaret;
          if (auto r = advance(); !r.ok()) return r.error();
          if (cur_.kind != Tok::kIdent) return fail("expected variable after ^");
          q_.add_filter(DerefFilter{cur_.text, keep});
          if (auto r = advance(); !r.ok()) return r.error();
          break;
        }
        case Tok::kLBracket: {
          const std::uint32_t body_start = q_.size() + 1;
          if (auto r = advance(); !r.ok()) return r.error();
          if (auto r = parse_body(/*inside_group=*/true); !r.ok()) return r;
          if (cur_.kind != Tok::kRBracket) return fail("expected ']'");
          if (auto r = advance(); !r.ok()) return r.error();
          std::uint32_t k = kUnboundedIterations;
          if (cur_.kind == Tok::kStar) {
            if (auto r = advance(); !r.ok()) return r.error();
          } else if (cur_.kind == Tok::kInt) {
            if (cur_.number <= 0) return fail("iterator count must be positive");
            k = static_cast<std::uint32_t>(cur_.number);
            if (auto r = advance(); !r.ok()) return r.error();
          } else {
            return fail("expected iteration count or '*' after ']'");
          }
          q_.add_filter(IterateFilter{body_start, k});
          break;
        }
        default:
          if (inside_group && cur_.kind != Tok::kRBracket) {
            return fail("unexpected token in iterator body");
          }
          return {};
      }
    }
  }

  Result<void> parse_select() {
    // cur_ is '('
    if (auto r = advance(); !r.ok()) return r.error();
    Pattern pats[3];
    for (int i = 0; i < 3; ++i) {
      auto p = parse_pattern();
      if (!p.ok()) return p.error();
      pats[i] = std::move(p).value();
      if (i < 2) {
        if (cur_.kind != Tok::kComma) return fail("expected ',' in selection");
        if (auto r = advance(); !r.ok()) return r.error();
      }
    }
    if (cur_.kind != Tok::kRParen) return fail("expected ')' closing selection");
    if (auto r = advance(); !r.ok()) return r.error();
    q_.add_filter(SelectFilter{std::move(pats[0]), std::move(pats[1]),
                               std::move(pats[2])});
    return {};
  }

  Result<Pattern> parse_pattern() {
    switch (cur_.kind) {
      case Tok::kQuestion: {
        if (auto r = advance(); !r.ok()) return r.error();
        if (cur_.kind == Tok::kIdent) {
          Pattern p = Pattern::bind(cur_.text);
          if (auto r = advance(); !r.ok()) return r.error();
          return p;
        }
        return Pattern::any();
      }
      case Tok::kDollar: {
        if (auto r = advance(); !r.ok()) return r.error();
        if (cur_.kind != Tok::kIdent) return fail("expected variable after '$'");
        Pattern p = Pattern::use(cur_.text);
        if (auto r = advance(); !r.ok()) return r.error();
        return p;
      }
      case Tok::kArrow: {
        if (auto r = advance(); !r.ok()) return r.error();
        if (cur_.kind != Tok::kIdent) return fail("expected slot name after '->'");
        const std::uint32_t slot = q_.add_retrieve_slot(cur_.text);
        if (auto r = advance(); !r.ok()) return r.error();
        return Pattern::retrieve(slot);
      }
      case Tok::kString: {
        Pattern p = Pattern::literal(cur_.text);
        if (auto r = advance(); !r.ok()) return r.error();
        return p;
      }
      case Tok::kRegex: {
        auto p = Pattern::regex(cur_.text);
        if (!p.ok()) return p.error();
        if (auto r = advance(); !r.ok()) return r.error();
        return std::move(p).value();
      }
      case Tok::kInt: {
        const std::int64_t n = cur_.number;
        if (auto r = advance(); !r.ok()) return r.error();
        return Pattern::literal(n);
      }
      case Tok::kLBracket: {
        if (auto r = advance(); !r.ok()) return r.error();
        if (cur_.kind != Tok::kInt) return fail("expected range lower bound");
        const std::int64_t lo = cur_.number;
        if (auto r = advance(); !r.ok()) return r.error();
        if (cur_.kind != Tok::kDotDot) return fail("expected '..' in range");
        if (auto r = advance(); !r.ok()) return r.error();
        if (cur_.kind != Tok::kInt) return fail("expected range upper bound");
        const std::int64_t hi = cur_.number;
        if (auto r = advance(); !r.ok()) return r.error();
        if (cur_.kind != Tok::kRBracket) return fail("expected ']' closing range");
        if (auto r = advance(); !r.ok()) return r.error();
        return Pattern::range(lo, hi);
      }
      case Tok::kIdent: {
        // Bare word: string literal (the paper writes tuple types unquoted).
        Pattern p = Pattern::literal(cur_.text);
        if (auto r = advance(); !r.ok()) return r.error();
        return p;
      }
      default:
        return fail("expected pattern");
    }
  }

  Lexer lex_;
  Token cur_;
  Query q_;
};

}  // namespace

Result<Query> parse_query(std::string_view text) { return Parser(text).parse(); }

}  // namespace hyperfile
