// Query rewriting: soundness-preserving simplifications applied before
// execution (and before a query is shipped to remote sites — a smaller body
// means smaller messages for every dereference).
//
// The rewrites lean on two properties the paper states explicitly:
//   * idempotence — "Operations in the query interface language are
//     idempotent; passing an object through the same filter many times will
//     not change the result" (Section 3.1), and
//   * iterator semantics — an object re-enters a loop body only when it was
//     dereferenced into the loop and its chain depth is below k.
//
// Passes (run to fixpoint):
//   1. duplicate-select elimination — identical consecutive selection
//      filters collapse to one (idempotence);
//   2. redundant-wildcard elimination — a (?, ?, ?) select adjacent to
//      another selection filter is implied by it (any object passing a
//      selection has at least one tuple) and is dropped;
//   3. single-pass iterator elimination — an iterator with k == 1 never
//      loops anything back (every dereferenced object enters with chain
//      depth >= 2 >= k), so the marker is dropped;
//   4. pointerless-loop elimination — an iterator whose body contains no
//      dereference can never receive a mid-loop entrant, so the marker is
//      dropped (the body runs exactly once either way);
//   5. dead-binding elimination — a ?X binding whose variable is never
//      dereferenced or used downstream becomes a plain wildcard, saving the
//      binding-table churn on every matching tuple.
//
// Every pass preserves the result set and retrieved values for all inputs;
// tests/test_rewrite.cpp checks this on randomized graphs and queries.
#pragma once

#include "query/query.hpp"

namespace hyperfile {

struct RewriteStats {
  std::uint32_t duplicate_selects_removed = 0;
  std::uint32_t wildcard_selects_removed = 0;
  std::uint32_t iterators_removed = 0;
  std::uint32_t bindings_stripped = 0;

  std::uint32_t total() const {
    return duplicate_selects_removed + wildcard_selects_removed +
           iterators_removed + bindings_stripped;
  }
};

/// Returns the simplified query (possibly identical). The input must be
/// valid; the output is always valid.
Query rewrite_query(const Query& query, RewriteStats* stats = nullptr);

}  // namespace hyperfile
