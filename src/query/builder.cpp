#include "query/builder.hpp"

#include <stdexcept>

#include "model/tuple.hpp"

namespace hyperfile {

QueryBuilder QueryBuilder::from_set(std::string name) {
  QueryBuilder b;
  b.q_.set_initial_set_name(std::move(name));
  return b;
}

QueryBuilder QueryBuilder::from_ids(std::vector<ObjectId> ids) {
  QueryBuilder b;
  b.q_.set_initial_ids(std::move(ids));
  return b;
}

QueryBuilder& QueryBuilder::select(Pattern type, Pattern key, Pattern data) {
  q_.add_filter(SelectFilter{std::move(type), std::move(key), std::move(data)});
  return *this;
}

QueryBuilder& QueryBuilder::select_key(std::string type, std::string key) {
  return select(Pattern::literal(std::move(type)), Pattern::literal(std::move(key)),
                Pattern::any());
}

QueryBuilder& QueryBuilder::select_eq(std::string type, std::string key, Value data) {
  return select(Pattern::literal(std::move(type)), Pattern::literal(std::move(key)),
                Pattern::literal(std::move(data)));
}

QueryBuilder& QueryBuilder::deref_keep(std::string var) {
  q_.add_filter(DerefFilter{std::move(var), /*keep_source=*/true});
  return *this;
}

QueryBuilder& QueryBuilder::deref_only(std::string var) {
  q_.add_filter(DerefFilter{std::move(var), /*keep_source=*/false});
  return *this;
}

QueryBuilder& QueryBuilder::follow(std::string pointer_key, bool keep_source) {
  std::string var = "__f" + std::to_string(synth_var_counter_++);
  select(Pattern::literal(tuple_types::kPointer), Pattern::literal(std::move(pointer_key)),
         Pattern::bind(var));
  q_.add_filter(DerefFilter{std::move(var), keep_source});
  return *this;
}

QueryBuilder& QueryBuilder::begin_iterate(std::uint32_t k) {
  iterate_stack_.push_back(q_.size() + 1);
  // Stash k by encoding it into the stack? Keep a parallel stack instead.
  pending_counts_.push_back(k);
  return *this;
}

QueryBuilder& QueryBuilder::end_iterate() {
  if (iterate_stack_.empty()) {
    throw std::logic_error("QueryBuilder::end_iterate without begin_iterate");
  }
  const std::uint32_t body_start = iterate_stack_.back();
  iterate_stack_.pop_back();
  const std::uint32_t k = pending_counts_.back();
  pending_counts_.pop_back();
  q_.add_filter(IterateFilter{body_start, k});
  return *this;
}

QueryBuilder& QueryBuilder::retrieve(std::string type, std::string key,
                                     std::string var) {
  const std::uint32_t slot = q_.add_retrieve_slot(std::move(var));
  return select(Pattern::literal(std::move(type)), Pattern::literal(std::move(key)),
                Pattern::retrieve(slot));
}

QueryBuilder& QueryBuilder::count_only() {
  q_.set_count_only(true);
  return *this;
}

Query QueryBuilder::into(std::string name) {
  q_.set_result_set_name(std::move(name));
  return build();
}

Query QueryBuilder::build() {
  if (!iterate_stack_.empty()) {
    throw std::logic_error("QueryBuilder: unclosed begin_iterate");
  }
  auto v = q_.validate();
  if (!v.ok()) {
    throw std::invalid_argument("QueryBuilder produced invalid query: " +
                                v.error().to_string());
  }
  return q_;
}

}  // namespace hyperfile
