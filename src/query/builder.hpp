// Fluent construction of queries from application code.
//
// Example — the paper's Section 3 query
//   S [ (pointer, "Reference", ?X) | ^^X ]3 (keyword, "Distributed", ?) -> T
// becomes:
//   Query q = QueryBuilder::from_set("S")
//       .begin_iterate(3)
//         .select(tuple_types::kPointer, "Reference", Pattern::bind("X"))
//         .deref_keep("X")
//       .end_iterate()
//       .select_key(tuple_types::kKeyword, "Distributed")
//       .into("T");
#pragma once

#include <string>
#include <vector>

#include "query/query.hpp"

namespace hyperfile {

class QueryBuilder {
 public:
  /// Start from a named stored set.
  static QueryBuilder from_set(std::string name);
  /// Start from explicit object ids.
  static QueryBuilder from_ids(std::vector<ObjectId> ids);

  /// Selection with explicit patterns. String arguments are implicitly
  /// literal patterns via Pattern's converting factories.
  QueryBuilder& select(Pattern type, Pattern key, Pattern data);
  /// Common shorthand: literal type + key, any data — e.g. keyword tests.
  QueryBuilder& select_key(std::string type, std::string key);
  /// Common shorthand: literal type/key/string-data equality.
  QueryBuilder& select_eq(std::string type, std::string key, Value data);

  /// Follow pointers bound to `var`, keeping the pointing object (paper ⇑).
  QueryBuilder& deref_keep(std::string var);
  /// Follow pointers bound to `var`, dropping the pointing object (paper ↑).
  QueryBuilder& deref_only(std::string var);

  /// Convenience: select pointers with the given key into a fresh internal
  /// variable and dereference them. `keep_source` selects ⇑ vs ↑.
  QueryBuilder& follow(std::string pointer_key, bool keep_source = true);

  /// Begin an iterator body repeated to depth k (kUnboundedIterations = *).
  QueryBuilder& begin_iterate(std::uint32_t k = kUnboundedIterations);
  QueryBuilder& end_iterate();

  /// Retrieval: match (type, key, anything) and ship the data value back to
  /// the application tagged with `var`. Returns the slot index via out-param
  /// overload-free API: slots are looked up by name in QueryResult.
  QueryBuilder& retrieve(std::string type, std::string key, std::string var);

  /// Enable the distributed-set optimisation (sites report counts only).
  QueryBuilder& count_only();

  /// Finish, binding the result set to `name`. Asserts the query validates.
  Query into(std::string name);
  /// Finish without binding a result name.
  Query build();

 private:
  QueryBuilder() = default;
  Query q_;
  std::vector<std::uint32_t> iterate_stack_;   // body_start indexes (1-based)
  std::vector<std::uint32_t> pending_counts_;  // k for each open iterator
  int synth_var_counter_ = 0;
};

}  // namespace hyperfile
