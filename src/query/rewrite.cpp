#include "query/rewrite.hpp"

#include <cassert>
#include <set>

namespace hyperfile {
namespace {

bool is_all_any_select(const Filter& f) {
  const auto* s = std::get_if<SelectFilter>(&f);
  return s != nullptr && s->type_pattern.kind() == PatternKind::kAny &&
         s->key_pattern.kind() == PatternKind::kAny &&
         s->data_pattern.kind() == PatternKind::kAny;
}

bool is_body_start_of_any_iterator(const Query& q, std::uint32_t index) {
  for (std::uint32_t i = 1; i <= q.size(); ++i) {
    const auto* it = std::get_if<IterateFilter>(&q.filter(i));
    if (it != nullptr && it->body_start == index) return true;
  }
  return false;
}

/// Rebuild `q` without the filter at `removed` (1-based), shifting iterator
/// body_start references that point past it.
Query remove_filter(const Query& q, std::uint32_t removed) {
  Query out;
  out.set_initial_ids(q.initial_ids());
  out.set_initial_set_name(q.initial_set_name());
  out.set_result_set_name(q.result_set_name());
  out.set_retrieve_slots(q.retrieve_slots());
  out.set_count_only(q.count_only());
  for (std::uint32_t i = 1; i <= q.size(); ++i) {
    if (i == removed) continue;
    Filter f = q.filter(i);
    if (auto* it = std::get_if<IterateFilter>(&f)) {
      if (it->body_start > removed) --it->body_start;
    }
    out.add_filter(std::move(f));
  }
  return out;
}

/// Variables that are consumed somewhere (dereferenced or used via $X).
std::set<std::string> live_variables(const Query& q) {
  std::set<std::string> live;
  for (const Filter& f : q.filters()) {
    if (const auto* d = std::get_if<DerefFilter>(&f)) {
      live.insert(d->var);
    } else if (const auto* s = std::get_if<SelectFilter>(&f)) {
      for (const Pattern* p :
           {&s->type_pattern, &s->key_pattern, &s->data_pattern}) {
        if (p->uses()) live.insert(p->var());
      }
    }
  }
  return live;
}

// Each pass returns true if it changed the query.

bool pass_duplicate_selects(Query& q, RewriteStats& stats) {
  for (std::uint32_t i = 2; i <= q.size(); ++i) {
    const auto* cur = std::get_if<SelectFilter>(&q.filter(i));
    const auto* prev = std::get_if<SelectFilter>(&q.filter(i - 1));
    if (cur == nullptr || prev == nullptr || !(*cur == *prev)) continue;
    // Identical consecutive selects: idempotent, and the second one cannot
    // be an independent entry point unless it starts an iterator body or
    // follows a dereference (prev is a select, so it doesn't). Retrieval
    // patterns make the copies non-redundant message-wise, so skip those.
    if (cur->type_pattern.retrieves() || cur->key_pattern.retrieves() ||
        cur->data_pattern.retrieves()) {
      continue;
    }
    if (is_body_start_of_any_iterator(q, i)) continue;
    q = remove_filter(q, i);
    ++stats.duplicate_selects_removed;
    return true;
  }
  return false;
}

bool pass_redundant_wildcards(Query& q, RewriteStats& stats) {
  for (std::uint32_t i = 2; i <= q.size(); ++i) {
    if (!is_all_any_select(q.filter(i))) continue;
    // Safe to drop only when every object reaching filter i has already
    // passed a selection in the same processing pass: the previous filter
    // is a select (so no deref entry lands here) and i is not a loop-back
    // target.
    if (!std::holds_alternative<SelectFilter>(q.filter(i - 1))) continue;
    if (is_body_start_of_any_iterator(q, i)) continue;
    q = remove_filter(q, i);
    ++stats.wildcard_selects_removed;
    return true;
  }
  return false;
}

bool pass_trivial_iterators(Query& q, RewriteStats& stats) {
  for (std::uint32_t i = 1; i <= q.size(); ++i) {
    const auto* it = std::get_if<IterateFilter>(&q.filter(i));
    if (it == nullptr) continue;

    // k == 1: every dereferenced object enters with chain depth >= 2 >= k
    // and falls straight through; initial-entry objects exit because
    // start <= j. Nothing ever loops back.
    if (it->count == 1) {
      q = remove_filter(q, i);
      ++stats.iterators_removed;
      return true;
    }

    // No dereference in the body: loop-back requires an object that
    // *entered* the body via a dereference inside it (start > body_start),
    // which cannot exist. The marker is a no-op.
    bool has_deref = false;
    for (std::uint32_t b = it->body_start; b < i; ++b) {
      if (std::holds_alternative<DerefFilter>(q.filter(b))) {
        has_deref = true;
        break;
      }
    }
    if (!has_deref) {
      q = remove_filter(q, i);
      ++stats.iterators_removed;
      return true;
    }
  }
  return false;
}

bool pass_dead_bindings(Query& q, RewriteStats& stats) {
  const std::set<std::string> live = live_variables(q);
  bool changed = false;
  std::vector<Filter> filters = q.filters();
  for (Filter& f : filters) {
    auto* s = std::get_if<SelectFilter>(&f);
    if (s == nullptr) continue;
    for (Pattern* p : {&s->type_pattern, &s->key_pattern, &s->data_pattern}) {
      if (p->binds() && live.count(p->var()) == 0) {
        *p = Pattern::any();
        ++stats.bindings_stripped;
        changed = true;
      }
    }
  }
  if (changed) q.set_filters(std::move(filters));
  return changed;
}

}  // namespace

Query rewrite_query(const Query& query, RewriteStats* stats) {
  RewriteStats local;
  Query q = query;
  bool changed = true;
  while (changed) {
    changed = pass_dead_bindings(q, local);
    changed = pass_duplicate_selects(q, local) || changed;
    changed = pass_redundant_wildcards(q, local) || changed;
    changed = pass_trivial_iterators(q, local) || changed;
  }
  assert(q.validate().ok());
  if (stats != nullptr) *stats = local;
  return q;
}

}  // namespace hyperfile
