// Query: S_i F_1 F_2 ... F_n -> S_o  (paper Section 3).
//
// The initial set S_i is either an explicit list of object ids or the name
// of a stored set (a HyperFile set is itself an object whose pointer tuples
// enumerate the members — see store/site_store.hpp). The result S_o may be
// bound to a name so later queries can start from it.
//
// Queries are immutable once validated; the engine, the wire format, and the
// simulator all consume the same Query value.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "query/filter.hpp"

namespace hyperfile {

class Query {
 public:
  Query() = default;

  // --- construction (used by QueryBuilder / Parser / wire decoding) ---
  void set_initial_ids(std::vector<ObjectId> ids) { initial_ids_ = std::move(ids); }
  void set_initial_set_name(std::string name) { initial_set_name_ = std::move(name); }
  void set_result_set_name(std::string name) { result_set_name_ = std::move(name); }
  void add_filter(Filter f) { filters_.push_back(std::move(f)); }
  void set_filters(std::vector<Filter> fs) { filters_ = std::move(fs); }
  std::uint32_t add_retrieve_slot(std::string name) {
    retrieve_slots_.push_back(std::move(name));
    return static_cast<std::uint32_t>(retrieve_slots_.size() - 1);
  }
  void set_retrieve_slots(std::vector<std::string> names) {
    retrieve_slots_ = std::move(names);
  }
  /// Distributed-set optimisation (paper Section 5): sites keep their result
  /// portions locally under the result set name and report only counts.
  void set_count_only(bool v) { count_only_ = v; }

  // --- accessors ---
  /// Number of filters n. Filters are addressed 1-based to match the paper.
  std::uint32_t size() const { return static_cast<std::uint32_t>(filters_.size()); }
  const Filter& filter(std::uint32_t index_1based) const {
    return filters_[index_1based - 1];
  }
  const std::vector<Filter>& filters() const { return filters_; }

  const std::vector<ObjectId>& initial_ids() const { return initial_ids_; }
  const std::string& initial_set_name() const { return initial_set_name_; }
  const std::string& result_set_name() const { return result_set_name_; }
  const std::vector<std::string>& retrieve_slots() const { return retrieve_slots_; }
  bool count_only() const { return count_only_; }

  /// Static nesting depth of a filter position (0 = outside all iterators).
  /// An iterator filter I_j at index i counts as inside its own loop [j, i],
  /// since its termination test consults that loop's chain counter.
  /// Valid indexes are 1..n; index n+1 ("past the end") has depth 0.
  std::uint32_t iterator_depth(std::uint32_t index_1based) const;

  /// Structural and semantic validation:
  ///  * every IterateFilter body_start j satisfies 1 <= j <= own index;
  ///  * iterator intervals are properly nested (no partial overlap);
  ///  * every Deref/Use variable has a Bind at an index not after it;
  ///  * retrieve slots referenced by patterns exist.
  Result<void> validate() const;

  friend bool operator==(const Query& a, const Query& b) {
    return a.filters_ == b.filters_ && a.initial_ids_ == b.initial_ids_ &&
           a.initial_set_name_ == b.initial_set_name_ &&
           a.result_set_name_ == b.result_set_name_ &&
           a.retrieve_slots_ == b.retrieve_slots_ &&
           a.count_only_ == b.count_only_;
  }

  /// Textual rendering in the parser's syntax; parse(to_string(q)) == q for
  /// queries built from parseable patterns.
  std::string to_string() const;

 private:
  std::vector<Filter> filters_;
  std::vector<ObjectId> initial_ids_;
  std::string initial_set_name_;
  std::string result_set_name_;
  std::vector<std::string> retrieve_slots_;
  bool count_only_ = false;
};

}  // namespace hyperfile
