#include "query/query.hpp"

#include <set>
#include <sstream>

namespace hyperfile {

std::string to_string(const Filter& f) {
  if (const auto* s = std::get_if<SelectFilter>(&f)) {
    return "(" + s->type_pattern.to_string() + ", " + s->key_pattern.to_string() +
           ", " + s->data_pattern.to_string() + ")";
  }
  if (const auto* d = std::get_if<DerefFilter>(&f)) {
    return (d->keep_source ? "^^" : "^") + d->var;
  }
  const auto& it = std::get<IterateFilter>(f);
  std::string s = "]@" + std::to_string(it.body_start);
  s += it.unbounded() ? "*" : std::to_string(it.count);
  return s;
}

std::uint32_t Query::iterator_depth(std::uint32_t index_1based) const {
  std::uint32_t depth = 0;
  for (std::uint32_t i = 1; i <= size(); ++i) {
    const auto* it = std::get_if<IterateFilter>(&filters_[i - 1]);
    if (it == nullptr) continue;
    if (index_1based >= it->body_start && index_1based <= i) ++depth;
  }
  return depth;
}

Result<void> Query::validate() const {
  const std::uint32_t n = size();

  // Iterator structure: j <= i, and intervals [j, i] properly nested.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals;
  for (std::uint32_t i = 1; i <= n; ++i) {
    const auto* it = std::get_if<IterateFilter>(&filters_[i - 1]);
    if (it == nullptr) continue;
    if (it->body_start < 1 || it->body_start > i) {
      return make_error(Errc::kInvalidArgument,
                        "iterator at filter " + std::to_string(i) +
                            " has body_start " + std::to_string(it->body_start));
    }
    if (it->count == 0) {
      return make_error(Errc::kInvalidArgument,
                        "iterator at filter " + std::to_string(i) + " has k == 0");
    }
    intervals.emplace_back(it->body_start, i);
  }
  for (std::size_t a = 0; a < intervals.size(); ++a) {
    for (std::size_t b = a + 1; b < intervals.size(); ++b) {
      const auto [j1, i1] = intervals[a];
      const auto [j2, i2] = intervals[b];
      const bool disjoint = i1 < j2 || i2 < j1;
      const bool nested = (j1 <= j2 && i2 <= i1) || (j2 <= j1 && i1 <= i2);
      // Two iterators may not close at the same index; that would be two
      // loops sharing an end marker, which the execution model can't express.
      if (i1 == i2 || (!disjoint && !nested)) {
        return make_error(Errc::kInvalidArgument,
                          "iterators at filters " + std::to_string(i1) + " and " +
                              std::to_string(i2) + " overlap without nesting");
      }
    }
  }

  // Bind-before-use for matching variables.
  std::set<std::string> bound;
  auto pattern_binds = [&](const Pattern& p) {
    if (p.binds()) bound.insert(p.var());
  };
  for (std::uint32_t i = 1; i <= n; ++i) {
    const Filter& f = filters_[i - 1];
    if (const auto* s = std::get_if<SelectFilter>(&f)) {
      // A Use in the same filter may legally refer to a Bind in the same
      // filter from an earlier tuple match, so record binds first.
      pattern_binds(s->type_pattern);
      pattern_binds(s->key_pattern);
      pattern_binds(s->data_pattern);
      for (const Pattern* p :
           {&s->type_pattern, &s->key_pattern, &s->data_pattern}) {
        if (p->uses() && bound.count(p->var()) == 0) {
          return make_error(Errc::kInvalidArgument,
                            "matching variable $" + p->var() +
                                " used at filter " + std::to_string(i) +
                                " before any binding");
        }
        if (p->retrieves() && p->slot() >= retrieve_slots_.size()) {
          return make_error(Errc::kInvalidArgument,
                            "retrieve slot #" + std::to_string(p->slot()) +
                                " out of range at filter " + std::to_string(i));
        }
      }
    } else if (const auto* d = std::get_if<DerefFilter>(&f)) {
      if (bound.count(d->var) == 0) {
        return make_error(Errc::kInvalidArgument,
                          "dereference of unbound variable " + d->var +
                              " at filter " + std::to_string(i));
      }
    }
  }

  if (initial_ids_.empty() && initial_set_name_.empty()) {
    return make_error(Errc::kInvalidArgument, "query has no initial set");
  }
  return {};
}

std::string Query::to_string() const {
  // Render in the parser's concrete syntax: iterator bodies in brackets,
  // with '|' separating body filters (as in the paper's examples).
  std::ostringstream os;
  if (!initial_set_name_.empty()) {
    os << initial_set_name_;
  } else {
    // Parser-compatible id form: birth.seq (the presumed-site hint is not
    // part of the textual syntax).
    os << "{";
    for (std::size_t i = 0; i < initial_ids_.size(); ++i) {
      if (i) os << ", ";
      os << initial_ids_[i].birth_site << "." << initial_ids_[i].seq;
    }
    os << "}";
  }
  os << " ";

  const std::uint32_t n = size();
  // Opening positions: iterator at index i with body j opens a '[' before j.
  std::vector<std::vector<std::uint32_t>> opens(n + 2), closes(n + 2);
  for (std::uint32_t i = 1; i <= n; ++i) {
    if (const auto* it = std::get_if<IterateFilter>(&filters_[i - 1])) {
      opens[it->body_start].push_back(i);
      closes[i].push_back(i);
    }
  }
  bool first_in_group = true;
  int open_depth = 0;
  for (std::uint32_t i = 1; i <= n; ++i) {
    for (std::size_t k = 0; k < opens[i].size(); ++k) {
      os << "[ ";
      first_in_group = true;
      ++open_depth;
    }
    if (std::holds_alternative<IterateFilter>(filters_[i - 1])) {
      const auto& it = std::get<IterateFilter>(filters_[i - 1]);
      os << "]";
      if (it.unbounded()) {
        os << "*";
      } else {
        os << it.count;
      }
      os << " ";
      first_in_group = false;
      --open_depth;
      continue;
    }
    if (open_depth > 0 && !first_in_group) os << "| ";
    // Retrieval patterns render with their slot *name* for readability.
    if (const auto* s = std::get_if<SelectFilter>(&filters_[i - 1])) {
      auto render = [&](const Pattern& p) {
        if (p.retrieves() && p.slot() < retrieve_slots_.size()) {
          return "->" + retrieve_slots_[p.slot()];
        }
        return p.to_string();
      };
      os << "(" << render(s->type_pattern) << ", " << render(s->key_pattern)
         << ", " << render(s->data_pattern) << ") ";
    } else {
      os << hyperfile::to_string(filters_[i - 1]) << " ";
    }
    first_in_group = false;
  }
  if (count_only_) os << "count ";
  os << "->";
  if (!result_set_name_.empty()) os << " " << result_set_name_;
  return os.str();
}

}  // namespace hyperfile
