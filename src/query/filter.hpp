// Filter operations F_1 ... F_n making up a query body (paper Section 3).
//
// Three kinds:
//   * Select    — (type_pattern, key_pattern, data_pattern) tuple matching;
//   * Deref     — follow the pointers bound to a matching variable. The
//     paper writes ⇑X (keep the pointing object *and* enqueue the targets)
//     and ↑X (enqueue the targets, drop the pointing object). In ASCII
//     query text these are "^^X" and "^X".
//   * Iterate   — I_j^k at index i: loop marker closing the body [j, i).
//     Objects that have not yet traversed the body (start > j) and whose
//     pointer-chain depth is below k are sent back to j; others fall
//     through. k == kUnboundedIterations ("*") computes a transitive
//     closure, with cycle safety provided by the engine's mark table.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "query/pattern.hpp"

namespace hyperfile {

/// k value meaning "iterate to transitive closure" (paper's `*`).
inline constexpr std::uint32_t kUnboundedIterations = UINT32_MAX;

struct SelectFilter {
  Pattern type_pattern;
  Pattern key_pattern;
  Pattern data_pattern;

  friend bool operator==(const SelectFilter&, const SelectFilter&) = default;
};

struct DerefFilter {
  std::string var;
  /// true: paper's ⇑ — the dereferencing object continues through the query.
  /// false: paper's ↑ — only the referenced objects continue.
  bool keep_source = true;

  friend bool operator==(const DerefFilter&, const DerefFilter&) = default;
};

struct IterateFilter {
  /// 1-based index j of the first filter in the loop body.
  std::uint32_t body_start = 1;
  /// Maximum pointer-chain depth k, or kUnboundedIterations for `*`.
  std::uint32_t count = kUnboundedIterations;

  bool unbounded() const { return count == kUnboundedIterations; }

  friend bool operator==(const IterateFilter&, const IterateFilter&) = default;
};

using Filter = std::variant<SelectFilter, DerefFilter, IterateFilter>;

std::string to_string(const Filter& f);

}  // namespace hyperfile
