// Object naming and location (paper Section 4).
//
// "We use a variant of the method of R* which includes the birth site and
// the presumed current site of an object in the name. The birth site is the
// final arbiter of the actual location of the object."
//
// Resolution protocol implemented by the distributed runtime:
//   1. A dereference is sent to the id's *presumed* site (usually right).
//   2. A site receiving a request for an object it does not hold consults
//      its local forwarding hints; failing that it forwards the request to
//      the object's *birth* site.
//   3. The birth site keeps an authoritative record for every object born
//      there (updated on every move) and re-forwards the request.
//   4. If even the birth site does not know the object, the work item is
//      dropped and its termination weight returned — a dangling pointer
//      yields partial results, not a hung query.
//
// Moving an object therefore costs one authoritative update at the birth
// site plus a local hint; the (possibly millions of) pointers to the object
// never need rewriting.
#pragma once

#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/object_id.hpp"

namespace hyperfile {

class NameRegistry {
 public:
  explicit NameRegistry(SiteId self) : self_(self) {}

  SiteId self() const { return self_; }

  /// An object was created here (we are its birth site and first home).
  void register_birth(const ObjectId& id) {
    if (id.birth_site == self_) authoritative_[id.seq] = self_;
  }

  /// Authoritative update, valid only at the birth site: the object now
  /// lives at `site`.
  void record_location(const ObjectId& id, SiteId site) {
    if (id.birth_site == self_) authoritative_[id.seq] = site;
  }

  /// Local forwarding hint: the object left this site for `site`.
  void record_departure(const ObjectId& id, SiteId site) { hints_[id] = site; }

  void forget_hint(const ObjectId& id) { hints_.erase(id); }

  /// Where the birth site believes the object lives (only meaningful when
  /// this registry belongs to the birth site).
  std::optional<SiteId> authoritative_location(const ObjectId& id) const {
    if (id.birth_site != self_) return std::nullopt;
    auto it = authoritative_.find(id.seq);
    if (it == authoritative_.end()) return std::nullopt;
    return it->second;
  }

  /// Local forwarding hint, if any.
  std::optional<SiteId> hint(const ObjectId& id) const {
    auto it = hints_.find(id);
    if (it == hints_.end()) return std::nullopt;
    return it->second;
  }

  /// Best next hop for an object not stored here, or nullopt if unknowable
  /// (we are the birth site and have no record: the object is gone).
  std::optional<SiteId> next_hop(const ObjectId& id) const {
    if (auto h = hint(id); h.has_value() && *h != self_) return h;
    if (id.birth_site == self_) {
      auto a = authoritative_location(id);
      if (a.has_value() && *a != self_) return a;
      return std::nullopt;  // final arbiter says: no such object
    }
    return id.birth_site;  // ask the final arbiter
  }

  // --- persistence support (naming/persist.hpp) ---
  std::vector<std::pair<LocalSeq, SiteId>> authoritative_records() const {
    return {authoritative_.begin(), authoritative_.end()};
  }
  std::vector<std::pair<ObjectId, SiteId>> departure_hints() const {
    return {hints_.begin(), hints_.end()};
  }

 private:
  SiteId self_;
  std::unordered_map<LocalSeq, SiteId> authoritative_;
  std::unordered_map<ObjectId, SiteId> hints_;
};

}  // namespace hyperfile
