// Persistence for the name registry.
//
// A site's location knowledge — the authoritative records it keeps as a
// birth site and its departure hints — must survive restarts, or objects
// that migrated away become unreachable the moment the deployment reloads
// (the birth site would be the "final arbiter" with amnesia). Stored
// alongside the store snapshot, same checksum discipline.
#pragma once

#include <string>

#include "common/result.hpp"
#include "naming/name_registry.hpp"

namespace hyperfile {

Result<void> save_registry(const NameRegistry& registry, const std::string& path);
Result<NameRegistry> load_registry(const std::string& path);

}  // namespace hyperfile
