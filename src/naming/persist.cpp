#include "naming/persist.hpp"

#include <cstdio>

#include "common/hash.hpp"
#include "wire/serialize.hpp"

namespace hyperfile {
namespace {

constexpr std::uint64_t kMagic = 0x48464e414d455331ULL;  // "HFNAMES1"

}  // namespace

Result<void> save_registry(const NameRegistry& registry, const std::string& path) {
  wire::Encoder e;
  e.varint(kMagic);
  e.varint(registry.self());

  const auto records = registry.authoritative_records();
  e.varint(records.size());
  for (const auto& [seq, site] : records) {
    e.varint(seq);
    e.varint(site);
  }
  const auto hints = registry.departure_hints();
  e.varint(hints.size());
  for (const auto& [id, site] : hints) {
    wire::encode(e, id);
    e.varint(site);
  }
  wire::Bytes bytes = e.take();
  const std::uint64_t sum = fnv1a(bytes.data(), bytes.size());
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return make_error(Errc::kIo, "cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) {
    return make_error(Errc::kIo, "short write to '" + path + "'");
  }
  return {};
}

Result<NameRegistry> load_registry(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(Errc::kIo, "cannot open '" + path + "' for reading");
  }
  wire::Bytes bytes;
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);

  if (bytes.size() < 8) return make_error(Errc::kDecode, "registry too short");
  const std::size_t body = bytes.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
  }
  if (fnv1a(bytes.data(), body) != stored) {
    return make_error(Errc::kDecode, "registry checksum mismatch");
  }

  wire::Decoder d(std::span(bytes.data(), body));
  auto magic = d.varint();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kMagic) {
    return make_error(Errc::kDecode, "not a name-registry file");
  }
  auto self = d.varint();
  if (!self.ok()) return self.error();
  NameRegistry registry(static_cast<SiteId>(self.value()));

  auto nrecords = d.varint();
  if (!nrecords.ok()) return nrecords.error();
  for (std::uint64_t i = 0; i < nrecords.value(); ++i) {
    auto seq = d.varint();
    if (!seq.ok()) return seq.error();
    auto site = d.varint();
    if (!site.ok()) return site.error();
    registry.record_location(
        ObjectId(registry.self(), static_cast<LocalSeq>(seq.value())),
        static_cast<SiteId>(site.value()));
  }
  auto nhints = d.varint();
  if (!nhints.ok()) return nhints.error();
  for (std::uint64_t i = 0; i < nhints.value(); ++i) {
    auto id = wire::decode_object_id(d);
    if (!id.ok()) return id.error();
    auto site = d.varint();
    if (!site.ok()) return site.error();
    registry.record_departure(id.value(), static_cast<SiteId>(site.value()));
  }
  if (!d.done()) return make_error(Errc::kDecode, "trailing registry bytes");
  return registry;
}

}  // namespace hyperfile
