// Per-site main-memory object store.
//
// The 1991 prototype was a main-memory database ("we take advantage of large
// memories ... so that disk access is only required to obtain large items").
// SiteStore mirrors that: all objects live in memory; snapshot persistence
// (store/snapshot.hpp) exists for durability but is never on a query path.
//
// Named sets: HyperFile represents a set of objects as an ordinary object
// whose pointer tuples enumerate the members (paper Section 2). SiteStore
// keeps a name -> set-object binding so queries can start from "S" and bind
// results to "T".
//
// Thread safety: SiteStore is externally synchronized. The distributed
// runtime gives each site thread exclusive ownership; the shared-memory
// parallel engine performs concurrent *reads* only, which is safe as long as
// no writer runs concurrently.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "common/sync.hpp"
#include "model/object.hpp"
#include "model/type_registry.hpp"

namespace hyperfile {

class WriteAheadLog;
struct WalRecord;

/// Tuple key used for set-membership pointers inside set objects.
inline constexpr const char* kSetMemberKey = "member";

struct StoreStats {
  std::size_t objects = 0;
  std::size_t tuples = 0;
  std::size_t bytes = 0;
  std::size_t named_sets = 0;
};

class SiteStore {
 public:
  explicit SiteStore(SiteId site) : site_(site) {}

  SiteId site() const { return site_; }

  /// Fresh id born at this site. The presumed site starts equal to the
  /// birth site.
  ObjectId allocate() { return ObjectId(site_, next_seq_++); }

  /// Sequence-counter access for snapshot restore.
  LocalSeq next_seq() const { return next_seq_; }
  void set_next_seq(LocalSeq seq) { next_seq_ = seq; }

  /// Monotonic mutation counter: bumped by every mutator (put / erase /
  /// take / modify / bind_set / replayed WAL records). Derived structures
  /// (index caches, site summaries) key their freshness on it — equal
  /// version means provably unchanged content.
  std::uint64_t version() const { return version_; }

  /// Store `obj`. If its id is invalid a fresh local id is assigned.
  /// Returns the id under which the object is stored. Overwrites any
  /// existing object with the same id (HyperFile edits replace tuples).
  HF_EVENT_LOOP_ONLY ObjectId put(Object obj);

  /// As put(), but first checks the object against the registered type
  /// conventions (model/type_registry.hpp). Nothing is stored on failure.
  HF_EVENT_LOOP_ONLY Result<ObjectId> put_validated(
      Object obj, const TypeRegistry& registry);

  bool contains(const ObjectId& id) const { return objects_.count(id) != 0; }
  const Object* get(const ObjectId& id) const;
  HF_EVENT_LOOP_ONLY bool erase(const ObjectId& id);

  /// Remove an object and hand it to the caller (used by object migration).
  HF_EVENT_LOOP_ONLY std::optional<Object> take(const ObjectId& id);

  /// In-place edit: apply `mutator` to the stored object. This is the
  /// "limited editing" a back-end data server wants to support without a
  /// full read-modify-write round trip (paper Section 1). The object id is
  /// immutable; mutator changes to it are discarded.
  HF_EVENT_LOOP_ONLY Result<void> modify(
      const ObjectId& id, const std::function<void(Object&)>& mutator);

  /// Tuple-level conveniences built on modify().
  Result<void> add_tuple(const ObjectId& id, Tuple t);
  /// Replace all (type, key) tuples with a single new value; appends if
  /// none existed.
  Result<void> set_tuple(const ObjectId& id, const std::string& type,
                         const std::string& key, Value value);
  /// Remove all (type, key) tuples. Returns the number removed.
  Result<std::size_t> remove_tuples(const ObjectId& id, const std::string& type,
                                    const std::string& key);

  std::size_t size() const { return objects_.size(); }
  StoreStats stats() const;
  std::vector<ObjectId> all_ids() const;

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [id, obj] : objects_) fn(obj);
  }

  // --- named sets -------------------------------------------------------
  /// Materialize a set object with pointer tuples to `members` and bind it
  /// under `name` (replacing any previous binding).
  HF_EVENT_LOOP_ONLY ObjectId create_set(const std::string& name,
                                         std::span<const ObjectId> members);

  /// Bind `name` to an existing object that acts as a set.
  HF_EVENT_LOOP_ONLY void bind_set(const std::string& name,
                                   const ObjectId& id);

  std::optional<ObjectId> find_set(const std::string& name) const;

  /// Member ids of the named set (the pointer tuples of its set object).
  Result<std::vector<ObjectId>> set_members(const std::string& name) const;

  std::vector<std::string> set_names() const;

  // --- durability (store/wal.hpp, DESIGN.md §13) ------------------------
  /// Shadow every mutation into `wal` (non-owning; pass nullptr to detach).
  /// Detached by default — and during recovery, so replayed mutations are
  /// not re-logged. The WAL shares this store's external synchronization.
  void attach_wal(WriteAheadLog* wal) { wal_ = wal; }
  WriteAheadLog* wal() const { return wal_; }

  /// Re-apply one replayed record. Used by recovery (detach the WAL first).
  HF_EVENT_LOOP_ONLY void apply_wal_record(const WalRecord& rec);

 private:
  void log_put(const Object& obj);
  void log_erase(const ObjectId& id);

  SiteId site_;
  LocalSeq next_seq_ = 1;
  std::uint64_t version_ = 0;
  std::unordered_map<ObjectId, Object> objects_;
  std::unordered_map<std::string, ObjectId> named_sets_;
  WriteAheadLog* wal_ = nullptr;
};

}  // namespace hyperfile
