// Mark-and-sweep garbage collection for a site store.
//
// HyperFile accumulates objects with no owner — superseded result-set
// objects, archived versions whose chain was cut, documents whose last
// pointer was edited away. A file system would leak them forever; the
// pointer graph gives us better: everything transitively reachable from the
// *roots* (the named sets, plus any application-supplied anchors) is live,
// the rest is garbage.
//
// Site-local by design, like everything else here: pointers from OTHER
// sites into this one are invisible to a local sweep, so distributed
// deployments must pass the externally-referenced ids as extra roots (or
// simply not run GC on shared stores). collect_garbage never touches
// foreign-born objects unless they are local and unreachable.
#pragma once

#include <span>

#include "store/site_store.hpp"

namespace hyperfile {

struct GcReport {
  std::size_t live = 0;
  std::size_t collected = 0;
  std::size_t bytes_reclaimed = 0;
};

/// Sweep `store`: erase every object unreachable from the named sets and
/// `extra_roots`, following all pointer tuples.
GcReport collect_garbage(SiteStore& store,
                         std::span<const ObjectId> extra_roots = {});

}  // namespace hyperfile
