// Object versioning on top of the tuple model.
//
// The paper's very first example of a pointer property is "the previous
// version of a program (pointer to another object)". This helper implements
// the idiom: editing an object first archives its current state under a
// fresh id, then applies the edit to the *live* object — so its identity
// (and every pointer to it, on every site) stays valid — and links the live
// object to the archive with a "Previous Version" pointer. Histories are
// then ordinary pointer chains, walkable with an ordinary closure query:
//
//   {0.42} [ (pointer, "Previous Version", ?X) | ^^X ]* (?, ?, ?) -> History
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "store/site_store.hpp"

namespace hyperfile {

inline constexpr const char* kPreviousVersionKey = "Previous Version";

/// Archive `id`'s current state, apply `mutator` to the live object, and
/// link live -> archive. Returns the archive copy's id.
Result<ObjectId> checkpoint_version(
    SiteStore& store, const ObjectId& id,
    const std::function<void(Object&)>& mutator,
    const std::string& version_key = kPreviousVersionKey);

/// The version chain starting at `id` (live object first, oldest last).
/// Cycle-safe; stops at missing objects (archives may have been pruned).
std::vector<ObjectId> version_history(
    const SiteStore& store, const ObjectId& id,
    const std::string& version_key = kPreviousVersionKey);

/// Drop archived versions beyond the newest `keep` entries (not counting
/// the live object). Returns how many archives were erased.
std::size_t prune_versions(SiteStore& store, const ObjectId& id,
                           std::size_t keep,
                           const std::string& version_key = kPreviousVersionKey);

}  // namespace hyperfile
