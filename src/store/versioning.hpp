// Object versioning on top of the tuple model.
//
// The paper's very first example of a pointer property is "the previous
// version of a program (pointer to another object)". This helper implements
// the idiom: editing an object first archives its current state under a
// fresh id, then applies the edit to the *live* object — so its identity
// (and every pointer to it, on every site) stays valid — and links the live
// object to the archive with a "Previous Version" pointer. Histories are
// then ordinary pointer chains, walkable with an ordinary closure query:
//
//   {0.42} [ (pointer, "Previous Version", ?X) | ^^X ]* (?, ?, ?) -> History
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "store/site_store.hpp"

namespace hyperfile {

inline constexpr const char* kPreviousVersionKey = "Previous Version";

/// Archive `id`'s current state, apply `mutator` to the live object, and
/// link live -> archive. Returns the archive copy's id.
Result<ObjectId> checkpoint_version(
    SiteStore& store, const ObjectId& id,
    const std::function<void(Object&)>& mutator,
    const std::string& version_key = kPreviousVersionKey);

/// The version chain starting at `id` (live object first, oldest last).
/// Cycle-safe; stops at missing objects (archives may have been pruned).
std::vector<ObjectId> version_history(
    const SiteStore& store, const ObjectId& id,
    const std::string& version_key = kPreviousVersionKey);

/// Drop archived versions beyond the newest `keep` entries (not counting
/// the live object). Returns how many archives were erased.
std::size_t prune_versions(SiteStore& store, const ObjectId& id,
                           std::size_t keep,
                           const std::string& version_key = kPreviousVersionKey);

/// How far a replica's shadow store trails its primary (DESIGN.md §18).
/// A follower advances the watermark as it applies WalSegments; a failover
/// read consults covers() to decide whether the replica can answer for the
/// suspected primary *exactly* or must be flagged as lagging.
struct ReplicationWatermark {
  /// Primary's checkpoint generation the shadow store was built against
  /// (bumped every time the primary checkpoints and truncates its WAL).
  std::uint64_t ship_epoch = 0;
  /// Byte offset into the primary's WAL (within ship_epoch) applied so far.
  std::uint64_t wal_offset = 0;
  /// shadow SiteStore::version() after the last apply — the freshness the
  /// replica can actually serve.
  std::uint64_t store_version = 0;

  friend bool operator==(const ReplicationWatermark&,
                         const ReplicationWatermark&) = default;

  /// True iff this watermark has caught up to `primary_tail`, the primary's
  /// last known (ship_epoch, wal_offset): nothing acknowledged by the
  /// primary is missing from the shadow store, so a read served from it is
  /// exact, not lagging.
  bool covers(const ReplicationWatermark& primary_tail) const {
    if (ship_epoch != primary_tail.ship_epoch) {
      return ship_epoch > primary_tail.ship_epoch;
    }
    return wal_offset >= primary_tail.wal_offset;
  }

  /// Known lag in WAL bytes against `primary_tail`; 0 when covering. An
  /// epoch mismatch means the tail offsets aren't comparable — report the
  /// whole tail as lag (the honest upper bound).
  std::uint64_t lag_bytes(const ReplicationWatermark& primary_tail) const {
    if (covers(primary_tail)) return 0;
    if (ship_epoch != primary_tail.ship_epoch) return primary_tail.wal_offset;
    return primary_tail.wal_offset - wal_offset;
  }
};

}  // namespace hyperfile
