#include "store/set_algebra.hpp"

#include <unordered_set>
#include <vector>

namespace hyperfile {
namespace {

struct Operands {
  std::vector<ObjectId> a;
  std::vector<ObjectId> b;
};

Result<Operands> load(SiteStore& store, const std::string& a,
                      const std::string& b) {
  auto ma = store.set_members(a);
  if (!ma.ok()) return ma.error();
  auto mb = store.set_members(b);
  if (!mb.ok()) return mb.error();
  return Operands{std::move(ma).value(), std::move(mb).value()};
}

ObjectId bind_result(SiteStore& store, const std::string& result,
              const std::vector<ObjectId>& members) {
  return store.create_set(result, members);
}

}  // namespace

Result<ObjectId> set_union(SiteStore& store, const std::string& result,
                           const std::string& a, const std::string& b) {
  auto ops = load(store, a, b);
  if (!ops.ok()) return ops.error();
  std::unordered_set<ObjectId> seen;
  std::vector<ObjectId> out;
  for (const auto& ids : {ops.value().a, ops.value().b}) {
    for (const ObjectId& id : ids) {
      if (seen.insert(id).second) out.push_back(id);
    }
  }
  return bind_result(store, result, out);
}

Result<ObjectId> set_intersect(SiteStore& store, const std::string& result,
                               const std::string& a, const std::string& b) {
  auto ops = load(store, a, b);
  if (!ops.ok()) return ops.error();
  std::unordered_set<ObjectId> right(ops.value().b.begin(), ops.value().b.end());
  std::unordered_set<ObjectId> seen;
  std::vector<ObjectId> out;
  for (const ObjectId& id : ops.value().a) {
    if (right.count(id) != 0 && seen.insert(id).second) out.push_back(id);
  }
  return bind_result(store, result, out);
}

Result<ObjectId> set_difference(SiteStore& store, const std::string& result,
                                const std::string& a, const std::string& b) {
  auto ops = load(store, a, b);
  if (!ops.ok()) return ops.error();
  std::unordered_set<ObjectId> right(ops.value().b.begin(), ops.value().b.end());
  std::unordered_set<ObjectId> seen;
  std::vector<ObjectId> out;
  for (const ObjectId& id : ops.value().a) {
    if (right.count(id) == 0 && seen.insert(id).second) out.push_back(id);
  }
  return bind_result(store, result, out);
}

}  // namespace hyperfile
