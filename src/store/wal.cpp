#include "store/wal.hpp"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/hash.hpp"
#include "common/metrics.hpp"
#include "wire/serialize.hpp"

namespace hyperfile {
namespace {

Counter& wal_appends() {
  static Counter& c = metrics().counter("store.wal_appends");
  return c;
}
Counter& wal_replayed() {
  static Counter& c = metrics().counter("store.wal_replayed");
  return c;
}

void append_u64le(wire::Bytes& bytes, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace

WalRecord WalRecord::put(Object obj, LocalSeq next_seq) {
  WalRecord rec;
  rec.op = Op::kPut;
  rec.next_seq = next_seq;
  rec.id = obj.id();
  rec.object = std::move(obj);
  return rec;
}

WalRecord WalRecord::erase(const ObjectId& id, LocalSeq next_seq) {
  WalRecord rec;
  rec.op = Op::kErase;
  rec.next_seq = next_seq;
  rec.id = id;
  return rec;
}

WalRecord WalRecord::bind_set(std::string name, const ObjectId& id,
                              LocalSeq next_seq) {
  WalRecord rec;
  rec.op = Op::kBindSet;
  rec.next_seq = next_seq;
  rec.id = id;
  rec.name = std::move(name);
  return rec;
}

wire::Bytes encode_wal_record(const WalRecord& rec) {
  wire::Encoder e;
  e.u8(static_cast<std::uint8_t>(rec.op));
  e.varint(rec.next_seq);
  switch (rec.op) {
    case WalRecord::Op::kPut:
      wire::encode(e, rec.object);
      break;
    case WalRecord::Op::kErase:
      wire::encode(e, rec.id);
      break;
    case WalRecord::Op::kBindSet:
      e.string(rec.name);
      wire::encode(e, rec.id);
      break;
  }
  return e.take();
}

Result<WalRecord> decode_wal_record(std::span<const std::uint8_t> payload) {
  wire::Decoder d(payload);
  auto op = d.u8();
  if (!op.ok()) return op.error();
  auto next_seq = d.varint();
  if (!next_seq.ok()) return next_seq.error();
  WalRecord rec;
  rec.next_seq = next_seq.value();
  switch (op.value()) {
    case static_cast<std::uint8_t>(WalRecord::Op::kPut): {
      rec.op = WalRecord::Op::kPut;
      auto obj = wire::decode_object(d);
      if (!obj.ok()) return obj.error();
      rec.id = obj.value().id();
      rec.object = std::move(obj).value();
      break;
    }
    case static_cast<std::uint8_t>(WalRecord::Op::kErase): {
      rec.op = WalRecord::Op::kErase;
      auto id = wire::decode_object_id(d);
      if (!id.ok()) return id.error();
      rec.id = id.value();
      break;
    }
    case static_cast<std::uint8_t>(WalRecord::Op::kBindSet): {
      rec.op = WalRecord::Op::kBindSet;
      auto name = d.string();
      if (!name.ok()) return name.error();
      auto id = wire::decode_object_id(d);
      if (!id.ok()) return id.error();
      rec.name = std::move(name).value();
      rec.id = id.value();
      break;
    }
    default:
      return make_error(Errc::kDecode, "unknown WAL record op");
  }
  if (!d.done()) return make_error(Errc::kDecode, "trailing WAL record bytes");
  return rec;
}

Result<WalReplay> replay_wal(const std::string& path) {
  WalReplay out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return out;  // no log yet — empty, not an error
    return make_error(Errc::kIo, "cannot open WAL '" + path + "' for reading");
  }
  wire::Bytes bytes;
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return make_error(Errc::kIo, "read error on WAL '" + path + "'");
  }

  // Scan record by record; the first frame that is truncated, fails its
  // checksum, or does not decode ends the scan as a torn tail. Everything
  // before it is good and keeps `valid_bytes` advancing.
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    wire::Decoder d(std::span<const std::uint8_t>(bytes).subspan(pos));
    auto len = d.varint();
    if (!len.ok()) break;
    const std::size_t header = bytes.size() - pos - d.remaining();
    if (len.value() > d.remaining() || d.remaining() - len.value() < 8) break;
    const auto payload =
        std::span<const std::uint8_t>(bytes).subspan(pos + header,
                                                     len.value());
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
      stored |= static_cast<std::uint64_t>(
                    bytes[pos + header + len.value() + i])
                << (8 * i);
    }
    if (fnv1a(payload.data(), payload.size()) != stored) break;
    auto rec = decode_wal_record(payload);
    if (!rec.ok()) break;
    out.records.push_back(std::move(rec).value());
    pos += header + static_cast<std::size_t>(len.value()) + 8;
  }
  out.valid_bytes = pos;
  out.torn = pos != bytes.size();
  wal_replayed().inc(out.records.size());
  return out;
}

Result<WalSegmentRead> read_wal_segment(const std::string& path,
                                        std::uint64_t from_offset,
                                        std::uint64_t max_bytes) {
  WalSegmentRead out;
  out.end_offset = from_offset;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) return out;  // no log yet — empty, not an error
    return make_error(Errc::kIo, "cannot open WAL '" + path + "' for reading");
  }
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return make_error(Errc::kIo, "cannot seek WAL '" + path + "'");
  }
  const auto file_size = static_cast<std::uint64_t>(std::ftell(f));
  if (from_offset >= file_size) {
    std::fclose(f);
    return out;  // caller's cursor is at (or past) the tail: nothing new
  }
  if (std::fseek(f, static_cast<long>(from_offset), SEEK_SET) != 0) {
    std::fclose(f);
    return make_error(Errc::kIo, "cannot seek WAL '" + path + "'");
  }
  wire::Bytes bytes;
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return make_error(Errc::kIo, "read error on WAL '" + path + "'");
  }

  // Same frame scan as replay_wal, but collecting raw payloads and bounded
  // by max_bytes of framed records. Stopping for the size budget is a clean
  // partial read; stopping at a bad frame is a torn tail.
  std::size_t pos = 0;
  std::uint64_t framed = 0;
  bool clean_stop = false;
  while (pos < bytes.size()) {
    wire::Decoder d(std::span<const std::uint8_t>(bytes).subspan(pos));
    auto len = d.varint();
    if (!len.ok()) break;
    const std::size_t header = bytes.size() - pos - d.remaining();
    if (len.value() > d.remaining() || d.remaining() - len.value() < 8) break;
    const std::size_t frame_size =
        header + static_cast<std::size_t>(len.value()) + 8;
    if (!out.records.empty() && framed + frame_size > max_bytes) {
      clean_stop = true;  // budget reached on a record boundary
      break;
    }
    const auto payload =
        std::span<const std::uint8_t>(bytes).subspan(pos + header,
                                                     len.value());
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i) {
      stored |= static_cast<std::uint64_t>(
                    bytes[pos + header + len.value() + i])
                << (8 * i);
    }
    if (fnv1a(payload.data(), payload.size()) != stored) break;
    out.records.emplace_back(payload.begin(), payload.end());
    pos += frame_size;
    framed += frame_size;
  }
  out.end_offset = from_offset + pos;
  out.torn = !clean_stop && pos != bytes.size();
  return out;
}

WriteAheadLog::WriteAheadLog(std::string path, std::FILE* f,
                             std::uint64_t records, std::uint64_t bytes)
    : path_(std::move(path)), f_(f), record_count_(records),
      byte_size_(bytes) {}

WriteAheadLog::WriteAheadLog(WriteAheadLog&& o) noexcept
    : path_(std::move(o.path_)), f_(o.f_), record_count_(o.record_count_),
      byte_size_(o.byte_size_) {
  o.f_ = nullptr;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& o) noexcept {
  if (this != &o) {
    if (f_ != nullptr) std::fclose(f_);
    path_ = std::move(o.path_);
    f_ = o.f_;
    record_count_ = o.record_count_;
    byte_size_ = o.byte_size_;
    o.f_ = nullptr;
  }
  return *this;
}

WriteAheadLog::~WriteAheadLog() {
  if (f_ != nullptr) std::fclose(f_);
}

Result<WriteAheadLog> WriteAheadLog::open(const std::string& path,
                                          const WalReplay& replayed) {
  // Trim any torn tail first so appends extend a clean log. ::truncate on a
  // missing file fails with ENOENT, which is fine — the "ab" open creates it.
  if (::truncate(path.c_str(), static_cast<off_t>(replayed.valid_bytes)) !=
          0 &&
      errno != ENOENT) {
    return make_error(Errc::kIo, "cannot trim WAL '" + path + "': " +
                                     std::strerror(errno));
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return make_error(Errc::kIo, "cannot open WAL '" + path + "' for append");
  }
  return WriteAheadLog(path, f, replayed.records.size(),
                       replayed.valid_bytes);
}

Result<void> WriteAheadLog::append(const WalRecord& rec) {
  wire::Bytes payload = encode_wal_record(rec);
  wire::Encoder header;
  header.varint(payload.size());
  wire::Bytes frame = header.take();
  frame.insert(frame.end(), payload.begin(), payload.end());
  append_u64le(frame, fnv1a(payload.data(), payload.size()));
  const std::size_t written = std::fwrite(frame.data(), 1, frame.size(), f_);
  if (written != frame.size() || std::fflush(f_) != 0) {
    return make_error(Errc::kIo, "short write to WAL '" + path_ + "'");
  }
  ++record_count_;
  byte_size_ += frame.size();
  wal_appends().inc();
  return {};
}

Result<void> WriteAheadLog::truncate() {
  // freopen("wb") both empties the file and repositions the stream.
  std::FILE* f = std::freopen(path_.c_str(), "wb", f_);
  if (f == nullptr) {
    f_ = nullptr;  // freopen failure closes the original stream
    return make_error(Errc::kIo, "cannot truncate WAL '" + path_ + "'");
  }
  f_ = f;
  record_count_ = 0;
  byte_size_ = 0;
  return {};
}

}  // namespace hyperfile
