// Snapshot persistence for SiteStore.
//
// The 1991 prototype was a main-memory database; persistence here is a
// convenience extension (save a populated site to disk, reload it on
// restart) and is never on a query path. The format reuses the wire
// encoding: header, next sequence number, objects, named-set bindings.
#pragma once

#include <string>

#include "common/result.hpp"
#include "common/sync.hpp"
#include "store/site_store.hpp"
#include "wire/codec.hpp"

namespace hyperfile {

/// Serialize the whole store to bytes.
wire::Bytes snapshot_store(const SiteStore& store);

/// Rebuild a store from snapshot bytes.
Result<SiteStore> restore_store(std::span<const std::uint8_t> data);

/// File convenience wrappers. save_snapshot fsyncs the file before
/// returning; callers that then rename it into place must also fsync the
/// parent directory (fsync_parent_dir) before treating the publish as
/// durable — in particular before truncating the WAL the snapshot subsumes.
HF_BLOCKING Result<void> save_snapshot(const SiteStore& store,
                                       const std::string& path);
HF_BLOCKING Result<SiteStore> load_snapshot(const std::string& path);

/// fsync the directory containing `path`, making a completed rename of
/// `path` durable (the file's own fsync orders its bytes; the directory's
/// orders its *name*). The write-temp/fsync/rename/fsync-dir discipline.
HF_BLOCKING Result<void> fsync_parent_dir(const std::string& path);

}  // namespace hyperfile
