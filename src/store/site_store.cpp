#include "store/site_store.hpp"

#include "common/logging.hpp"
#include "store/wal.hpp"

namespace hyperfile {

// WAL shadowing: every mutator funnels its post-state through log_put /
// log_erase / bind_set so an attached log sees exactly the acknowledged
// mutations, in order. Append failures are surfaced as warnings rather than
// failing the mutation — the store stays authoritative in memory; a sick
// disk degrades durability, not availability (DESIGN.md §13).
void SiteStore::log_put(const Object& obj) {
  if (wal_ == nullptr) return;
  // hfverify: allow-blocking(wal-append): redo-before-ack — the mutation
  // must be durable before the loop acknowledges it (DESIGN.md §13).
  if (auto r = wal_->append(WalRecord::put(obj, next_seq_)); !r.ok()) {
    HF_WARN << "site " << site_ << ": WAL append failed: "
            << r.error().message;
  }
}

void SiteStore::log_erase(const ObjectId& id) {
  if (wal_ == nullptr) return;
  // hfverify: allow-blocking(wal-append): redo-before-ack (DESIGN.md §13).
  if (auto r = wal_->append(WalRecord::erase(id, next_seq_)); !r.ok()) {
    HF_WARN << "site " << site_ << ": WAL append failed: "
            << r.error().message;
  }
}

void SiteStore::apply_wal_record(const WalRecord& rec) {
  switch (rec.op) {
    case WalRecord::Op::kPut:
      objects_[rec.object.id()] = rec.object;
      break;
    case WalRecord::Op::kErase:
      objects_.erase(rec.id);
      break;
    case WalRecord::Op::kBindSet:
      named_sets_[rec.name] = rec.id;
      break;
  }
  // next_seq only ever moves forward: a record's snapshot of the allocator
  // never un-allocates ids handed out later.
  if (rec.next_seq > next_seq_) next_seq_ = rec.next_seq;
  ++version_;
}

ObjectId SiteStore::put(Object obj) {
  if (!obj.id().valid()) obj.set_id(allocate());
  const ObjectId id = obj.id();
  objects_[id] = std::move(obj);
  ++version_;
  log_put(objects_[id]);
  return id;
}

Result<ObjectId> SiteStore::put_validated(Object obj,
                                          const TypeRegistry& registry) {
  if (auto r = registry.validate(obj); !r.ok()) return r.error();
  return put(std::move(obj));
}

const Object* SiteStore::get(const ObjectId& id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

bool SiteStore::erase(const ObjectId& id) {
  if (objects_.erase(id) == 0) return false;
  ++version_;
  log_erase(id);
  return true;
}

std::optional<Object> SiteStore::take(const ObjectId& id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  Object obj = std::move(it->second);
  objects_.erase(it);
  ++version_;
  log_erase(id);
  return obj;
}

Result<void> SiteStore::modify(const ObjectId& id,
                               const std::function<void(Object&)>& mutator) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return make_error(Errc::kNotFound, "no object " + id.to_string());
  }
  mutator(it->second);
  it->second.set_id(id);  // identity is immutable
  ++version_;
  log_put(it->second);
  return {};
}

Result<void> SiteStore::add_tuple(const ObjectId& id, Tuple t) {
  return modify(id, [&](Object& obj) { obj.add(std::move(t)); });
}

Result<void> SiteStore::set_tuple(const ObjectId& id, const std::string& type,
                                  const std::string& key, Value value) {
  return modify(id, [&](Object& obj) {
    obj.remove(type, key);
    obj.add(Tuple(type, key, std::move(value)));
  });
}

Result<std::size_t> SiteStore::remove_tuples(const ObjectId& id,
                                             const std::string& type,
                                             const std::string& key) {
  std::size_t removed = 0;
  auto r = modify(id, [&](Object& obj) { removed = obj.remove(type, key); });
  if (!r.ok()) return r.error();
  return removed;
}

StoreStats SiteStore::stats() const {
  StoreStats s;
  s.objects = objects_.size();
  s.named_sets = named_sets_.size();
  for (const auto& [id, obj] : objects_) {
    s.tuples += obj.size();
    s.bytes += obj.byte_size();
  }
  return s;
}

std::vector<ObjectId> SiteStore::all_ids() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) ids.push_back(id);
  return ids;
}

ObjectId SiteStore::create_set(const std::string& name,
                               std::span<const ObjectId> members) {
  // Rebinding a name garbage-collects the previous set *object*, but only
  // if (a) it is one we materialized for this name (application objects
  // merely bound via bind_set are left alone) and (b) no other name is
  // still bound to it.
  if (auto prev = find_set(name)) {
    bool bound_elsewhere = false;
    for (const auto& [other_name, other_id] : named_sets_) {
      if (other_name != name && other_id == *prev) {
        bound_elsewhere = true;
        break;
      }
    }
    const Object* obj = get(*prev);
    if (!bound_elsewhere && obj != nullptr) {
      const Tuple* tag = obj->find(tuple_types::kString, "set_name");
      if (tag != nullptr && tag->data.is_string() &&
          tag->data.as_string() == name) {
        erase(*prev);
      }
    }
  }
  Object set_obj(allocate());
  set_obj.add(Tuple::string("set_name", name));
  for (const ObjectId& m : members) {
    set_obj.add(Tuple::pointer(kSetMemberKey, m));
  }
  const ObjectId id = put(std::move(set_obj));
  bind_set(name, id);
  return id;
}

void SiteStore::bind_set(const std::string& name, const ObjectId& id) {
  named_sets_[name] = id;
  ++version_;
  if (wal_ == nullptr) return;
  // hfverify: allow-blocking(wal-append): redo-before-ack (DESIGN.md §13).
  if (auto r = wal_->append(WalRecord::bind_set(name, id, next_seq_));
      !r.ok()) {
    HF_WARN << "site " << site_ << ": WAL append failed: "
            << r.error().message;
  }
}

std::optional<ObjectId> SiteStore::find_set(const std::string& name) const {
  auto it = named_sets_.find(name);
  if (it == named_sets_.end()) return std::nullopt;
  return it->second;
}

Result<std::vector<ObjectId>> SiteStore::set_members(const std::string& name) const {
  auto id = find_set(name);
  if (!id.has_value()) {
    return make_error(Errc::kNotFound, "no set named '" + name + "'");
  }
  const Object* obj = get(*id);
  if (obj == nullptr) {
    return make_error(Errc::kNotFound, "set object for '" + name + "' missing");
  }
  return obj->pointers(kSetMemberKey);
}

std::vector<std::string> SiteStore::set_names() const {
  std::vector<std::string> names;
  names.reserve(named_sets_.size());
  for (const auto& [name, id] : named_sets_) names.push_back(name);
  return names;
}

}  // namespace hyperfile
