#include "store/site_store.hpp"

namespace hyperfile {

ObjectId SiteStore::put(Object obj) {
  if (!obj.id().valid()) obj.set_id(allocate());
  const ObjectId id = obj.id();
  objects_[id] = std::move(obj);
  return id;
}

Result<ObjectId> SiteStore::put_validated(Object obj,
                                          const TypeRegistry& registry) {
  if (auto r = registry.validate(obj); !r.ok()) return r.error();
  return put(std::move(obj));
}

const Object* SiteStore::get(const ObjectId& id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

bool SiteStore::erase(const ObjectId& id) { return objects_.erase(id) != 0; }

std::optional<Object> SiteStore::take(const ObjectId& id) {
  auto it = objects_.find(id);
  if (it == objects_.end()) return std::nullopt;
  Object obj = std::move(it->second);
  objects_.erase(it);
  return obj;
}

Result<void> SiteStore::modify(const ObjectId& id,
                               const std::function<void(Object&)>& mutator) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return make_error(Errc::kNotFound, "no object " + id.to_string());
  }
  mutator(it->second);
  it->second.set_id(id);  // identity is immutable
  return {};
}

Result<void> SiteStore::add_tuple(const ObjectId& id, Tuple t) {
  return modify(id, [&](Object& obj) { obj.add(std::move(t)); });
}

Result<void> SiteStore::set_tuple(const ObjectId& id, const std::string& type,
                                  const std::string& key, Value value) {
  return modify(id, [&](Object& obj) {
    obj.remove(type, key);
    obj.add(Tuple(type, key, std::move(value)));
  });
}

Result<std::size_t> SiteStore::remove_tuples(const ObjectId& id,
                                             const std::string& type,
                                             const std::string& key) {
  std::size_t removed = 0;
  auto r = modify(id, [&](Object& obj) { removed = obj.remove(type, key); });
  if (!r.ok()) return r.error();
  return removed;
}

StoreStats SiteStore::stats() const {
  StoreStats s;
  s.objects = objects_.size();
  s.named_sets = named_sets_.size();
  for (const auto& [id, obj] : objects_) {
    s.tuples += obj.size();
    s.bytes += obj.byte_size();
  }
  return s;
}

std::vector<ObjectId> SiteStore::all_ids() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, obj] : objects_) ids.push_back(id);
  return ids;
}

ObjectId SiteStore::create_set(const std::string& name,
                               std::span<const ObjectId> members) {
  // Rebinding a name garbage-collects the previous set *object*, but only
  // if (a) it is one we materialized for this name (application objects
  // merely bound via bind_set are left alone) and (b) no other name is
  // still bound to it.
  if (auto prev = find_set(name)) {
    bool bound_elsewhere = false;
    for (const auto& [other_name, other_id] : named_sets_) {
      if (other_name != name && other_id == *prev) {
        bound_elsewhere = true;
        break;
      }
    }
    const Object* obj = get(*prev);
    if (!bound_elsewhere && obj != nullptr) {
      const Tuple* tag = obj->find(tuple_types::kString, "set_name");
      if (tag != nullptr && tag->data.is_string() &&
          tag->data.as_string() == name) {
        erase(*prev);
      }
    }
  }
  Object set_obj(allocate());
  set_obj.add(Tuple::string("set_name", name));
  for (const ObjectId& m : members) {
    set_obj.add(Tuple::pointer(kSetMemberKey, m));
  }
  const ObjectId id = put(std::move(set_obj));
  named_sets_[name] = id;
  return id;
}

std::optional<ObjectId> SiteStore::find_set(const std::string& name) const {
  auto it = named_sets_.find(name);
  if (it == named_sets_.end()) return std::nullopt;
  return it->second;
}

Result<std::vector<ObjectId>> SiteStore::set_members(const std::string& name) const {
  auto id = find_set(name);
  if (!id.has_value()) {
    return make_error(Errc::kNotFound, "no set named '" + name + "'");
  }
  const Object* obj = get(*id);
  if (obj == nullptr) {
    return make_error(Errc::kNotFound, "set object for '" + name + "' missing");
  }
  return obj->pointers(kSetMemberKey);
}

std::vector<std::string> SiteStore::set_names() const {
  std::vector<std::string> names;
  names.reserve(named_sets_.size());
  for (const auto& [name, id] : named_sets_) names.push_back(name);
  return names;
}

}  // namespace hyperfile
