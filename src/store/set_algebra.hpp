// Set algebra over named sets.
//
// HyperFile queries produce and consume *sets of objects* (paper Section 2:
// "These sets are used as the starting point for queries"). Filtering
// composes conjunctively within one query; combining result sets across
// queries — everything by author A *or* author B, cited-by minus already-
// read — is naturally set algebra, computed where the sets live and bound
// like any other set, ready to seed the next query.
//
// Member order: union keeps left-operand order then appends new right
// members; intersection and difference keep left-operand order. All results
// deduplicate.
#pragma once

#include <string>

#include "store/site_store.hpp"

namespace hyperfile {

/// result = a ∪ b, bound under `result`. Errors if either set is missing.
Result<ObjectId> set_union(SiteStore& store, const std::string& result,
                           const std::string& a, const std::string& b);

/// result = a ∩ b.
Result<ObjectId> set_intersect(SiteStore& store, const std::string& result,
                               const std::string& a, const std::string& b);

/// result = a \ b.
Result<ObjectId> set_difference(SiteStore& store, const std::string& result,
                                const std::string& a, const std::string& b);

}  // namespace hyperfile
