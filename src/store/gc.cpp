#include "store/gc.hpp"

#include <unordered_set>
#include <vector>

namespace hyperfile {

GcReport collect_garbage(SiteStore& store, std::span<const ObjectId> extra_roots) {
  std::unordered_set<ObjectId> live;
  std::vector<ObjectId> stack;

  auto add_root = [&](const ObjectId& id) {
    if (live.insert(id).second) stack.push_back(id);
  };
  for (const auto& name : store.set_names()) {
    if (auto id = store.find_set(name)) add_root(*id);
  }
  for (const ObjectId& id : extra_roots) add_root(id);

  while (!stack.empty()) {
    const ObjectId id = stack.back();
    stack.pop_back();
    const Object* obj = store.get(id);
    if (obj == nullptr) continue;  // dangling pointer: nothing to mark
    for (const ObjectId& target : obj->pointers()) add_root(target);
  }

  GcReport report;
  std::vector<ObjectId> doomed;
  store.for_each([&](const Object& obj) {
    if (live.count(obj.id()) != 0) {
      ++report.live;
    } else {
      doomed.push_back(obj.id());
      report.bytes_reclaimed += obj.byte_size();
    }
  });
  for (const ObjectId& id : doomed) {
    if (store.erase(id)) ++report.collected;
  }
  return report;
}

}  // namespace hyperfile
