#include "store/versioning.hpp"

#include <unordered_set>

namespace hyperfile {

Result<ObjectId> checkpoint_version(SiteStore& store, const ObjectId& id,
                                    const std::function<void(Object&)>& mutator,
                                    const std::string& version_key) {
  const Object* live = store.get(id);
  if (live == nullptr) {
    return make_error(Errc::kNotFound, "no object " + id.to_string());
  }
  // Archive the current state (including its own Previous Version pointer,
  // which keeps the chain intact) under a fresh id.
  Object archive(store.allocate(), live->tuples());
  const ObjectId archive_id = archive.id();
  store.put(std::move(archive));

  auto r = store.modify(id, [&](Object& obj) {
    mutator(obj);
    obj.remove(tuple_types::kPointer, version_key);
    obj.add(Tuple::pointer(version_key, archive_id));
  });
  if (!r.ok()) return r.error();
  return archive_id;
}

std::vector<ObjectId> version_history(const SiteStore& store, const ObjectId& id,
                                      const std::string& version_key) {
  std::vector<ObjectId> chain;
  std::unordered_set<ObjectId> seen;
  ObjectId cur = id;
  while (store.contains(cur) && seen.insert(cur).second) {
    chain.push_back(cur);
    const Object* obj = store.get(cur);
    auto next = obj->pointers(version_key);
    if (next.empty()) break;
    cur = next.front();
  }
  return chain;
}

std::size_t prune_versions(SiteStore& store, const ObjectId& id,
                           std::size_t keep, const std::string& version_key) {
  std::vector<ObjectId> chain = version_history(store, id, version_key);
  // chain[0] is the live object; archives are chain[1..].
  if (chain.size() <= keep + 1) return 0;
  // Cut the chain at the last survivor.
  const ObjectId last_kept = chain[keep];
  (void)store.modify(last_kept, [&](Object& obj) {
    obj.remove(tuple_types::kPointer, version_key);
  });
  std::size_t erased = 0;
  for (std::size_t i = keep + 1; i < chain.size(); ++i) {
    if (store.erase(chain[i])) ++erased;
  }
  return erased;
}

}  // namespace hyperfile
