#include "store/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <span>

#include "common/hash.hpp"
#include "wire/serialize.hpp"

namespace hyperfile {
namespace {
constexpr std::uint64_t kMagic = 0x48464c5348415032ULL;  // "HFLSHAP2"

/// Trailer: FNV-1a of everything before it, fixed 8 bytes little-endian.
void append_checksum(wire::Bytes& bytes) {
  const std::uint64_t sum = fnv1a(bytes.data(), bytes.size());
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
  }
}

Result<std::span<const std::uint8_t>> verify_checksum(
    std::span<const std::uint8_t> data) {
  if (data.size() < 8) {
    return make_error(Errc::kDecode, "snapshot too short for checksum");
  }
  const std::size_t body = data.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(data[body + i]) << (8 * i);
  }
  if (fnv1a(data.data(), body) != stored) {
    return make_error(Errc::kDecode, "snapshot checksum mismatch (corrupt?)");
  }
  return data.subspan(0, body);
}

}  // namespace

wire::Bytes snapshot_store(const SiteStore& store) {
  wire::Encoder e;
  e.varint(kMagic);
  e.varint(store.site());
  e.varint(store.next_seq());
  e.varint(store.size());
  store.for_each([&](const Object& obj) { wire::encode(e, obj); });
  const auto names = store.set_names();
  e.varint(names.size());
  for (const auto& name : names) {
    e.string(name);
    wire::encode(e, *store.find_set(name));
  }
  wire::Bytes bytes = e.take();
  append_checksum(bytes);
  return bytes;
}

Result<SiteStore> restore_store(std::span<const std::uint8_t> data) {
  auto body = verify_checksum(data);
  if (!body.ok()) return body.error();
  wire::Decoder d(body.value());
  auto magic = d.varint();
  if (!magic.ok()) return magic.error();
  if (magic.value() != kMagic) {
    return make_error(Errc::kDecode, "not a HyperFile snapshot");
  }
  auto site = d.varint();
  if (!site.ok()) return site.error();
  SiteStore store(static_cast<SiteId>(site.value()));
  auto next_seq = d.varint();
  if (!next_seq.ok()) return next_seq.error();
  auto count = d.varint();
  if (!count.ok()) return count.error();
  // Every object costs at least one byte on the wire, so a count beyond the
  // remaining bytes is corrupt framing — reject it up front instead of
  // looping until the decoder underflows.
  if (count.value() > d.remaining()) {
    return make_error(Errc::kDecode, "snapshot object count exceeds payload");
  }
  LocalSeq max_seq = 0;
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto obj = wire::decode_object(d);
    if (!obj.ok()) return obj.error();
    const ObjectId id = obj.value().id();
    if (id.birth_site == store.site() && id.seq > max_seq) max_seq = id.seq;
    store.put(std::move(obj).value());
  }
  auto nsets = d.varint();
  if (!nsets.ok()) return nsets.error();
  for (std::uint64_t i = 0; i < nsets.value(); ++i) {
    auto name = d.string();
    if (!name.ok()) return name.error();
    auto id = wire::decode_object_id(d);
    if (!id.ok()) return id.error();
    store.bind_set(name.value(), id.value());
  }
  if (!d.done()) return make_error(Errc::kDecode, "trailing snapshot bytes");
  // Restore the allocator *after* puts so reloaded ids don't bump it. Guard
  // against a (corrupt or hand-edited) counter that lags the objects it
  // ships: allocate() must never re-issue the id of a restored object.
  store.set_next_seq(std::max<LocalSeq>(next_seq.value(), max_seq + 1));
  return store;
}

Result<void> save_snapshot(const SiteStore& store, const std::string& path) {
  const wire::Bytes bytes = snapshot_store(store);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return make_error(Errc::kIo, "cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  // fflush pushes to the OS; fsync pushes to the platter. Without the fsync
  // a later rename can publish a snapshot whose *bytes* are still only in
  // the page cache — a power loss then leaves a checkpoint name pointing at
  // garbage while the WAL it licensed truncating is gone (DESIGN.md §18).
  const bool flushed = written == bytes.size() && std::fflush(f) == 0 &&
                       ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!flushed) {
    return make_error(Errc::kIo, "short write to '" + path + "'");
  }
  return {};
}

Result<void> fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return make_error(Errc::kIo, "cannot open directory '" + dir +
                                     "': " + std::strerror(errno));
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    return make_error(Errc::kIo, "fsync of directory '" + dir + "' failed");
  }
  return {};
}

Result<SiteStore> load_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(Errc::kIo, "cannot open '" + path + "' for reading");
  }
  wire::Bytes bytes;
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return restore_store(bytes);
}

}  // namespace hyperfile
