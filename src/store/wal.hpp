// Per-site write-ahead log (DESIGN.md §13).
//
// SiteStore is a main-memory store; snapshots (store/snapshot.hpp) give it
// durability only at the instants someone saves one. The WAL closes the gap
// for crash-stop faults: every store mutation appends one redo record, so a
// site killed at any instant recovers to its last acknowledged mutation by
// reloading the latest checkpoint and replaying the log on top.
//
// File format — a sequence of self-delimiting records, reusing the wire
// codec:
//
//   record  := varint(payload_len) payload u64le(fnv1a(payload))
//   payload := u8(op) varint(next_seq) op-specific body
//
// The trailing checksum makes every record independently verifiable, which
// is what licenses the torn-tail rule: replay scans records until the first
// one that is truncated or fails its checksum, keeps everything before it,
// and reports the tail as torn. A process killed mid-append therefore loses
// at most the record it was writing — never an acknowledged one (append
// flushes to the OS before returning). Re-opening the log truncates the
// file back to the last good record so later appends extend a clean log.
//
// Checkpointing: snapshot the store (store/snapshot.hpp), persist it, then
// truncate() the log — recovery cost is then one snapshot load plus the
// records since. SiteServer drives this online (DESIGN.md §13); the WAL
// itself is policy-free.
//
// Thread safety: externally synchronized, exactly like the SiteStore it
// shadows — the distributed runtime confines both to the site's event loop.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/sync.hpp"
#include "model/object.hpp"
#include "wire/codec.hpp"

namespace hyperfile {

/// One redo record. `next_seq` snapshots the store's id allocator after the
/// mutation, so replay can restore it monotonically (a replayed id is never
/// handed out again).
struct WalRecord {
  enum class Op : std::uint8_t { kPut = 1, kErase = 2, kBindSet = 3 };

  Op op = Op::kPut;
  LocalSeq next_seq = 0;
  Object object;    // kPut: full post-mutation object state
  ObjectId id;      // kErase / kBindSet
  std::string name; // kBindSet

  static WalRecord put(Object obj, LocalSeq next_seq);
  static WalRecord erase(const ObjectId& id, LocalSeq next_seq);
  static WalRecord bind_set(std::string name, const ObjectId& id,
                            LocalSeq next_seq);
};

/// Encode/decode one record payload (without the length/checksum framing) —
/// exposed for tests that construct corrupt logs byte by byte.
wire::Bytes encode_wal_record(const WalRecord& rec);
Result<WalRecord> decode_wal_record(std::span<const std::uint8_t> payload);

/// Result of scanning a log file.
struct WalReplay {
  std::vector<WalRecord> records;
  /// Byte offset of the end of the last good record; everything past it is
  /// torn/corrupt tail and must be truncated before appending.
  std::uint64_t valid_bytes = 0;
  bool torn = false;
};

/// Scan the log at `path`. A missing file is an empty log, not an error;
/// a damaged tail ends the scan (WalReplay::torn) rather than failing it.
Result<WalReplay> replay_wal(const std::string& path);

/// One offset-addressed tail read of a WAL file — the shipping primitive of
/// WAL replication (DESIGN.md §18). `records` are encoded payloads (framing
/// stripped, checksums verified), ready to travel as wire::WalSegment
/// records and be decoded with decode_wal_record at the follower.
struct WalSegmentRead {
  std::vector<wire::Bytes> records;
  /// Byte offset one past the last record returned: the next read's
  /// `from_offset`, and the follower's watermark after applying.
  std::uint64_t end_offset = 0;
  /// True when the scan stopped at a torn/corrupt frame instead of a clean
  /// record boundary — also the symptom of a `from_offset` that is not a
  /// record boundary, since a misaligned scan fails its first checksum.
  bool torn = false;
};

/// Read whole records from `path` starting at byte `from_offset`, collecting
/// at most `max_bytes` of framed records per call (always at least one full
/// record when any is available, so progress never stalls on a large
/// record). `from_offset` at or past end-of-file yields an empty read.
Result<WalSegmentRead> read_wal_segment(const std::string& path,
                                        std::uint64_t from_offset,
                                        std::uint64_t max_bytes);

class WriteAheadLog {
 public:
  /// Open `path` for appending after a replay_wal() pass: the file is first
  /// truncated to `replayed.valid_bytes` so a torn tail never pollutes
  /// subsequent appends.
  static Result<WriteAheadLog> open(const std::string& path,
                                    const WalReplay& replayed);

  WriteAheadLog(WriteAheadLog&& o) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& o) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  ~WriteAheadLog();

  /// Append one record and flush it. The mutation it describes counts as
  /// acknowledged only once this returns ok.
  HF_BLOCKING Result<void> append(const WalRecord& rec);

  /// Drop every record (the checkpoint that subsumes them is on disk).
  HF_BLOCKING Result<void> truncate();

  const std::string& path() const { return path_; }
  /// Records currently in the file (replayed + appended − truncated).
  std::uint64_t record_count() const { return record_count_; }
  std::uint64_t byte_size() const { return byte_size_; }

 private:
  WriteAheadLog(std::string path, std::FILE* f, std::uint64_t records,
                std::uint64_t bytes);

  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t record_count_ = 0;
  std::uint64_t byte_size_ = 0;
};

}  // namespace hyperfile
