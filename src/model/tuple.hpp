// Tuples: the unit of structure inside a HyperFile object (paper Section 2).
//
// A tuple has three parts:
//   * type — tells HyperFile what the remaining fields are. Types are open:
//     applications register new ones by convention (e.g. "Object_Code" with
//     a target-machine string as key and opaque bits as data). Well-known
//     type names used throughout the paper are provided as constants.
//   * key  — application-assigned purpose of the tuple ("Author", "Title",
//     "Called Routine", ...). Almost always a string.
//   * data — a Value: string, number, pointer to another object, or blob.
#pragma once

#include <string>

#include "model/value.hpp"

namespace hyperfile {

/// Well-known tuple type names. These are conventions, not an enum: the
/// server accepts any type string (paper: "The possible entries in the type
/// field are not fixed; applications can define new types").
namespace tuple_types {
inline constexpr const char* kString = "string";
inline constexpr const char* kText = "text";
inline constexpr const char* kKeyword = "keyword";
inline constexpr const char* kNumber = "number";
inline constexpr const char* kPointer = "pointer";
inline constexpr const char* kBlob = "blob";
}  // namespace tuple_types

struct Tuple {
  std::string type;
  std::string key;
  Value data;

  Tuple() = default;
  Tuple(std::string type_name, std::string key_name, Value value)
      : type(std::move(type_name)), key(std::move(key_name)), data(std::move(value)) {}

  /// Shorthand constructors for the common cases.
  static Tuple string(std::string key, std::string value) {
    return Tuple(tuple_types::kString, std::move(key), Value::string(std::move(value)));
  }
  static Tuple text(std::string key, std::string body) {
    return Tuple(tuple_types::kText, std::move(key), Value::blob_text(body));
  }
  static Tuple keyword(std::string word) {
    // Keyword tuples follow the paper's usage: (keyword, <word>, ?) — the
    // word lives in the key, the data field is unconstrained.
    return Tuple(tuple_types::kKeyword, std::move(word), Value());
  }
  static Tuple number(std::string key, std::int64_t value) {
    return Tuple(tuple_types::kNumber, std::move(key), Value::number(value));
  }
  static Tuple pointer(std::string key, ObjectId target) {
    return Tuple(tuple_types::kPointer, std::move(key), Value::pointer(target));
  }
  static Tuple blob(std::string key, Value::Blob bytes) {
    return Tuple(tuple_types::kBlob, std::move(key), Value::blob(std::move(bytes)));
  }

  bool is_pointer() const { return data.is_pointer(); }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.type == b.type && a.key == b.key && a.data == b.data;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }

  std::size_t byte_size() const {
    return type.size() + key.size() + data.byte_size() + 3;
  }

  std::string to_string() const;
};

}  // namespace hyperfile
