// Tuple field values (paper Section 2).
//
// HyperFile understands only a few simple data kinds — strings, numbers,
// keywords-as-strings, pointers to other objects — and treats everything
// else (document text, images, object code) as an opaque byte sequence, much
// like a file. Selection filters can match the simple kinds; blobs can only
// be stored and retrieved.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "model/object_id.hpp"

namespace hyperfile {

enum class ValueKind : std::uint8_t {
  kNull = 0,
  kString = 1,
  kNumber = 2,
  kPointer = 3,
  kBlob = 4,
};

const char* to_string(ValueKind k);

class Value {
 public:
  using Blob = std::vector<std::uint8_t>;

  Value() = default;

  static Value string(std::string s) { return Value(std::move(s)); }
  static Value number(std::int64_t n) { return Value(n); }
  static Value pointer(ObjectId id) { return Value(id); }
  static Value blob(Blob b) { return Value(std::move(b)); }
  /// Convenience: blob from text payload (e.g. document body).
  static Value blob_text(const std::string& text) {
    return Value(Blob(text.begin(), text.end()));
  }

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_number() const { return kind() == ValueKind::kNumber; }
  bool is_pointer() const { return kind() == ValueKind::kPointer; }
  bool is_blob() const { return kind() == ValueKind::kBlob; }

  const std::string& as_string() const { return std::get<1>(rep_); }
  std::int64_t as_number() const { return std::get<2>(rep_); }
  const ObjectId& as_pointer() const { return std::get<3>(rep_); }
  const Blob& as_blob() const { return std::get<4>(rep_); }

  /// Deep equality. Pointers compare by identity (birth site + seq), so a
  /// stale presumed-site hint does not affect query semantics.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order (kind-major) so values can key ordered containers.
  friend bool operator<(const Value& a, const Value& b);

  /// Approximate in-memory / on-wire size in bytes; used by the baseline
  /// comparator to account for shipping whole objects.
  std::size_t byte_size() const;

  std::string to_string() const;

 private:
  struct Null {
    friend bool operator==(const Null&, const Null&) { return true; }
  };
  explicit Value(std::string s) : rep_(std::move(s)) {}
  explicit Value(std::int64_t n) : rep_(n) {}
  explicit Value(ObjectId id) : rep_(id) {}
  explicit Value(Blob b) : rep_(std::move(b)) {}

  std::variant<Null, std::string, std::int64_t, ObjectId, Blob> rep_;
};

}  // namespace hyperfile
