// Application-defined tuple types (paper Section 2).
//
// "The possible entries in the type field are not fixed; applications can
// define new types. For example, an application could define Object_Code to
// be a type where the key would be the target machine. This would be a
// convention between applications; HyperFile would only understand
// Object_Code as a type of tuple having a string as a key, and arbitrary
// bits as data."
//
// TypeRegistry captures those conventions: each registered type constrains
// what the data field may hold. Validation is *opt-in* (SiteStore::
// put_validated) — the plain put() keeps the schema-free file-system
// spirit; the registry exists so cooperating applications can enforce their
// conventions at the boundary.
#pragma once

#include <map>
#include <string>

#include "common/result.hpp"
#include "model/tuple.hpp"

namespace hyperfile {

class Object;  // model/object.hpp

enum class DataConstraint : std::uint8_t {
  kAny,      // no restriction
  kNull,     // marker tuples (e.g. keywords carry no data)
  kString,
  kNumber,
  kPointer,
  kBlob,
};

const char* to_string(DataConstraint c);

class TypeRegistry {
 public:
  /// Empty registry: nothing registered, unknown types' policy applies.
  TypeRegistry() = default;

  /// Registry pre-loaded with the built-in conventions:
  ///   string -> string data, text -> blob, keyword -> null data,
  ///   number -> number, pointer -> pointer, blob -> blob.
  static TypeRegistry with_builtins();

  /// Register (or redefine) a type convention.
  void register_type(std::string name, DataConstraint data);

  bool knows(const std::string& name) const { return specs_.count(name) != 0; }
  std::size_t size() const { return specs_.size(); }

  /// Reject tuples whose type is not registered (default: allow — the
  /// server "does not understand the contents of objects").
  void set_reject_unknown(bool reject) { reject_unknown_ = reject; }
  bool reject_unknown() const { return reject_unknown_; }

  Result<void> validate(const Tuple& t) const;
  Result<void> validate(const Object& obj) const;

 private:
  std::map<std::string, DataConstraint> specs_;
  bool reject_unknown_ = false;
};

}  // namespace hyperfile
