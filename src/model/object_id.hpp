// Global object identity (paper Section 4, "naming of objects").
//
// HyperFile names objects with a variant of the R* scheme: an id carries the
// *birth site* (where the object was created — the final arbiter of its
// actual location) and the *presumed current site* (a hint that may be
// stale after the object moves). Identity is (birth_site, seq): two ids with
// the same birth site and sequence number name the same object even if their
// presumed sites differ. This makes moving an object cheap — pointers to it
// need not be rewritten; a dereference that misses is redirected by the
// birth site (see naming/name_service.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/hash.hpp"
#include "common/types.hpp"

namespace hyperfile {

struct ObjectId {
  SiteId birth_site = kNoSite;
  LocalSeq seq = 0;
  /// Hint only — excluded from equality, ordering, and hashing.
  SiteId presumed_site = kNoSite;

  constexpr ObjectId() = default;
  constexpr ObjectId(SiteId birth, LocalSeq sequence)
      : birth_site(birth), seq(sequence), presumed_site(birth) {}
  constexpr ObjectId(SiteId birth, LocalSeq sequence, SiteId presumed)
      : birth_site(birth), seq(sequence), presumed_site(presumed) {}

  bool valid() const { return birth_site != kNoSite; }

  /// Same object, regardless of the location hint.
  friend bool operator==(const ObjectId& a, const ObjectId& b) {
    return a.birth_site == b.birth_site && a.seq == b.seq;
  }
  friend bool operator!=(const ObjectId& a, const ObjectId& b) {
    return !(a == b);
  }
  friend bool operator<(const ObjectId& a, const ObjectId& b) {
    if (a.birth_site != b.birth_site) return a.birth_site < b.birth_site;
    return a.seq < b.seq;
  }

  /// Same id *and* same hint — used by wire round-trip tests.
  bool identical(const ObjectId& other) const {
    return *this == other && presumed_site == other.presumed_site;
  }

  std::string to_string() const;
};

struct ObjectIdHash {
  std::size_t operator()(const ObjectId& id) const {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(id.birth_site) << 48) ^ id.seq));
  }
};

}  // namespace hyperfile

namespace std {
template <>
struct hash<hyperfile::ObjectId> {
  size_t operator()(const hyperfile::ObjectId& id) const {
    return hyperfile::ObjectIdHash{}(id);
  }
};
}  // namespace std
