// HyperFile objects: sets of tuples (paper Section 2).
//
// An object is deliberately schema-free: it is just a bag of self-describing
// tuples. An application may use several objects for what the end user sees
// as one "document" (e.g. one object per paragraph linked by pointers) — the
// server neither knows nor cares.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "model/tuple.hpp"

namespace hyperfile {

class Object {
 public:
  Object() = default;
  explicit Object(ObjectId id) : id_(id) {}
  Object(ObjectId id, std::vector<Tuple> tuples)
      : id_(id), tuples_(std::move(tuples)) {}

  const ObjectId& id() const { return id_; }
  void set_id(ObjectId id) { id_ = id; }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  bool empty() const { return tuples_.empty(); }
  std::size_t size() const { return tuples_.size(); }

  Object& add(Tuple t) {
    tuples_.push_back(std::move(t));
    return *this;
  }

  /// Remove all tuples matching (type, key). Returns number removed.
  std::size_t remove(const std::string& type, const std::string& key);

  /// First tuple with the given type and key, or nullptr.
  const Tuple* find(const std::string& type, const std::string& key) const;

  /// All tuples with the given type and key.
  std::vector<const Tuple*> find_all(const std::string& type,
                                     const std::string& key) const;

  /// All outgoing pointers, optionally restricted to a key (link category).
  /// Passing an empty key returns pointers of every category — the paper's
  /// wildcard "follow all pointers" case.
  std::vector<ObjectId> pointers(const std::string& key = {}) const;

  /// Total approximate size in bytes, including blob payloads. This is what
  /// a file-interface server would have to ship (baseline comparator).
  std::size_t byte_size() const;

  friend bool operator==(const Object& a, const Object& b) {
    return a.id_ == b.id_ && a.tuples_ == b.tuples_;
  }
  friend bool operator!=(const Object& a, const Object& b) { return !(a == b); }

  std::string to_string() const;

 private:
  ObjectId id_;
  std::vector<Tuple> tuples_;
};

}  // namespace hyperfile
