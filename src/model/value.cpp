#include "model/value.hpp"

#include <cstdio>

namespace hyperfile {

const char* to_string(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kString:
      return "string";
    case ValueKind::kNumber:
      return "number";
    case ValueKind::kPointer:
      return "pointer";
    case ValueKind::kBlob:
      return "blob";
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case ValueKind::kNull:
      return true;
    case ValueKind::kString:
      return a.as_string() == b.as_string();
    case ValueKind::kNumber:
      return a.as_number() == b.as_number();
    case ValueKind::kPointer:
      return a.as_pointer() == b.as_pointer();
    case ValueKind::kBlob:
      return a.as_blob() == b.as_blob();
  }
  return false;
}

bool operator<(const Value& a, const Value& b) {
  if (a.kind() != b.kind()) return a.kind() < b.kind();
  switch (a.kind()) {
    case ValueKind::kNull:
      return false;
    case ValueKind::kString:
      return a.as_string() < b.as_string();
    case ValueKind::kNumber:
      return a.as_number() < b.as_number();
    case ValueKind::kPointer:
      return a.as_pointer() < b.as_pointer();
    case ValueKind::kBlob:
      return a.as_blob() < b.as_blob();
  }
  return false;
}

std::size_t Value::byte_size() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 1;
    case ValueKind::kString:
      return 1 + as_string().size();
    case ValueKind::kNumber:
      return 9;
    case ValueKind::kPointer:
      return 17;
    case ValueKind::kBlob:
      return 1 + as_blob().size();
  }
  return 1;
}

std::string Value::to_string() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kString:
      return "\"" + as_string() + "\"";
    case ValueKind::kNumber:
      return std::to_string(as_number());
    case ValueKind::kPointer:
      return as_pointer().to_string();
    case ValueKind::kBlob: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "<blob %zu bytes>", as_blob().size());
      return buf;
    }
  }
  return "?";
}

std::string ObjectId::to_string() const {
  char buf[64];
  if (presumed_site == birth_site) {
    std::snprintf(buf, sizeof buf, "obj(%u.%llu)", birth_site,
                  static_cast<unsigned long long>(seq));
  } else {
    std::snprintf(buf, sizeof buf, "obj(%u.%llu@%u)", birth_site,
                  static_cast<unsigned long long>(seq), presumed_site);
  }
  return buf;
}

}  // namespace hyperfile
