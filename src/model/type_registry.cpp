#include "model/type_registry.hpp"

#include "model/object.hpp"

namespace hyperfile {

const char* to_string(DataConstraint c) {
  switch (c) {
    case DataConstraint::kAny:
      return "any";
    case DataConstraint::kNull:
      return "null";
    case DataConstraint::kString:
      return "string";
    case DataConstraint::kNumber:
      return "number";
    case DataConstraint::kPointer:
      return "pointer";
    case DataConstraint::kBlob:
      return "blob";
  }
  return "?";
}

TypeRegistry TypeRegistry::with_builtins() {
  TypeRegistry r;
  r.register_type(tuple_types::kString, DataConstraint::kString);
  r.register_type(tuple_types::kText, DataConstraint::kBlob);
  r.register_type(tuple_types::kKeyword, DataConstraint::kNull);
  r.register_type(tuple_types::kNumber, DataConstraint::kNumber);
  r.register_type(tuple_types::kPointer, DataConstraint::kPointer);
  r.register_type(tuple_types::kBlob, DataConstraint::kBlob);
  return r;
}

void TypeRegistry::register_type(std::string name, DataConstraint data) {
  specs_[std::move(name)] = data;
}

namespace {

bool satisfies(const Value& v, DataConstraint c) {
  switch (c) {
    case DataConstraint::kAny:
      return true;
    case DataConstraint::kNull:
      return v.is_null();
    case DataConstraint::kString:
      return v.is_string();
    case DataConstraint::kNumber:
      return v.is_number();
    case DataConstraint::kPointer:
      return v.is_pointer();
    case DataConstraint::kBlob:
      return v.is_blob();
  }
  return false;
}

}  // namespace

Result<void> TypeRegistry::validate(const Tuple& t) const {
  auto it = specs_.find(t.type);
  if (it == specs_.end()) {
    if (reject_unknown_) {
      return make_error(Errc::kInvalidArgument,
                        "unregistered tuple type '" + t.type + "'");
    }
    return {};
  }
  if (!satisfies(t.data, it->second)) {
    return make_error(Errc::kInvalidArgument,
                      "tuple " + t.to_string() + ": type '" + t.type +
                          "' requires " + std::string(to_string(it->second)) +
                          " data, got " + to_string(t.data.kind()));
  }
  return {};
}

Result<void> TypeRegistry::validate(const Object& obj) const {
  for (const Tuple& t : obj.tuples()) {
    if (auto r = validate(t); !r.ok()) return r;
  }
  return {};
}

}  // namespace hyperfile
