#include "model/object.hpp"

namespace hyperfile {

std::string Tuple::to_string() const {
  return "(" + type + ", \"" + key + "\", " + data.to_string() + ")";
}

std::size_t Object::remove(const std::string& type, const std::string& key) {
  const auto before = tuples_.size();
  tuples_.erase(std::remove_if(tuples_.begin(), tuples_.end(),
                               [&](const Tuple& t) {
                                 return t.type == type && t.key == key;
                               }),
                tuples_.end());
  return before - tuples_.size();
}

const Tuple* Object::find(const std::string& type, const std::string& key) const {
  for (const auto& t : tuples_) {
    if (t.type == type && t.key == key) return &t;
  }
  return nullptr;
}

std::vector<const Tuple*> Object::find_all(const std::string& type,
                                           const std::string& key) const {
  std::vector<const Tuple*> out;
  for (const auto& t : tuples_) {
    if (t.type == type && t.key == key) out.push_back(&t);
  }
  return out;
}

std::vector<ObjectId> Object::pointers(const std::string& key) const {
  std::vector<ObjectId> out;
  for (const auto& t : tuples_) {
    if (!t.data.is_pointer()) continue;
    if (!key.empty() && t.key != key) continue;
    out.push_back(t.data.as_pointer());
  }
  return out;
}

std::size_t Object::byte_size() const {
  std::size_t total = 17;  // id
  for (const auto& t : tuples_) total += t.byte_size();
  return total;
}

std::string Object::to_string() const {
  std::string s = id_.to_string() + " {";
  for (const auto& t : tuples_) {
    s += "\n  " + t.to_string();
  }
  s += tuples_.empty() ? "}" : "\n}";
  return s;
}

}  // namespace hyperfile
