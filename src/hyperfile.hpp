// Umbrella header: the public API of the HyperFile library.
//
//   #include "hyperfile.hpp"
//
// pulls in everything an application needs — the data model, the query
// language, the engines (local / parallel / distributed / simulated), the
// store with its persistence and maintenance helpers, and the indexing
// facilities. Subsystem headers remain individually includable for
// finer-grained builds.
#pragma once

#include "baseline/file_server.hpp"
#include "common/logging.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "dist/client.hpp"
#include "dist/cluster.hpp"
#include "dist/site_server.hpp"
#include "engine/local_engine.hpp"
#include "engine/parallel_engine.hpp"
#include "engine/query_result.hpp"
#include "index/accelerate.hpp"
#include "index/attribute_index.hpp"
#include "index/explain.hpp"
#include "index/reachability_index.hpp"
#include "model/object.hpp"
#include "model/type_registry.hpp"
#include "naming/name_registry.hpp"
#include "naming/persist.hpp"
#include "net/inproc.hpp"
#include "net/tcp.hpp"
#include "query/builder.hpp"
#include "query/parser.hpp"
#include "query/rewrite.hpp"
#include "sim/simulation.hpp"
#include "store/gc.hpp"
#include "store/site_store.hpp"
#include "store/set_algebra.hpp"
#include "store/snapshot.hpp"
#include "store/versioning.hpp"
#include "workload/paper_workload.hpp"
