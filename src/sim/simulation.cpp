#include "sim/simulation.hpp"

#include <algorithm>

#include "engine/execution.hpp"
#include "term/weight.hpp"

namespace hyperfile::sim {

Duration SimStats::max_busy() const {
  Duration m{0};
  for (Duration d : busy) m = std::max(m, d);
  return m;
}

namespace {

struct Event {
  Duration time{0};
  std::uint64_t seq = 0;  // tie-break for determinism
  SiteId src = kNoSite;
  SiteId dst = kNoSite;
  wire::Message message;
};

struct EventOrder {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;  // min-heap
    return a.seq > b.seq;
  }
};

}  // namespace

struct Simulation::Impl {
  CostModel costs;
  SimOptions options;
  std::vector<SiteStore> stores;
  /// Distributed result sets left by count_only queries: name -> sites.
  std::map<std::string, std::vector<SiteId>> distributed_sets;

  // ---- per-run state ----
  struct Site {
    std::unique_ptr<QueryExecution> exec;
    WeightedTerminationParticipant weight;
    std::vector<ObjectId> retained;
    std::vector<WorkItem> pending_sends;  // filled by the remote sink
    Duration available{0};
  };
  std::vector<Site> site_state;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events;
  std::uint64_t next_seq = 0;
  SiteId origin = 0;
  const Query* query = nullptr;
  WeightedTerminationOriginator term;
  std::unordered_set<ObjectId> result_seen;
  std::vector<ObjectId> result_ids;
  std::vector<Retrieved> result_values;
  std::uint64_t total_count = 0;
  std::unordered_map<SiteId, std::uint64_t> site_counts;
  bool done = false;
  Duration done_time{0};
  SimStats stats;

  Impl(CostModel c, std::size_t n, SimOptions opts) : costs(c), options(opts) {
    stores.reserve(n);
    for (std::size_t i = 0; i < n; ++i) stores.emplace_back(static_cast<SiteId>(i));
  }

  void schedule(Duration time, SiteId src, SiteId dst, wire::Message msg) {
    stats.bytes_on_wire += wire::encode_message(msg).size();
    switch (msg.index()) {
      case 0:
        ++stats.deref_messages;
        break;
      case 1:
        ++stats.start_messages;
        break;
      case 2:
        ++stats.result_messages;
        break;
      case 6:
        ++stats.batch_messages;
        break;
      default:
        break;
    }
    events.push(Event{time, next_seq++, src, dst, std::move(msg)});
  }

  Weight borrow(SiteId s) {
    return s == origin ? term.borrow() : site_state[s].weight.borrow();
  }

  void repay(SiteId s, Weight w) {
    if (w.is_zero()) return;
    if (s == origin) {
      term.repay(std::move(w));
    } else {
      site_state[s].weight.receive(std::move(w));
    }
  }

  /// Flush dereferences the engine routed remotely: each becomes a message,
  /// costing sender CPU now and arriving after the wire latency.
  Duration flush_sends(SiteId s, Duration now) {
    auto& st = site_state[s];
    for (WorkItem& item : st.pending_sends) {
      const SiteId dest = item.id.presumed_site;
      if (dest == kNoSite || dest >= stores.size() || dest == s) {
        continue;  // dangling pointer: drop (weight never borrowed)
      }
      now += costs.msg_send_cpu;
      wire::DerefRequest dr;
      dr.qid = wire::QueryId{origin, 1};
      dr.query = *query;
      dr.oid = item.id;
      dr.start = item.start;
      dr.iter_stack = item.iter_stack;
      dr.weight = borrow(s).exponents();
      schedule(now + costs.msg_latency, s, dest, std::move(dr));
    }
    st.pending_sends.clear();
    return now;
  }

  /// Batched variant: group a drain's pending dereferences by destination
  /// and ship one message per destination.
  Duration flush_sends_batched(SiteId s, Duration now) {
    auto& st = site_state[s];
    if (st.pending_sends.empty()) return now;
    std::map<SiteId, std::vector<wire::DerefEntry>> by_dest;
    for (WorkItem& item : st.pending_sends) {
      const SiteId dest = item.id.presumed_site;
      if (dest == kNoSite || dest >= stores.size() || dest == s) continue;
      wire::DerefEntry entry;
      entry.oid = item.id;
      entry.start = item.start;
      entry.iter_stack = std::move(item.iter_stack);
      by_dest[dest].push_back(std::move(entry));
    }
    st.pending_sends.clear();
    for (auto& [dest, items] : by_dest) {
      now += costs.msg_send_cpu;
      wire::BatchDerefRequest bd;
      bd.qid = wire::QueryId{origin, 1};
      bd.query = *query;
      bd.items = std::move(items);
      bd.weight = borrow(s).exponents();
      schedule(now + costs.msg_latency, s, dest, std::move(bd));
    }
    return now;
  }

  /// Merge freshly produced local results at the originator.
  Duration absorb_local_results(Duration now) {
    auto& st = site_state[origin];
    for (ObjectId id : st.exec->take_result_ids()) {
      if (query->count_only()) {
        st.retained.push_back(id);
        ++total_count;
        ++site_counts[origin];
        continue;
      }
      if (result_seen.insert(id).second) {
        result_ids.push_back(id);
        now += costs.result_insert;
      }
    }
    for (Retrieved& r : st.exec->take_retrieved()) {
      result_values.push_back(std::move(r));
    }
    return now;
  }

  /// Drain site `s` starting at CPU time `now`; returns the finish time.
  Duration drain(SiteId s, Duration now) {
    auto& st = site_state[s];
    for (;;) {
      // Flush before stepping so remote work produced by *seeding* (initial
      // set members stored elsewhere) leaves even when W is empty here.
      // In batched mode the flush happens once, after the drain completes.
      if (!options.batch_derefs) now = flush_sends(s, now);
      StepReport report = st.exec->step();
      if (report.kind == StepKind::kIdle) break;
      switch (report.kind) {
        case StepKind::kProcessed:
          now += costs.process_object;
          ++stats.objects_processed;
          break;
        case StepKind::kSuppressed:
        case StepKind::kMissing:
          now += costs.suppressed_pop;
          ++stats.suppressed_pops;
          break;
        case StepKind::kIdle:
          break;
      }
    }

    if (options.batch_derefs) now = flush_sends_batched(s, now);

    if (s == origin) {
      now = absorb_local_results(now);
      check_done(now);
      return now;
    }

    // Participant: batch results + all held weight to the originator.
    std::vector<ObjectId> ids = st.exec->take_result_ids();
    std::vector<Retrieved> vals = st.exec->take_retrieved();
    wire::ResultMessage rm;
    rm.qid = wire::QueryId{origin, 1};
    rm.count_only = query->count_only();
    if (query->count_only()) {
      st.retained.insert(st.retained.end(), ids.begin(), ids.end());
      rm.local_count = ids.size();
      if (!query->result_set_name().empty() && !st.retained.empty()) {
        stores[s].create_set(query->result_set_name(), st.retained);
      }
    } else {
      rm.ids = std::move(ids);
      for (Retrieved& r : vals) {
        rm.values.push_back({r.slot, r.source, std::move(r.value)});
      }
    }
    rm.weight = st.weight.release_all().exponents();
    now += costs.msg_send_cpu;
    schedule(now + costs.msg_latency, s, origin, std::move(rm));
    return now;
  }

  void check_done(Duration now) {
    if (done) return;
    if (!site_state[origin].exec->idle()) return;
    if (!term.all_weight_home()) return;
    done = true;
    done_time = now;
  }

  void handle(const Event& ev) {
    auto& st = site_state[ev.dst];
    Duration now = std::max(ev.time, st.available);
    const Duration cpu_start = now;
    now += costs.msg_recv_cpu;

    if (const auto* dr = std::get_if<wire::DerefRequest>(&ev.message)) {
      repay(ev.dst, Weight::from_exponents(dr->weight));
      if (stores[ev.dst].contains(dr->oid)) {
        WorkItem item;
        item.id = dr->oid;
        item.start = dr->start;
        item.next = dr->start;
        item.iter_stack = dr->iter_stack.empty()
                              ? std::vector<std::uint32_t>{1}
                              : dr->iter_stack;
        st.exec->add_item(std::move(item));
      }
      now = drain(ev.dst, now);
    } else if (const auto* bd = std::get_if<wire::BatchDerefRequest>(&ev.message)) {
      repay(ev.dst, Weight::from_exponents(bd->weight));
      for (const wire::DerefEntry& entry : bd->items) {
        if (!stores[ev.dst].contains(entry.oid)) continue;
        WorkItem item;
        item.id = entry.oid;
        item.start = entry.start;
        item.next = entry.start;
        item.iter_stack = entry.iter_stack.empty()
                              ? std::vector<std::uint32_t>{1}
                              : entry.iter_stack;
        st.exec->add_item(std::move(item));
      }
      now = drain(ev.dst, now);
    } else if (const auto* sq = std::get_if<wire::StartQuery>(&ev.message)) {
      repay(ev.dst, Weight::from_exponents(sq->weight));
      if (!sq->local_set_name.empty()) st.exec->seed_local_set(sq->local_set_name);
      now = drain(ev.dst, now);
    } else if (const auto* rm = std::get_if<wire::ResultMessage>(&ev.message)) {
      // Only the originator receives results.
      if (rm->count_only) {
        total_count += rm->local_count;
        site_counts[ev.src] += rm->local_count;
      }
      for (const ObjectId& id : rm->ids) {
        now += costs.remote_result_id;
        if (result_seen.insert(id).second) {
          result_ids.push_back(id);
          now += costs.result_insert;
        }
      }
      for (const auto& v : rm->values) {
        result_values.push_back({v.slot, v.source, v.value});
      }
      repay(ev.dst, Weight::from_exponents(rm->weight));
      check_done(now);
    }

    st.available = now;
    if (ev.dst < stats.busy.size()) {
      stats.busy[ev.dst] += now - cpu_start;
    }
  }
};

Simulation::Simulation(CostModel costs, std::size_t sites, SimOptions options)
    : impl_(std::make_unique<Impl>(costs, sites, options)) {}

Simulation::~Simulation() = default;

std::size_t Simulation::sites() const { return impl_->stores.size(); }

SiteStore& Simulation::store(SiteId site) { return impl_->stores[site]; }

Result<SimOutcome> Simulation::run(const Query& query, SiteId origin) {
  Impl& im = *impl_;
  if (origin >= im.stores.size()) {
    return make_error(Errc::kNotFound, "no such site");
  }
  if (auto v = query.validate(); !v.ok()) return v.error();

  // ---- reset per-run state ----
  im.site_state.clear();
  im.site_state.resize(im.stores.size());
  im.events = {};
  im.next_seq = 0;
  im.origin = origin;
  im.query = &query;
  im.term = WeightedTerminationOriginator();
  im.result_seen.clear();
  im.result_ids.clear();
  im.result_values.clear();
  im.total_count = 0;
  im.site_counts.clear();
  im.done = false;
  im.done_time = Duration(0);
  im.stats = SimStats{};
  im.stats.busy.assign(im.stores.size(), Duration(0));

  for (std::size_t s = 0; s < im.stores.size(); ++s) {
    ExecutionOptions opts;
    const SiteId site = static_cast<SiteId>(s);
    opts.is_local = [&im, site](const ObjectId& id) {
      return im.stores[site].contains(id);
    };
    opts.remote_sink = [&im, site](WorkItem&& item) {
      im.site_state[site].pending_sends.push_back(std::move(item));
    };
    im.site_state[s].exec = std::make_unique<QueryExecution>(
        query, im.stores[s], std::move(opts));
  }

  // ---- originate ----
  Duration now = im.costs.query_setup;  // client -> originator submission
  auto& origin_state = im.site_state[origin];

  bool seeded = false;
  const std::string& set_name = query.initial_set_name();
  if (!set_name.empty()) {
    auto dit = im.distributed_sets.find(set_name);
    if (dit != im.distributed_sets.end()) {
      for (SiteId s : dit->second) {
        if (s == origin) {
          origin_state.exec->seed_local_set(set_name);
          continue;
        }
        now += im.costs.msg_send_cpu;
        wire::StartQuery sq;
        sq.qid = wire::QueryId{origin, 1};
        sq.query = query;
        sq.local_set_name = set_name;
        sq.weight = im.term.borrow().exponents();
        im.schedule(now + im.costs.msg_latency, origin, s, std::move(sq));
      }
      seeded = true;
    }
  }
  if (!seeded) {
    if (auto r = origin_state.exec->seed_initial(); !r.ok()) return r.error();
  }
  now = im.drain(origin, now);
  origin_state.available = now;
  im.stats.busy[origin] += now - im.costs.query_setup;

  // ---- event loop ----
  while (!im.events.empty()) {
    Event ev = im.events.top();
    im.events.pop();
    im.handle(ev);
  }
  im.check_done(std::max(im.done_time, now));
  if (!im.done) {
    return make_error(Errc::kInternal,
                      "simulation finished without termination detection");
  }

  // ---- package ----
  SimOutcome out;
  out.result.ids = im.result_ids;
  for (Retrieved& r : im.result_values) out.result.values.push_back(r);
  out.result.slot_names = query.retrieve_slots();
  out.result.count_only = query.count_only();
  out.result.total_count =
      query.count_only() ? im.total_count : im.result_ids.size();
  out.response_time = im.done_time + im.costs.query_reply;
  out.stats = im.stats;

  // Bind the result set for follow-up queries.
  if (!query.result_set_name().empty()) {
    if (query.count_only()) {
      std::vector<SiteId> sites_with_portions;
      for (std::size_t s = 0; s < im.site_state.size(); ++s) {
        if (!im.site_state[s].retained.empty()) {
          sites_with_portions.push_back(static_cast<SiteId>(s));
          if (static_cast<SiteId>(s) == origin) {
            im.stores[s].create_set(query.result_set_name(),
                                    im.site_state[s].retained);
          }
        }
      }
      im.distributed_sets[query.result_set_name()] =
          std::move(sites_with_portions);
    } else {
      im.stores[origin].create_set(query.result_set_name(), im.result_ids);
    }
  }
  return out;
}

}  // namespace hyperfile::sim
