// Deterministic discrete-event simulation of a distributed HyperFile
// deployment (the substitution for the paper's network of IBM PC/RTs —
// see DESIGN.md Section 1).
//
// Model: each site is a sequential server with its own clock. Messages are
// real wire::Message values carrying real termination weights; delivery
// costs sender CPU, wire latency, and receiver CPU per the CostModel. Query
// processing at each site runs the *actual* QueryExecution engine — the
// simulator adds only timing, so simulated results are bit-identical to the
// threaded runtime's, and the response-time curves depend on genuine
// message/parallelism structure rather than a closed-form approximation.
//
// The client submits at t = 0 to the originating site; the response time is
// the instant the originator has detected global termination (weighted-
// message algorithm) plus the reply overhead — the paper's "actual response
// time (wall clock) at the client".
#pragma once

#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "engine/query_result.hpp"
#include "sim/cost_model.hpp"
#include "store/site_store.hpp"
#include "term/weighted.hpp"
#include "wire/message.hpp"

namespace hyperfile::sim {

struct SimStats {
  std::uint64_t deref_messages = 0;
  std::uint64_t batch_messages = 0;
  std::uint64_t result_messages = 0;
  std::uint64_t start_messages = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t objects_processed = 0;
  std::uint64_t suppressed_pops = 0;
  /// Per-site CPU busy time (index = site id).
  std::vector<Duration> busy;

  Duration max_busy() const;
};

struct SimOutcome {
  QueryResult result;
  Duration response_time{0};
  SimStats stats;
};

struct SimOptions {
  /// Ship each drain's remote dereferences as one batched message per
  /// destination instead of one message per pointer (ablation A5).
  bool batch_derefs = false;
};

class Simulation {
 public:
  Simulation(CostModel costs, std::size_t sites, SimOptions options = {});
  ~Simulation();

  std::size_t sites() const;
  SiteStore& store(SiteId site);

  /// Run one query to completion, originated at `origin`. The simulation is
  /// reusable: stores persist across runs (result sets bind at the
  /// originator), clocks reset per run.
  Result<SimOutcome> run(const Query& query, SiteId origin = 0);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hyperfile::sim
