#include "sim/cost_model.hpp"

namespace hyperfile::sim {

CostModel CostModel::free() {
  CostModel m;
  m.process_object = Duration(0);
  m.suppressed_pop = Duration(0);
  m.result_insert = Duration(0);
  m.remote_result_id = Duration(0);
  m.msg_send_cpu = Duration(0);
  m.msg_recv_cpu = Duration(0);
  m.msg_latency = Duration(0);
  m.query_setup = Duration(0);
  m.query_reply = Duration(0);
  return m;
}

}  // namespace hyperfile::sim
