// Cost model for the discrete-event simulator, calibrated from the paper's
// measured constants (Section 5):
//
//   "Local processing of a single object took approximately 8 milliseconds,
//    plus another 20 milliseconds to add the object to the result set (if
//    necessary). The added time to process a remote pointer was roughly 50
//    milliseconds (including constructing the message, system calls for
//    sending and receiving, and transmission delay). About 50 milliseconds
//    was also required for each remote result message."
//
// The 50 ms message cost is split into sender CPU + wire latency + receiver
// CPU so the simulator reproduces both the serialized case (a chain of
// pointers: the full 50 ms lands on the critical path → 270 x 58 ms ≈ 15 s,
// the paper's worst case) and the parallel case (a tree: sender CPU is paid
// once per message but receivers work concurrently → 1.5 s / 1.0 s on 3 / 9
// machines).
//
// Sanity anchor (single site): 270 objects x 8 ms + 27 results x 20 ms +
// fixed setup ≈ 2.8 s against the paper's reported 2.7 s.
#pragma once

#include "common/types.hpp"

namespace hyperfile::sim {

struct CostModel {
  /// One object pushed through the filters (one working-set pop).
  Duration process_object{8'000};
  /// A pop suppressed by the mark table (cheap: one hash lookup in 1991
  /// Eiffel terms; not reported separately in the paper).
  Duration suppressed_pop{1'000};
  /// Adding one object to the final result set, charged at the originator.
  Duration result_insert{20'000};
  /// Per-id marshalling overhead for results that arrive *by message*
  /// (remote results are costlier than local ones — the paper: "Sending
  /// results is expensive in our system").
  Duration remote_result_id{7'000};
  /// CPU to construct and send one message (any type).
  Duration msg_send_cpu{20'000};
  /// CPU to receive and parse one message.
  Duration msg_recv_cpu{20'000};
  /// Wire time between sites.
  Duration msg_latency{10'000};
  /// Client -> originating-site submission overhead.
  Duration query_setup{50'000};
  /// Final reply to the client.
  Duration query_reply{50'000};

  /// The calibration used for every paper-reproduction bench.
  static CostModel paper_1991() { return CostModel{}; }

  /// A zero-latency, zero-cpu model: useful to isolate algorithmic counts.
  static CostModel free();
};

}  // namespace hyperfile::sim
