// Per-query distributed tracing (DESIGN.md §12).
//
// A query's execution is scattered across sites: the originator seeds it,
// participants drain work queues and forward dereferences, results flow
// back. The paper evaluates all of this through one end-to-end number
// (client response time); a trace decomposes that number so a slow query
// can be attributed to queue wait, filter scan, wire hops, or retries.
//
// Mechanism: every computation message (StartQuery / DerefRequest /
// BatchDerefRequest) carries a hop number and the site path that produced
// it. Each site keeps ONE TraceSpan per (query, site) — cumulative counters
// on the site's own monotonic clock — and piggybacks it on the
// ResultMessages it already sends to the originator. The originator merges
// spans field-wise by max (the counters are cumulative and monotonic, so a
// duplicate-suppressed redelivery merges to the same state — idempotent by
// construction, no double-recording) and hands the assembled QueryTrace to
// the client on the ClientReply.
//
// Clock caveat: span durations are measured on each site's local
// steady_clock. Durations are comparable across sites; absolute times are
// not, which is why spans carry only durations and counts, never
// timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace hyperfile {

/// One site's cumulative view of one query. All counters are monotonic over
/// the query's lifetime at that site; merging two snapshots of the same
/// span is field-wise max (see merge_into).
struct TraceSpan {
  SiteId site = kNoSite;
  /// Hop number of the message that first engaged this site (0 at the
  /// originator; a site reached directly from the originator is hop 1).
  std::uint32_t first_hop = 0;
  /// Site path of the engaging message, originator first, capped at
  /// kMaxPath entries.
  std::vector<SiteId> path;

  std::uint64_t messages = 0;    // computation messages accepted
  std::uint64_t duplicates = 0;  // messages suppressed as duplicates
  std::uint64_t items = 0;       // work items that entered the local queue
  std::uint64_t forwarded = 0;   // dereferences forwarded to other sites
  std::uint64_t results = 0;     // result ids/values produced here
  std::uint64_t drains = 0;      // drain passes over the local queue
  std::uint64_t drain_us = 0;    // local monotonic time inside drains
  std::uint64_t retries = 0;     // send retries attributed to this query
  std::uint64_t suspicions = 0;  // peers this site suspected dead during
                                 // the query (liveness, DESIGN.md §13)
  std::uint64_t pruned = 0;      // remote dereferences skipped because the
                                 // peer's summary proved them fruitless
                                 // (DESIGN.md §16)
  std::uint64_t failovers = 0;   // dereferences redirected to a suspected
                                 // primary's replica (DESIGN.md §18)
  std::uint64_t replica_lag = 0; // work items served from a replica whose
                                 // watermark trailed the primary's last
                                 // shipped offset — the honesty marker on
                                 // failover answers (DESIGN.md §18)

  static constexpr std::size_t kMaxPath = 32;

  friend bool operator==(const TraceSpan&, const TraceSpan&) = default;
};

/// Merge a later (or redelivered) snapshot of the same site's span into
/// `into`. Counters take the max — cumulative monotonic counters mean the
/// larger value is the more recent snapshot, and re-merging an old or
/// duplicated snapshot is a no-op. first_hop takes the min (earliest
/// engagement); path follows first_hop.
void merge_into(TraceSpan& into, const TraceSpan& from);

/// The assembled end-to-end trace returned on QueryResult.
struct QueryTrace {
  std::string query_id;       // "qN@site" (wire::QueryId::to_string)
  std::uint64_t elapsed_us = 0;  // request->reply on the originator's clock
  std::vector<TraceSpan> spans;  // sorted by site, originator included

  bool empty() const { return spans.empty(); }

  /// Human-readable multi-line rendering (one line per span).
  std::string to_text() const;
  /// Stable JSON: {"query_id":..., "elapsed_us":..., "spans":[{...}]}.
  std::string to_json() const;
};

}  // namespace hyperfile
