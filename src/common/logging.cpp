#include "common/logging.hpp"

namespace hyperfile {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO ", "WARN ", "ERROR"};
  const int idx = static_cast<int>(level);
  if (idx < 0 || idx > 3) return;
  MutexLock lock(mu_);
  std::fprintf(stderr, "[hf %s] %s\n", kNames[idx], message.c_str());
}

}  // namespace hyperfile
