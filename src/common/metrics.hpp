// Unified metrics registry: the one home for cross-thread counters.
//
// Every perf argument this repo makes — queue depth, drain latency, dedup
// hits, retry counts, injected-fault tallies — flows through a
// MetricsRegistry instead of ad-hoc per-class `std::atomic` fields.
// `tools/check_sync_discipline.py` enforces this the same way it enforces
// the sync.hpp lock discipline: non-bool `std::atomic` is banned in src/
// outside this header and sync.hpp, so a new counter *must* be a registry
// metric (and therefore shows up in every dump, bench JSON, and CI
// artifact) or it does not compile the lint.
//
// Three instrument kinds, all safe for concurrent use:
//   * Counter   — monotonic u64, relaxed atomic increments. Hot-path cost is
//     one uncontended RMW; there is no lock anywhere near inc().
//   * Gauge     — i64 that can go up and down (live contexts, queue depth).
//     add()/sub() keep concurrent owners correct where set() would fight.
//   * Histogram — log2-bucketed u64 samples (1µs..~36min when fed
//     microseconds), plus exact count/sum. observe() is a handful of relaxed
//     RMWs; percentiles come out of the dump, not the hot path.
//
// The registry itself is a name -> instrument map behind a Mutex
// (common/sync.hpp, HF_GUARDED_BY-annotated). Lookup interns the instrument
// on first use and returns a stable reference — callers are expected to
// cache it (`static Counter& c = metrics().counter("...")` or a member),
// after which updates never touch the registry lock again.
//
// Naming: dotted paths, lowercase (`dist.drain_us`, `net.fault.dropped`).
// A per-link / per-site breakdown goes in a `{key=value}` suffix:
// `net.fault.dropped{link=2->0}`. Export is deterministic (sorted by name)
// in both text ("name value" lines) and JSON.
//
// `MetricsRegistry::global()` is the process-wide instance everything
// defaults to; tests that need isolation construct their own registry or
// diff snapshots (values are monotonic).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"

namespace hyperfile {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  /// Raise to `v` if below (high-water marks: peak queue depth).
  void max_of(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed latency/size histogram. Sample v lands in bucket
/// floor(log2(v)) (v == 0 in bucket 0), so bucket b covers [2^b, 2^(b+1)).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void observe(std::uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  /// Upper bound (exclusive) of the bucket holding the q-quantile,
  /// q in [0, 1]. Coarse by construction (log2 buckets) but race-free.
  std::uint64_t quantile_bound(double q) const;

  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v > 1 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (every runtime component's default).
  static MetricsRegistry& global();

  /// Find-or-create; the returned reference is stable for the registry's
  /// lifetime, so callers cache it and skip the lock on the hot path.
  Counter& counter(const std::string& name) HF_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) HF_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) HF_EXCLUDES(mu_);

  /// Convenience for `{key=value}`-labelled families:
  /// counter("net.fault.dropped", "link=2->0").
  Counter& counter(const std::string& name, const std::string& label) {
    return counter(name + "{" + label + "}");
  }
  Gauge& gauge(const std::string& name, const std::string& label) {
    return gauge(name + "{" + label + "}");
  }
  Histogram& histogram(const std::string& name, const std::string& label) {
    return histogram(name + "{" + label + "}");
  }

  /// Snapshot value of a counter/gauge (0 / nullopt-like 0 when absent) —
  /// the test-friendly read path.
  std::uint64_t counter_value(const std::string& name) const HF_EXCLUDES(mu_);
  std::int64_t gauge_value(const std::string& name) const HF_EXCLUDES(mu_);

  /// "name value" lines, sorted by name; histograms expand to
  /// `name.count`, `name.sum`, `name.mean`, `name.p50`, `name.p99`.
  std::string to_text() const HF_EXCLUDES(mu_);
  /// One flat JSON object, sorted keys, same expansion as to_text().
  std::string to_json() const HF_EXCLUDES(mu_);
  /// The body of to_json() without the surrounding braces, for embedding
  /// into a larger object (bench_util's BENCH JSON records).
  std::string to_json_fields() const HF_EXCLUDES(mu_);

  /// All registered names (sorted), for introspection/tests.
  std::vector<std::string> names() const HF_EXCLUDES(mu_);

 private:
  // Instruments are interned behind unique_ptr so references stay stable
  // across rehashes; the maps are only touched on first use / export.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ HF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ HF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      HF_GUARDED_BY(mu_);
};

/// Shorthand for MetricsRegistry::global().
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace hyperfile
