// Hash helpers used by identifier types so they can live in unordered maps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace hyperfile {

/// 64-bit mix (Murmur3 finalizer). Good avalanche for combining fields.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::size_t hash_combine(std::size_t seed, std::size_t v) {
  return static_cast<std::size_t>(
      mix64(static_cast<std::uint64_t>(seed) * 0x9e3779b97f4a7c15ULL +
            static_cast<std::uint64_t>(v)));
}

/// FNV-1a over a byte range; used as the snapshot integrity checksum.
inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Seeded FNV-1a: the seed is mixed into the offset basis so distinct seeds
/// give independent-looking hash streams over the same bytes.
inline std::uint64_t fnv1a_seeded(std::uint64_t seed, const std::uint8_t* data,
                                  std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Seeded k-hash family for Bloom filters (Kirsch–Mitzenmacher double
/// hashing): index i is derived as h1 + i*h2 from two seeded base hashes,
/// which preserves the asymptotic false-positive rate of k independent
/// hashes while costing two hash passes total.
struct KHashFamily {
  std::uint64_t h1;
  std::uint64_t h2;

  KHashFamily(std::uint64_t seed, const std::uint8_t* data, std::size_t len)
      : h1(fnv1a_seeded(seed, data, len)),
        h2(fnv1a_seeded(seed ^ 0x5bd1e9955bd1e995ULL, data, len) | 1) {}

  /// The i-th hash of the family, reduced modulo `bits`.
  std::uint64_t index(std::uint32_t i, std::uint64_t bits) const {
    return mix64(h1 + static_cast<std::uint64_t>(i) * h2) % bits;
  }
};

}  // namespace hyperfile
