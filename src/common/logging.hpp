// Tiny leveled logger.
//
// HyperFile libraries are quiet by default (level = kWarn); examples and the
// TCP server raise the level for visibility. The logger exists so that
// distributed-runtime races can be diagnosed without attaching a debugger —
// messages carry the site id where applicable.
#pragma once

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>

#include "common/sync.hpp"

namespace hyperfile {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  /// Level reads sit on every HF_LOG call site — hot paths in the drain
  /// workers and network threads. The level is a standalone flag carrying no
  /// dependent data (writers publish nothing the readers consume), so
  /// relaxed ordering is sufficient: a racing set_level() makes a message
  /// appear or not, never tears state.
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  Mutex mu_;  // serializes stderr lines across threads
};

namespace log_detail {
struct Line {
  LogLevel level;
  std::ostringstream os;
  explicit Line(LogLevel l) : level(l) {}
  ~Line() { Logger::instance().write(level, os.str()); }
};
}  // namespace log_detail

#define HF_LOG(level_)                                                 \
  if (!::hyperfile::Logger::instance().enabled(level_)) {              \
  } else                                                               \
    ::hyperfile::log_detail::Line(level_).os

#define HF_DEBUG HF_LOG(::hyperfile::LogLevel::kDebug)
#define HF_INFO HF_LOG(::hyperfile::LogLevel::kInfo)
#define HF_WARN HF_LOG(::hyperfile::LogLevel::kWarn)
#define HF_ERROR HF_LOG(::hyperfile::LogLevel::kError)

}  // namespace hyperfile
