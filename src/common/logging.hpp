// Tiny leveled logger.
//
// HyperFile libraries are quiet by default (level = kWarn); examples and the
// TCP server raise the level for visibility. The logger exists so that
// distributed-runtime races can be diagnosed without attaching a debugger —
// messages carry the site id where applicable.
#pragma once

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>

namespace hyperfile {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level)); }
  LogLevel level() const { return static_cast<LogLevel>(level_.load()); }

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load();
  }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::mutex mu_;
};

namespace log_detail {
struct Line {
  LogLevel level;
  std::ostringstream os;
  explicit Line(LogLevel l) : level(l) {}
  ~Line() { Logger::instance().write(level, os.str()); }
};
}  // namespace log_detail

#define HF_LOG(level_)                                                 \
  if (!::hyperfile::Logger::instance().enabled(level_)) {              \
  } else                                                               \
    ::hyperfile::log_detail::Line(level_).os

#define HF_DEBUG HF_LOG(::hyperfile::LogLevel::kDebug)
#define HF_INFO HF_LOG(::hyperfile::LogLevel::kInfo)
#define HF_WARN HF_LOG(::hyperfile::LogLevel::kWarn)
#define HF_ERROR HF_LOG(::hyperfile::LogLevel::kError)

}  // namespace hyperfile
