// A minimal expected/Result type used at module boundaries that can fail
// without it being a programming error (parsing, decoding, name resolution,
// socket I/O). Programming errors use assertions/exceptions instead.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace hyperfile {

/// Error categories. Kept coarse on purpose: callers branch on a few cases,
/// humans read the message.
enum class Errc : std::uint8_t {
  kInvalidArgument,  // malformed query text, bad pattern, bad parameters
  kNotFound,         // unknown object id, set name, or site
  kDecode,           // wire-format decoding failure
  kIo,               // transport / file errors
  kClosed,           // channel or server shut down
  kTimeout,          // operation deadline exceeded
  kBusy,             // backpressure: bounded queue full, retry after draining
  kInternal,         // invariant violation surfaced as an error
};

const char* to_string(Errc c);

struct Error {
  Errc code;
  std::string message;

  std::string to_string() const;
};

/// Result<T>: either a value or an Error. Result<void> is supported.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error e) : rep_(std::move(e)) {}      // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(rep_);
  }

  /// Value or a fallback; convenient in tests and examples.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> rep_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error e) : error_(std::move(e)), failed_(true) {}  // NOLINT

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_{};
  bool failed_ = false;
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace hyperfile
