#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace hyperfile {
namespace {

/// Exported floats use max_digits10 so a dump parsed back yields the exact
/// stored value (same rule as bench_util's BENCH JSON writer).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

struct ExportRow {
  std::string name;
  std::string value;  // already formatted (integer or double text)
};

}  // namespace

std::uint64_t Histogram::quantile_bound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank: the smallest sample index covering fraction q of the
  // population (truncating q*(n-1) instead would report p99 of five
  // samples as the 4th smallest, not the max).
  const double scaled = q * static_cast<double>(n);
  auto rank = static_cast<std::uint64_t>(scaled);
  if (rank > 0 && static_cast<double>(rank) == scaled) --rank;
  if (rank >= n) rank = n - 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen > rank) return std::uint64_t{1} << (b + 1);
  }
  return std::uint64_t{1} << kBuckets;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::int64_t MetricsRegistry::gauge_value(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->value();
}

std::vector<std::string> MetricsRegistry::names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, c] : counters_) out.push_back(name);
  for (const auto& [name, g] : gauges_) out.push_back(name);
  for (const auto& [name, h] : histograms_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Collect every instrument as (name, formatted value) rows. Histograms
/// expand into .count/.sum/.mean/.p50/.p99 derived rows. Rows come out
/// sorted because the maps iterate in name order and a final merge keeps it.
std::vector<ExportRow> collect_rows(
    const std::map<std::string, std::unique_ptr<Counter>>& counters,
    const std::map<std::string, std::unique_ptr<Gauge>>& gauges,
    const std::map<std::string, std::unique_ptr<Histogram>>& histograms) {
  std::vector<ExportRow> rows;
  for (const auto& [name, c] : counters) {
    rows.push_back({name, std::to_string(c->value())});
  }
  for (const auto& [name, g] : gauges) {
    rows.push_back({name, std::to_string(g->value())});
  }
  for (const auto& [name, h] : histograms) {
    rows.push_back({name + ".count", std::to_string(h->count())});
    rows.push_back({name + ".sum", std::to_string(h->sum())});
    rows.push_back({name + ".mean", format_double(h->mean())});
    rows.push_back({name + ".p50", std::to_string(h->quantile_bound(0.50))});
    rows.push_back({name + ".p99", std::to_string(h->quantile_bound(0.99))});
  }
  std::sort(rows.begin(), rows.end(),
            [](const ExportRow& a, const ExportRow& b) { return a.name < b.name; });
  return rows;
}

std::string json_escape_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::to_text() const {
  MutexLock lock(mu_);
  const auto rows = collect_rows(counters_, gauges_, histograms_);
  std::string out;
  for (const auto& row : rows) {
    out += row.name;
    out += " ";
    out += row.value;
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json_fields() const {
  MutexLock lock(mu_);
  const auto rows = collect_rows(counters_, gauges_, histograms_);
  std::string out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (i != 0) out += ", ";
    out += "\"" + json_escape_name(rows[i].name) + "\": " + rows[i].value;
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  return "{" + to_json_fields() + "}";
}

}  // namespace hyperfile
