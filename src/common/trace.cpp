#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace hyperfile {

void merge_into(TraceSpan& into, const TraceSpan& from) {
  if (into.site == kNoSite) into.site = from.site;
  if (from.first_hop < into.first_hop || into.path.empty()) {
    into.first_hop = from.first_hop;
    if (!from.path.empty()) into.path = from.path;
  }
  into.messages = std::max(into.messages, from.messages);
  into.duplicates = std::max(into.duplicates, from.duplicates);
  into.items = std::max(into.items, from.items);
  into.forwarded = std::max(into.forwarded, from.forwarded);
  into.results = std::max(into.results, from.results);
  into.drains = std::max(into.drains, from.drains);
  into.drain_us = std::max(into.drain_us, from.drain_us);
  into.retries = std::max(into.retries, from.retries);
  into.suspicions = std::max(into.suspicions, from.suspicions);
  into.pruned = std::max(into.pruned, from.pruned);
  into.failovers = std::max(into.failovers, from.failovers);
  into.replica_lag = std::max(into.replica_lag, from.replica_lag);
}

namespace {

std::string path_string(const std::vector<SiteId>& path, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) out += sep;
    out += std::to_string(path[i]);
  }
  return out;
}

}  // namespace

std::string QueryTrace::to_text() const {
  std::string out = "trace " + query_id + " elapsed " +
                    std::to_string(elapsed_us) + "us\n";
  for (const TraceSpan& s : spans) {
    char line[384];
    std::snprintf(line, sizeof line,
                  "  site %u hop %u path [%s] msgs %llu dup %llu items %llu "
                  "fwd %llu results %llu drains %llu drain_us %llu "
                  "retries %llu suspicions %llu pruned %llu failovers %llu "
                  "replica_lag %llu\n",
                  s.site, s.first_hop, path_string(s.path, "->").c_str(),
                  static_cast<unsigned long long>(s.messages),
                  static_cast<unsigned long long>(s.duplicates),
                  static_cast<unsigned long long>(s.items),
                  static_cast<unsigned long long>(s.forwarded),
                  static_cast<unsigned long long>(s.results),
                  static_cast<unsigned long long>(s.drains),
                  static_cast<unsigned long long>(s.drain_us),
                  static_cast<unsigned long long>(s.retries),
                  static_cast<unsigned long long>(s.suspicions),
                  static_cast<unsigned long long>(s.pruned),
                  static_cast<unsigned long long>(s.failovers),
                  static_cast<unsigned long long>(s.replica_lag));
    out += line;
  }
  return out;
}

std::string QueryTrace::to_json() const {
  std::string out = "{\"query_id\": \"" + query_id +
                    "\", \"elapsed_us\": " + std::to_string(elapsed_us) +
                    ", \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const TraceSpan& s = spans[i];
    if (i != 0) out += ", ";
    out += "{\"site\": " + std::to_string(s.site) +
           ", \"first_hop\": " + std::to_string(s.first_hop) +
           ", \"path\": [" + path_string(s.path, ", ") + "]" +
           ", \"messages\": " + std::to_string(s.messages) +
           ", \"duplicates\": " + std::to_string(s.duplicates) +
           ", \"items\": " + std::to_string(s.items) +
           ", \"forwarded\": " + std::to_string(s.forwarded) +
           ", \"results\": " + std::to_string(s.results) +
           ", \"drains\": " + std::to_string(s.drains) +
           ", \"drain_us\": " + std::to_string(s.drain_us) +
           ", \"retries\": " + std::to_string(s.retries) +
           ", \"suspicions\": " + std::to_string(s.suspicions) +
           ", \"pruned\": " + std::to_string(s.pruned) +
           ", \"failovers\": " + std::to_string(s.failovers) +
           ", \"replica_lag\": " + std::to_string(s.replica_lag) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace hyperfile
