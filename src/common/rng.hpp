// Deterministic random number generation.
//
// Every randomized component (workload generator, property tests, simulator
// jitter) takes an explicit Rng so runs are reproducible from a single seed.
// The generator is xoshiro256** (Blackman & Vigna) seeded via splitmix64 —
// small, fast, and identical across platforms, unlike std::mt19937 whose
// distributions are not portable.
#pragma once

#include <cstdint>
#include <limits>

namespace hyperfile {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling, so
  /// the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli(p). p outside [0,1] is clamped.
  bool next_bool(double p);

  /// Derive an independent child generator (stable function of this
  /// generator's next output); handy for giving subsystems their own stream.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace hyperfile
