#include "common/result.hpp"

namespace hyperfile {

const char* to_string(Errc c) {
  switch (c) {
    case Errc::kInvalidArgument:
      return "invalid_argument";
    case Errc::kNotFound:
      return "not_found";
    case Errc::kDecode:
      return "decode";
    case Errc::kIo:
      return "io";
    case Errc::kClosed:
      return "closed";
    case Errc::kTimeout:
      return "timeout";
    case Errc::kBusy:
      return "busy";
    case Errc::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string s = hyperfile::to_string(code);
  s += ": ";
  s += message;
  return s;
}

}  // namespace hyperfile
