// Basic identifier and scalar types shared by every HyperFile subsystem.
//
// HyperFile (Clifton & Garcia-Molina, ICDCS 1991) is a distributed back-end
// document store. Sites are the unit of distribution: each site runs one
// server holding a partition of the object graph. Identifiers defined here
// are deliberately plain integral types so they can cross the wire without
// any translation.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

namespace hyperfile {

/// Identifies one HyperFile server node. Site ids are assigned by the
/// deployment (cluster constructor, simulator, or TCP configuration) and are
/// dense: a deployment of N sites uses ids [0, N).
using SiteId = std::uint32_t;

/// Sentinel for "no site" (e.g. an unresolved presumed location).
inline constexpr SiteId kNoSite = std::numeric_limits<SiteId>::max();

/// Per-site object sequence number. Combined with the birth site it forms a
/// globally unique object identity (see model/object_id.hpp).
using LocalSeq = std::uint64_t;

/// Identifier of a query, unique per originating site. The pair
/// (originator, QuerySeq) is globally unique ("Q.id @ Q.originator" in the
/// paper, Section 3.2).
using QuerySeq = std::uint64_t;

/// Simulated / measured durations. The 1991 experiments report times in
/// milliseconds; we keep microsecond resolution so the simulator can model
/// sub-millisecond costs without rounding artifacts.
using Duration = std::chrono::microseconds;
using TimePoint = std::chrono::microseconds;  // simulated absolute time

inline constexpr Duration kDurationZero{0};

/// Human-readable rendering used by benches and examples ("2.70s", "83ms").
std::string format_duration(Duration d);

}  // namespace hyperfile
