// Thread-safety-annotated synchronization primitives.
//
// Every mutex, lock, and condition variable in HyperFile goes through this
// header — `tools/check_sync_discipline.py` fails the build if any other
// file names std::mutex / std::condition_variable / std::lock_guard /
// std::unique_lock directly. The payoff: under Clang, `-Wthread-safety`
// statically checks the locking discipline DESIGN.md §10 documents — every
// `HF_GUARDED_BY` field access must hold the named capability, every
// `HF_REQUIRES` helper must be called with it held, on every build, not
// just on the schedules TSan happens to see.
//
// Under GCC (which has no thread safety analysis) the annotations compile
// to nothing and the primitives are zero-cost forwards to the standard
// ones.
//
// Usage:
//   class Account {
//     Mutex mu_;
//     std::int64_t balance_ HF_GUARDED_BY(mu_);
//     void credit(std::int64_t amount) {
//       MutexLock lock(mu_);
//       balance_ += amount;           // OK: lock held
//     }
//   };
//
// Condition-variable waits are written as explicit predicate loops in the
// *enclosing* function rather than with lambda predicates:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);
//
// Clang's analysis treats a lambda body as a separate function that holds
// no capabilities, so a `cv.wait(lock, [&]{ return ready_; })` predicate
// reading a guarded field would (rightly) fail the build. The explicit loop
// keeps the guarded reads in the scope that visibly holds the lock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros (Clang Thread Safety Analysis; no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define HF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HF_THREAD_ANNOTATION(x)  // GCC / MSVC: no thread safety analysis
#endif

/// Marks a class as a lockable capability (e.g. `HF_CAPABILITY("mutex")`).
#define HF_CAPABILITY(x) HF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define HF_SCOPED_CAPABILITY HF_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define HF_GUARDED_BY(x) HF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding the
/// given capability (the pointer itself is unguarded).
#define HF_PT_GUARDED_BY(x) HF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define HF_REQUIRES(...) \
  HF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define HF_ACQUIRE(...) \
  HF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller holds.
#define HF_RELEASE(...) \
  HF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define HF_TRY_ACQUIRE(...) \
  HF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for
/// self-locking public entry points).
#define HF_EXCLUDES(...) HF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documents lock-ordering: this capability is acquired before the listed
/// ones. Checked by `-Wthread-safety-analysis` where supported.
#define HF_ACQUIRED_BEFORE(...) \
  HF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HF_ACQUIRED_AFTER(...) \
  HF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define HF_RETURN_CAPABILITY(x) HF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Every use outside this header must carry a comment naming
/// the invariant the analysis cannot see.
#define HF_NO_THREAD_SAFETY_ANALYSIS \
  HF_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Thread-role annotations (checked by tools/hfverify; DESIGN.md §15).
// ---------------------------------------------------------------------------
//
// HyperFile's concurrency story is confinement-first: each site server owns
// an event-loop thread, the parallel drain owns a worker pool, and most
// state is touched by exactly one of them. Clang Thread Safety Analysis
// (above) checks the few shared, mutex-guarded islands; the role macros
// below declare which thread owns everything else, and `tools/hfverify`
// checks the declarations whole-program:
//
//   HF_EVENT_LOOP_ONLY  — callable (or touchable, for fields) only from the
//                         owning site server's event-loop thread.
//   HF_WORKER_ONLY      — only from a WorkerPool worker during a drain.
//   HF_ANY_THREAD       — explicitly thread-safe public entry point; must
//                         not reach role-confined functions or state.
//   HF_BLOCKING         — may sleep, wait on a condition variable, or do
//                         file I/O. hfverify fails the build if any
//                         HF_EVENT_LOOP_ONLY path reaches one of these
//                         without an explicit `// hfverify: allow-blocking`
//                         waiver naming the bound (DESIGN.md §15).
//
// Under Clang the macros emit `annotate` attributes so AST-based tooling can
// see them; under GCC they compile to nothing. Either way hfverify's text
// frontend reads them straight from the source, so the checks do not depend
// on the compiler in use.
#if defined(__clang__)
#define HF_ROLE_ANNOTATION(x) __attribute__((annotate(x)))
#else
#define HF_ROLE_ANNOTATION(x)  // annotations read textually by hfverify
#endif

#define HF_EVENT_LOOP_ONLY HF_ROLE_ANNOTATION("hf_event_loop_only")
#define HF_WORKER_ONLY HF_ROLE_ANNOTATION("hf_worker_only")
#define HF_ANY_THREAD HF_ROLE_ANNOTATION("hf_any_thread")
#define HF_BLOCKING HF_ROLE_ANNOTATION("hf_blocking")

namespace hyperfile {

class CondVar;
class MutexLock;

/// Annotated wrapper over std::mutex. Prefer MutexLock over manual
/// lock()/unlock() pairs; the manual methods exist for the rare case where
/// RAII scoping cannot express the protocol.
class HF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HF_ACQUIRE() { mu_.lock(); }
  void unlock() HF_RELEASE() { mu_.unlock(); }
  bool try_lock() HF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock on a Mutex (the annotated std::unique_lock/std::lock_guard).
/// Also the handle CondVar waits release/reacquire.
class HF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HF_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() HF_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock.
///
/// Deliberately predicate-free: callers write `while (!cond) cv.wait(lock);`
/// so the guarded predicate reads stay inside the scope that holds the lock
/// (see the header comment). From the analysis' point of view the capability
/// stays held across wait(); that is sound because wait() reacquires the
/// mutex before returning and callers re-test the predicate under it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  HF_BLOCKING void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Dur>
  HF_BLOCKING std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Dur>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  template <typename Rep, typename Period>
  HF_BLOCKING std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lock_, d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// AtomicMarkMap — a lock-free concurrent (key -> bitset) map.
// ---------------------------------------------------------------------------
//
// The sanctioned lock-free primitive behind the parallel drain's mark table
// (DESIGN.md §14): every operation is wait-free apart from slot claiming and
// segment growth, and no operation ever blocks. The sync-discipline lint
// (tools/check_sync_discipline.py) confines std::atomic and std::memory_order
// to this header; engine code must use this class rather than rolling its
// own atomics.
//
// Intended use is *monotone* marking under a benign-duplicate license: bits
// are only ever set, never cleared, and a reader that misses a concurrent
// set() must tolerate acting as if the bit were unset (in HyperFile terms:
// the object is processed twice, which the paper's Section 6 argument
// explicitly allows — duplicate marks change no answers). Under that license
// the mark words need no ordering at all, so they use relaxed fetch_or /
// relaxed loads; the structural words (slot keys, segment links) use
// acquire/release so a found slot's mark words are always safe to touch.
//
// Layout: open-addressed segments of atomic words. Each slot is one key
// word (0 = empty; claimed once, by CAS, to key+1 and never rewritten)
// followed by `words_per_key` mark words. An inserter probes a fixed window
// of slots from the key's hash and claims the *first* empty slot it meets;
// because key words are write-once, at most one slot per chain ever holds a
// given key, and every prober (set and test alike) deterministically
// converges on it. A window with no empty slot and no matching key is a
// permanent condition, so the prober moves to the next segment (created on
// demand with a CAS-installed link, twice the size) — growth never moves
// existing slots, which is what keeps readers lock-free.
class AtomicMarkMap {
 public:
  /// A map whose per-key bitset holds bits [0, bits_per_key). Sized for
  /// `expected_keys` without growth; growing past that is correct, just
  /// slower (extra segment hops).
  explicit AtomicMarkMap(std::uint32_t bits_per_key,
                         std::size_t expected_keys = 1024)
      : words_per_key_((static_cast<std::size_t>(bits_per_key) + 63) / 64),
        stride_(1 + words_per_key_) {
    std::size_t slots = 64;
    while (slots < expected_keys * 2) slots <<= 1;
    head_.store(new Segment(slots, stride_), std::memory_order_release);
  }

  ~AtomicMarkMap() {
    Segment* s = head_.load(std::memory_order_acquire);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_acquire);
      delete s;
      s = next;
    }
  }

  AtomicMarkMap(const AtomicMarkMap&) = delete;
  AtomicMarkMap& operator=(const AtomicMarkMap&) = delete;

  /// Set `bit` for `key` (inserting the key if new). Lock-free; relaxed on
  /// the mark word — concurrent testers may briefly miss it (benign
  /// duplicate), never unsee it.
  void set(std::uint64_t key, std::uint32_t bit) {
    std::atomic<std::uint64_t>* marks = find_or_insert(key);
    marks[bit / 64].fetch_or(std::uint64_t{1} << (bit % 64),
                             std::memory_order_relaxed);
  }

  /// Test `bit` for `key`. Never inserts.
  bool test(std::uint64_t key, std::uint32_t bit) const {
    const std::atomic<std::uint64_t>* marks = find(key);
    if (marks == nullptr) return false;
    return (marks[bit / 64].load(std::memory_order_relaxed) &
            (std::uint64_t{1} << (bit % 64))) != 0;
  }

  /// True if any bit is set for `key`.
  bool test_any(std::uint64_t key) const {
    const std::atomic<std::uint64_t>* marks = find(key);
    if (marks == nullptr) return false;
    for (std::size_t w = 0; w < words_per_key_; ++w) {
      if (marks[w].load(std::memory_order_relaxed) != 0) return true;
    }
    return false;
  }

  /// Atomically set `bit` and report whether it was already set. One
  /// fetch_or instead of a test()+set() pair.
  bool test_and_set(std::uint64_t key, std::uint32_t bit) {
    std::atomic<std::uint64_t>* marks = find_or_insert(key);
    const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
    return (marks[bit / 64].fetch_or(mask, std::memory_order_relaxed) &
            mask) != 0;
  }

  /// Keys ever inserted (exact once concurrent inserters have joined).
  std::size_t key_count() const {
    return key_count_.load(std::memory_order_relaxed);
  }

  /// Segments in the chain (1 until the initial sizing overflows).
  std::size_t segment_count() const {
    std::size_t n = 0;
    for (const Segment* s = head_.load(std::memory_order_acquire);
         s != nullptr; s = s->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  struct Segment {
    Segment(std::size_t slot_count, std::size_t stride)
        : slots(slot_count),
          mask(slot_count - 1),
          words(new std::atomic<std::uint64_t>[slot_count * stride]()) {}

    const std::size_t slots;
    const std::size_t mask;  // slots is a power of two
    /// Value-initialized: all key words empty, all mark words zero.
    const std::unique_ptr<std::atomic<std::uint64_t>[]> words;
    std::atomic<Segment*> next{nullptr};
  };

  /// Probes per segment before spilling to the next one. Bounds the cost of
  /// a probe through a crowded segment; correctness does not depend on the
  /// value (see the claim-determinism argument in the class comment).
  static constexpr std::size_t kProbeWindow = 32;

  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// The slot's mark words if `key` is present, else nullptr.
  const std::atomic<std::uint64_t>* find(std::uint64_t key) const {
    const std::uint64_t stored = key + 1;
    const std::uint64_t h = mix(key);
    for (const Segment* seg = head_.load(std::memory_order_acquire);
         seg != nullptr; seg = seg->next.load(std::memory_order_acquire)) {
      const std::size_t window = seg->slots < kProbeWindow ? seg->slots
                                                           : kProbeWindow;
      for (std::size_t i = 0; i < window; ++i) {
        const std::size_t slot = (h + i) & seg->mask;
        const std::uint64_t kw =
            seg->words[slot * stride_].load(std::memory_order_acquire);
        if (kw == stored) return &seg->words[slot * stride_ + 1];
        if (kw == 0) return nullptr;  // inserters never skip an empty slot
      }
    }
    return nullptr;
  }

  /// The slot's mark words for `key`, claiming a slot if the key is new.
  std::atomic<std::uint64_t>* find_or_insert(std::uint64_t key) {
    const std::uint64_t stored = key + 1;
    const std::uint64_t h = mix(key);
    Segment* seg = head_.load(std::memory_order_acquire);
    for (;;) {
      const std::size_t window = seg->slots < kProbeWindow ? seg->slots
                                                           : kProbeWindow;
      for (std::size_t i = 0; i < window; ++i) {
        const std::size_t slot = (h + i) & seg->mask;
        std::atomic<std::uint64_t>& kw = seg->words[slot * stride_];
        std::uint64_t cur = kw.load(std::memory_order_acquire);
        if (cur == 0) {
          if (kw.compare_exchange_strong(cur, stored,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
            key_count_.fetch_add(1, std::memory_order_relaxed);
            return &seg->words[slot * stride_ + 1];
          }
          // Lost the claim; `cur` now holds the winner's key.
        }
        if (cur == stored) return &seg->words[slot * stride_ + 1];
      }
      // Window permanently full of other keys: spill to the next segment,
      // installing it first if we are the first to overflow.
      Segment* next = seg->next.load(std::memory_order_acquire);
      if (next == nullptr) {
        auto* fresh = new Segment(seg->slots * 2, stride_);
        if (seg->next.compare_exchange_strong(next, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
          next = fresh;
        } else {
          delete fresh;  // somebody else installed one; use theirs
        }
      }
      seg = next;
    }
  }

  const std::size_t words_per_key_;
  const std::size_t stride_;
  std::atomic<Segment*> head_{nullptr};
  std::atomic<std::size_t> key_count_{0};
};

}  // namespace hyperfile
