// Thread-safety-annotated synchronization primitives.
//
// Every mutex, lock, and condition variable in HyperFile goes through this
// header — `tools/check_sync_discipline.py` fails the build if any other
// file names std::mutex / std::condition_variable / std::lock_guard /
// std::unique_lock directly. The payoff: under Clang, `-Wthread-safety`
// statically checks the locking discipline DESIGN.md §10 documents — every
// `HF_GUARDED_BY` field access must hold the named capability, every
// `HF_REQUIRES` helper must be called with it held, on every build, not
// just on the schedules TSan happens to see.
//
// Under GCC (which has no thread safety analysis) the annotations compile
// to nothing and the primitives are zero-cost forwards to the standard
// ones.
//
// Usage:
//   class Account {
//     Mutex mu_;
//     std::int64_t balance_ HF_GUARDED_BY(mu_);
//     void credit(std::int64_t amount) {
//       MutexLock lock(mu_);
//       balance_ += amount;           // OK: lock held
//     }
//   };
//
// Condition-variable waits are written as explicit predicate loops in the
// *enclosing* function rather than with lambda predicates:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(lock);
//
// Clang's analysis treats a lambda body as a separate function that holds
// no capabilities, so a `cv.wait(lock, [&]{ return ready_; })` predicate
// reading a guarded field would (rightly) fail the build. The explicit loop
// keeps the guarded reads in the scope that visibly holds the lock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Annotation macros (Clang Thread Safety Analysis; no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define HF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HF_THREAD_ANNOTATION(x)  // GCC / MSVC: no thread safety analysis
#endif

/// Marks a class as a lockable capability (e.g. `HF_CAPABILITY("mutex")`).
#define HF_CAPABILITY(x) HF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define HF_SCOPED_CAPABILITY HF_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be accessed while holding the given capability.
#define HF_GUARDED_BY(x) HF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be accessed while holding the
/// given capability (the pointer itself is unguarded).
#define HF_PT_GUARDED_BY(x) HF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held by the caller.
#define HF_REQUIRES(...) \
  HF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it.
#define HF_ACQUIRE(...) \
  HF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller holds.
#define HF_RELEASE(...) \
  HF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define HF_TRY_ACQUIRE(...) \
  HF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for
/// self-locking public entry points).
#define HF_EXCLUDES(...) HF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Documents lock-ordering: this capability is acquired before the listed
/// ones. Checked by `-Wthread-safety-analysis` where supported.
#define HF_ACQUIRED_BEFORE(...) \
  HF_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HF_ACQUIRED_AFTER(...) \
  HF_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define HF_RETURN_CAPABILITY(x) HF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Every use outside this header must carry a comment naming
/// the invariant the analysis cannot see.
#define HF_NO_THREAD_SAFETY_ANALYSIS \
  HF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace hyperfile {

class CondVar;
class MutexLock;

/// Annotated wrapper over std::mutex. Prefer MutexLock over manual
/// lock()/unlock() pairs; the manual methods exist for the rare case where
/// RAII scoping cannot express the protocol.
class HF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HF_ACQUIRE() { mu_.lock(); }
  void unlock() HF_RELEASE() { mu_.unlock(); }
  bool try_lock() HF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock on a Mutex (the annotated std::unique_lock/std::lock_guard).
/// Also the handle CondVar waits release/reacquire.
class HF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HF_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() HF_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock.
///
/// Deliberately predicate-free: callers write `while (!cond) cv.wait(lock);`
/// so the guarded predicate reads stay inside the scope that holds the lock
/// (see the header comment). From the analysis' point of view the capability
/// stays held across wait(); that is sound because wait() reacquires the
/// mutex before returning and callers re-test the predicate under it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Clock, typename Dur>
  std::cv_status wait_until(MutexLock& lock,
                            const std::chrono::time_point<Clock, Dur>& tp) {
    return cv_.wait_until(lock.lock_, tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lock.lock_, d);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hyperfile
