#include "common/types.hpp"

#include <cstdio>

namespace hyperfile {

std::string format_duration(Duration d) {
  const auto us = d.count();
  char buf[64];
  if (us >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(us) / 1e6);
  } else if (us >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.1fms", static_cast<double>(us) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%ldus", static_cast<long>(us));
  }
  return buf;
}

}  // namespace hyperfile
